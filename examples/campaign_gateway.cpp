/**
 * @file
 * CLI front door for the multi-tenant campaign gateway: accept one or
 * more sweep-config submissions (each carrying `gateway.tenant` and
 * `gateway.priority` keys) and run them all on ONE shared worker
 * fleet — local cell_runner slots, remote runner_daemon endpoints, or
 * both.
 *
 *   $ ./examples/campaign_gateway --root /tmp/gw --dist 3 \
 *         alice_nightly.cfg bob_quick.cfg
 *   $ ./examples/campaign_gateway --root /tmp/gw \
 *         --endpoints 10.0.0.2:7001,10.0.0.3:7001 tenants/*.cfg
 *
 * Higher-priority campaigns schedule first (ties in submission
 * order); every campaign's report lands under
 * <root>/<tenant>/<campaign>/report.json, and each campaign is
 * crash-safe re-enterable through its grid manifest in the same tree.
 *
 * Exit status: 0 when every cell of every campaign completed, 1 when
 * any cell failed, 2 on submission/config errors.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "eval/sweep_config.hpp"
#include "serve/gateway/campaign_gateway.hpp"

namespace {

/** Resolve the cell_runner executable: explicit flag, then the
 *  AUTOCAT_CELL_RUNNER environment variable, then a cell_runner
 *  sitting next to this binary (the layout CMake produces). */
std::string
resolveRunner(const std::string &flag, const char *argv0)
{
    if (!flag.empty())
        return flag;
    if (const char *env = std::getenv("AUTOCAT_CELL_RUNNER")) {
        if (*env)
            return env;
    }
    std::string dir(argv0 ? argv0 : "");
    const std::size_t slash = dir.rfind('/');
    return (slash == std::string::npos ? std::string(".")
                                       : dir.substr(0, slash)) +
           "/cell_runner";
}

int
usage()
{
    std::cerr << "usage: campaign_gateway --root DIR [--dist N] "
                 "[--runner PATH] [--endpoints H:P[,H:P...]] "
                 "[--retries N] [--heartbeat-timeout S] "
                 "config.cfg [config.cfg ...]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace autocat;

    std::string root, runner_flag, endpoints_flag;
    FleetOptions fleet;
    fleet.localProcesses = 2;
    std::vector<std::string> config_paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--dist" && i + 1 < argc) {
            fleet.localProcesses = std::atoi(argv[++i]);
        } else if (arg == "--runner" && i + 1 < argc) {
            runner_flag = argv[++i];
        } else if (arg == "--endpoints" && i + 1 < argc) {
            endpoints_flag = argv[++i];
        } else if (arg == "--retries" && i + 1 < argc) {
            fleet.maxRetries = std::atoi(argv[++i]);
        } else if (arg == "--heartbeat-timeout" && i + 1 < argc) {
            fleet.heartbeatTimeoutS = std::atof(argv[++i]);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            config_paths.push_back(arg);
        }
    }
    if (root.empty() || config_paths.empty())
        return usage();

    if (!endpoints_flag.empty()) {
        std::size_t start = 0;
        for (;;) {
            const std::size_t comma = endpoints_flag.find(',', start);
            fleet.endpoints.push_back(
                comma == std::string::npos
                    ? endpoints_flag.substr(start)
                    : endpoints_flag.substr(start, comma - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }
    if (fleet.localProcesses > 0)
        fleet.runnerPath = resolveRunner(runner_flag, argv[0]);

    try {
        CampaignGateway gateway(root, fleet);
        for (const std::string &path : config_paths) {
            SweepConfig cfg = loadSweepConfig(path);
            gateway.submit(std::move(cfg));
        }
        std::cout << "Gateway accepted " << config_paths.size()
                  << " campaign(s); running the fleet.\n";

        const std::vector<GatewayResult> results = gateway.run();
        std::size_t failed = 0;
        for (const GatewayResult &result : results) {
            failed += result.report.numFailed();
            std::cout << "  " << result.tenant << "/"
                      << result.campaign << ": "
                      << result.report.numConverged() << "/"
                      << result.report.cells.size() << " converged, "
                      << result.report.numFailed() << " failed ("
                      << result.report.cellsAdopted
                      << " adopted from manifest) -> "
                      << result.reportPath << "\n";
        }
        return failed == 0 ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
