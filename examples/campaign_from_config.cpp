/**
 * @file
 * CLI campaign driver: run a resumable multi-phase training curriculum
 * from a config file (exploration base keys + `campaign.*` /
 * `phase[N].*` keys).
 *
 *   $ ./examples/campaign_from_config my_campaign.cfg
 *   $ ./examples/campaign_from_config my_campaign.cfg --resume
 *   $ ./examples/campaign_from_config --print-default > campaign.cfg
 *
 * With no config argument, runs a built-in 2-phase curriculum: learn
 * the attack clean, then keep training with the miss-count detector
 * penalizing detection (the Section V-D / Table VIII setting). With a
 * checkpoint path configured, interrupting the run and restarting with
 * --resume (or campaign.resume = true) continues bit-identically to an
 * uninterrupted run.
 *
 * Exit status: 0 when the final phase converged, 1 otherwise.
 */

#include <iostream>

#include "core/autocat.hpp"

namespace {

const char *kBuiltinCurriculum = R"(
    # 4-way LRU set, 0/E victim; learn clean, then evade the miss
    # detector.
    num_sets = 1
    num_ways = 4
    rep_policy = lru
    attack_addr_s = 0
    attack_addr_e = 4
    victim_addr_s = 0
    victim_addr_e = 0
    victim_no_access_enable = true
    window_size = 16
    init_accesses = 8
    seed = 7

    campaign.checkpoint_path = campaign.ckpt
    campaign.checkpoint_every = 10

    phase[0].name = warmup
    phase[0].max_epochs = 60
    phase[0].target_accuracy = 0.95

    # The scenario's default miss detector (Terminate mode, episode
    # ends with detection_reward) applies; the phase only tightens the
    # penalty and demands a low detection rate to stop.
    phase[1].name = bypass
    phase[1].scenario = miss_detect_terminate
    phase[1].max_epochs = 120
    phase[1].target_accuracy = 0.95
    phase[1].max_detection_rate = 0.1
    phase[1].detection_reward = -3
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace autocat;

    CampaignConfig cfg;
    std::string config_path;
    bool force_resume = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--print-default") {
            std::cout << renderCampaignConfig(
                parseCampaignConfig(std::string(kBuiltinCurriculum)));
            return 0;
        }
        if (arg == "--resume") {
            force_resume = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "usage: campaign_from_config [config.cfg] "
                         "[--resume] [--print-default]\n";
            return 2;
        } else {
            config_path = arg;
        }
    }

    try {
        if (!config_path.empty()) {
            cfg = loadCampaignConfig(config_path);
            std::cout << "Loaded " << config_path << "\n";
        } else {
            cfg = parseCampaignConfig(std::string(kBuiltinCurriculum));
            std::cout << "No config given; running the built-in 2-phase "
                         "miss-detector curriculum.\n";
        }
        if (force_resume)
            cfg.resume = true;

        TrainingSession session(cfg);
        const std::vector<CurriculumPhase> phases =
            session.resolvedPhases();
        std::cout << "Campaign has " << phases.size() << " phase(s)";
        if (!cfg.checkpointPath.empty()) {
            std::cout << ", checkpointing to " << cfg.checkpointPath
                      << (cfg.resume ? " (resume enabled)" : "");
        }
        std::cout << ".\n";

        const CampaignResult result = session.run(
            {},
            [](std::size_t index, const PhaseResult &phase) {
                std::cout << "  phase " << index << " [" << phase.name
                          << "]: "
                          << (phase.converged
                                  ? "converged at epoch " +
                                        std::to_string(
                                            phase.convergedEpoch)
                                  : "epoch budget exhausted")
                          << ", acc "
                          << phase.finalEval.guessAccuracy
                          << ", detection rate "
                          << phase.finalEval.detectionRate << "\n";
            },
            [](const std::string &path, std::size_t phase,
               int epochs_done) {
                std::cout << "  checkpoint -> " << path << " (phase "
                          << phase << ", epoch " << epochs_done << ")\n";
            });

        if (result.resumed)
            std::cout << "(resumed from checkpoint)\n";
        const ExplorationResult &fin = result.final;
        std::cout << (fin.converged ? "converged" : "NOT converged")
                  << "  accuracy=" << fin.finalAccuracy
                  << "  detection-rate=" << fin.detectionRate
                  << "  env-steps=" << fin.envSteps << "\n"
                  << "attack: " << fin.sequence.toString(false) << " -> "
                  << fin.finalGuess << "  ["
                  << categoryLabel(fin.category) << "]\n";
        return fin.converged ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
