/**
 * @file
 * Example: sending a message through the StealthyStreamline covert
 * channel on a simulated Skylake L1 set, end to end.
 *
 * Encodes an ASCII string into bits, transmits it through the cache
 * timing channel (with realistic noise), decodes it back, and prints
 * the bit rate / error statistics — the Section V-E measurement in
 * miniature.
 *
 *   $ ./examples/covert_channel_demo
 */

#include <iostream>
#include <string>

#include "core/autocat.hpp"

namespace {

autocat::BitString
encodeAscii(const std::string &text)
{
    autocat::BitString bits;
    for (char c : text) {
        for (int b = 7; b >= 0; --b)
            bits.push_back((static_cast<unsigned char>(c) >> b) & 1u);
    }
    return bits;
}

std::string
decodeAscii(const autocat::BitString &bits)
{
    std::string text;
    for (std::size_t i = 0; i + 7 < bits.size(); i += 8) {
        unsigned char c = 0;
        for (int b = 0; b < 8; ++b)
            c = static_cast<unsigned char>((c << 1) | bits[i + b]);
        text.push_back(static_cast<char>(c));
    }
    return text;
}

} // namespace

int
main()
{
    using namespace autocat;

    const std::string secret_message =
        "the cache remembers what you touched";
    const BitString message = encodeAscii(secret_message);

    const CovertMachinePreset machine = tableXMachines()[1];  // i7-6700
    std::cout << "Machine: " << machine.cpu << " (" << machine.uarch
              << ", " << machine.l1d << ")\n"
              << "Message: \"" << secret_message << "\" ("
              << message.size() << " bits)\n\n";

    for (CovertProtocol protocol :
         {CovertProtocol::LruAddrBased,
          CovertProtocol::StealthyStreamline}) {
        CovertChannelConfig cfg;
        cfg.protocol = protocol;
        cfg.ways = machine.l1Ways;
        cfg.bitsPerSymbol = 2;
        cfg.latency = machine.latency;
        cfg.noise = machine.noise;
        cfg.seed = 7;

        CovertChannel channel(cfg);
        const CovertResult res = channel.transmit(message);

        std::cout << (protocol == CovertProtocol::StealthyStreamline
                          ? "StealthyStreamline"
                          : "LRU address-based ")
                  << ": " << TextTable::fmt(res.mbps, 2) << " Mbps, "
                  << TextTable::fmt(res.errorRate * 100.0, 2)
                  << "% bit errors, " << res.victimMisses
                  << " sender misses\n";
    }

    // Show an actual decode through the noisy channel.
    CovertChannelConfig cfg;
    cfg.protocol = CovertProtocol::StealthyStreamline;
    cfg.ways = machine.l1Ways;
    cfg.bitsPerSymbol = 2;
    cfg.latency = machine.latency;
    cfg.noise = machine.noise;
    cfg.repeats = 3;  // majority vote for a clean demo decode
    cfg.seed = 11;
    CovertChannel channel(cfg);
    channel.transmit(message);

    std::cout << "\nStealthyStreamline never causes a sender/victim"
                 " miss, which is what lets it slip past miss-count"
                 " detectors while beating the LRU channel's rate.\n";
    return 0;
}
