/**
 * @file
 * Quickstart: explore a cache-timing attack with AutoCAT in ~30 lines.
 *
 * Builds the paper's canonical setting — a 4-way fully-associative
 * LRU set where the victim either touches address 0 or stays idle —
 * trains the PPO agent, and prints the attack it discovered together
 * with its automatic classification.
 *
 *   $ ./examples/quickstart
 */

#include <iostream>

#include "core/autocat.hpp"

int
main()
{
    using namespace autocat;

    std::cout << versionString() << "\n\n";

    ExplorationConfig cfg;
    cfg.env.cache.numSets = 1;          // one fully-associative set
    cfg.env.cache.numWays = 4;
    cfg.env.cache.policy = ReplPolicy::Lru;
    cfg.env.cache.addressSpaceSize = 8;
    cfg.env.attackAddrS = 0;            // attacker may touch 0..4
    cfg.env.attackAddrE = 4;
    cfg.env.victimAddrS = 0;            // victim touches 0 ...
    cfg.env.victimAddrE = 0;
    cfg.env.victimNoAccessEnable = true;  // ... or nothing (0/E)
    cfg.env.windowSize = 16;
    cfg.maxEpochs = 120;

    // Collect experience from 4 environment streams at once (stream i
    // is seeded env.seed + i); the policy forward pass is batched
    // across the streams. Set threadedEnvs = true to step them on a
    // worker pool on multi-core hosts.
    cfg.numStreams = 4;

    std::cout << "Training PPO on the cache guessing game "
                 "(one epoch = 3000 env steps across "
              << cfg.numStreams << " streams)...\n";
    const ExplorationResult result = explore(cfg);

    if (!result.converged) {
        std::cout << "Did not converge within " << cfg.maxEpochs
                  << " epochs; final accuracy "
                  << result.finalAccuracy << "\n";
        return 1;
    }

    std::cout << "\nConverged after " << result.epochsToConverge
              << " epochs (" << result.envSteps << " env steps).\n"
              << "Guess accuracy : " << result.finalAccuracy << "\n"
              << "Episode length : " << result.finalEpisodeLength << "\n"
              << "Attack found   : " << result.sequence.toString(false)
              << " -> " << result.finalGuess << "\n"
              << "Category       : " << categoryLabel(result.category)
              << " (auto-classified)\n";
    return 0;
}
