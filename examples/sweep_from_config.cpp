/**
 * @file
 * CLI sweep driver: run a multi-cell attack-discovery campaign from a
 * config file (exploration base keys + `sweep.*` grid keys) and emit
 * JSON/CSV reports plus a terminal summary table.
 *
 *   $ ./examples/sweep_from_config my_sweep.cfg
 *   $ ./examples/sweep_from_config my_sweep.cfg --json out.json
 *   $ ./examples/sweep_from_config --print-default > sweep.cfg
 *   $ ./examples/sweep_from_config my_sweep.cfg --dist 3 \
 *         --checkpoint-dir ckpt --workdir work
 *
 * With no config argument, runs a built-in 2x2 smoke grid (two
 * hierarchy scenarios x two replacement policies). Reports are byte-
 * deterministic for fixed seeds unless sweep.include_timing is set
 * (docs/EVALUATION.md documents the schema) — including across
 * --dist process counts, provided the checkpoint settings match.
 *
 * Distributed flags: --dist N shards cells across N cell_runner
 * processes (resolved via --runner, $AUTOCAT_CELL_RUNNER, or a
 * cell_runner next to this binary); --endpoints H:P[,H:P...] adds
 * remote runner_daemon slots to the fleet (mixed fleets are fine);
 * --checkpoint-dir/--workdir place the per-cell checkpoints and
 * job/row blobs; --manifest-dir DIR records finished cells in a
 * crash-safe grid manifest so a restarted run re-enters instead of
 * recomputing (--manifest-reset wipes a manifest recorded for a
 * different grid); --chaos-kill IDX:AFTER is the CI fault-injection
 * hook (kill cell IDX's first attempt after its AFTER-th checkpoint
 * write; with --chaos-sigterm the runner SIGTERMs itself instead,
 * exercising the graceful path); --stop-after-cells N aborts the
 * scheduler after N cells finish (the simulated scheduler death the
 * net-smoke CI job restarts from).
 *
 * Exit status: 0 when every cell completed, 1 when any cell failed
 * (including cells whose worker died beyond the retry budget), 2 on
 * config or report-I/O errors, 3 when --stop-after-cells injected a
 * scheduler stop (the run is intentionally unfinished).
 */

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>

#include "eval/report.hpp"
#include "eval/sweep.hpp"
#include "eval/sweep_config.hpp"
#include "serve/dist_scheduler.hpp"

namespace {

const char *kBuiltinSmokeGrid = R"(
    # 2x2 smoke grid: hierarchy scenarios x replacement policies.
    num_sets = 1
    num_ways = 4
    attack_addr_s = 0
    attack_addr_e = 4
    victim_addr_s = 0
    victim_addr_e = 0
    victim_no_access_enable = true
    window_size = 20
    max_epochs = 30
    seed = 7

    sweep.name = builtin-smoke
    sweep.scenarios = l1l2_private, l2_exclusive
    sweep.policies = lru, plru
    sweep.seeds = 7
    sweep.workers = 2
)";

bool
writeReportFile(const std::string &path,
                const std::function<void(std::ostream &)> &write)
{
    std::ofstream out(path);
    if (out)
        write(out);
    out.flush();
    // A truncated report (disk full, write error) must not be
    // announced as written under exit status 0.
    if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        return false;
    }
    std::cout << "wrote " << path << "\n";
    return true;
}

/** Resolve the cell_runner executable: explicit flag, then the
 *  AUTOCAT_CELL_RUNNER environment variable, then a cell_runner
 *  sitting next to this binary (the layout CMake produces). */
std::string
resolveRunner(const std::string &flag, const char *argv0)
{
    if (!flag.empty())
        return flag;
    if (const char *env = std::getenv("AUTOCAT_CELL_RUNNER")) {
        if (*env)
            return env;
    }
    std::string dir(argv0 ? argv0 : "");
    const std::size_t slash = dir.rfind('/');
    return (slash == std::string::npos ? std::string(".")
                                       : dir.substr(0, slash)) +
           "/cell_runner";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace autocat;

    SweepConfig cfg;
    std::string config_path, json_override, csv_override;
    std::string runner_flag, workdir_flag, checkpoint_dir_flag;
    std::string chaos_kill, endpoints_flag, manifest_dir_flag;
    bool manifest_reset_flag = false;
    bool chaos_sigterm_flag = false;
    long stop_after_cells = 0;
    int dist_override = -1;    // -1 = keep the config's value
    int workers_override = 0;  // 0 = keep the config's value
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--print-default") {
            std::cout << renderSweepConfig(
                parseSweepConfig(std::string(kBuiltinSmokeGrid)));
            return 0;
        }
        if (arg == "--json" && i + 1 < argc) {
            json_override = argv[++i];
        } else if (arg == "--csv" && i + 1 < argc) {
            csv_override = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            workers_override = std::atoi(argv[++i]);
        } else if (arg == "--dist" && i + 1 < argc) {
            dist_override = std::atoi(argv[++i]);
        } else if (arg == "--runner" && i + 1 < argc) {
            runner_flag = argv[++i];
        } else if (arg == "--workdir" && i + 1 < argc) {
            workdir_flag = argv[++i];
        } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
            checkpoint_dir_flag = argv[++i];
        } else if (arg == "--chaos-kill" && i + 1 < argc) {
            chaos_kill = argv[++i];
        } else if (arg == "--chaos-sigterm") {
            chaos_sigterm_flag = true;
        } else if (arg == "--endpoints" && i + 1 < argc) {
            endpoints_flag = argv[++i];
        } else if (arg == "--manifest-dir" && i + 1 < argc) {
            manifest_dir_flag = argv[++i];
        } else if (arg == "--manifest-reset") {
            manifest_reset_flag = true;
        } else if (arg == "--stop-after-cells" && i + 1 < argc) {
            stop_after_cells = std::atol(argv[++i]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "usage: sweep_from_config [config.cfg] "
                         "[--json out.json] [--csv out.csv] "
                         "[--print-default] [--workers N] [--dist N] "
                         "[--runner PATH] [--workdir DIR] "
                         "[--checkpoint-dir DIR] "
                         "[--endpoints H:P[,H:P...]] "
                         "[--manifest-dir DIR] [--manifest-reset] "
                         "[--chaos-kill IDX:AFTER] [--chaos-sigterm] "
                         "[--stop-after-cells N]\n";
            return 2;
        } else {
            config_path = arg;
        }
    }

    try {
        if (!config_path.empty()) {
            cfg = loadSweepConfig(config_path);
            std::cout << "Loaded " << config_path << "\n";
        } else {
            cfg = parseSweepConfig(std::string(kBuiltinSmokeGrid));
            std::cout << "No config given; running the built-in 2x2 "
                         "smoke grid.\n";
        }
        if (!json_override.empty())
            cfg.reportJsonPath = json_override;
        if (!csv_override.empty())
            cfg.reportCsvPath = csv_override;
        if (workers_override > 0)
            cfg.workers = workers_override;
        if (dist_override >= 0)
            cfg.distProcesses = dist_override;
        if (!workdir_flag.empty())
            cfg.distWorkDir = workdir_flag;
        if (!checkpoint_dir_flag.empty())
            cfg.checkpointDir = checkpoint_dir_flag;
        if (!chaos_kill.empty()) {
            const std::size_t colon = chaos_kill.find(':');
            cfg.chaosKillCell =
                std::atol(chaos_kill.substr(0, colon).c_str());
            if (colon != std::string::npos)
                cfg.chaosKillAfter =
                    std::atoi(chaos_kill.substr(colon + 1).c_str());
        }
        cfg.chaosSigterm = chaos_sigterm_flag;
        if (stop_after_cells > 0)
            cfg.stopAfterCells =
                static_cast<std::size_t>(stop_after_cells);
        if (!endpoints_flag.empty()) {
            cfg.distEndpoints.clear();
            std::size_t start = 0;
            for (;;) {
                const std::size_t comma =
                    endpoints_flag.find(',', start);
                cfg.distEndpoints.push_back(
                    comma == std::string::npos
                        ? endpoints_flag.substr(start)
                        : endpoints_flag.substr(start, comma - start));
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
        }
        if (!manifest_dir_flag.empty())
            cfg.manifestDir = manifest_dir_flag;
        if (manifest_reset_flag)
            cfg.manifestReset = true;
        if (cfg.distProcesses > 0)
            cfg.runnerPath = resolveRunner(runner_flag, argv[0]);

        SweepRunner runner(std::move(cfg));
        std::cout << "Sweep expands to " << runner.cells().size()
                  << " cells.\n";

        const SweepReport report =
            runner.run([](const SweepCellResult &cell) {
                std::cout << "  [" << cell.cell.index << "] "
                          << cell.cell.label << ": "
                          << (!cell.completed
                                  ? "FAILED: " + cell.error
                                  : cell.result.converged ? "converged"
                                                          : "timeout")
                          << "  (" << cell.wallSeconds << " s)\n";
            });

        std::cout << "\n";
        sweepSummaryTable(report).print(std::cout);
        std::cout << report.numConverged() << "/" << report.cells.size()
                  << " cells converged, " << report.numFailed()
                  << " failed, " << report.wallSeconds << " s total\n";

        // cfg was moved into the runner; re-read the paths/options from
        // the runner's view of the world via the report options below.
        const SweepConfig &final_cfg = runner.config();
        ReportOptions opts;
        opts.includeTiming = final_cfg.includeTiming;
        bool io_ok = true;
        if (!final_cfg.reportJsonPath.empty()) {
            io_ok &= writeReportFile(
                final_cfg.reportJsonPath, [&](std::ostream &os) {
                    writeSweepReportJson(os, report, opts);
                });
        }
        if (!final_cfg.reportCsvPath.empty()) {
            io_ok &= writeReportFile(
                final_cfg.reportCsvPath, [&](std::ostream &os) {
                    writeSweepReportCsv(os, report, opts);
                });
        }
        if (!io_ok)
            return 2;
        return report.numFailed() == 0 ? 0 : 1;
    } catch (const DistStopInjected &e) {
        // Intentional (fault-injected) scheduler death: the manifest
        // holds the finished cells; a restarted run completes the
        // grid. Distinct exit code so harnesses can assert the stop.
        std::cerr << "stopped: " << e.what() << "\n";
        return 3;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
