/**
 * @file
 * Example: how replacement policies change the attacks RL discovers.
 *
 * Runs the exploration pipeline against LRU, tree-PLRU, and SRRIP
 * versions of the same 4-way set (the Section V-C case study) and
 * contrasts the discovered sequences — RRIP typically needs a longer
 * sequence because a line must be re-referenced to be protected.
 *
 *   $ ./examples/explore_replacement_policy
 */

#include <iostream>

#include "core/autocat.hpp"

int
main()
{
    using namespace autocat;

    for (ReplPolicy policy :
         {ReplPolicy::Lru, ReplPolicy::TreePlru, ReplPolicy::Rrip}) {
        ExplorationConfig cfg;
        cfg.env.cache.numSets = 1;
        cfg.env.cache.numWays = 4;
        cfg.env.cache.policy = policy;
        cfg.env.cache.addressSpaceSize = 8;
        cfg.env.attackAddrS = 0;
        cfg.env.attackAddrE = 4;
        cfg.env.victimAddrS = 0;
        cfg.env.victimAddrE = 0;
        cfg.env.victimNoAccessEnable = true;
        cfg.env.windowSize = policy == ReplPolicy::Rrip ? 20 : 16;
        cfg.maxEpochs = 170;
        cfg.ppo.seed = 21;

        std::cout << "=== policy: " << replPolicyName(policy)
                  << " ===\n";
        const ExplorationResult r = explore(cfg);
        if (r.converged) {
            std::cout << "  converged in " << r.epochsToConverge
                      << " epochs, accuracy " << r.finalAccuracy
                      << "\n  attack: " << r.sequence.toString(false)
                      << " -> " << r.finalGuess << "\n\n";
        } else {
            std::cout << "  did not converge (accuracy "
                      << r.finalAccuracy << ")\n\n";
        }
    }

    std::cout << "Expected (paper Table V): RRIP needs the longest "
                 "training and attack sequence; LRU/PLRU are similar."
              << "\n";
    return 0;
}
