/**
 * @file
 * Example: training an attacker against an active detector.
 *
 * Attaches the miss-count detector (performance-counter style) to the
 * environment in Terminate mode: any victim cache miss ends the
 * episode with a detection penalty. The agent must find an attack
 * that never makes the victim miss — the pressure that produced
 * StealthyStreamline in the paper (Section V-D).
 *
 *   $ ./examples/bypass_detection
 */

#include <iostream>
#include <memory>

#include "core/autocat.hpp"

int
main()
{
    using namespace autocat;

    ExplorationConfig cfg;
    cfg.env.cache.numSets = 1;
    cfg.env.cache.numWays = 4;
    cfg.env.cache.policy = ReplPolicy::Lru;
    cfg.env.cache.addressSpaceSize = 8;
    cfg.env.attackAddrS = 0;
    cfg.env.attackAddrE = 4;
    cfg.env.victimAddrS = 0;
    cfg.env.victimAddrE = 0;
    cfg.env.victimNoAccessEnable = true;
    cfg.env.windowSize = 16;
    cfg.env.detectionEnable = true;  // detector terminates episodes
    cfg.maxEpochs = 170;

    // With the victim line resident at episode start the victim can
    // hit; evicting it (the classic attack) would trip the detector.
    cfg.env.plCacheLockVictim = false;
    cfg.env.initAccesses = 8;

    std::cout << "Training against the miss-count detector...\n";
    const ExplorationResult with_detector = explore(
        cfg, nullptr, [](CacheGuessingGame &env) {
            env.attachDetector(std::make_shared<MissBasedDetector>(),
                               DetectorMode::Terminate);
        });

    std::cout << "\nWith detector:\n"
              << "  converged: " << (with_detector.converged ? "yes"
                                                             : "no")
              << ", accuracy " << with_detector.finalAccuracy
              << ", detection rate " << with_detector.detectionRate
              << "\n  attack: "
              << with_detector.sequence.toString(false) << " -> "
              << with_detector.finalGuess << "\n";

    // Baseline without the detector for contrast.
    cfg.env.detectionEnable = false;
    const ExplorationResult baseline = explore(cfg);
    std::cout << "\nWithout detector (baseline):\n"
              << "  accuracy " << baseline.finalAccuracy
              << "\n  attack: " << baseline.sequence.toString(false)
              << " -> " << baseline.finalGuess << "\n\n"
              << "The detector-trained agent must leak through the"
                 " replacement state without ever evicting the"
                 " victim's line.\n";
    return 0;
}
