/**
 * @file
 * CLI explorer: run the AutoCAT pipeline from a config file.
 *
 *   $ ./examples/explore_from_config my_experiment.cfg
 *   $ ./examples/explore_from_config --print-default  > default.cfg
 *
 * With no arguments, runs the built-in Table V LRU configuration.
 * The config format covers every Table II knob (see
 * src/core/config_parser.hpp for the full key list).
 */

#include <iostream>

#include "core/autocat.hpp"
#include "core/config_parser.hpp"

int
main(int argc, char **argv)
{
    using namespace autocat;

    ExplorationConfig cfg;
    if (argc > 1 && std::string(argv[1]) == "--print-default") {
        cfg.env.cache.numWays = 4;
        cfg.env.attackAddrE = 4;
        cfg.env.victimAddrE = 0;
        cfg.env.victimNoAccessEnable = true;
        cfg.env.windowSize = 16;
        std::cout << renderExplorationConfig(cfg);
        return 0;
    }

    try {
        if (argc > 1) {
            cfg = loadExplorationConfig(argv[1]);
            std::cout << "Loaded " << argv[1] << "\n";
        } else {
            cfg = parseExplorationConfig(std::string(R"(
                num_sets = 1
                num_ways = 4
                rep_policy = lru
                attack_addr_s = 0
                attack_addr_e = 4
                victim_addr_s = 0
                victim_addr_e = 0
                victim_no_access_enable = true
                window_size = 16
                max_epochs = 120
            )"));
            std::cout << "No config given; using the built-in Table V "
                         "LRU setting.\n";
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }

    ExplorationResult r;
    try {
        r = explore(cfg);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    std::cout << (r.converged ? "converged" : "NOT converged")
              << "  epochs=" << r.epochsToConverge
              << "  accuracy=" << r.finalAccuracy
              << "  episode-length=" << r.finalEpisodeLength << "\n"
              << "attack: " << r.sequence.toString(false) << " -> "
              << r.finalGuess << "  [" << categoryLabel(r.category)
              << "]\n";
    return r.converged ? 0 : 1;
}
