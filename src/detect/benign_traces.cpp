#include "detect/benign_traces.hpp"

#include <cmath>

namespace autocat {

CycloneTrainingSetBuilder::CycloneTrainingSetBuilder(
    const CacheConfig &cache_config, std::size_t interval_steps,
    const BenignTraceConfig &benign_config)
    : cache_config_(cache_config),
      interval_steps_(interval_steps),
      benign_config_(benign_config)
{
}

namespace {

/** One synthetic benign process: a pattern over a private range. */
class BenignProcess
{
  public:
    enum class Kind { Stride, Loop, Zipf };

    BenignProcess(Kind kind, std::uint64_t base, std::uint64_t span,
                  Rng &rng)
        : kind_(kind), base_(base), span_(span == 0 ? 1 : span)
    {
        stride_ = 1 + rng.uniformInt(3);
        pos_ = rng.uniformInt(span_);
        loop_len_ = 2 + rng.uniformInt(std::max<std::uint64_t>(2, span_ / 2));
    }

    std::uint64_t
    next(Rng &rng)
    {
        switch (kind_) {
          case Kind::Stride:
            pos_ = (pos_ + stride_) % span_;
            return base_ + pos_;
          case Kind::Loop:
            pos_ = (pos_ + 1) % loop_len_;
            return base_ + pos_ % span_;
          case Kind::Zipf: {
            // Approximate zipf: square a uniform draw to bias toward
            // small indices.
            const double u = rng.uniformDouble();
            const auto idx = static_cast<std::uint64_t>(
                u * u * static_cast<double>(span_));
            return base_ + (idx % span_);
          }
        }
        return base_;
    }

  private:
    Kind kind_;
    std::uint64_t base_;
    std::uint64_t span_;
    std::uint64_t stride_;
    std::uint64_t pos_;
    std::uint64_t loop_len_;
};

} // namespace

void
CycloneTrainingSetBuilder::runTrace(Cache &cache, Rng &rng, bool attack,
                                    int label, SvmDataset &out)
{
    CycloneFeatureExtractor extractor(cache_config_.numSets,
                                      interval_steps_);
    // A trace contributes one row: the mean per-interval cyclic counts
    // (a contention channel sustains its cycling rate across the whole
    // trace; benign slice-boundary bursts average out).
    std::vector<double> sum(extractor.featureDim(), 0.0);
    std::size_t intervals = 0;
    auto accumulate = [&](const std::vector<double> &features) {
        for (std::size_t i = 0; i < features.size(); ++i)
            sum[i] += features[i];
        ++intervals;
    };
    cache.setEventListener([&](const CacheEvent &ev) {
        if (auto features = extractor.onEvent(ev))
            accumulate(*features);
    });

    const std::uint64_t span = benign_config_.addrSpace;

    if (!attack) {
        // Two co-resident benign processes with independent patterns.
        auto pick_kind = [&](Rng &r) {
            const double x = r.uniformDouble();
            if (x < benign_config_.strideFraction)
                return BenignProcess::Kind::Stride;
            if (x < benign_config_.strideFraction +
                        benign_config_.loopFraction)
                return BenignProcess::Kind::Loop;
            return BenignProcess::Kind::Zipf;
        };
        BenignProcess p0(pick_kind(rng), 0, span, rng);
        BenignProcess p1(pick_kind(rng), span, span, rng);

        // Benign schedulers run processes in time slices that are long
        // relative to the detector's observation interval: domain
        // alternation (and thus cross-domain eviction cycling) happens
        // only at slice boundaries, not every few accesses.
        bool victim_turn = rng.bernoulli(0.5);
        std::size_t i = 0;
        while (i < benign_config_.traceLength) {
            const std::size_t burst = 30 + rng.uniformInt(120);
            for (std::size_t k = 0;
                 k < burst && i < benign_config_.traceLength; ++k, ++i) {
                if (victim_turn)
                    cache.access(p1.next(rng), Domain::Victim);
                else
                    cache.access(p0.next(rng), Domain::Attacker);
            }
            victim_turn = !victim_turn;
        }
    } else {
        // Textbook prime+probe rounds: prime the victim-conflicting
        // sets, let the victim touch a secret line, probe.
        const std::uint64_t sets = cache_config_.numSets;
        std::size_t steps = 0;
        while (steps < benign_config_.traceLength) {
            for (std::uint64_t a = 0; a < sets &&
                                      steps < benign_config_.traceLength;
                 ++a, ++steps) {
                cache.access(sets + a, Domain::Attacker);
            }
            if (steps < benign_config_.traceLength) {
                cache.access(rng.uniformInt(sets), Domain::Victim);
                ++steps;
            }
            for (std::uint64_t a = 0; a < sets &&
                                      steps < benign_config_.traceLength;
                 ++a, ++steps) {
                cache.access(sets + a, Domain::Attacker);
            }
        }
    }

    if (auto features = extractor.finishInterval())
        accumulate(*features);
    cache.setEventListener(nullptr);

    if (intervals > 0) {
        for (double &v : sum)
            v /= static_cast<double>(intervals);
        out.add(std::move(sum), label);
    }
}

void
CycloneTrainingSetBuilder::addBenignTraces(std::size_t traces, Rng &rng,
                                           SvmDataset &out)
{
    for (std::size_t t = 0; t < traces; ++t) {
        Cache cache(cache_config_);
        runTrace(cache, rng, /*attack=*/false, -1, out);
    }
}

void
CycloneTrainingSetBuilder::addPrimeProbeTraces(std::size_t traces,
                                               Rng &rng, SvmDataset &out)
{
    for (std::size_t t = 0; t < traces; ++t) {
        Cache cache(cache_config_);
        runTrace(cache, rng, /*attack=*/true, 1, out);
    }
}

SvmDataset
CycloneTrainingSetBuilder::build(std::size_t traces, Rng &rng)
{
    SvmDataset data;
    addBenignTraces(traces, rng, data);
    addPrimeProbeTraces(traces, rng, data);
    return data;
}

} // namespace autocat
