#include "detect/autocorr_detector.hpp"

#include "util/stats.hpp"

namespace autocat {

AutocorrDetector::AutocorrDetector(std::size_t max_lag, double threshold,
                                   double penalty_coef,
                                   std::size_t min_events)
    : max_lag_(max_lag),
      threshold_(threshold),
      penalty_coef_(penalty_coef),
      min_events_(min_events)
{
}

void
AutocorrDetector::onEvent(const CacheEvent &event)
{
    if (event.op == CacheOp::Flush || !event.evicted)
        return;
    if (event.domain == event.evictedOwner)
        return;  // intra-domain eviction: not a conflict event

    // A->V is encoded 1, V->A is encoded 0 (paper Fig. 3 convention).
    train_.push_back(event.domain == Domain::Attacker ? 1.0 : 0.0);
}

void
AutocorrDetector::onEpisodeReset()
{
    train_.clear();
}

double
AutocorrDetector::maxAutocorr() const
{
    if (train_.size() < min_events_)
        return 0.0;
    return maxAutocorrelation(train_, max_lag_);
}

bool
AutocorrDetector::flagged() const
{
    return maxAutocorr() > threshold_;
}

double
AutocorrDetector::episodePenalty()
{
    if (train_.size() < min_events_)
        return 0.0;
    double sum_sq = 0.0;
    std::size_t lags = 0;
    const std::size_t limit = std::min(max_lag_ + 1, train_.size());
    for (std::size_t p = 1; p < limit; ++p) {
        const double c = autocorrelation(train_, p);
        sum_sq += c * c;
        ++lags;
    }
    if (lags == 0)
        return 0.0;
    return penalty_coef_ * sum_sq / static_cast<double>(max_lag_);
}

std::vector<double>
AutocorrDetector::correlogram() const
{
    return autocorrelogram(train_, max_lag_);
}

} // namespace autocat
