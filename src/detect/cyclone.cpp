#include "detect/cyclone.hpp"

#include <cassert>

namespace autocat {

CycloneFeatureExtractor::CycloneFeatureExtractor(std::size_t num_sets,
                                                 std::size_t interval_steps)
    : num_sets_(num_sets),
      interval_steps_(interval_steps),
      counts_(num_sets + 1, 0.0),
      history_(num_sets)
{
    assert(interval_steps > 0);
}

std::optional<std::vector<double>>
CycloneFeatureExtractor::onEvent(const CacheEvent &event)
{
    if (event.op == CacheOp::Flush)
        return std::nullopt;

    // Cyclic interference (Cyclone, MICRO'19): on the same set, domain
    // a evicts one of b's lines and b later evicts one of a's lines
    // (a ⇝ b ⇝ a). Contention channels alternate eviction directions
    // every transmission round; benign co-residents almost never do.
    if (event.evicted && event.domain != event.evictedOwner) {
        const std::size_t set = event.setIndex % num_sets_;
        auto &h = history_[set];
        const bool attacker_evicts = event.domain == Domain::Attacker;
        if (h.have_prev && h.prev_attacker_evicts != attacker_evicts) {
            counts_[set] += 1.0;
            counts_[num_sets_] += 1.0;
        }
        h.prev_attacker_evicts = attacker_evicts;
        h.have_prev = true;
    }

    if (event.op != CacheOp::DemandAccess)
        return std::nullopt;

    if (++steps_in_interval_ < interval_steps_)
        return std::nullopt;

    std::vector<double> features = counts_;
    std::fill(counts_.begin(), counts_.end(), 0.0);
    steps_in_interval_ = 0;
    return features;
}

std::optional<std::vector<double>>
CycloneFeatureExtractor::finishInterval()
{
    if (steps_in_interval_ == 0)
        return std::nullopt;
    std::vector<double> features = counts_;
    std::fill(counts_.begin(), counts_.end(), 0.0);
    steps_in_interval_ = 0;
    return features;
}

void
CycloneFeatureExtractor::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0.0);
    steps_in_interval_ = 0;
    history_.assign(num_sets_, SetHistory());
}

CycloneDetector::CycloneDetector(std::size_t num_sets,
                                 std::size_t interval_steps,
                                 std::shared_ptr<const LinearSvm> svm,
                                 double step_penalty)
    : extractor_(num_sets, interval_steps),
      svm_(std::move(svm)),
      step_penalty_(step_penalty)
{
    assert(svm_ && svm_->trained());
}

void
CycloneDetector::onEvent(const CacheEvent &event)
{
    const auto features = extractor_.onEvent(event);
    if (!features)
        return;
    ++intervals_;

    // Classify on the episode's running mean per-interval features —
    // the same statistic the SVM was trained on (one averaged row per
    // trace).
    if (feature_sum_.empty())
        feature_sum_.assign(features->size(), 0.0);
    for (std::size_t i = 0; i < features->size(); ++i)
        feature_sum_[i] += (*features)[i];
    std::vector<double> mean(feature_sum_.size());
    for (std::size_t i = 0; i < mean.size(); ++i)
        mean[i] = feature_sum_[i] / static_cast<double>(intervals_);

    if (svm_->predict(mean) > 0) {
        ++flagged_intervals_;
        pending_penalty_ += step_penalty_;
    }
}

void
CycloneDetector::onEpisodeReset()
{
    extractor_.reset();
    pending_penalty_ = 0.0;
    intervals_ = 0;
    flagged_intervals_ = 0;
    feature_sum_.clear();
}

bool
CycloneDetector::flagged() const
{
    return flagged_intervals_ > 0;
}

double
CycloneDetector::consumeStepPenalty()
{
    const double p = pending_penalty_;
    pending_penalty_ = 0.0;
    return p;
}

} // namespace autocat
