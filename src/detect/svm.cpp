#include "detect/svm.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace autocat {

LinearSvm::LinearSvm(double lambda, unsigned epochs)
    : lambda_(lambda), epochs_(epochs)
{
}

std::vector<double>
LinearSvm::standardize(const std::vector<double> &x) const
{
    std::vector<double> z(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        z[i] = (x[i] - mean_[i]) / scale_[i];
    return z;
}

void
LinearSvm::train(const SvmDataset &data, Rng &rng)
{
    if (data.size() == 0)
        throw std::invalid_argument("SVM: empty training set");
    const std::size_t dim = data.features.front().size();

    // Feature standardization.
    mean_.assign(dim, 0.0);
    scale_.assign(dim, 0.0);
    for (const auto &x : data.features) {
        assert(x.size() == dim);
        for (std::size_t i = 0; i < dim; ++i)
            mean_[i] += x[i];
    }
    for (double &m : mean_)
        m /= static_cast<double>(data.size());
    for (const auto &x : data.features) {
        for (std::size_t i = 0; i < dim; ++i)
            scale_[i] += (x[i] - mean_[i]) * (x[i] - mean_[i]);
    }
    for (double &s : scale_) {
        s = std::sqrt(s / static_cast<double>(data.size()));
        if (s < 1e-9)
            s = 1.0;  // constant feature
    }

    // Pegasos SGD over the hinge loss.
    w_.assign(dim, 0.0);
    b_ = 0.0;
    long t = 0;
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    for (unsigned epoch = 0; epoch < epochs_; ++epoch) {
        rng.shuffle(order);
        for (std::size_t i : order) {
            ++t;
            const double eta = 1.0 / (lambda_ * static_cast<double>(t));
            const std::vector<double> x = standardize(data.features[i]);
            const double y = data.labels[i];

            double margin = b_;
            for (std::size_t d = 0; d < dim; ++d)
                margin += w_[d] * x[d];
            margin *= y;

            const double shrink = 1.0 - eta * lambda_;
            for (double &w : w_)
                w *= shrink;
            if (margin < 1.0) {
                for (std::size_t d = 0; d < dim; ++d)
                    w_[d] += eta * y * x[d];
                b_ += eta * y;
            }
        }
    }
    trained_ = true;
}

double
LinearSvm::decision(const std::vector<double> &x) const
{
    assert(trained_);
    const std::vector<double> z = standardize(x);
    double v = b_;
    for (std::size_t d = 0; d < z.size(); ++d)
        v += w_[d] * z[d];
    return v;
}

int
LinearSvm::predict(const std::vector<double> &x) const
{
    return decision(x) >= 0.0 ? 1 : -1;
}

double
LinearSvm::accuracy(const SvmDataset &data) const
{
    if (data.size() == 0)
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (predict(data.features[i]) == data.labels[i])
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

double
kFoldAccuracy(const SvmDataset &data, unsigned folds, Rng &rng,
              double lambda, unsigned epochs)
{
    if (folds < 2 || data.size() < folds)
        throw std::invalid_argument("kFold: need >= folds samples");

    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    double acc_sum = 0.0;
    for (unsigned f = 0; f < folds; ++f) {
        SvmDataset train_set, test_set;
        for (std::size_t i = 0; i < order.size(); ++i) {
            const auto &x = data.features[order[i]];
            const int y = data.labels[order[i]];
            if (i % folds == f)
                test_set.add(x, y);
            else
                train_set.add(x, y);
        }
        LinearSvm svm(lambda, epochs);
        svm.train(train_set, rng);
        acc_sum += svm.accuracy(test_set);
    }
    return acc_sum / static_cast<double>(folds);
}

} // namespace autocat
