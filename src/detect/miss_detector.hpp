/**
 * @file
 * Microarchitecture-statistics-based detection (Section V-D).
 *
 * Performance-counter detectors flag an attack when the victim process
 * shows abnormal cache-miss counts. Following the paper's evaluation
 * setting, "an attack is detected when the victim program's access
 * triggers a cache miss": the detector fires on the first demand miss
 * by the victim domain (a threshold > 1 is supported for generality).
 */

#ifndef AUTOCAT_DETECT_MISS_DETECTOR_HPP
#define AUTOCAT_DETECT_MISS_DETECTOR_HPP

#include "detect/detector.hpp"

namespace autocat {

/** Victim-miss-count detector (HPC-style). */
class MissBasedDetector : public Detector
{
  public:
    /** Fire when the victim accumulates @p threshold demand misses. */
    explicit MissBasedDetector(unsigned threshold = 1);

    void onEvent(const CacheEvent &event) override;
    void onEpisodeReset() override;
    bool flagged() const override;
    const char *name() const override { return "miss-based"; }

    /** Victim demand misses observed this episode. */
    unsigned victimMisses() const { return victim_misses_; }

  private:
    unsigned threshold_;
    unsigned victim_misses_ = 0;
};

} // namespace autocat

#endif // AUTOCAT_DETECT_MISS_DETECTOR_HPP
