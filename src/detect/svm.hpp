/**
 * @file
 * Linear support vector machine trained with Pegasos SGD
 * (Shalev-Shwartz et al., 2011), with feature standardization and
 * k-fold cross-validation — the classifier behind the Cyclone-style
 * detector (Section V-D).
 */

#ifndef AUTOCAT_DETECT_SVM_HPP
#define AUTOCAT_DETECT_SVM_HPP

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace autocat {

/** Labeled dataset: rows of features with labels in {-1, +1}. */
struct SvmDataset
{
    std::vector<std::vector<double>> features;
    std::vector<int> labels;

    void
    add(std::vector<double> x, int y)
    {
        features.push_back(std::move(x));
        labels.push_back(y);
    }

    std::size_t size() const { return features.size(); }
};

/** L2-regularized linear SVM. */
class LinearSvm
{
  public:
    /**
     * @param lambda regularization strength
     * @param epochs passes over the data during training
     */
    explicit LinearSvm(double lambda = 1e-3, unsigned epochs = 40);

    /** Fit on @p data (standardizes features internally). */
    void train(const SvmDataset &data, Rng &rng);

    /** Signed decision value w.x + b (after standardization). */
    double decision(const std::vector<double> &x) const;

    /** Predicted label in {-1, +1}. */
    int predict(const std::vector<double> &x) const;

    /** Fraction of @p data classified correctly. */
    double accuracy(const SvmDataset &data) const;

    /** True once train() has been called. */
    bool trained() const { return trained_; }

    /** Weight vector (standardized space, tests). */
    const std::vector<double> &weights() const { return w_; }

  private:
    std::vector<double> standardize(const std::vector<double> &x) const;

    double lambda_;
    unsigned epochs_;
    bool trained_ = false;
    std::vector<double> w_;
    double b_ = 0.0;
    std::vector<double> mean_;
    std::vector<double> scale_;
};

/**
 * Mean k-fold cross-validation accuracy of a LinearSvm on @p data
 * (paper reports 98.8% 5-fold accuracy for the Cyclone SVM).
 */
double kFoldAccuracy(const SvmDataset &data, unsigned folds, Rng &rng,
                     double lambda = 1e-3, unsigned epochs = 40);

} // namespace autocat

#endif // AUTOCAT_DETECT_SVM_HPP
