/**
 * @file
 * Detector interface for cache timing-channel detection schemes.
 *
 * Detectors observe the cache exclusively through CacheEvent records
 * (like hardware monitors tapping event signals). The guessing-game
 * environment consults them in two modes, matching Section V-D:
 *
 *  - Terminate: the episode ends with detection_reward the moment the
 *    detector fires (miss-based detection, Table II detection_enable).
 *  - Penalize: the detector contributes negative reward — per step
 *    (Cyclone SVM intervals) or at episode end (CC-Hunter L2
 *    autocorrelation penalty) — without ending the episode.
 */

#ifndef AUTOCAT_DETECT_DETECTOR_HPP
#define AUTOCAT_DETECT_DETECTOR_HPP

#include "cache/events.hpp"

namespace autocat {

/** How the environment reacts when a detector fires. */
enum class DetectorMode { Terminate, Penalize };

/** Base class of all detection schemes. */
class Detector
{
  public:
    virtual ~Detector() = default;

    /** Observe one cache event. */
    virtual void onEvent(const CacheEvent &event) = 0;

    /** Clear per-episode state at episode start. */
    virtual void onEpisodeReset() = 0;

    /** True once the detector has fired during this episode. */
    virtual bool flagged() const = 0;

    /**
     * Reward contribution applied at episode end (non-positive);
     * default none.
     */
    virtual double episodePenalty() { return 0.0; }

    /**
     * Reward contribution to apply at the current step (non-positive),
     * cleared by the call; default none.
     */
    virtual double consumeStepPenalty() { return 0.0; }

    /** Short scheme name for logs/tables. */
    virtual const char *name() const = 0;
};

} // namespace autocat

#endif // AUTOCAT_DETECT_DETECTOR_HPP
