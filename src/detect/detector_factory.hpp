/**
 * @file
 * Detector construction by name.
 *
 * Campaign phases and registry scenarios describe detector-in-the-loop
 * training declaratively: a DetectorSpec names a detection scheme
 * ("miss", "cchunter", "cyclone"), how the environment reacts to it
 * (DetectorMode), and the scheme's reward knob. makeDetector() turns a
 * spec into a live Detector for a given attacked-cache geometry.
 *
 * The Cyclone scheme needs a trained SVM; since campaigns must be
 * reproducible, the classifier is trained once per (sets, interval)
 * geometry on the deterministic synthetic corpus from
 * detect/benign_traces.hpp (fixed seed) and cached process-wide, so
 * every cyclone detector of a geometry shares one model — mirroring
 * the paper's single offline-trained detector.
 */

#ifndef AUTOCAT_DETECT_DETECTOR_FACTORY_HPP
#define AUTOCAT_DETECT_DETECTOR_FACTORY_HPP

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_config.hpp"
#include "detect/detector.hpp"
#include "detect/svm.hpp"

namespace autocat {

/** Declarative description of one detector attachment. */
struct DetectorSpec
{
    /** Scheme name: "miss", "cchunter" (autocorrelation), "cyclone". */
    std::string kind;

    /** How the environment reacts when the detector fires. */
    DetectorMode mode = DetectorMode::Penalize;

    /**
     * Reward knob of the scheme (<= 0): the Cyclone per-interval step
     * penalty, or the CC-Hunter L2 episode-penalty coefficient.
     * Ignored by "miss" (Terminate-mode detection uses the env's
     * detectionReward).
     */
    double penalty = -1.0;

    /** "miss": victim demand misses required to fire. */
    unsigned missThreshold = 1;

    /** "cyclone": demand accesses per observation interval. */
    unsigned cycloneInterval = 16;
};

/** Registered scheme names, sorted. */
std::vector<std::string> detectorKinds();

/** True if @p kind names a known detection scheme. */
bool hasDetectorKind(const std::string &kind);

/**
 * Build a detector from @p spec for an environment whose attacked
 * cache level is @p attacked_cache (the Cyclone feature extractor
 * tracks that level's sets).
 *
 * @throws std::invalid_argument for an unknown kind (the message lists
 *         the known schemes)
 */
std::shared_ptr<Detector> makeDetector(const DetectorSpec &spec,
                                       const CacheConfig &attacked_cache);

/**
 * The process-wide Cyclone SVM for a geometry: trained on first use on
 * the deterministic synthetic benign-vs-prime+probe corpus, then
 * cached. Exposed so benches/tests can inspect the model campaigns
 * train against.
 */
std::shared_ptr<const LinearSvm>
cycloneCampaignSvm(std::size_t num_sets, std::size_t interval_steps);

/** Parse "terminate" / "penalize" (std::invalid_argument otherwise). */
DetectorMode detectorModeFromString(const std::string &s);

/** Inverse of detectorModeFromString. */
const char *detectorModeName(DetectorMode mode);

} // namespace autocat

#endif // AUTOCAT_DETECT_DETECTOR_FACTORY_HPP
