#include "detect/miss_detector.hpp"

namespace autocat {

MissBasedDetector::MissBasedDetector(unsigned threshold)
    : threshold_(threshold == 0 ? 1 : threshold)
{
}

void
MissBasedDetector::onEvent(const CacheEvent &event)
{
    if (event.op == CacheOp::DemandAccess &&
        event.domain == Domain::Victim && !event.hit &&
        !event.servedUncached) {
        ++victim_misses_;
    }
}

void
MissBasedDetector::onEpisodeReset()
{
    victim_misses_ = 0;
}

bool
MissBasedDetector::flagged() const
{
    return victim_misses_ >= threshold_;
}

} // namespace autocat
