/**
 * @file
 * Synthetic benign-trace generation for training the Cyclone SVM.
 *
 * The paper trains its SVM on SPEC2017 memory traces (benign) vs.
 * textbook prime+probe traces (attack). SPEC traces are not available
 * offline, so we substitute a generator that reproduces the property
 * the detector keys on: benign co-resident processes touch the shared
 * cache with strided loops, working-set re-use, and zipf-like random
 * accesses, producing near-zero *cross-domain cyclic* interference,
 * while contention channels alternate domains on the same sets every
 * few accesses. (See DESIGN.md substitution table.)
 */

#ifndef AUTOCAT_DETECT_BENIGN_TRACES_HPP
#define AUTOCAT_DETECT_BENIGN_TRACES_HPP

#include <cstdint>
#include <memory>

#include "cache/cache.hpp"
#include "detect/cyclone.hpp"
#include "detect/svm.hpp"
#include "util/rng.hpp"

namespace autocat {

/** Parameters of the synthetic benign workload mixture. */
struct BenignTraceConfig
{
    std::uint64_t addrSpace = 64;   ///< addresses each process draws from
    std::size_t traceLength = 160;  ///< demand accesses per trace
    double strideFraction = 0.4;    ///< share of strided-loop processes
    double loopFraction = 0.3;      ///< share of small-working-set loops
    /// remaining share: zipf-like random access
};

/**
 * Builds labeled Cyclone feature datasets.
 *
 * Benign rows come from the synthetic workload mixture; attack rows
 * from repeated textbook prime+probe rounds, both executed on a fresh
 * cache built from @p cache_config.
 */
class CycloneTrainingSetBuilder
{
  public:
    CycloneTrainingSetBuilder(const CacheConfig &cache_config,
                              std::size_t interval_steps,
                              const BenignTraceConfig &benign_config);

    /** Append @p traces benign traces worth of feature rows (label -1). */
    void addBenignTraces(std::size_t traces, Rng &rng, SvmDataset &out);

    /**
     * Append @p traces textbook prime+probe traces (label +1). The
     * attacker occupies [victim range size, 2x size) and the victim
     * accesses a random line of [0, size) each round.
     */
    void addPrimeProbeTraces(std::size_t traces, Rng &rng, SvmDataset &out);

    /** Convenience: balanced dataset with @p traces of each label. */
    SvmDataset build(std::size_t traces, Rng &rng);

  private:
    void runTrace(Cache &cache, Rng &rng, bool attack, int label,
                  SvmDataset &out);

    CacheConfig cache_config_;
    std::size_t interval_steps_;
    BenignTraceConfig benign_config_;
};

} // namespace autocat

#endif // AUTOCAT_DETECT_BENIGN_TRACES_HPP
