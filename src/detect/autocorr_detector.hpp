/**
 * @file
 * CC-Hunter-style autocorrelation detector (Chen & Venkataramani,
 * MICRO'14; Section V-D of the paper).
 *
 * Two kinds of conflict-miss events form an event train:
 *   A→V (attacker evicts a victim-owned line), encoded as 1
 *   V→A (victim evicts an attacker-owned line), encoded as 0
 * Periodic channels produce high autocorrelation at some lag p; the
 * detector fires when max_{1<=p<=P} C_p exceeds a threshold (paper
 * example: 0.75).
 *
 * For RL detector-bypass training the detector also exposes the L2
 * penalty the paper adds to the reward: R_{L2} = a * sum_p C_p^2 / P
 * with a < 0.
 */

#ifndef AUTOCAT_DETECT_AUTOCORR_DETECTOR_HPP
#define AUTOCAT_DETECT_AUTOCORR_DETECTOR_HPP

#include <cstddef>
#include <vector>

#include "detect/detector.hpp"

namespace autocat {

/** Autocorrelation-based covert-channel detector. */
class AutocorrDetector : public Detector
{
  public:
    /**
     * @param max_lag     P: largest lag examined
     * @param threshold   detection threshold on max |C_p|
     * @param penalty_coef a (<= 0): weight of the L2 reward penalty
     * @param min_events  shortest train worth analyzing
     */
    AutocorrDetector(std::size_t max_lag = 30, double threshold = 0.75,
                     double penalty_coef = -1.0,
                     std::size_t min_events = 8);

    void onEvent(const CacheEvent &event) override;
    void onEpisodeReset() override;
    bool flagged() const override;
    double episodePenalty() override;
    const char *name() const override { return "autocorrelation"; }

    /** max_{1<=p<=P} |C_p| of the current train (0 if too short). */
    double maxAutocorr() const;

    /** The conflict-miss event train accumulated this episode. */
    const std::vector<double> &eventTrain() const { return train_; }

    /** Full autocorrelogram C_1..C_P (Fig. 3b). */
    std::vector<double> correlogram() const;

  private:
    std::size_t max_lag_;
    double threshold_;
    double penalty_coef_;
    std::size_t min_events_;
    std::vector<double> train_;
};

} // namespace autocat

#endif // AUTOCAT_DETECT_AUTOCORR_DETECTOR_HPP
