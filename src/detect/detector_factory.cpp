#include "detect/detector_factory.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "detect/autocorr_detector.hpp"
#include "detect/benign_traces.hpp"
#include "detect/cyclone.hpp"
#include "detect/miss_detector.hpp"

namespace autocat {

namespace {

/** Seed of the deterministic Cyclone SVM training corpus. */
constexpr std::uint64_t kCycloneSvmSeed = 404;

/** Traces per label in the cached SVM's training set — enough for a
 *  stable decision boundary, small enough to train in milliseconds. */
constexpr std::size_t kCycloneSvmTraces = 60;

} // namespace

std::shared_ptr<const LinearSvm>
cycloneCampaignSvm(std::size_t num_sets, std::size_t interval_steps)
{
    struct Cache
    {
        std::mutex mutex;
        std::map<std::pair<std::size_t, std::size_t>,
                 std::shared_ptr<const LinearSvm>>
            models;
    };
    static Cache *cache = new Cache;

    const auto key = std::make_pair(num_sets, interval_steps);
    std::lock_guard<std::mutex> lock(cache->mutex);
    auto it = cache->models.find(key);
    if (it != cache->models.end())
        return it->second;

    // Same canonical training geometry as the Table IX bench: the
    // feature extractor watches num_sets sets of a direct-mapped cache;
    // benign traffic is the synthetic SPEC substitute.
    CacheConfig train_cache;
    train_cache.numSets = static_cast<unsigned>(num_sets);
    train_cache.numWays = 1;
    train_cache.policy = ReplPolicy::Lru;
    train_cache.addressSpaceSize = 128;

    BenignTraceConfig benign;
    benign.addrSpace = 64;
    benign.traceLength = 160;

    CycloneTrainingSetBuilder builder(train_cache, interval_steps, benign);
    Rng rng(kCycloneSvmSeed);
    const SvmDataset data = builder.build(kCycloneSvmTraces, rng);
    auto svm = std::make_shared<LinearSvm>();
    svm->train(data, rng);

    cache->models.emplace(key, svm);
    return svm;
}

std::vector<std::string>
detectorKinds()
{
    return {"cchunter", "cyclone", "miss"};
}

bool
hasDetectorKind(const std::string &kind)
{
    for (const std::string &k : detectorKinds()) {
        if (k == kind)
            return true;
    }
    return false;
}

std::shared_ptr<Detector>
makeDetector(const DetectorSpec &spec, const CacheConfig &attacked_cache)
{
    if (spec.kind == "miss")
        return std::make_shared<MissBasedDetector>(spec.missThreshold);
    if (spec.kind == "cchunter") {
        // Paper defaults (Section V-D): lags up to 30, 0.75 threshold;
        // the spec's penalty is the L2 reward coefficient.
        return std::make_shared<AutocorrDetector>(
            /*max_lag=*/30, /*threshold=*/0.75,
            /*penalty_coef=*/spec.penalty, /*min_events=*/8);
    }
    if (spec.kind == "cyclone") {
        const std::size_t sets = attacked_cache.numSets;
        return std::make_shared<CycloneDetector>(
            sets, spec.cycloneInterval,
            cycloneCampaignSvm(sets, spec.cycloneInterval), spec.penalty);
    }
    std::string known;
    for (const std::string &k : detectorKinds())
        known += (known.empty() ? "" : ", ") + k;
    throw std::invalid_argument("makeDetector: unknown detector kind \"" +
                                spec.kind + "\" (known: " + known + ")");
}

DetectorMode
detectorModeFromString(const std::string &s)
{
    if (s == "terminate")
        return DetectorMode::Terminate;
    if (s == "penalize")
        return DetectorMode::Penalize;
    throw std::invalid_argument(
        "detector mode must be 'terminate' or 'penalize', got '" + s +
        "'");
}

const char *
detectorModeName(DetectorMode mode)
{
    return mode == DetectorMode::Terminate ? "terminate" : "penalize";
}

} // namespace autocat
