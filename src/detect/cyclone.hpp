/**
 * @file
 * Cyclone-style cyclic-interference detector (Harris et al., MICRO'19;
 * Section V-D of the paper).
 *
 * Cyclone observes, for each cache line/set, *cyclic* access sequences
 * by different security domains (a ⇝ b ⇝ a with a != b) within fixed
 * time intervals. The per-set cyclic counts of an interval form the
 * feature vector of an SVM classifier trained offline on benign vs.
 * attack traces. During RL training the detector fires per interval and
 * contributes a step penalty (the paper's "RL SVM" agent setting).
 */

#ifndef AUTOCAT_DETECT_CYCLONE_HPP
#define AUTOCAT_DETECT_CYCLONE_HPP

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "detect/detector.hpp"
#include "detect/svm.hpp"

namespace autocat {

/**
 * Extracts cyclic-interference feature vectors from a cache event
 * stream. Usable standalone (to build SVM training sets) and inside
 * CycloneDetector.
 */
class CycloneFeatureExtractor
{
  public:
    /**
     * @param num_sets       sets tracked (feature dimension is
     *                       num_sets + 1; the extra entry is the total)
     * @param interval_steps demand accesses per observation interval
     */
    CycloneFeatureExtractor(std::size_t num_sets,
                            std::size_t interval_steps);

    /**
     * Observe one event; returns the completed interval's feature
     * vector when this event closes an interval.
     */
    std::optional<std::vector<double>> onEvent(const CacheEvent &event);

    /** Flush a partial interval (end of trace); empty if no accesses. */
    std::optional<std::vector<double>> finishInterval();

    /** Reset all per-set histories and the interval position. */
    void reset();

    /** Feature dimension (num_sets + 1). */
    std::size_t featureDim() const { return counts_.size(); }

  private:
    std::size_t num_sets_;
    std::size_t interval_steps_;
    std::size_t steps_in_interval_ = 0;
    std::vector<double> counts_;  ///< per-set cyclic counts + total
    struct SetHistory
    {
        bool have_prev = false;
        /// direction of the last cross-domain eviction on this set:
        /// true = attacker evicted a victim line (A->V).
        bool prev_attacker_evicts = false;
    };
    std::vector<SetHistory> history_;
};

/** SVM-backed cyclic-interference detector. */
class CycloneDetector : public Detector
{
  public:
    /**
     * @param num_sets        sets tracked
     * @param interval_steps  demand accesses per interval
     * @param svm             trained classifier (+1 = attack); shared so
     *                        benches can reuse one trained model
     * @param step_penalty    reward added whenever an interval is
     *                        classified as an attack (<= 0)
     */
    CycloneDetector(std::size_t num_sets, std::size_t interval_steps,
                    std::shared_ptr<const LinearSvm> svm,
                    double step_penalty = -1.0);

    void onEvent(const CacheEvent &event) override;
    void onEpisodeReset() override;
    bool flagged() const override;
    double consumeStepPenalty() override;
    const char *name() const override { return "cyclone-svm"; }

    /** Intervals observed this episode. */
    std::size_t intervals() const { return intervals_; }

    /** Intervals classified as attack this episode. */
    std::size_t flaggedIntervals() const { return flagged_intervals_; }

  private:
    CycloneFeatureExtractor extractor_;
    std::shared_ptr<const LinearSvm> svm_;
    double step_penalty_;
    double pending_penalty_ = 0.0;
    std::size_t intervals_ = 0;
    std::size_t flagged_intervals_ = 0;
    std::vector<double> feature_sum_;  ///< running episode totals
};

} // namespace autocat

#endif // AUTOCAT_DETECT_CYCLONE_HPP
