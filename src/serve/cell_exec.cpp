#include "serve/cell_exec.hpp"

#include <chrono>

#include "attacks/classifier.hpp"
#include "env/sequence_oracle.hpp"
#include "rl/search.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace autocat {

namespace {

/**
 * Sec. VI-A random-search baseline, mapped into the ExplorationResult
 * shape so search rows aggregate alongside PPO rows. The search runs
 * over a ScenarioOracle for the cell's scenario on the same total
 * simulated-step budget a PPO cell may spend (maxEpochs x
 * stepsPerEpoch), walking a sequence-length ladder that spends half
 * the remaining budget per rung — short candidates are scored in bulk
 * before longer ones get a turn, and the rung series sums to the
 * budget. Deterministic: the trial RNG is seeded from the cell's
 * derived PPO seed.
 */
ExplorationResult
runRandomSearchCell(const ExplorationConfig &cfg)
{
    ScenarioOracle oracle(cfg.scenario, cfg.env);
    Rng rng(cfg.ppo.seed);
    const long long budget = static_cast<long long>(cfg.maxEpochs) *
                             static_cast<long long>(cfg.ppo.stepsPerEpoch);

    ExplorationResult res;
    long long steps = 0;
    for (std::size_t len = 2; steps < budget; ++len) {
        const std::vector<std::size_t> probe(len, 0);
        const long long per_trial = oracle.stepsPerTrial(probe);
        const long long max_trials = (budget - steps) / 2 / per_trial;
        if (max_trials <= 0)
            break;
        const SearchResult sr = randomSearch(oracle, len, max_trials, rng);
        steps += sr.stepsTaken;
        if (!sr.found)
            continue;

        res.converged = true;
        res.stepsToDiscovery = steps;
        // A found distinguishing sequence decodes the secret with one
        // final guess: accuracy 1 at one guess per len+1 steps.
        res.finalAccuracy = 1.0;
        res.finalEpisodeLength = static_cast<double>(len) + 1.0;
        res.bitRate = 1.0 / (static_cast<double>(len) + 1.0);
        for (std::size_t idx : sr.sequence) {
            const Action a = oracle.actionSpace().decode(idx);
            res.sequence.push({a.kind, a.addr});
        }
        res.finalGuess = "g*";  // any guess decodes the pattern
        res.category = classifyAttack(res.sequence, cfg.env);
        break;
    }
    res.envSteps = steps;
    return res;
}

} // namespace

std::string
cellCheckpointPath(const std::string &dir, std::size_t index)
{
    return dir + "/cell_" + std::to_string(index) + ".ckpt";
}

SweepCellResult
runSweepCell(SweepCell cell, const CellExecOptions &options)
{
    using Clock = std::chrono::steady_clock;

    SweepCellResult out;
    out.cell = std::move(cell);
    const auto t0 = Clock::now();
    try {
        if (out.cell.agent == "random_search") {
            // Non-learning baseline: no campaign, no checkpoints (a
            // retried cell just replays the deterministic search).
            out.result = runRandomSearchCell(out.cell.config);
            out.completed = true;
            out.wallSeconds = std::chrono::duration<double>(
                                  Clock::now() - t0)
                                  .count();
            return out;
        }

        CampaignConfig campaign;
        campaign.base = out.cell.config;
        campaign.phases = out.cell.phases;
        campaign.checkpointPath = options.checkpointPath;
        campaign.checkpointEvery = options.checkpointEvery;
        campaign.resume =
            options.resume && !options.checkpointPath.empty();

        const bool verbose = out.cell.config.verbose;
        const PpoTrainer::EpochCallback epoch_cb =
            [&](const EpochStats &stats) {
                if (verbose) {
                    AUTOCAT_LOG_INFO
                        << out.cell.label << " epoch " << stats.epoch
                        << " return " << stats.meanReturn << " eval-acc "
                        << stats.eval.guessAccuracy;
                }
                if (options.epochCb)
                    options.epochCb(stats);
            };

        TrainingSession session(std::move(campaign));
        out.result =
            session.run(epoch_cb, {}, options.checkpointCb).final;
        out.completed = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown error";
    }
    out.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
}

} // namespace autocat
