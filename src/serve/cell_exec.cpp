#include "serve/cell_exec.hpp"

#include <chrono>

#include "util/logging.hpp"

namespace autocat {

std::string
cellCheckpointPath(const std::string &dir, std::size_t index)
{
    return dir + "/cell_" + std::to_string(index) + ".ckpt";
}

SweepCellResult
runSweepCell(SweepCell cell, const CellExecOptions &options)
{
    using Clock = std::chrono::steady_clock;

    SweepCellResult out;
    out.cell = std::move(cell);
    const auto t0 = Clock::now();
    try {
        CampaignConfig campaign;
        campaign.base = out.cell.config;
        campaign.phases = out.cell.phases;
        campaign.checkpointPath = options.checkpointPath;
        campaign.checkpointEvery = options.checkpointEvery;
        campaign.resume =
            options.resume && !options.checkpointPath.empty();

        const bool verbose = out.cell.config.verbose;
        const PpoTrainer::EpochCallback epoch_cb =
            [&](const EpochStats &stats) {
                if (verbose) {
                    AUTOCAT_LOG_INFO
                        << out.cell.label << " epoch " << stats.epoch
                        << " return " << stats.meanReturn << " eval-acc "
                        << stats.eval.guessAccuracy;
                }
                if (options.epochCb)
                    options.epochCb(stats);
            };

        TrainingSession session(std::move(campaign));
        out.result =
            session.run(epoch_cb, {}, options.checkpointCb).final;
        out.completed = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown error";
    }
    out.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
}

} // namespace autocat
