/**
 * @file
 * Single sweep-cell execution, shared by the in-process pool
 * (eval/sweep.cpp) and the cell_runner worker executable
 * (serve/runner_main.cpp).
 *
 * Both paths MUST run a cell through the exact same code for the
 * sharded-vs-local byte-identity contract to hold: a cell is one
 * campaign (core/campaign.hpp; an empty phase list is the legacy
 * explore() single phase), optionally checkpointing to a per-cell
 * file so a killed worker resumes bit-for-bit instead of restarting.
 * Exceptions out of the campaign are captured into the result row —
 * a deterministic per-cell failure (bad scenario, shape mismatch) is
 * report data, not a worker death, so the scheduler must not burn
 * retries on it.
 */

#ifndef AUTOCAT_SERVE_CELL_EXEC_HPP
#define AUTOCAT_SERVE_CELL_EXEC_HPP

#include <string>

#include "core/campaign.hpp"
#include "eval/sweep.hpp"

namespace autocat {

/** Execution knobs for one cell. */
struct CellExecOptions
{
    /** Campaign checkpoint file; empty disables checkpointing. */
    std::string checkpointPath;

    /** Mid-phase checkpoint cadence in epochs (0 = phase ends only). */
    int checkpointEvery = 0;

    /** Resume from checkpointPath when the file exists (the default,
     *  so a retried cell continues instead of restarting). */
    bool resume = true;

    /** Observer for checkpoint writes (heartbeats, chaos hooks). */
    TrainingSession::CheckpointCallback checkpointCb;

    /** Per-epoch observer (heartbeats). Runs in addition to the
     *  verbose progress log the cell config may request. */
    PpoTrainer::EpochCallback epochCb;
};

/**
 * Exit code a runner or daemon uses after a graceful SIGTERM: the
 * heartbeat was flushed and every written checkpoint is durable
 * (checkpoint writes are atomic + fsynced, and the shutdown flag is
 * only observed between them), but no row was produced. Deliberately
 * outside the runner's recognized codes (0/3/4), so the scheduler
 * treats it as a retryable worker death and the retry resumes from
 * the last checkpoint.
 */
constexpr int kRunnerExitSigterm = 5;

/** Per-cell checkpoint file path inside @p dir. */
std::string cellCheckpointPath(const std::string &dir, std::size_t index);

/**
 * Run one cell to completion (or captured failure). Never throws for
 * cell-level errors; wallSeconds is always filled.
 */
SweepCellResult runSweepCell(SweepCell cell,
                             const CellExecOptions &options = {});

} // namespace autocat

#endif // AUTOCAT_SERVE_CELL_EXEC_HPP
