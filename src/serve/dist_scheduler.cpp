#include "serve/dist_scheduler.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <deque>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/cell_exec.hpp"
#include "serve/wire.hpp"
#include "util/atomic_file.hpp"
#include "util/logging.hpp"

namespace autocat {

namespace {

namespace fs = std::filesystem;

/** One pending spawn: which cell, and which attempt this would be. */
struct PendingCell
{
    std::size_t cell = 0;
    int attempt = 1;
};

/** One occupied worker slot. */
struct ActiveWorker
{
    pid_t pid = -1;
    std::size_t cell = 0;
    int attempt = 1;
    std::time_t spawnTime = 0;
    bool timedOut = false; ///< scheduler SIGKILLed it for a stale heartbeat
};

std::string
jobPath(const std::string &work_dir, std::size_t cell)
{
    return work_dir + "/job_" + std::to_string(cell) + ".blob";
}

std::string
rowPath(const std::string &work_dir, std::size_t cell)
{
    return work_dir + "/row_" + std::to_string(cell) + ".blob";
}

std::string
heartbeatPath(const std::string &work_dir, std::size_t cell)
{
    return work_dir + "/hb_" + std::to_string(cell);
}

/** mtime of @p path as a time_t, or 0 when the file does not exist. */
std::time_t
fileMtime(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return st.st_mtime;
}

/** Describe how a reaped runner ended, for retry/error messages. */
std::string
describeExit(int status)
{
    if (WIFSIGNALED(status))
        return std::string("killed by signal ") +
               std::to_string(WTERMSIG(status));
    if (WIFEXITED(status))
        return "exit code " + std::to_string(WEXITSTATUS(status));
    return "unknown wait status " + std::to_string(status);
}

/** fork/exec one runner attempt. @throws std::runtime_error on fork
 *  failure (grid-level: no worker was started). */
pid_t
spawnRunner(const DistSweepOptions &options, const SweepCell &cell,
            int attempt)
{
    std::vector<std::string> args;
    args.push_back(options.runnerPath);
    args.push_back(jobPath(options.workDir, cell.index));
    args.push_back(rowPath(options.workDir, cell.index));
    if (!options.checkpointDir.empty()) {
        args.push_back("--checkpoint");
        args.push_back(
            cellCheckpointPath(options.checkpointDir, cell.index));
        args.push_back("--checkpoint-every");
        args.push_back(std::to_string(options.checkpointEvery));
    }
    args.push_back("--heartbeat");
    args.push_back(heartbeatPath(options.workDir, cell.index));
    args.push_back("--attempt");
    args.push_back(std::to_string(attempt));
    // Fault injection hits the FIRST attempt only: the retry must then
    // finish the cell, which is exactly the recovery path under test.
    if (static_cast<long>(cell.index) == options.chaosKillCell &&
        attempt == 1) {
        if (options.chaosHang) {
            args.push_back("--chaos-hang");
        } else {
            args.push_back("--chaos-kill-after");
            args.push_back(std::to_string(options.chaosKillAfter));
        }
    }

    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        throw std::runtime_error(std::string("dist sweep: fork: ") +
                                 std::strerror(errno));
    if (pid == 0) {
        ::execv(argv[0], argv.data());
        // Exec failure in the child: nothing sane to do but die with a
        // recognizable code (the parent records "exit code 127").
        ::_exit(127);
    }
    return pid;
}

} // namespace

SweepReport
runSweepCellsDist(const std::string &name, std::vector<SweepCell> cells,
                  const DistSweepOptions &options,
                  const SweepProgress &progress)
{
    using Clock = std::chrono::steady_clock;

    if (options.runnerPath.empty() ||
        ::access(options.runnerPath.c_str(), X_OK) != 0) {
        throw std::invalid_argument(
            "dist sweep: cell_runner executable not found at \"" +
            options.runnerPath +
            "\" (pass --runner or set AUTOCAT_CELL_RUNNER)");
    }
    if (options.workDir.empty())
        throw std::invalid_argument("dist sweep: work directory not set");

    std::error_code ec;
    fs::create_directories(options.workDir, ec);
    if (ec || !fs::is_directory(options.workDir)) {
        throw std::invalid_argument(
            "dist sweep: cannot create work directory \"" +
            options.workDir + "\"" + (ec ? ": " + ec.message() : ""));
    }
    if (!options.checkpointDir.empty()) {
        fs::create_directories(options.checkpointDir, ec);
        if (ec || !fs::is_directory(options.checkpointDir)) {
            throw std::invalid_argument(
                "dist sweep: cannot create checkpoint directory \"" +
                options.checkpointDir + "\"" +
                (ec ? ": " + ec.message() : ""));
        }
    }

    SweepReport report;
    report.name = name;
    report.cells.resize(cells.size());

    const auto t0 = Clock::now();

    // Stage every job blob up front: a worker needs nothing from the
    // scheduler but its argv, and a crashed scheduler leaves a
    // complete, restartable job set on disk.
    for (const SweepCell &cell : cells) {
        atomicWriteFile(jobPath(options.workDir, cell.index),
                        serializeCellJob(cell), "cell job");
        // A row left over from a previous run over the same work dir
        // must not satisfy this run's cell.
        fs::remove(rowPath(options.workDir, cell.index), ec);
    }

    const int slots = static_cast<int>(
        std::min<std::size_t>(std::max(options.processes, 1),
                              cells.size()));
    report.workersUsed = slots;

    std::deque<PendingCell> pending;
    for (std::size_t i = 0; i < cells.size(); ++i)
        pending.push_back({i, 1});

    std::vector<ActiveWorker> active;
    std::size_t done = 0;

    // Record a final (success or exhausted-retries) outcome for a cell.
    const auto finish = [&](std::size_t idx, SweepCellResult row) {
        row.cell = std::move(cells[idx]);
        report.cells[idx] = std::move(row);
        ++done;
        if (progress)
            progress(report.cells[idx]);
    };

    // A dead/hung/garbled attempt either requeues (at the back: the
    // rest of the grid keeps flowing, the retry is picked up by the
    // next free slot — the work-stealing discipline) or exhausts the
    // cell's budget and lands as a per-cell failure row.
    const auto attemptFailed = [&](const ActiveWorker &w,
                                   const std::string &why) {
        if (w.attempt <= options.maxRetries) {
            AUTOCAT_LOG_WARN << "dist sweep: cell " << w.cell << " attempt "
                             << w.attempt << " failed (" << why
                             << "); requeueing";
            pending.push_back({w.cell, w.attempt + 1});
            return;
        }
        SweepCellResult row;
        row.error = "worker " + why + " (after " +
                    std::to_string(w.attempt) + " attempt" +
                    (w.attempt == 1 ? "" : "s") + ")";
        row.attempts = w.attempt;
        finish(w.cell, std::move(row));
    };

    // The runner exited cleanly; its row blob is the attempt's verdict.
    const auto reapSuccess = [&](const ActiveWorker &w) {
        SweepCellResult row;
        try {
            row = deserializeCellRow(readWholeFile(
                rowPath(options.workDir, w.cell), "cell row"));
        } catch (const std::exception &e) {
            attemptFailed(w, std::string("returned a bad row: ") +
                                 e.what());
            return;
        }
        if (row.cell.index != w.cell) {
            attemptFailed(w, "returned a row for cell " +
                                 std::to_string(row.cell.index));
            return;
        }
        row.attempts = w.attempt;
        finish(w.cell, std::move(row));
    };

    while (done < report.cells.size()) {
        // Claim pending cells into free slots.
        while (!pending.empty() &&
               active.size() < static_cast<std::size_t>(slots)) {
            const PendingCell next = pending.front();
            pending.pop_front();
            // A stale row from a killed previous attempt cannot exist
            // (the runner writes it only on clean completion), but a
            // stale heartbeat can — the spawn timestamp below masks it.
            ActiveWorker w;
            w.cell = next.cell;
            w.attempt = next.attempt;
            w.spawnTime = std::time(nullptr);
            w.pid = spawnRunner(options, cells[next.cell], next.attempt);
            active.push_back(w);
        }

        // Reap any finished worker (non-blocking).
        bool reaped = false;
        for (std::size_t s = 0; s < active.size();) {
            int status = 0;
            const pid_t r = ::waitpid(active[s].pid, &status, WNOHANG);
            if (r == 0) {
                ++s;
                continue;
            }
            const ActiveWorker w = active[s];
            active.erase(active.begin() + static_cast<long>(s));
            reaped = true;
            if (r < 0) {
                attemptFailed(w, std::string("could not be reaped: ") +
                                     std::strerror(errno));
            } else if (w.timedOut) {
                attemptFailed(w, "timed out (stale heartbeat)");
            } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                reapSuccess(w);
            } else {
                attemptFailed(w, "died (" + describeExit(status) + ")");
            }
        }
        if (reaped)
            continue;

        // Hang detection: a healthy runner touches its heartbeat on
        // every epoch and checkpoint; staleness beyond the budget gets
        // SIGKILL and the normal death path (which consumes a retry).
        if (options.heartbeatTimeoutS > 0) {
            const std::time_t now = std::time(nullptr);
            for (ActiveWorker &w : active) {
                if (w.timedOut)
                    continue;
                const std::time_t hb =
                    fileMtime(heartbeatPath(options.workDir, w.cell));
                const std::time_t last = std::max(hb, w.spawnTime);
                if (std::difftime(now, last) > options.heartbeatTimeoutS) {
                    w.timedOut = true;
                    ::kill(w.pid, SIGKILL);
                }
            }
        }

        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    report.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return report;
}

} // namespace autocat
