#include "serve/dist_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <memory>
#include <optional>
#include <thread>

#include <unistd.h>

#include "serve/cell_exec.hpp"
#include "serve/manifest/manifest.hpp"
#include "serve/net/transport.hpp"
#include "serve/wire.hpp"
#include "util/atomic_file.hpp"
#include "util/logging.hpp"

namespace autocat {

namespace {

namespace fs = std::filesystem;

/** One pending attempt: which grid/cell, and which attempt this is. */
struct PendingCell
{
    std::size_t grid = 0;
    std::size_t cell = 0;
    int attempt = 1;
};

/** Scheduler-side bookkeeping for one fleet slot. */
struct SlotState
{
    bool busy = false;
    bool killed = false; ///< already told to die for a stale heartbeat
    PendingCell work;
};

/** One submitted grid plus everything the loop tracks about it. */
struct GridState
{
    ScheduledGrid grid;
    SweepReport report;
    std::optional<GridManifest> manifest;
    std::size_t done = 0;

    std::string
    jobPath(std::size_t cell) const
    {
        return grid.workDir + "/job_" + std::to_string(cell) + ".blob";
    }
    std::string
    rowPath(std::size_t cell) const
    {
        return grid.workDir + "/row_" + std::to_string(cell) + ".blob";
    }
    std::string
    heartbeatPath(std::size_t cell) const
    {
        return grid.workDir + "/hb_" + std::to_string(cell);
    }
};

void
ensureDirectory(const std::string &path, const char *what)
{
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec || !fs::is_directory(path)) {
        throw std::invalid_argument(
            std::string("dist sweep: cannot create ") + what + " \"" +
            path + "\"" + (ec ? ": " + ec.message() : ""));
    }
}

} // namespace

std::vector<SweepReport>
runSweepGridsFleet(std::vector<ScheduledGrid> grids,
                   const FleetOptions &fleet)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();

    if (grids.empty())
        return {};

    std::size_t total_cells = 0;
    for (const ScheduledGrid &grid : grids)
        total_cells += grid.cells.size();

    const int local_slots = static_cast<int>(std::min<std::size_t>(
        std::max(fleet.localProcesses, 0), total_cells));
    if (local_slots > 0 &&
        (fleet.runnerPath.empty() ||
         ::access(fleet.runnerPath.c_str(), X_OK) != 0)) {
        throw std::invalid_argument(
            "dist sweep: cell_runner executable not found at \"" +
            fleet.runnerPath +
            "\" (pass --runner or set AUTOCAT_CELL_RUNNER)");
    }
    if (local_slots == 0 && fleet.endpoints.empty()) {
        throw std::invalid_argument(
            "dist sweep: fleet has no workers (no local processes, no "
            "endpoints)");
    }

    // ----- per-grid setup: stage jobs, open manifests, adopt rows
    std::vector<GridState> states;
    states.reserve(grids.size());
    std::deque<PendingCell> pending;

    for (std::size_t g = 0; g < grids.size(); ++g) {
        GridState state;
        state.grid = std::move(grids[g]);
        if (state.grid.workDir.empty())
            throw std::invalid_argument(
                "dist sweep: work directory not set");
        ensureDirectory(state.grid.workDir, "work directory");
        if (!state.grid.checkpointDir.empty())
            ensureDirectory(state.grid.checkpointDir,
                            "checkpoint directory");

        state.report.name = state.grid.name;
        state.report.cells.resize(state.grid.cells.size());

        // Stage every job blob up front: a worker needs nothing from
        // the scheduler but its argv (or one frame stream), and a
        // crashed scheduler leaves a complete, restartable job set on
        // disk. The blobs also define the grid's manifest identity.
        std::vector<std::string> job_blobs;
        job_blobs.reserve(state.grid.cells.size());
        std::error_code ec;
        for (const SweepCell &cell : state.grid.cells) {
            job_blobs.push_back(serializeCellJob(cell));
            atomicWriteFile(state.jobPath(cell.index),
                            job_blobs.back(), "cell job");
            // A row left over from a previous run over the same work
            // dir must not satisfy this run's cell.
            fs::remove(state.rowPath(cell.index), ec);
        }

        if (!state.grid.manifestDir.empty()) {
            state.manifest.emplace(
                state.grid.manifestDir, state.grid.name,
                gridManifestHash(job_blobs), state.grid.cells.size(),
                state.grid.manifestReset);
        }

        states.push_back(std::move(state));
        GridState &st = states.back();

        for (std::size_t i = 0; i < st.grid.cells.size(); ++i) {
            int prior_attempts = 0;
            if (st.manifest) {
                const GridManifest::CellEntry &entry =
                    st.manifest->cells()[i];
                if (entry.done) {
                    // Adopt: the recorded row IS this cell's outcome.
                    // The report keeps the scheduler's own cell struct
                    // (exactly what finish() does for live rows).
                    SweepCellResult row = entry.row;
                    row.cell = std::move(st.grid.cells[i]);
                    row.attempts = entry.failedAttempts + 1;
                    st.report.cells[i] = std::move(row);
                    ++st.done;
                    ++st.report.cellsAdopted;
                    if (st.grid.progress)
                        st.grid.progress(st.report.cells[i]);
                    continue;
                }
                prior_attempts = entry.failedAttempts;
            }
            pending.push_back({g, i, prior_attempts + 1});
        }
        if (st.report.cellsAdopted > 0) {
            AUTOCAT_LOG_INFO
                << "dist sweep: manifest " << st.manifest->dir()
                << " adopted " << st.report.cellsAdopted << "/"
                << st.grid.cells.size() << " finished cell(s)";
        }
    }

    // ----- the fleet
    std::vector<std::unique_ptr<RunnerTransport>> transports;
    for (int s = 0; s < local_slots; ++s)
        transports.push_back(
            makeLocalProcessTransport(fleet.runnerPath, s));
    for (const std::string &endpoint : fleet.endpoints)
        transports.push_back(makeTcpRunnerTransport(endpoint));
    std::vector<SlotState> slots(transports.size());

    for (GridState &state : states)
        state.report.workersUsed = static_cast<int>(transports.size());

    std::size_t done_this_run = 0;

    const auto allDone = [&] {
        for (const GridState &state : states)
            if (state.done < state.report.cells.size())
                return false;
        return true;
    };

    // Record a final (success or exhausted-retries) outcome: fill the
    // report slot and persist the verbatim row bytes to the manifest
    // (synthesizing bytes for budget-exhausted failure rows, so
    // re-entry does not retry what the budget already gave up on).
    const auto finish = [&](const PendingCell &work, SweepCellResult row,
                            std::string row_bytes) {
        GridState &state = states[work.grid];
        row.cell = std::move(state.grid.cells[work.cell]);
        state.report.cells[work.cell] = std::move(row);
        if (state.manifest) {
            if (row_bytes.empty()) // synthesized (failure) row
                row_bytes = serializeCellRow(
                    state.report.cells[work.cell]);
            state.manifest->recordRow(work.cell, row_bytes);
        }
        ++state.done;
        ++done_this_run;
        if (state.grid.progress)
            state.grid.progress(state.report.cells[work.cell]);

        if (fleet.stopAfterCells > 0 &&
            done_this_run >= fleet.stopAfterCells && !allDone()) {
            for (auto &t : transports)
                t->abandon();
            throw DistStopInjected(done_this_run);
        }
    };

    // A dead/hung/garbled attempt either requeues (at the back: the
    // rest of the grids keep flowing, the retry is picked up by the
    // next free slot — the work-stealing discipline) or exhausts the
    // cell's budget and lands as a per-cell failure row.
    const auto attemptFailed = [&](const PendingCell &work,
                                   const std::string &why) {
        GridState &state = states[work.grid];
        if (state.manifest)
            state.manifest->recordFailedAttempt(work.cell);
        if (work.attempt <= fleet.maxRetries) {
            AUTOCAT_LOG_WARN << "dist sweep: cell " << work.cell
                             << " attempt " << work.attempt
                             << " failed (" << why << "); requeueing";
            pending.push_back(
                {work.grid, work.cell, work.attempt + 1});
            return;
        }
        SweepCellResult row;
        row.error = "worker " + why + " (after " +
                    std::to_string(work.attempt) + " attempt" +
                    (work.attempt == 1 ? "" : "s") + ")";
        row.attempts = work.attempt;
        finish(work, std::move(row), "");
    };

    // An attempt delivered row bytes; they are the attempt's verdict
    // once they validate (checksum/version via deserialization, plus
    // the index match).
    const auto reapRow = [&](const PendingCell &work,
                             std::string row_bytes) {
        SweepCellResult row;
        try {
            row = deserializeCellRow(row_bytes);
        } catch (const std::exception &e) {
            attemptFailed(work, std::string("returned a bad row: ") +
                                    e.what());
            return;
        }
        if (row.cell.index != work.cell) {
            attemptFailed(work, "returned a row for cell " +
                                    std::to_string(row.cell.index));
            return;
        }
        row.attempts = work.attempt;
        finish(work, std::move(row), std::move(row_bytes));
    };

    while (!allDone()) {
        // Claim pending cells into free, still-living slots.
        bool claimed = false;
        for (std::size_t s = 0;
             s < transports.size() && !pending.empty(); ++s) {
            if (slots[s].busy || !transports[s]->alive())
                continue;
            const PendingCell next = pending.front();
            pending.pop_front();
            const GridState &state = states[next.grid];
            const SweepCell &cell = state.grid.cells[next.cell];

            AttemptSpec spec;
            spec.cell = &cell;
            spec.attempt = next.attempt;
            spec.jobPath = state.jobPath(next.cell);
            spec.rowPath = state.rowPath(next.cell);
            spec.heartbeatPath = state.heartbeatPath(next.cell);
            if (!state.grid.checkpointDir.empty()) {
                spec.checkpointPath = cellCheckpointPath(
                    state.grid.checkpointDir, next.cell);
                spec.checkpointEvery = state.grid.checkpointEvery;
            }
            // Fault injection hits the FIRST attempt only: the retry
            // must then finish the cell, which is exactly the recovery
            // path under test.
            if (next.grid == 0 &&
                static_cast<long>(next.cell) == fleet.chaosKillCell &&
                next.attempt == 1) {
                spec.chaosKill = !fleet.chaosHang;
                spec.chaosHang = fleet.chaosHang;
                spec.chaosKillAfter = fleet.chaosKillAfter;
                spec.chaosSigterm = fleet.chaosSigterm;
            }

            if (!transports[s]->start(spec)) {
                // Never actually started (endpoint retired itself):
                // requeue at the front without consuming an attempt.
                pending.push_front(next);
                continue;
            }
            slots[s].busy = true;
            slots[s].killed = false;
            slots[s].work = next;
            claimed = true;
        }

        // Poll every busy slot (non-blocking).
        bool freed = false;
        for (std::size_t s = 0; s < transports.size(); ++s) {
            if (!slots[s].busy)
                continue;
            AttemptOutcome out = transports[s]->poll();
            if (out.kind == AttemptOutcome::Kind::Running)
                continue;
            slots[s].busy = false;
            freed = true;
            const PendingCell work = slots[s].work;
            if (out.kind == AttemptOutcome::Kind::Row) {
                reapRow(work, std::move(out.rowBytes));
            } else if (!out.consumesAttempt) {
                AUTOCAT_LOG_WARN
                    << "dist sweep: cell " << work.cell
                    << " never started on " << transports[s]->name()
                    << " (" << out.reason << "); requeueing for free";
                pending.push_back(work); // same attempt number
            } else {
                attemptFailed(work, out.reason);
            }
        }
        if (claimed || freed)
            continue;

        // Nothing running and nothing startable: every transport that
        // could take the pending cells has retired. Fail loudly — the
        // manifest (when configured) preserves finished cells for a
        // re-entry once the fleet is healthy again.
        if (!pending.empty()) {
            const bool any_busy =
                std::any_of(slots.begin(), slots.end(),
                            [](const SlotState &s) { return s.busy; });
            const bool any_alive = std::any_of(
                transports.begin(), transports.end(),
                [](const std::unique_ptr<RunnerTransport> &t) {
                    return t->alive();
                });
            if (!any_busy && !any_alive) {
                throw std::runtime_error(
                    "dist sweep: every runner endpoint retired with " +
                    std::to_string(pending.size()) +
                    " cell(s) still pending");
            }
        }

        // Hang detection: a healthy attempt shows life (heartbeat
        // mtime / received frames) continuously; staleness beyond the
        // budget gets killed and takes the normal death path (which
        // consumes a retry).
        if (fleet.heartbeatTimeoutS > 0) {
            for (std::size_t s = 0; s < transports.size(); ++s) {
                if (!slots[s].busy || slots[s].killed)
                    continue;
                if (transports[s]->idleSeconds() >
                    fleet.heartbeatTimeoutS) {
                    slots[s].killed = true;
                    transports[s]->kill();
                }
            }
        }

        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    std::vector<SweepReport> reports;
    reports.reserve(states.size());
    for (GridState &state : states) {
        state.report.wallSeconds = wall;
        reports.push_back(std::move(state.report));
    }
    return reports;
}

SweepReport
runSweepCellsDist(const std::string &name, std::vector<SweepCell> cells,
                  const DistSweepOptions &options,
                  const SweepProgress &progress)
{
    FleetOptions fleet;
    // The pre-fleet interface always ran at least one local slot;
    // endpoint-only fleets must ask for processes = 0 explicitly.
    fleet.localProcesses = options.endpoints.empty()
                               ? std::max(options.processes, 1)
                               : std::max(options.processes, 0);
    fleet.runnerPath = options.runnerPath;
    fleet.endpoints = options.endpoints;
    fleet.maxRetries = options.maxRetries;
    fleet.heartbeatTimeoutS = options.heartbeatTimeoutS;
    fleet.chaosKillCell = options.chaosKillCell;
    fleet.chaosKillAfter = options.chaosKillAfter;
    fleet.chaosHang = options.chaosHang;
    fleet.chaosSigterm = options.chaosSigterm;
    fleet.stopAfterCells = options.stopAfterCells;

    ScheduledGrid grid;
    grid.name = name;
    grid.cells = std::move(cells);
    grid.workDir = options.workDir;
    grid.checkpointDir = options.checkpointDir;
    grid.checkpointEvery = options.checkpointEvery;
    grid.manifestDir = options.manifestDir;
    grid.manifestReset = options.manifestReset;
    grid.progress = progress;

    std::vector<ScheduledGrid> grids;
    grids.push_back(std::move(grid));
    return std::move(runSweepGridsFleet(std::move(grids), fleet)[0]);
}

} // namespace autocat
