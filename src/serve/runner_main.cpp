/**
 * @file
 * cell_runner: execute ONE sweep cell from a job blob and write the
 * result row blob. Spawned by serve/dist_scheduler.cpp; runnable by
 * hand for debugging a single cell:
 *
 *     cell_runner job_3.blob row_3.blob \
 *         [--checkpoint cell_3.ckpt] [--checkpoint-every N] \
 *         [--heartbeat hb_3] [--attempt K] \
 *         [--chaos-kill-after N | --chaos-sigterm-after N | --chaos-hang]
 *
 * Exit codes:
 *   0  a row blob was written — including rows that record a
 *      *deterministic* cell failure (bad scenario, shape mismatch):
 *      those would fail identically on every retry, so the scheduler
 *      must treat them as results, not worker deaths
 *   3  usage error / unreadable or corrupt job blob
 *   4  the row blob could not be written
 *   5  graceful SIGTERM exit (kRunnerExitSigterm): heartbeat flushed,
 *      checkpoints durable, no row — the scheduler retries the cell
 *
 * Any other termination (signal, OOM kill, chaos injection) is a
 * worker death; the scheduler requeues the cell, and the retry resumes
 * from the cell's campaign checkpoint when one was configured.
 *
 * SIGTERM is handled gracefully: the handler only raises a flag, which
 * the epoch/checkpoint callbacks observe at the next boundary — so the
 * runner never dies inside a checkpoint write (writes are atomic and
 * fsynced; the flag is checked between them), flushes its heartbeat a
 * last time, and exits with the retryable code above.
 *
 * The heartbeat file is touched at every epoch and checkpoint write;
 * the scheduler's hang detector kills runners whose heartbeat goes
 * stale. Chaos flags deterministically fault-inject for tests and the
 * dist-smoke/net-smoke CI jobs: --chaos-kill-after N raises SIGKILL
 * right after the Nth checkpoint write (the checkpoint is on disk —
 * the retry has something to resume from), --chaos-sigterm-after N
 * raises SIGTERM there instead (exercising the graceful path above),
 * --chaos-hang sleeps forever without ever heartbeating.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "serve/cell_exec.hpp"
#include "serve/wire.hpp"
#include "util/atomic_file.hpp"
#include "util/logging.hpp"

namespace {

using namespace autocat;

volatile std::sig_atomic_t g_sigterm = 0;

void
onSigterm(int)
{
    g_sigterm = 1;
}

/** Create/refresh @p path so its mtime is "now". Best-effort: a failed
 *  heartbeat must not kill a healthy cell. */
void
touchFile(const std::string &path)
{
    if (path.empty())
        return;
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0)
        ::close(fd);
}

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " <job.blob> <row.blob> [--checkpoint PATH]"
                 " [--checkpoint-every N] [--heartbeat PATH]"
                 " [--attempt K] [--chaos-kill-after N]"
                 " [--chaos-sigterm-after N] [--chaos-hang]\n";
    return 3;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string job_path;
    std::string row_path;
    std::string heartbeat;
    CellExecOptions options;
    int chaos_kill_after = 0;    // 0 = disabled
    int chaos_sigterm_after = 0; // 0 = disabled
    bool chaos_hang = false;

    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(3);
            }
            return argv[++i];
        };
        if (arg == "--checkpoint")
            options.checkpointPath = value();
        else if (arg == "--checkpoint-every")
            options.checkpointEvery = std::atoi(value().c_str());
        else if (arg == "--heartbeat")
            heartbeat = value();
        else if (arg == "--attempt")
            value(); // informational (ps/logs); semantics live in the scheduler
        else if (arg == "--chaos-kill-after")
            chaos_kill_after = std::atoi(value().c_str());
        else if (arg == "--chaos-sigterm-after")
            chaos_sigterm_after = std::atoi(value().c_str());
        else if (arg == "--chaos-hang")
            chaos_hang = true;
        else if (!arg.empty() && arg[0] == '-')
            return usage(argv[0]);
        else
            positional.push_back(arg);
    }
    if (positional.size() != 2)
        return usage(argv[0]);
    job_path = positional[0];
    row_path = positional[1];

    if (chaos_hang) {
        // Simulate a wedged worker: no heartbeat, no work, no exit.
        for (;;)
            ::pause();
    }

    SweepCell cell;
    try {
        cell = deserializeCellJob(readWholeFile(job_path, "cell job"));
    } catch (const std::exception &e) {
        std::cerr << "cell_runner: " << e.what() << "\n";
        return 3;
    }

    touchFile(heartbeat);

    {
        struct sigaction sa = {};
        sa.sa_handler = onSigterm;
        ::sigaction(SIGTERM, &sa, nullptr);
    }

    // Graceful shutdown, observed only at epoch/checkpoint boundaries:
    // the checkpoint on disk (if any) is complete and fsynced, so the
    // retry resumes exactly where this attempt stopped.
    const auto exitIfTermed = [&] {
        if (!g_sigterm)
            return;
        touchFile(heartbeat);
        ::_exit(kRunnerExitSigterm);
    };

    int checkpoints_written = 0;
    options.checkpointCb = [&](const std::string &, std::size_t, int) {
        touchFile(heartbeat);
        if (++checkpoints_written >= chaos_kill_after &&
            chaos_kill_after > 0) {
            // Die the hard way AFTER the checkpoint landed: the
            // scheduler sees a signal death and the retry resumes from
            // this exact boundary.
            ::raise(SIGKILL);
        }
        if (checkpoints_written >= chaos_sigterm_after &&
            chaos_sigterm_after > 0) {
            ::raise(SIGTERM); // handled: sets g_sigterm
        }
        exitIfTermed();
    };
    options.epochCb = [&](const EpochStats &) {
        touchFile(heartbeat);
        exitIfTermed();
    };

    const SweepCellResult row = runSweepCell(std::move(cell), options);

    try {
        atomicWriteFile(row_path, serializeCellRow(row), "cell row");
    } catch (const std::exception &e) {
        std::cerr << "cell_runner: " << e.what() << "\n";
        return 4;
    }
    return 0;
}
