/**
 * @file
 * Framed TCP wire protocol for the networked campaign service.
 *
 * The stream between a scheduler and a runner_daemon is a sequence of
 * self-delimiting *frames*:
 *
 *     u32 magic 'ACNF' | u32 type | u64 payload size |
 *     payload bytes    | u64 FNV-1a checksum(payload)
 *
 * Frames carry the existing PR 6 blobs *verbatim* — a Job frame's
 * payload is a checksummed `ACDJOBV1` section, a Row frame's payload
 * is an `ACDROWV2` section, a Checkpoint frame's payload is a campaign
 * checkpoint file — so the config renderer remains the one cell
 * serializer and renderer coverage stays wire coverage. The frame
 * layer adds only what a byte stream needs that a file does not:
 * delimiting, a type tag, a second integrity check, and a size cap so
 * a corrupt length field cannot allocate the moon.
 *
 * Session shape (one connection = one cell attempt):
 *
 *     scheduler ──► Hello (proto + job/row wire versions, cadence)
 *     daemon    ──► Hello (its versions; mismatch closes)
 *     scheduler ──► [Checkpoint]  (resume state from a prior attempt)
 *     scheduler ──► Job
 *     daemon    ──► Heartbeat*          (one per epoch)
 *     daemon    ──► Checkpoint*         (upload after each write)
 *     daemon    ──► Row, then close
 *
 * Decoding is incremental: FrameReader accepts arbitrary byte chunks
 * (partial read() returns are the TCP norm) and yields complete
 * frames. Malformed input — bad magic, unknown type, oversized
 * length, checksum mismatch — latches a sticky error; the connection
 * owner closes the socket and the scheduler requeues the cell. A
 * damaged stream can cost an attempt, never the scheduler.
 */

#ifndef AUTOCAT_SERVE_NET_FRAME_HPP
#define AUTOCAT_SERVE_NET_FRAME_HPP

#include <cstdint>
#include <string>

namespace autocat {

/** Protocol version of the frame layer + handshake. Bump on any
 *  change to framing or session shape. */
constexpr std::uint32_t kNetProtocolVersion = 1;

/** Frame type tags. */
enum class FrameType : std::uint32_t
{
    Hello = 1,      ///< handshake: HelloPayload
    Job = 2,        ///< ACDJOBV1 job blob, verbatim
    Checkpoint = 3, ///< campaign checkpoint file bytes, verbatim
    Heartbeat = 4,  ///< liveness ping, empty payload
    Row = 5,        ///< ACDROWV2 row blob, verbatim
};

/** Hard cap on a frame payload. Job blobs are config text (KBs) and
 *  checkpoints are network weights (MBs); 256 MiB is far above any
 *  real frame, so an implausible size field fails fast instead of
 *  driving a giant allocation. */
constexpr std::uint64_t kMaxFramePayload = 256ull << 20;

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::string payload;
};

/** Handshake payload: both sides state their versions before any job
 *  bytes move, so a version-skewed fleet fails at connect time with a
 *  clear message instead of a blob rejection mid-grid. */
struct HelloPayload
{
    std::uint32_t protocolVersion = kNetProtocolVersion;
    std::uint32_t jobWireVersion = 0;  ///< kCellJobVersion of the build
    std::uint32_t rowWireVersion = 0;  ///< kCellRowVersion of the build
    /** Scheduler→daemon: mid-cell checkpoint cadence for the attempt
     *  (CellExecOptions::checkpointEvery). Daemon→scheduler: -1. */
    std::int32_t checkpointEvery = -1;
};

/** Encode one frame (header + payload + checksum) into wire bytes.
 *  @throws std::invalid_argument when the payload exceeds
 *  kMaxFramePayload. */
std::string encodeFrame(FrameType type, const std::string &payload);

/** Encode/decode the Hello payload. decodeHello throws
 *  std::runtime_error for a malformed payload. */
std::string encodeHello(const HelloPayload &hello);
HelloPayload decodeHello(const std::string &payload);

/**
 * Incremental frame decoder. Feed it whatever recv() returned; pull
 * complete frames with next(). After any malformed input error() is
 * non-empty and the reader refuses further work — the stream is
 * unrecoverable because frame boundaries are lost.
 */
class FrameReader
{
  public:
    /** Append raw stream bytes. No-op once errored. */
    void feed(const char *data, std::size_t size);

    /**
     * Extract the next complete frame into @p out. Returns false when
     * no complete frame is buffered (more bytes needed) or the reader
     * is in the error state — distinguish via error().
     */
    bool next(Frame &out);

    /** Non-empty once the stream was malformed (sticky). */
    const std::string &error() const { return error_; }

    /** Bytes buffered but not yet consumed (diagnostics/tests). */
    std::size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    void fail(const std::string &why);

    std::string buffer_;
    std::size_t consumed_ = 0; ///< prefix of buffer_ already parsed
    std::string error_;
};

} // namespace autocat

#endif // AUTOCAT_SERVE_NET_FRAME_HPP
