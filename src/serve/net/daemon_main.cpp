/**
 * @file
 * runner_daemon: a persistent TCP worker for the networked campaign
 * service. It listens on one endpoint, accepts one connection at a
 * time (the scheduler treats each daemon as exactly one fleet slot),
 * and executes each delivered cell through the shared cell-execution
 * path (serve/cell_exec.hpp) — so daemon cells are byte-identical to
 * in-process and cell_runner cells by construction.
 *
 *     runner_daemon [--host H] [--port N] [--port-file PATH]
 *                   [--work-dir DIR]
 *                   [--chaos-kill-after N | --chaos-sigterm-after N]
 *
 * --port 0 (the default) binds a kernel-assigned ephemeral port, and
 * --port-file publishes the bound port atomically — the CI-parallel-
 * safe discovery handshake (parallel jobs cannot collide on a port
 * they never chose).
 *
 * Per connection (see serve/net/frame.hpp for the session shape): the
 * daemon expects Hello [Checkpoint] Job, replies with its own Hello
 * (version skew closes the connection; the scheduler retires the
 * endpoint), then streams Heartbeat per epoch and a Checkpoint upload
 * after every checkpoint write, finishing with the Row. The
 * scheduler's disk is the durable checkpoint home: a delivered
 * Checkpoint frame seeds this attempt, a missing one clears any stale
 * local file, so a retried cell resumes correctly on ANY machine.
 *
 * Failure behavior:
 *  - a malformed frame stream closes the connection (the scheduler
 *    requeues the cell) and the daemon keeps serving;
 *  - a dead scheduler surfaces as a send failure mid-cell; the daemon
 *    abandons the orphaned attempt and goes back to accepting;
 *  - SIGTERM is graceful: observed at epoch/checkpoint boundaries
 *    (checkpoints are atomic + fsynced, never torn), a final
 *    Heartbeat is flushed, and the daemon exits with the retryable
 *    code kRunnerExitSigterm; while idle it exits 0.
 *
 * Chaos flags (tests / net-smoke CI): kill or SIGTERM the daemon
 * right after its Nth checkpoint *upload* — the scheduler provably
 * holds the bytes the retry will resume from.
 */

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>

#include <signal.h>
#include <unistd.h>

#include "serve/cell_exec.hpp"
#include "serve/net/frame.hpp"
#include "serve/wire.hpp"
#include "util/atomic_file.hpp"
#include "util/logging.hpp"
#include "util/socket.hpp"

namespace {

using namespace autocat;

volatile std::sig_atomic_t g_sigterm = 0;

void
onSigterm(int)
{
    g_sigterm = 1;
}

/** Thrown out of cell callbacks to abandon an attempt whose scheduler
 *  vanished (send failure). runSweepCell captures it into a row the
 *  daemon then discards — nobody is listening. */
struct SchedulerGone : std::runtime_error
{
    SchedulerGone() : std::runtime_error("scheduler connection lost") {}
};

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--host H] [--port N] [--port-file PATH]"
                 " [--work-dir DIR] [--chaos-kill-after N]"
                 " [--chaos-sigterm-after N]\n";
    return 2;
}

struct DaemonOptions
{
    TcpEndpoint bind;          // port 0 = ephemeral
    std::string portFile;      // publish the bound port here
    std::string workDir = "."; // local checkpoint scratch
    int chaosKillAfter = 0;    // 0 = disabled
    int chaosSigtermAfter = 0; // 0 = disabled
};

/** Outcome of reading the connection preamble (Hello [Checkpoint]
 *  Job). */
struct Preamble
{
    bool ok = false;
    HelloPayload hello;
    bool haveCheckpoint = false;
    std::string checkpointBytes;
    std::string jobBytes;
};

/**
 * Read frames until the Job arrives, replying to the scheduler's
 * Hello with ours. Returns ok=false (connection must close) on
 * malformed input, version skew, EOF, or SIGTERM while waiting.
 */
Preamble
readPreamble(int fd)
{
    Preamble pre;
    FrameReader reader;
    bool saidHello = false;
    int idle_polls = 0;
    constexpr int kIdleLimitPolls = 240; // 240 x 250ms = 60s

    char buf[64 * 1024];
    for (;;) {
        if (g_sigterm)
            return pre;
        Frame frame;
        while (reader.next(frame)) {
            if (!saidHello) {
                if (frame.type != FrameType::Hello) {
                    AUTOCAT_LOG_WARN
                        << "runner_daemon: peer spoke before Hello";
                    return pre;
                }
                try {
                    pre.hello = decodeHello(frame.payload);
                } catch (const std::exception &e) {
                    AUTOCAT_LOG_WARN
                        << "runner_daemon: malformed hello: "
                        << e.what();
                    return pre;
                }
                // Always answer with our versions — on a mismatch the
                // scheduler learns exactly what is running here before
                // the connection closes.
                HelloPayload mine;
                mine.protocolVersion = kNetProtocolVersion;
                mine.jobWireVersion = kCellJobVersion;
                mine.rowWireVersion = kCellRowVersion;
                mine.checkpointEvery = -1;
                const std::string reply =
                    encodeFrame(FrameType::Hello, encodeHello(mine));
                if (!sendAll(fd, reply.data(), reply.size()))
                    return pre;
                if (pre.hello.protocolVersion != kNetProtocolVersion ||
                    pre.hello.jobWireVersion != kCellJobVersion ||
                    pre.hello.rowWireVersion != kCellRowVersion) {
                    AUTOCAT_LOG_WARN
                        << "runner_daemon: version mismatch with "
                           "scheduler; closing";
                    return pre;
                }
                saidHello = true;
                continue;
            }
            if (frame.type == FrameType::Checkpoint &&
                !pre.haveCheckpoint && pre.jobBytes.empty()) {
                pre.haveCheckpoint = true;
                pre.checkpointBytes = std::move(frame.payload);
                continue;
            }
            if (frame.type == FrameType::Job) {
                pre.jobBytes = std::move(frame.payload);
                pre.ok = true;
                return pre;
            }
            AUTOCAT_LOG_WARN << "runner_daemon: unexpected frame in "
                                "preamble; closing";
            return pre;
        }
        if (!reader.error().empty()) {
            AUTOCAT_LOG_WARN << "runner_daemon: " << reader.error()
                             << "; closing connection";
            return pre;
        }

        if (!waitReadable(fd, 250)) {
            if (++idle_polls >= kIdleLimitPolls) {
                AUTOCAT_LOG_WARN << "runner_daemon: preamble timed "
                                    "out; closing connection";
                return pre;
            }
            continue;
        }
        idle_polls = 0;
        const long n = recvSome(fd, buf, sizeof(buf));
        if (n > 0) {
            reader.feed(buf, static_cast<std::size_t>(n));
        } else if (n == 0) {
            return pre; // peer closed before delivering a job
        } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
            return pre;
        }
    }
}

/** Serve one connection: preamble, cell execution with streamed
 *  heartbeats/checkpoint uploads, then the row. */
void
serveConnection(int fd, const DaemonOptions &options)
{
    const Preamble pre = readPreamble(fd);
    if (!pre.ok)
        return;

    SweepCell cell;
    try {
        cell = deserializeCellJob(pre.jobBytes);
    } catch (const std::exception &e) {
        AUTOCAT_LOG_WARN << "runner_daemon: bad job blob ("
                         << e.what() << "); closing connection";
        return;
    }
    AUTOCAT_LOG_INFO << "runner_daemon: cell " << cell.index << " ("
                     << cell.label << ") attempt starting"
                     << (pre.haveCheckpoint ? " from checkpoint" : "");

    CellExecOptions exec;
    if (pre.hello.checkpointEvery >= 0) {
        // The scheduler's checkpoint bytes (not any stale local file)
        // decide what this attempt resumes from.
        exec.checkpointPath = options.workDir + "/cell_" +
                              std::to_string(cell.index) + ".ckpt";
        exec.checkpointEvery = pre.hello.checkpointEvery;
        if (pre.haveCheckpoint) {
            atomicWriteFile(exec.checkpointPath, pre.checkpointBytes,
                            "daemon checkpoint");
        } else {
            ::unlink(exec.checkpointPath.c_str());
        }
    }

    const auto send = [fd](FrameType type, const std::string &payload) {
        const std::string wire = encodeFrame(type, payload);
        if (!sendAll(fd, wire.data(), wire.size()))
            throw SchedulerGone();
    };
    const auto exitIfTermed = [&] {
        if (!g_sigterm)
            return;
        // Graceful: the last checkpoint upload is already on the
        // scheduler's disk; flush one final liveness signal and exit
        // with the retryable code.
        try {
            send(FrameType::Heartbeat, "");
        } catch (const SchedulerGone &) {
        }
        ::_exit(kRunnerExitSigterm);
    };

    int uploads = 0;
    exec.checkpointCb = [&](const std::string &path, std::size_t, int) {
        send(FrameType::Checkpoint,
             readWholeFile(path, "daemon checkpoint"));
        ++uploads;
        if (options.chaosKillAfter > 0 &&
            uploads >= options.chaosKillAfter) {
            // The upload above completed: the scheduler provably holds
            // the bytes the retry resumes from.
            ::raise(SIGKILL);
        }
        if (options.chaosSigtermAfter > 0 &&
            uploads >= options.chaosSigtermAfter) {
            ::raise(SIGTERM); // handled: sets g_sigterm
        }
        exitIfTermed();
    };
    exec.epochCb = [&](const EpochStats &) {
        send(FrameType::Heartbeat, "");
        exitIfTermed();
    };

    SweepCellResult row = runSweepCell(std::move(cell), exec);
    if (!row.completed && !row.error.empty() && g_sigterm == 0) {
        // Distinguish an abandoned attempt (SchedulerGone captured by
        // runSweepCell) from a deterministic cell failure: the former
        // has nobody to report to.
        if (row.error.find("scheduler connection lost") !=
            std::string::npos) {
            AUTOCAT_LOG_WARN << "runner_daemon: scheduler vanished "
                                "mid-cell; abandoning attempt";
            return;
        }
    }
    try {
        send(FrameType::Row, serializeCellRow(row));
    } catch (const SchedulerGone &) {
        AUTOCAT_LOG_WARN << "runner_daemon: scheduler vanished before "
                            "the row was delivered";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    DaemonOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        try {
            if (arg == "--host")
                options.bind.host = value();
            else if (arg == "--port")
                options.bind.port = static_cast<std::uint16_t>(
                    std::stoi(value()));
            else if (arg == "--port-file")
                options.portFile = value();
            else if (arg == "--work-dir")
                options.workDir = value();
            else if (arg == "--chaos-kill-after")
                options.chaosKillAfter = std::atoi(value().c_str());
            else if (arg == "--chaos-sigterm-after")
                options.chaosSigtermAfter = std::atoi(value().c_str());
            else
                return usage(argv[0]);
        } catch (const std::exception &) {
            std::cerr << arg << ": bad value\n";
            return 2;
        }
    }

    ignoreSigpipe();
    {
        struct sigaction sa = {};
        sa.sa_handler = onSigterm;
        ::sigaction(SIGTERM, &sa, nullptr);
    }

    {
        // Local checkpoint scratch must exist before the first cell
        // tries to stage a checkpoint into it.
        std::error_code ec;
        std::filesystem::create_directories(options.workDir, ec);
        if (ec || !std::filesystem::is_directory(options.workDir)) {
            std::cerr << "runner_daemon: cannot create work dir "
                      << options.workDir << "\n";
            return 1;
        }
    }

    std::uint16_t bound = 0;
    OwnedFd listener = tcpListen(options.bind, bound);
    if (!listener.valid()) {
        std::cerr << "runner_daemon: cannot listen on "
                  << options.bind.toString() << ": "
                  << std::strerror(errno) << "\n";
        return 1;
    }
    if (!options.portFile.empty()) {
        try {
            atomicWriteFile(options.portFile, std::to_string(bound),
                            "daemon port file");
        } catch (const std::exception &e) {
            std::cerr << "runner_daemon: " << e.what() << "\n";
            return 1;
        }
    }
    AUTOCAT_LOG_INFO << "runner_daemon: listening on "
                     << options.bind.host << ":" << bound;

    // One connection at a time: the scheduler schedules each daemon as
    // exactly one fleet slot, so serial service IS the contract.
    while (!g_sigterm) {
        OwnedFd conn = tcpAccept(listener.fd(), 250);
        if (!conn.valid())
            continue; // timeout or EINTR: recheck the shutdown flag
        serveConnection(conn.fd(), options);
    }
    AUTOCAT_LOG_INFO << "runner_daemon: SIGTERM while idle; exiting";
    return 0;
}
