/**
 * @file
 * RunnerTransport: the seam between the sweep scheduler and *where a
 * cell attempt physically runs*. The scheduler owns a fleet of
 * transports — each one worker slot — and speaks one vocabulary to
 * all of them: start an attempt, poll for its outcome, kill it when
 * its heartbeat goes stale. Mixed fleets (local fork/exec slots plus
 * remote TCP daemons) fall out for free.
 *
 *  - LocalProcessTransport: fork/exec of the cell_runner executable —
 *    PR 6's process boundary, byte-identical semantics. Liveness is
 *    the heartbeat file's mtime; job/row/checkpoint all travel
 *    through the shared work/checkpoint directories.
 *
 *  - TcpRunnerTransport: one runner_daemon endpoint. A connection is
 *    one attempt: handshake Hello (protocol + job/row wire versions),
 *    ship the job blob (and the last uploaded checkpoint, so a retry
 *    resumes from the previous attempt's progress even on a different
 *    machine), then consume Heartbeat/Checkpoint/Row frames until the
 *    row lands or the stream dies. Checkpoint uploads are written
 *    (atomically) to the cell's scheduler-side checkpoint path — the
 *    scheduler's disk is the durable home; daemons are disposable.
 *
 * Failure vocabulary, shared by both:
 *
 *  - Outcome::Row — the attempt produced row-blob bytes; the
 *    scheduler validates them (checksum, version, index).
 *  - Outcome::Died with consumesAttempt=true — the attempt was
 *    running and was lost (process death, connection drop, malformed
 *    frame, stale heartbeat). Costs one retry.
 *  - start() returning false, or Died with consumesAttempt=false —
 *    the attempt never actually started (unreachable endpoint,
 *    version-mismatched daemon). The transport retires itself
 *    (alive() goes false) and the cell requeues without burning its
 *    budget: a dead machine must not eat a cell's retries.
 */

#ifndef AUTOCAT_SERVE_NET_TRANSPORT_HPP
#define AUTOCAT_SERVE_NET_TRANSPORT_HPP

#include <chrono>
#include <memory>
#include <string>

#include "eval/sweep.hpp"
#include "serve/net/frame.hpp"
#include "util/socket.hpp"

namespace autocat {

/** Everything one attempt needs, resolved by the scheduler. */
struct AttemptSpec
{
    const SweepCell *cell = nullptr; ///< identity (labels, chaos match)
    int attempt = 1;

    std::string jobPath;        ///< staged job blob (read by both kinds)
    std::string rowPath;        ///< local runner's row output file
    std::string heartbeatPath;  ///< local runner's heartbeat file
    std::string checkpointPath; ///< scheduler-side ckpt; "" = disabled
    int checkpointEvery = 0;    ///< cadence when checkpointing is on

    // Fault injection (local transports only; daemons carry their own
    // chaos flags on their command line).
    bool chaosKill = false;
    int chaosKillAfter = 1;
    bool chaosHang = false;
    bool chaosSigterm = false; ///< SIGTERM-self instead of SIGKILL-self
};

/** Result of polling a busy transport. */
struct AttemptOutcome
{
    enum class Kind
    {
        Running, ///< still working
        Row,     ///< rowBytes holds the attempt's row blob
        Died,    ///< reason says why; consumesAttempt says who pays
    };

    Kind kind = Kind::Running;
    std::string rowBytes;
    std::string reason;
    bool consumesAttempt = true;
};

/** One worker slot the scheduler can run attempts on. */
class RunnerTransport
{
  public:
    virtual ~RunnerTransport() = default;

    /** Stable display name ("local[2]", "tcp:127.0.0.1:4417"). */
    virtual const std::string &name() const = 0;

    /** False once permanently retired (unreachable endpoint). */
    virtual bool alive() const = 0;

    /** True while an attempt is in flight. */
    virtual bool busy() const = 0;

    /**
     * Begin an attempt. Returns false when it could not start — the
     * transport has retired itself and the caller requeues the cell
     * without consuming an attempt. Must only be called when idle.
     */
    virtual bool start(const AttemptSpec &spec) = 0;

    /** Non-blocking progress check; only meaningful while busy. A
     *  terminal outcome (Row/Died) frees the slot. */
    virtual AttemptOutcome poll() = 0;

    /** Forcibly end the in-flight attempt (stale heartbeat). The next
     *  poll() reports the death as "timed out (stale heartbeat)". */
    virtual void kill() = 0;

    /** Seconds since the attempt last showed life (spawn, heartbeat,
     *  any received frame). */
    virtual double idleSeconds() const = 0;

    /** Scheduler is going down mid-run (stop injection): reap local
     *  children / drop connections without reporting an outcome. */
    virtual void abandon() = 0;
};

/** Fork/exec slot running @p runner_path (the cell_runner binary). */
std::unique_ptr<RunnerTransport>
makeLocalProcessTransport(std::string runner_path, int slot);

/** TCP slot speaking the serve/net frame protocol to a runner_daemon
 *  at @p endpoint ("host:port"; parsed eagerly — throws
 *  std::invalid_argument for a malformed endpoint). */
std::unique_ptr<RunnerTransport>
makeTcpRunnerTransport(const std::string &endpoint);

} // namespace autocat

#endif // AUTOCAT_SERVE_NET_TRANSPORT_HPP
