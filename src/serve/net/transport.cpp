#include "serve/net/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/wire.hpp"
#include "util/atomic_file.hpp"
#include "util/logging.hpp"

namespace autocat {

namespace {

namespace fs = std::filesystem;

/** mtime of @p path as a time_t, or 0 when the file does not exist. */
std::time_t
fileMtime(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return st.st_mtime;
}

/** Describe how a reaped runner ended, for retry/error messages. */
std::string
describeExit(int status)
{
    if (WIFSIGNALED(status))
        return std::string("killed by signal ") +
               std::to_string(WTERMSIG(status));
    if (WIFEXITED(status))
        return "exit code " + std::to_string(WEXITSTATUS(status));
    return "unknown wait status " + std::to_string(status);
}

// ---------------------------------------------------------------------
// Local fork/exec slot (the PR 6 process boundary).

class LocalProcessTransport final : public RunnerTransport
{
  public:
    LocalProcessTransport(std::string runner_path, int slot)
        : runnerPath_(std::move(runner_path)),
          name_("local[" + std::to_string(slot) + "]")
    {
    }

    ~LocalProcessTransport() override { abandon(); }

    const std::string &name() const override { return name_; }
    bool alive() const override { return true; }
    bool busy() const override { return pid_ > 0; }

    bool
    start(const AttemptSpec &spec) override
    {
        std::vector<std::string> args;
        args.push_back(runnerPath_);
        args.push_back(spec.jobPath);
        args.push_back(spec.rowPath);
        if (!spec.checkpointPath.empty()) {
            args.push_back("--checkpoint");
            args.push_back(spec.checkpointPath);
            args.push_back("--checkpoint-every");
            args.push_back(std::to_string(spec.checkpointEvery));
        }
        args.push_back("--heartbeat");
        args.push_back(spec.heartbeatPath);
        args.push_back("--attempt");
        args.push_back(std::to_string(spec.attempt));
        if (spec.chaosHang) {
            args.push_back("--chaos-hang");
        } else if (spec.chaosKill) {
            args.push_back(spec.chaosSigterm ? "--chaos-sigterm-after"
                                             : "--chaos-kill-after");
            args.push_back(std::to_string(spec.chaosKillAfter));
        }

        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid < 0)
            throw std::runtime_error(std::string("dist sweep: fork: ") +
                                     std::strerror(errno));
        if (pid == 0) {
            ::execv(argv[0], argv.data());
            // Exec failure in the child: nothing sane to do but die with
            // a recognizable code (the parent records "exit code 127").
            ::_exit(127);
        }
        pid_ = pid;
        timedOut_ = false;
        heartbeatPath_ = spec.heartbeatPath;
        rowPath_ = spec.rowPath;
        spawnTime_ = std::time(nullptr);
        return true;
    }

    AttemptOutcome
    poll() override
    {
        AttemptOutcome out;
        int status = 0;
        const pid_t r = ::waitpid(pid_, &status, WNOHANG);
        if (r == 0)
            return out; // still running
        pid_ = -1;
        out.kind = AttemptOutcome::Kind::Died;
        if (r < 0) {
            out.reason = std::string("could not be reaped: ") +
                         std::strerror(errno);
        } else if (timedOut_) {
            out.reason = "timed out (stale heartbeat)";
        } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            try {
                out.rowBytes = readWholeFile(rowPath_, "cell row");
                out.kind = AttemptOutcome::Kind::Row;
            } catch (const std::exception &e) {
                out.reason =
                    std::string("returned a bad row: ") + e.what();
            }
        } else {
            out.reason = "died (" + describeExit(status) + ")";
        }
        return out;
    }

    void
    kill() override
    {
        if (pid_ <= 0)
            return;
        timedOut_ = true;
        ::kill(pid_, SIGKILL);
    }

    double
    idleSeconds() const override
    {
        const std::time_t last =
            std::max(fileMtime(heartbeatPath_), spawnTime_);
        return std::difftime(std::time(nullptr), last);
    }

    void
    abandon() override
    {
        if (pid_ <= 0)
            return;
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0); // no zombies behind a stop injection
        pid_ = -1;
    }

  private:
    std::string runnerPath_;
    std::string name_;
    pid_t pid_ = -1;
    bool timedOut_ = false;
    std::time_t spawnTime_ = 0;
    std::string heartbeatPath_;
    std::string rowPath_;
};

// ---------------------------------------------------------------------
// Remote TCP slot: one runner_daemon endpoint, one connection per
// attempt.

class TcpRunnerTransport final : public RunnerTransport
{
    using Clock = std::chrono::steady_clock;

  public:
    explicit TcpRunnerTransport(const std::string &endpoint)
        : endpoint_(parseTcpEndpoint(endpoint)),
          name_("tcp:" + endpoint_.toString())
    {
        ignoreSigpipe();
    }

    const std::string &name() const override { return name_; }
    bool alive() const override { return alive_; }
    bool busy() const override { return busy_; }

    bool
    start(const AttemptSpec &spec) override
    {
        bool refused = false;
        fd_ = tcpConnect(endpoint_, kConnectTimeoutMs, refused);
        if (!fd_.valid()) {
            retire(refused ? "connection refused"
                           : std::string("connect failed: ") +
                                 std::strerror(errno));
            return false;
        }

        HelloPayload hello;
        hello.protocolVersion = kNetProtocolVersion;
        hello.jobWireVersion = kCellJobVersion;
        hello.rowWireVersion = kCellRowVersion;
        hello.checkpointEvery =
            spec.checkpointPath.empty() ? -1 : spec.checkpointEvery;

        // Hello, then the previous attempt's uploaded checkpoint (so a
        // retry resumes even on a different machine), then the job.
        std::string wire =
            encodeFrame(FrameType::Hello, encodeHello(hello));
        if (!spec.checkpointPath.empty() &&
            fs::exists(spec.checkpointPath)) {
            wire += encodeFrame(
                FrameType::Checkpoint,
                readWholeFile(spec.checkpointPath, "cell checkpoint"));
        }
        wire += encodeFrame(
            FrameType::Job, readWholeFile(spec.jobPath, "cell job"));
        if (!sendAll(fd_.fd(), wire.data(), wire.size())) {
            fd_.reset();
            retire("dropped the connection during job upload");
            return false;
        }

        setNonBlocking(fd_.fd());
        reader_ = FrameReader{};
        checkpointPath_ = spec.checkpointPath;
        handshaken_ = false;
        timedOut_ = false;
        busy_ = true;
        lastActivity_ = Clock::now();
        return true;
    }

    AttemptOutcome
    poll() override
    {
        AttemptOutcome out;
        if (timedOut_)
            return finish(died("timed out (stale heartbeat)"));

        bool eof = false;
        std::string sockError;
        char buf[64 * 1024];
        for (;;) {
            const long n = recvSome(fd_.fd(), buf, sizeof(buf));
            if (n > 0) {
                reader_.feed(buf, static_cast<std::size_t>(n));
                lastActivity_ = Clock::now();
                continue;
            }
            if (n == 0) {
                eof = true;
            } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // drained for now
            } else {
                sockError = std::strerror(errno);
            }
            break;
        }

        Frame frame;
        while (reader_.next(frame)) {
            if (!handshaken_ && frame.type != FrameType::Hello) {
                // A daemon that skips the handshake is the wrong build
                // or the wrong service; do not burn cell retries on it.
                retire("spoke before the handshake");
                return finish(diedNoAttempt(
                    "daemon skipped the handshake; endpoint retired"));
            }
            switch (frame.type) {
            case FrameType::Hello: {
                HelloPayload hello;
                try {
                    hello = decodeHello(frame.payload);
                } catch (const std::exception &e) {
                    retire(std::string("malformed hello: ") + e.what());
                    return finish(diedNoAttempt(
                        "daemon sent a malformed hello; endpoint "
                        "retired"));
                }
                if (hello.protocolVersion != kNetProtocolVersion ||
                    hello.jobWireVersion != kCellJobVersion ||
                    hello.rowWireVersion != kCellRowVersion) {
                    retire("version mismatch (daemon proto " +
                           std::to_string(hello.protocolVersion) +
                           ", job v" +
                           std::to_string(hello.jobWireVersion) +
                           ", row v" +
                           std::to_string(hello.rowWireVersion) + ")");
                    return finish(diedNoAttempt(
                        "daemon version mismatch; endpoint retired"));
                }
                handshaken_ = true;
                break;
            }
            case FrameType::Heartbeat:
                break; // liveness is any received byte; nothing to do
            case FrameType::Checkpoint:
                // The scheduler's disk is the checkpoint's durable
                // home: land each upload atomically where a retry (on
                // any transport) will look for it.
                if (!checkpointPath_.empty())
                    atomicWriteFile(checkpointPath_, frame.payload,
                                    "cell checkpoint");
                break;
            case FrameType::Row:
                out.kind = AttemptOutcome::Kind::Row;
                out.rowBytes = std::move(frame.payload);
                return finish(std::move(out));
            case FrameType::Job:
                return finish(
                    died("sent an unexpected frame (job)"));
            }
        }

        if (!reader_.error().empty()) {
            if (!handshaken_) {
                retire("malformed handshake (" + reader_.error() + ")");
                return finish(diedNoAttempt(
                    "daemon handshake was malformed; endpoint retired"));
            }
            return finish(died("sent a malformed frame (" +
                               reader_.error() + ")"));
        }
        if (eof || !sockError.empty()) {
            const std::string what =
                eof ? "closed the connection mid-cell"
                    : "connection error (" + sockError + ")";
            if (!handshaken_) {
                retire(what);
                return finish(diedNoAttempt(
                    "daemon " + what + " before the handshake; "
                    "endpoint retired"));
            }
            return finish(died(what));
        }
        return out; // Running
    }

    void
    kill() override
    {
        timedOut_ = true;
        fd_.reset();
    }

    double
    idleSeconds() const override
    {
        return std::chrono::duration<double>(Clock::now() -
                                             lastActivity_)
            .count();
    }

    void
    abandon() override
    {
        fd_.reset();
        busy_ = false;
    }

  private:
    static constexpr int kConnectTimeoutMs = 5000;

    AttemptOutcome
    died(std::string reason)
    {
        AttemptOutcome out;
        out.kind = AttemptOutcome::Kind::Died;
        out.reason = std::move(reason);
        return out;
    }

    AttemptOutcome
    diedNoAttempt(std::string reason)
    {
        AttemptOutcome out = died(std::move(reason));
        out.consumesAttempt = false;
        return out;
    }

    AttemptOutcome
    finish(AttemptOutcome out)
    {
        fd_.reset();
        busy_ = false;
        return out;
    }

    void
    retire(const std::string &why)
    {
        alive_ = false;
        AUTOCAT_LOG_WARN << "dist sweep: retiring endpoint " << name_
                         << ": " << why;
    }

    TcpEndpoint endpoint_;
    std::string name_;
    bool alive_ = true;
    bool busy_ = false;
    bool handshaken_ = false;
    bool timedOut_ = false;
    OwnedFd fd_;
    FrameReader reader_;
    std::string checkpointPath_;
    Clock::time_point lastActivity_{};
};

} // namespace

std::unique_ptr<RunnerTransport>
makeLocalProcessTransport(std::string runner_path, int slot)
{
    return std::make_unique<LocalProcessTransport>(
        std::move(runner_path), slot);
}

std::unique_ptr<RunnerTransport>
makeTcpRunnerTransport(const std::string &endpoint)
{
    return std::make_unique<TcpRunnerTransport>(endpoint);
}

} // namespace autocat
