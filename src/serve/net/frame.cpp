#include "serve/net/frame.hpp"

#include <cstring>
#include <stdexcept>

#include "util/binio.hpp"

namespace autocat {

namespace {

constexpr std::uint32_t kFrameMagic = 0x464e4341u; // "ACNF" little-endian

constexpr std::size_t kHeaderSize =
    sizeof(std::uint32_t) + sizeof(std::uint32_t) + sizeof(std::uint64_t);

bool
knownType(std::uint32_t type)
{
    return type >= static_cast<std::uint32_t>(FrameType::Hello) &&
           type <= static_cast<std::uint32_t>(FrameType::Row);
}

} // namespace

std::string
encodeFrame(FrameType type, const std::string &payload)
{
    if (payload.size() > kMaxFramePayload)
        throw std::invalid_argument(
            "net frame: payload exceeds the frame size cap");
    std::string out;
    out.reserve(kHeaderSize + payload.size() + sizeof(std::uint64_t));
    binPut(out, kFrameMagic);
    binPut(out, static_cast<std::uint32_t>(type));
    binPut(out, static_cast<std::uint64_t>(payload.size()));
    out.append(payload);
    binPut(out, fnv1a64(payload));
    return out;
}

std::string
encodeHello(const HelloPayload &hello)
{
    std::string p;
    binPut(p, hello.protocolVersion);
    binPut(p, hello.jobWireVersion);
    binPut(p, hello.rowWireVersion);
    binPut(p, hello.checkpointEvery);
    return p;
}

HelloPayload
decodeHello(const std::string &payload)
{
    ByteCursor c(payload, "net hello");
    HelloPayload hello;
    hello.protocolVersion = c.get<std::uint32_t>();
    hello.jobWireVersion = c.get<std::uint32_t>();
    hello.rowWireVersion = c.get<std::uint32_t>();
    hello.checkpointEvery = c.get<std::int32_t>();
    c.expectExhausted();
    return hello;
}

void
FrameReader::fail(const std::string &why)
{
    error_ = "net frame: " + why;
    buffer_.clear();
    consumed_ = 0;
}

void
FrameReader::feed(const char *data, std::size_t size)
{
    if (!error_.empty())
        return;
    // Compact lazily: drop the consumed prefix once it dominates, so a
    // long session doesn't grow the buffer without bound but short
    // reads don't memmove every time.
    if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
        buffer_.erase(0, consumed_);
        consumed_ = 0;
    }
    buffer_.append(data, size);
}

bool
FrameReader::next(Frame &out)
{
    if (!error_.empty())
        return false;
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < kHeaderSize)
        return false;
    const char *base = buffer_.data() + consumed_;

    std::uint32_t magic = 0, type = 0;
    std::uint64_t size = 0;
    std::memcpy(&magic, base, sizeof(magic));
    std::memcpy(&type, base + sizeof(magic), sizeof(type));
    std::memcpy(&size, base + sizeof(magic) + sizeof(type), sizeof(size));

    // Validate the header before waiting for the payload: a corrupted
    // length would otherwise stall the connection "needing" garbage
    // bytes that never arrive.
    if (magic != kFrameMagic) {
        fail("bad magic (stream out of sync or not a frame stream)");
        return false;
    }
    if (!knownType(type)) {
        fail("unknown frame type " + std::to_string(type));
        return false;
    }
    if (size > kMaxFramePayload) {
        fail("implausible payload size (corrupt stream?)");
        return false;
    }

    const std::size_t total =
        kHeaderSize + static_cast<std::size_t>(size) +
        sizeof(std::uint64_t);
    if (avail < total)
        return false;

    const char *payload = base + kHeaderSize;
    std::uint64_t checksum = 0;
    std::memcpy(&checksum, payload + size, sizeof(checksum));
    out.payload.assign(payload, static_cast<std::size_t>(size));
    if (checksum != fnv1a64(out.payload)) {
        out.payload.clear();
        fail("payload checksum mismatch (corrupt stream)");
        return false;
    }
    out.type = static_cast<FrameType>(type);
    consumed_ += total;
    return true;
}

} // namespace autocat
