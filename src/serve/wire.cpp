#include "serve/wire.hpp"

#include <sstream>
#include <stdexcept>

#include "core/campaign_config.hpp"
#include "core/config_parser.hpp"
#include "util/binio.hpp"

namespace autocat {

namespace {

constexpr char kJobMagic[8] = {'A', 'C', 'D', 'J', 'O', 'B', 'V', '1'};
constexpr char kRowMagic[8] = {'A', 'C', 'D', 'R', 'O', 'W', 'V', '1'};

std::string
sectionToString(const char (&magic)[8], std::uint32_t version,
                const std::string &payload, const std::string &what)
{
    std::ostringstream oss(std::ios::binary);
    writeBinarySection(oss, magic, version, payload, what);
    return oss.str();
}

std::string
sectionFromString(const std::string &bytes, const char (&magic)[8],
                  std::uint32_t version, const std::string &what)
{
    std::istringstream iss(bytes, std::ios::binary);
    const std::string payload =
        readBinarySection(iss, magic, version, what);
    // A blob is exactly one section; trailing bytes mean a concatenated
    // or damaged file.
    if (iss.peek() != std::istringstream::traits_type::eof())
        throw std::runtime_error(what +
                                 ": trailing bytes after section "
                                 "(corrupt blob?)");
    return payload;
}

} // namespace

std::string
serializeCellJob(const SweepCell &cell)
{
    std::string p;
    binPut(p, static_cast<std::uint64_t>(cell.index));
    binPutString(p, cell.label);
    binPutString(p, cell.scenario);
    binPutString(p, cell.hierarchy);
    binPutString(p, cell.policy);
    binPutString(p, cell.agent);
    binPut(p, cell.seed);
    // One config document: exploration base + phase[N].* lines. The
    // renderers throw for unrepresentable values, so a cell that
    // cannot survive the wire fails at serialization, not on the
    // worker.
    binPutString(p, renderExplorationConfig(cell.config) +
                        renderPhaseKeys(cell.phases));
    return sectionToString(kJobMagic, kCellJobVersion, p, "cell job");
}

SweepCell
deserializeCellJob(const std::string &bytes)
{
    const std::string payload =
        sectionFromString(bytes, kJobMagic, kCellJobVersion, "cell job");
    ByteCursor c(payload, "cell job");

    SweepCell cell;
    cell.index = static_cast<std::size_t>(c.get<std::uint64_t>());
    cell.label = c.getString();
    cell.scenario = c.getString();
    cell.hierarchy = c.getString();
    cell.policy = c.getString();
    cell.agent = c.getString();
    cell.seed = c.get<std::uint64_t>();
    const std::string config_text = c.getString();
    c.expectExhausted();

    cell.config = parseExplorationConfig(
        config_text, [&cell](const std::string &key,
                             const std::string &value) {
            return applyPhaseKey(cell.phases, key, value);
        });
    validateConfigPhases(cell.phases);
    return cell;
}

std::string
serializeCellRow(const SweepCellResult &row)
{
    std::string p;
    binPut(p, static_cast<std::uint64_t>(row.cell.index));
    binPut(p, static_cast<std::uint8_t>(row.completed ? 1 : 0));
    binPutString(p, row.error);
    binPut(p, row.wallSeconds);

    const ExplorationResult &r = row.result;
    binPut(p, static_cast<std::uint8_t>(r.converged ? 1 : 0));
    binPut(p, static_cast<std::int32_t>(r.epochsToConverge));
    binPut(p, r.finalAccuracy);
    binPut(p, r.finalEpisodeLength);
    binPut(p, r.bitRate);
    binPut(p, r.detectionRate);
    binPut(p, static_cast<std::int64_t>(r.envSteps));
    binPut(p, static_cast<std::int64_t>(r.stepsToDiscovery));
    binPut(p, static_cast<std::uint32_t>(r.sequence.size()));
    for (const AttackStep &s : r.sequence.steps()) {
        binPut(p, static_cast<std::uint8_t>(s.kind));
        binPut(p, s.addr);
    }
    binPutString(p, r.finalGuess);
    binPut(p, static_cast<std::uint8_t>(r.category));
    return sectionToString(kRowMagic, kCellRowVersion, p, "cell row");
}

SweepCellResult
deserializeCellRow(const std::string &bytes)
{
    const std::string payload =
        sectionFromString(bytes, kRowMagic, kCellRowVersion, "cell row");
    ByteCursor c(payload, "cell row");

    SweepCellResult row;
    row.cell.index = static_cast<std::size_t>(c.get<std::uint64_t>());
    row.completed = c.get<std::uint8_t>() != 0;
    row.error = c.getString();
    row.wallSeconds = c.get<double>();

    ExplorationResult &r = row.result;
    r.converged = c.get<std::uint8_t>() != 0;
    r.epochsToConverge = c.get<std::int32_t>();
    r.finalAccuracy = c.get<double>();
    r.finalEpisodeLength = c.get<double>();
    r.bitRate = c.get<double>();
    r.detectionRate = c.get<double>();
    r.envSteps = c.get<std::int64_t>();
    r.stepsToDiscovery = c.get<std::int64_t>();
    const auto steps = c.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < steps; ++i) {
        const auto kind = c.get<std::uint8_t>();
        if (kind > static_cast<std::uint8_t>(ActionKind::GuessNoAccess))
            throw std::runtime_error(
                "cell row: invalid action kind (corrupt blob?)");
        const auto addr = c.get<std::uint64_t>();
        r.sequence.push({static_cast<ActionKind>(kind), addr});
    }
    r.finalGuess = c.getString();
    const auto category = c.get<std::uint8_t>();
    if (category > static_cast<std::uint8_t>(AttackCategory::Unknown))
        throw std::runtime_error(
            "cell row: invalid attack category (corrupt blob?)");
    r.category = static_cast<AttackCategory>(category);
    c.expectExhausted();
    return row;
}

} // namespace autocat
