#include "serve/manifest/manifest.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "serve/wire.hpp"
#include "util/atomic_file.hpp"
#include "util/binio.hpp"
#include "util/logging.hpp"

namespace autocat {

namespace {

namespace fs = std::filesystem;

constexpr char kManifestMagic[8] = {'A', 'C', 'D', 'M', 'A', 'N', 'V', '1'};
constexpr std::uint32_t kManifestVersion = 1;

enum class CellStateTag : std::uint8_t
{
    Pending = 0,
    Done = 1,
};

} // namespace

std::uint64_t
gridManifestHash(const std::vector<std::string> &job_blobs)
{
    // Hash of hashes keeps the identity order-sensitive without
    // concatenating megabytes: cell i contributes (i, fnv(blob_i)).
    std::string acc;
    for (std::size_t i = 0; i < job_blobs.size(); ++i) {
        binPut(acc, static_cast<std::uint64_t>(i));
        binPut(acc, fnv1a64(job_blobs[i]));
    }
    return fnv1a64(acc);
}

GridManifest::GridManifest(std::string dir, std::string name,
                           std::uint64_t grid_hash,
                           std::size_t cell_count, bool reset)
    : dir_(std::move(dir)), name_(std::move(name)),
      gridHash_(grid_hash), cells_(cell_count)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_)) {
        throw std::runtime_error(
            "manifest: cannot create directory \"" + dir_ + "\"" +
            (ec ? ": " + ec.message() : ""));
    }
    load(grid_hash, reset);
    save();
}

std::string
GridManifest::rowPath(std::size_t index) const
{
    return dir_ + "/row_" + std::to_string(index) + ".blob";
}

std::size_t
GridManifest::numDone() const
{
    std::size_t n = 0;
    for (const CellEntry &cell : cells_)
        n += cell.done ? 1 : 0;
    return n;
}

void
GridManifest::load(std::uint64_t grid_hash, bool reset)
{
    const std::string state_path = dir_ + "/manifest.state";

    const auto wipe = [&] {
        std::error_code ec;
        fs::remove(state_path, ec);
        for (std::size_t i = 0; i < cells_.size(); ++i)
            fs::remove(rowPath(i), ec);
        for (CellEntry &cell : cells_)
            cell = CellEntry{};
    };

    if (!fs::exists(state_path)) {
        // Fresh manifest. Stray row blobs (from a manifest whose state
        // file was never written, or a foreign directory) must not be
        // adopted: without a state file there is no recorded grid
        // identity to trust them against.
        wipe();
        return;
    }

    std::uint64_t seen_hash = 0;
    std::uint64_t seen_count = 0;
    std::vector<CellEntry> seen(cells_.size());
    bool identity_readable = false;
    bool entries_readable = false;
    try {
        std::istringstream iss(
            readWholeFile(state_path, "manifest state"),
            std::ios::binary);
        const std::string payload = readBinarySection(
            iss, kManifestMagic, kManifestVersion, "manifest state");
        ByteCursor c(payload, "manifest state");
        seen_hash = c.get<std::uint64_t>();
        c.getString(); // recorded grid name: informational only
        seen_count = c.get<std::uint64_t>();
        // The identity header is enough to refuse a foreign grid even
        // when the per-cell entries cannot be parsed against OUR cell
        // count (a count mismatch IS a foreign grid, not corruption).
        identity_readable = true;
        if (seen_count == cells_.size()) {
            for (std::size_t i = 0; i < cells_.size(); ++i) {
                const auto tag = c.get<std::uint8_t>();
                seen[i].done =
                    tag == static_cast<std::uint8_t>(CellStateTag::Done);
                seen[i].failedAttempts = c.get<std::int32_t>();
            }
            c.expectExhausted();
            entries_readable = true;
        }
    } catch (const std::exception &e) {
        AUTOCAT_LOG_WARN << "manifest: unreadable state file ("
                         << e.what() << "); discarding recorded progress";
    }

    if (!identity_readable) {
        // A torn/corrupt state file cannot vouch for the grid identity,
        // so the row blobs cannot be trusted either.
        wipe();
        return;
    }
    if (seen_hash != grid_hash || seen_count != cells_.size()) {
        if (!reset) {
            throw std::invalid_argument(
                "manifest: directory \"" + dir_ +
                "\" belongs to a different grid (hash/cell-count "
                "mismatch); point the run at a fresh directory or pass "
                "manifest_reset");
        }
        AUTOCAT_LOG_WARN << "manifest: resetting " << dir_
                         << " (grid identity changed)";
        wipe();
        return;
    }
    if (!entries_readable) {
        // Identity matches but the per-cell entries are torn: treat as
        // lost progress for the whole grid.
        wipe();
        return;
    }

    // Recovery: row blobs are authoritative for done-ness. A valid row
    // marks the cell done even when the state write was lost; a "done"
    // state whose row is missing or corrupt demotes to pending.
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        cells_[i].failedAttempts = seen[i].failedAttempts;
        if (!fs::exists(rowPath(i)))
            continue;
        try {
            SweepCellResult row = deserializeCellRow(
                readWholeFile(rowPath(i), "manifest row"));
            if (row.cell.index != i)
                throw std::runtime_error("row is for another cell");
            cells_[i].done = true;
            cells_[i].row = std::move(row);
        } catch (const std::exception &e) {
            AUTOCAT_LOG_WARN << "manifest: cell " << i
                             << " row blob rejected (" << e.what()
                             << "); the cell will re-run";
            std::error_code ec;
            fs::remove(rowPath(i), ec);
        }
    }
}

void
GridManifest::save() const
{
    std::string p;
    binPut(p, gridHash_);
    binPutString(p, name_);
    binPut(p, static_cast<std::uint64_t>(cells_.size()));
    for (const CellEntry &cell : cells_) {
        binPut(p, static_cast<std::uint8_t>(cell.done
                                                ? CellStateTag::Done
                                                : CellStateTag::Pending));
        binPut(p, static_cast<std::int32_t>(cell.failedAttempts));
    }
    std::ostringstream oss(std::ios::binary);
    writeBinarySection(oss, kManifestMagic, kManifestVersion, p,
                       "manifest state");
    atomicWriteFile(dir_ + "/manifest.state", oss.str(),
                    "manifest state");
}

void
GridManifest::recordRow(std::size_t index, const std::string &row_bytes)
{
    // Row first, state second: recovery trusts rows, so this order can
    // lose at most a state update (re-derived from the row on load),
    // never a finished cell.
    atomicWriteFile(rowPath(index), row_bytes, "manifest row");
    cells_[index].done = true;
    cells_[index].row = deserializeCellRow(row_bytes);
    save();
}

void
GridManifest::recordFailedAttempt(std::size_t index)
{
    ++cells_[index].failedAttempts;
    save();
}

} // namespace autocat
