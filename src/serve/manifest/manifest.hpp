/**
 * @file
 * Persistent, crash-safe grid manifest: the on-disk truth about a
 * sweep grid's progress, so a *fresh* scheduler process can re-enter
 * a half-finished nightly and finish it — rendering the exact report
 * bytes an uninterrupted run would have produced.
 *
 * Layout under the manifest directory:
 *
 *     manifest.state   one util/binio section (magic ACDMANV1):
 *                      grid hash, grid name, cell count, and per cell
 *                      {state, failed attempts}. Rewritten atomically
 *                      on every recorded event.
 *     row_<i>.blob     the finished cell's ACDROWV2 row blob,
 *                      byte-verbatim as the scheduler received it
 *                      (wire, local runner file, or failure row).
 *
 * Keying: the manifest is bound to a *grid identity* — the FNV-1a
 * hash over every cell's serialized job blob in index order. Since a
 * job blob embeds the cell's fully-rendered config, two grids hash
 * equal exactly when every cell would run identically; re-entering
 * with a different config/grid against the same directory is refused
 * (or wiped, when the caller passes reset) instead of silently mixing
 * two experiments' rows.
 *
 * Crash ordering: a cell's row blob is written (atomically) BEFORE
 * the state file records it done. Recovery therefore trusts the row
 * blobs: a valid row blob marks its cell done even when the state
 * write was lost, and a "done" state without a valid row blob demotes
 * the cell back to pending. Either way the re-entered run computes
 * exactly the missing cells, and adopted rows deserialize through the
 * same wire path remote rows do — byte-identity by construction.
 */

#ifndef AUTOCAT_SERVE_MANIFEST_HPP
#define AUTOCAT_SERVE_MANIFEST_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "eval/sweep.hpp"

namespace autocat {

/** Grid identity: FNV-1a 64 over each cell's job blob, in index
 *  order. Deterministic because job blobs embed rendered config. */
std::uint64_t gridManifestHash(const std::vector<std::string> &job_blobs);

class GridManifest
{
  public:
    /** Recovered knowledge about one cell. */
    struct CellEntry
    {
        bool done = false;       ///< a valid row blob exists
        int failedAttempts = 0;  ///< attempts consumed by prior runs
        SweepCellResult row;     ///< deserialized row when done
    };

    /**
     * Open (creating or re-entering) a manifest directory.
     *
     * A fresh directory records the grid identity and an all-pending
     * state. An existing one is validated: grid hash and cell count
     * must match, else std::invalid_argument — unless @p reset, which
     * wipes the stale manifest and starts fresh. Unreadable/corrupt
     * state or row files are treated as lost progress for the
     * affected cells, never as errors: the grid re-runs them.
     *
     * @throws std::invalid_argument for a hash/count mismatch without
     *         reset; std::runtime_error when the directory cannot be
     *         created or the state file cannot be written
     */
    GridManifest(std::string dir, std::string name,
                 std::uint64_t grid_hash, std::size_t cell_count,
                 bool reset);

    /** Recovered entries, one per cell, index order. */
    const std::vector<CellEntry> &cells() const { return cells_; }

    /** Count of cells recovered as done (report.cellsAdopted). */
    std::size_t numDone() const;

    /**
     * Record a finished cell: persist @p row_bytes (the verbatim row
     * blob) then mark the state. Failure rows (retry exhaustion) are
     * recorded the same way — re-entry must not retry what the budget
     * already gave up on.
     */
    void recordRow(std::size_t index, const std::string &row_bytes);

    /** Record one consumed (failed) attempt, so a re-entered run
     *  continues the retry budget instead of resetting it. */
    void recordFailedAttempt(std::size_t index);

    const std::string &dir() const { return dir_; }

    /** Path of cell @p index's row blob inside the manifest. */
    std::string rowPath(std::size_t index) const;

  private:
    void save() const;
    void load(std::uint64_t grid_hash, bool reset);

    std::string dir_;
    std::string name_;
    std::uint64_t gridHash_ = 0;
    std::vector<CellEntry> cells_;
};

} // namespace autocat

#endif // AUTOCAT_SERVE_MANIFEST_HPP
