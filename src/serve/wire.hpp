/**
 * @file
 * Cell-runner wire format: a SweepCell travels to a worker process as
 * a self-contained *job blob*, and the finished SweepCellResult comes
 * back as a *row blob*.
 *
 * Both blobs are single util/binio sections — 8-byte magic, u32
 * format version, length-prefixed payload, trailing FNV-1a checksum —
 * so a truncated, bit-flipped, or wrong-kind file is rejected with a
 * distinct error instead of silently corrupting a report, exactly
 * like rl/checkpoint files.
 *
 * The job payload embeds the cell's resolved configuration as
 * rendered config text (core/config_parser.hpp +
 * core/campaign_config.hpp `phase[N].*` lines), deliberately reusing
 * the render -> parse fixed-point contract: the wire inherits the
 * full config surface, one serializer instead of two, and a job blob
 * is human-recoverable with `strings`. A config field only reaches a
 * remote worker if the renderer emits it — renderer coverage IS wire
 * coverage, which test_dist pins.
 *
 * The row payload is binary field-by-field (metrics, the attack
 * sequence, the category label) plus the cell index so the scheduler
 * can verify a row against the slot it claims to fill.
 */

#ifndef AUTOCAT_SERVE_WIRE_HPP
#define AUTOCAT_SERVE_WIRE_HPP

#include <string>

#include "eval/sweep.hpp"

namespace autocat {

/** Current job-blob format version (v2 added the cell agent). */
constexpr std::uint32_t kCellJobVersion = 2;

/** Current row-blob format version (v2 added steps-to-discovery). */
constexpr std::uint32_t kCellRowVersion = 2;

/** Serialize a sweep cell into a self-contained job blob. */
std::string serializeCellJob(const SweepCell &cell);

/**
 * Parse a job blob back into a cell.
 *
 * @throws std::runtime_error for bad magic / version / truncation /
 *         checksum, std::invalid_argument for config text that does
 *         not parse (a version-skewed runner fails loudly)
 */
SweepCell deserializeCellJob(const std::string &bytes);

/**
 * Serialize a finished cell's outcome. Only the outcome fields and
 * the cell index travel: the scheduler owns the cell description and
 * re-attaches it on receipt.
 */
std::string serializeCellRow(const SweepCellResult &row);

/**
 * Parse a row blob. The returned result carries the outcome fields
 * and `cell.index`; every other cell field is default-initialized.
 *
 * @throws std::runtime_error for a corrupt or version-skewed blob
 */
SweepCellResult deserializeCellRow(const std::string &bytes);

} // namespace autocat

#endif // AUTOCAT_SERVE_WIRE_HPP
