/**
 * @file
 * CampaignGateway: the multi-tenant front door of the networked
 * campaign service. Tenants submit *named campaigns* — ordinary sweep
 * configs carrying `gateway.tenant` / `gateway.priority` keys — and
 * the gateway multiplexes every accepted campaign onto ONE worker
 * fleet (serve/dist_scheduler.hpp runSweepGridsFleet): higher
 * priority runs first, ties run in arrival order, and a straggling
 * cell from one campaign overlaps with the next campaign's cells
 * instead of idling the fleet.
 *
 * Isolation is by directory, not by process: each campaign gets its
 * own work, manifest, and report tree under
 *
 *     <root>/<tenant>/<campaign>/{work,manifest,report.json}
 *
 * so two tenants can submit the *same* grid without colliding, and a
 * gateway crash mid-nightly is re-enterable per campaign through the
 * standard grid-manifest path (finished cells adopt; only the rest
 * run). Tenant and campaign names are restricted to path-safe tokens
 * — they become directory components.
 *
 * Determinism: the gateway adds nothing between the cells and the
 * scheduler, so each campaign's report bytes are identical to running
 * that campaign's config alone with workers=1 (the byte-identity
 * oracle in test_net).
 */

#ifndef AUTOCAT_SERVE_GATEWAY_HPP
#define AUTOCAT_SERVE_GATEWAY_HPP

#include <string>
#include <vector>

#include "eval/sweep_config.hpp"
#include "serve/dist_scheduler.hpp"

namespace autocat {

/** One accepted campaign, queued for the next run(). */
struct GatewaySubmission
{
    std::string tenant;
    std::string campaign;
    int priority = 0;
    SweepConfig config;
    std::size_t arrival = 0; ///< submission order (tie-break)
};

/** Outcome of one campaign after run(). */
struct GatewayResult
{
    std::string tenant;
    std::string campaign;
    SweepReport report;
    std::string reportJson; ///< rendered bytes (also written on disk)
    std::string reportPath; ///< <root>/<tenant>/<campaign>/report.json
};

class CampaignGateway
{
  public:
    /**
     * @param root_dir directory the per-tenant campaign trees live
     *        under (created on demand)
     * @param fleet    the shared worker fleet every campaign runs on
     */
    CampaignGateway(std::string root_dir, FleetOptions fleet);

    /**
     * Accept a campaign. The tenant comes from config.gatewayTenant,
     * the priority from config.gatewayPriority, and the campaign name
     * from @p campaign_name (falling back to config.name).
     *
     * @throws std::invalid_argument for a missing/path-unsafe tenant
     *         or campaign name, or a duplicate (tenant, campaign)
     *         pair — resubmitting the same campaign must be an
     *         explicit re-entry (new gateway run), not a silent dup
     */
    void submit(SweepConfig config, const std::string &campaign_name = "");

    /** Accepted, not-yet-run submissions (priority order preview). */
    const std::vector<GatewaySubmission> &submissions() const
    {
        return submissions_;
    }

    /**
     * Run every accepted campaign on the fleet and return one result
     * per campaign, in scheduling (priority) order. Each campaign's
     * rendered JSON report is also written atomically into its tree.
     * Submissions are consumed: the gateway is then empty.
     *
     * Campaign work/manifest dirs derive from the gateway root; a
     * config's own checkpointDir/reportJsonPath are honored when set
     * (they are part of the campaign's determinism contract).
     */
    std::vector<GatewayResult> run();

    const std::string &rootDir() const { return rootDir_; }

  private:
    std::string rootDir_;
    FleetOptions fleet_;
    std::vector<GatewaySubmission> submissions_;
};

} // namespace autocat

#endif // AUTOCAT_SERVE_GATEWAY_HPP
