#include "serve/gateway/campaign_gateway.hpp"

#include <algorithm>
#include <stdexcept>

#include "eval/report.hpp"
#include "util/atomic_file.hpp"
#include "util/logging.hpp"

namespace autocat {

namespace {

/** Tenant/campaign names become directory components: restrict them
 *  to unambiguous path-safe tokens. */
bool
pathSafeToken(const std::string &name)
{
    if (name.empty() || name == "." || name == "..")
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' ||
                        c == '_' || c == '.';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

CampaignGateway::CampaignGateway(std::string root_dir,
                                 FleetOptions fleet)
    : rootDir_(std::move(root_dir)), fleet_(std::move(fleet))
{
    if (rootDir_.empty())
        throw std::invalid_argument("gateway: root directory not set");
}

void
CampaignGateway::submit(SweepConfig config,
                        const std::string &campaign_name)
{
    GatewaySubmission sub;
    sub.tenant = config.gatewayTenant;
    sub.campaign =
        campaign_name.empty() ? config.name : campaign_name;
    sub.priority = config.gatewayPriority;
    sub.arrival = submissions_.size();

    if (!pathSafeToken(sub.tenant)) {
        throw std::invalid_argument(
            "gateway: submission needs a path-safe gateway.tenant "
            "(got \"" + sub.tenant + "\")");
    }
    if (!pathSafeToken(sub.campaign)) {
        throw std::invalid_argument(
            "gateway: campaign name \"" + sub.campaign +
            "\" is not a path-safe token");
    }
    for (const GatewaySubmission &existing : submissions_) {
        if (existing.tenant == sub.tenant &&
            existing.campaign == sub.campaign) {
            throw std::invalid_argument(
                "gateway: tenant \"" + sub.tenant +
                "\" already submitted campaign \"" + sub.campaign +
                "\"");
        }
    }

    sub.config = std::move(config);
    AUTOCAT_LOG_INFO << "gateway: accepted " << sub.tenant << "/"
                     << sub.campaign << " (priority " << sub.priority
                     << ", " << "arrival " << sub.arrival << ")";
    submissions_.push_back(std::move(sub));
}

std::vector<GatewayResult>
CampaignGateway::run()
{
    // Higher priority schedules first; stable sort keeps arrival
    // order within a priority class.
    std::stable_sort(submissions_.begin(), submissions_.end(),
                     [](const GatewaySubmission &a,
                        const GatewaySubmission &b) {
                         return a.priority > b.priority;
                     });

    std::vector<ScheduledGrid> grids;
    std::vector<std::string> baseDirs;
    grids.reserve(submissions_.size());
    for (GatewaySubmission &sub : submissions_) {
        const std::string base =
            rootDir_ + "/" + sub.tenant + "/" + sub.campaign;
        ScheduledGrid grid;
        grid.name = sub.config.name;
        grid.cells = expandSweepGrid(sub.config);
        grid.workDir = base + "/work";
        grid.checkpointDir = sub.config.checkpointDir;
        grid.checkpointEvery = sub.config.checkpointInterval;
        grid.manifestDir = base + "/manifest";
        grid.manifestReset = sub.config.manifestReset;
        grids.push_back(std::move(grid));
        baseDirs.push_back(base);
    }

    std::vector<SweepReport> reports =
        runSweepGridsFleet(std::move(grids), fleet_);

    std::vector<GatewayResult> results;
    results.reserve(reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        GatewayResult result;
        result.tenant = submissions_[i].tenant;
        result.campaign = submissions_[i].campaign;
        result.report = std::move(reports[i]);
        ReportOptions render;
        render.includeTiming = submissions_[i].config.includeTiming;
        result.reportJson = sweepReportJson(result.report, render);
        result.reportPath = baseDirs[i] + "/report.json";
        atomicWriteFile(result.reportPath, result.reportJson,
                        "gateway report");
        if (!submissions_[i].config.reportJsonPath.empty()) {
            atomicWriteFile(submissions_[i].config.reportJsonPath,
                            result.reportJson, "gateway report");
        }
        results.push_back(std::move(result));
    }
    submissions_.clear();
    return results;
}

} // namespace autocat
