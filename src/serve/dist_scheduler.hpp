/**
 * @file
 * DistScheduler: shard an expanded sweep grid across worker
 * *processes* running the cell_runner executable.
 *
 * Execution model — the process-boundary analogue of util/TaskPool's
 * claiming discipline:
 *
 *  - Every cell is serialized to a job blob (serve/wire.hpp) under
 *    the work directory before anything is spawned.
 *  - N worker slots each hold at most one cell_runner process. A slot
 *    that frees up dynamically claims the next pending cell (initial
 *    order first, then the retry queue), so unequal cell costs
 *    balance across workers exactly like TaskPool's atomic cursor —
 *    work stealing without a central lock because the scheduler loop
 *    is the only claimer.
 *  - A runner that exits 0 has written a checksummed row blob
 *    atomically; the scheduler validates it (magic/version/checksum +
 *    cell-index match) and fills the cell's report slot. A runner
 *    that dies (signal, nonzero exit, corrupt row) or hangs (stale
 *    heartbeat -> SIGKILL) consumes one attempt; the cell is requeued
 *    until maxRetries re-spawns are exhausted, then recorded as a
 *    per-cell failure — the rest of the grid keeps running either
 *    way.
 *  - Retried cells resume from their campaign checkpoint (the runner
 *    opens `cell_<index>.ckpt` with resume semantics), so a worker
 *    death costs at most checkpointEvery epochs, not the whole cell.
 *
 * Determinism: cells are bit-reproducible campaigns writing disjoint,
 * index-addressed report slots, so the report content is identical to
 * an in-process `runSweepCells(..., workers=1, ...)` run with the
 * same checkpoint cadence — including runs where workers were killed
 * and resumed. That identity is the test oracle (test_dist, the
 * dist-smoke CI job).
 */

#ifndef AUTOCAT_SERVE_DIST_SCHEDULER_HPP
#define AUTOCAT_SERVE_DIST_SCHEDULER_HPP

#include <string>
#include <vector>

#include "eval/sweep.hpp"

namespace autocat {

/** Scheduler configuration. */
struct DistSweepOptions
{
    /** Worker process slots (clamped to the cell count). */
    int processes = 3;

    /** cell_runner executable path (required). */
    std::string runnerPath;

    /** Scratch directory for job/row blobs and heartbeat files;
     *  created on demand (required). */
    std::string workDir;

    /** Per-cell campaign checkpoint directory; empty disables
     *  mid-cell checkpoints (a retried cell then restarts — still
     *  deterministic, just slower). */
    std::string checkpointDir;

    /** Mid-cell checkpoint cadence in epochs. */
    int checkpointEvery = 0;

    /** Re-spawns allowed per cell after a death or hang. */
    int maxRetries = 1;

    /** Kill a worker whose heartbeat is older than this (seconds);
     *  0 disables hang detection. */
    double heartbeatTimeoutS = 0.0;

    // ----- fault-injection hooks (tests / CI harness only)
    /** Cell whose FIRST attempt is asked to SIGKILL itself after
     *  chaosKillAfter checkpoint writes; -1 disables. */
    long chaosKillCell = -1;
    int chaosKillAfter = 1;

    /** Make chaosKillCell's first attempt hang before doing any work
     *  (exercises the heartbeat timeout) instead of self-killing. */
    bool chaosHang = false;
};

/**
 * Run @p cells across worker processes and aggregate the report.
 * Blocks until every cell has completed, failed deterministically, or
 * exhausted its retry budget.
 *
 * @throws std::invalid_argument for a missing/non-executable runner
 *         or an unusable work directory (grid-level misconfiguration,
 *         as opposed to per-cell failures which land in the report)
 */
SweepReport runSweepCellsDist(const std::string &name,
                              std::vector<SweepCell> cells,
                              const DistSweepOptions &options,
                              const SweepProgress &progress = {});

} // namespace autocat

#endif // AUTOCAT_SERVE_DIST_SCHEDULER_HPP
