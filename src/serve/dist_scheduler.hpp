/**
 * @file
 * DistScheduler: shard expanded sweep grids across a *fleet* of
 * runner transports — local cell_runner processes and/or remote
 * runner_daemon TCP endpoints (serve/net/transport.hpp).
 *
 * Execution model — the process-boundary analogue of util/TaskPool's
 * claiming discipline:
 *
 *  - Every cell is serialized to a job blob (serve/wire.hpp) under
 *    its grid's work directory before anything is spawned.
 *  - Each transport is one worker slot holding at most one cell
 *    attempt. A slot that frees up dynamically claims the next
 *    pending cell (grid submission order first, then the retry
 *    queue), so unequal cell costs balance across workers exactly
 *    like TaskPool's atomic cursor — work stealing without a central
 *    lock because the scheduler loop is the only claimer.
 *  - An attempt that produces a row blob has it validated here
 *    (magic/version/checksum + cell-index match) before it fills the
 *    cell's report slot. An attempt that dies (process death,
 *    connection drop, malformed frame, corrupt row) or hangs (stale
 *    heartbeat -> kill) consumes one attempt; the cell is requeued
 *    until maxRetries are exhausted, then recorded as a per-cell
 *    failure — the rest of the grid keeps running either way. A
 *    transport whose attempt never *started* (unreachable endpoint)
 *    retires itself and the cell requeues for free.
 *  - Retried cells resume from their campaign checkpoint — remote
 *    attempts upload each checkpoint write back to the scheduler, so
 *    a daemon death costs at most checkpointEvery epochs even when
 *    the retry lands on a different machine.
 *  - With a manifest directory set, every finished cell's row blob is
 *    also recorded in a crash-safe grid manifest
 *    (serve/manifest/manifest.hpp); a fresh scheduler process pointed
 *    at the same directory adopts the finished cells and computes
 *    only the rest.
 *
 * Determinism: cells are bit-reproducible campaigns writing disjoint,
 * index-addressed report slots, so the report content is identical to
 * an in-process `runSweepCells(..., workers=1, ...)` run with the
 * same checkpoint cadence — including runs where workers were killed,
 * daemons died, or the scheduler itself was restarted over the
 * manifest. That identity is the test oracle (test_dist, test_net,
 * the dist-smoke and net-smoke CI jobs).
 */

#ifndef AUTOCAT_SERVE_DIST_SCHEDULER_HPP
#define AUTOCAT_SERVE_DIST_SCHEDULER_HPP

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/sweep.hpp"

namespace autocat {

/** Thrown when FleetOptions::stopAfterCells aborts the scheduler
 *  mid-grid (fault-injection: a simulated scheduler death, after
 *  local children are reaped and connections dropped). The manifest
 *  keeps the finished cells; a re-entered run completes the grid. */
struct DistStopInjected : std::runtime_error
{
    explicit DistStopInjected(std::size_t cells_done)
        : std::runtime_error(
              "dist sweep: stop injected after " +
              std::to_string(cells_done) + " cell(s)"),
          cellsDone(cells_done)
    {
    }
    std::size_t cellsDone;
};

/** The worker fleet and its failure policy (shared by every grid the
 *  fleet runs). */
struct FleetOptions
{
    /** Local cell_runner process slots (clamped to the total cell
     *  count; 0 = remote-only fleet). */
    int localProcesses = 0;

    /** cell_runner executable path (required when localProcesses>0). */
    std::string runnerPath;

    /** runner_daemon endpoints, "host:port" each; one slot per
     *  daemon. */
    std::vector<std::string> endpoints;

    /** Re-spawns allowed per cell after a death or hang. */
    int maxRetries = 1;

    /** Kill an attempt whose liveness signal (heartbeat file mtime /
     *  received frames) is older than this many seconds; 0 disables
     *  hang detection. */
    double heartbeatTimeoutS = 0.0;

    // ----- fault-injection hooks (tests / CI harness only)
    /** Cell (by index, grids[0]) whose FIRST attempt is asked to kill
     *  itself after chaosKillAfter checkpoint writes; -1 disables.
     *  Local transports only — daemons carry their own chaos flags. */
    long chaosKillCell = -1;
    int chaosKillAfter = 1;

    /** Make chaosKillCell's first attempt hang before doing any work
     *  (exercises the heartbeat timeout) instead of self-killing. */
    bool chaosHang = false;

    /** Have chaosKillCell's first attempt SIGTERM itself instead of
     *  SIGKILL — exercises the graceful-shutdown runner path. */
    bool chaosSigterm = false;

    /** Throw DistStopInjected after this many cells finish in this
     *  run (adopted manifest cells do not count); 0 disables. */
    std::size_t stopAfterCells = 0;
};

/** One grid submitted to the fleet (the gateway submits several). */
struct ScheduledGrid
{
    std::string name;
    std::vector<SweepCell> cells;

    /** Scratch directory for job/row blobs and heartbeat files;
     *  created on demand (required, one per grid). */
    std::string workDir;

    /** Per-cell campaign checkpoint directory; empty disables
     *  mid-cell checkpoints (a retried cell then restarts — still
     *  deterministic, just slower). */
    std::string checkpointDir;

    /** Mid-cell checkpoint cadence in epochs. */
    int checkpointEvery = 0;

    /** Grid manifest directory (crash-safe re-entry); empty runs
     *  without a manifest. */
    std::string manifestDir;

    /** Wipe a manifest recorded for a different grid identity instead
     *  of refusing (GridManifest reset semantics). */
    bool manifestReset = false;

    /** Per-finished-cell observer for THIS grid (adopted manifest
     *  cells are announced too). */
    SweepProgress progress;
};

/**
 * Run every grid's cells across one shared transport fleet and return
 * one report per grid (input order). Cells are claimed in grid
 * submission order, so earlier grids effectively have priority while
 * stragglers overlap with the next grid's cells. Blocks until every
 * cell has completed, failed deterministically, or exhausted its
 * retry budget.
 *
 * @throws std::invalid_argument for fleet/grid misconfiguration (no
 *         slots, missing runner, unusable work or manifest dir, a
 *         manifest bound to a different grid without reset);
 *         std::runtime_error when every transport retired with cells
 *         still pending; DistStopInjected for stopAfterCells
 */
std::vector<SweepReport>
runSweepGridsFleet(std::vector<ScheduledGrid> grids,
                   const FleetOptions &fleet);

/** Single-grid scheduler configuration (the pre-fleet interface,
 *  kept for drivers and tests; forwards to runSweepGridsFleet). */
struct DistSweepOptions
{
    /** Worker process slots (clamped to the cell count). */
    int processes = 3;

    /** cell_runner executable path (required unless the fleet is
     *  endpoints-only). */
    std::string runnerPath;

    /** runner_daemon endpoints joining the fleet ("host:port"). */
    std::vector<std::string> endpoints;

    /** Scratch directory for job/row blobs and heartbeat files;
     *  created on demand (required). */
    std::string workDir;

    /** Per-cell campaign checkpoint directory; empty disables
     *  mid-cell checkpoints. */
    std::string checkpointDir;

    /** Mid-cell checkpoint cadence in epochs. */
    int checkpointEvery = 0;

    /** Grid manifest directory; empty disables re-entry. */
    std::string manifestDir;
    bool manifestReset = false;

    /** Re-spawns allowed per cell after a death or hang. */
    int maxRetries = 1;

    /** Kill a worker whose heartbeat is older than this (seconds);
     *  0 disables hang detection. */
    double heartbeatTimeoutS = 0.0;

    // ----- fault-injection hooks (tests / CI harness only)
    long chaosKillCell = -1;
    int chaosKillAfter = 1;
    bool chaosHang = false;
    bool chaosSigterm = false;
    std::size_t stopAfterCells = 0;
};

/**
 * Run @p cells across the configured fleet and aggregate the report.
 * Blocks until every cell has completed, failed deterministically, or
 * exhausted its retry budget.
 *
 * @throws std::invalid_argument for a missing/non-executable runner
 *         or an unusable work directory (grid-level misconfiguration,
 *         as opposed to per-cell failures which land in the report);
 *         see runSweepGridsFleet for the full set
 */
SweepReport runSweepCellsDist(const std::string &name,
                              std::vector<SweepCell> cells,
                              const DistSweepOptions &options,
                              const SweepProgress &progress = {});

} // namespace autocat

#endif // AUTOCAT_SERVE_DIST_SCHEDULER_HPP
