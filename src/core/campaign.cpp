#include "core/campaign.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "env/batch_env_pool.hpp"
#include "rl/checkpoint.hpp"
#include "util/atomic_file.hpp"
#include "util/binio.hpp"
#include "util/logging.hpp"

namespace autocat {

namespace {

constexpr char kCampaignMagic[8] = {'A', 'C', 'C', 'A', 'M', 'P', 'G',
                                    'N'};
constexpr std::uint32_t kCampaignVersion = 1;

/** Phase stop criterion: conjunctive over the criteria that are set,
 *  always requiring at least one guess per episode on average (the
 *  legacy trainUntil() contract). */
bool
phaseStopSatisfied(const CurriculumPhase &phase, const EvalStats &eval)
{
    const bool has_acc = phase.targetAccuracy >= 0.0;
    const bool has_det = phase.maxDetectionRate >= 0.0;
    if (!has_acc && !has_det)
        return false;
    if (eval.guesses < eval.episodes)
        return false;
    if (has_acc && eval.guessAccuracy < phase.targetAccuracy)
        return false;
    if (has_det && eval.detectionRate > phase.maxDetectionRate)
        return false;
    return true;
}

std::string
buildCampaignPayload(std::size_t next_phase, int epochs_done,
                     const std::vector<PhaseResult> &results)
{
    std::string p;
    binPut(p, static_cast<std::uint32_t>(next_phase));
    binPut(p, static_cast<std::uint32_t>(epochs_done));
    binPut(p, static_cast<std::uint32_t>(results.size()));
    for (const PhaseResult &r : results) {
        binPutString(p, r.name);
        binPut(p, static_cast<std::int32_t>(r.epochsRun));
        binPut(p, static_cast<std::uint8_t>(r.converged ? 1 : 0));
        binPut(p, static_cast<std::int32_t>(r.convergedEpoch));
        binPut(p, static_cast<std::int64_t>(r.envStepsEnd));
        binPut(p, r.finalEval.meanReturn);
        binPut(p, r.finalEval.meanEpisodeLength);
        binPut(p, r.finalEval.guessAccuracy);
        binPut(p, r.finalEval.bitRate);
        binPut(p, r.finalEval.detectionRate);
        binPut(p, static_cast<std::uint64_t>(r.finalEval.episodes));
        binPut(p, static_cast<std::uint64_t>(r.finalEval.guesses));
    }
    return p;
}

void
parseCampaignPayload(const std::string &payload, std::size_t *next_phase,
                     int *epochs_done, std::vector<PhaseResult> *results)
{
    ByteCursor c(payload, "campaign checkpoint");
    *next_phase = c.get<std::uint32_t>();
    *epochs_done = static_cast<int>(c.get<std::uint32_t>());
    const auto count = c.get<std::uint32_t>();
    results->clear();
    results->reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        PhaseResult r;
        r.name = c.getString();
        r.epochsRun = c.get<std::int32_t>();
        r.converged = c.get<std::uint8_t>() != 0;
        r.convergedEpoch = c.get<std::int32_t>();
        r.envStepsEnd = c.get<std::int64_t>();
        r.finalEval.meanReturn = c.get<double>();
        r.finalEval.meanEpisodeLength = c.get<double>();
        r.finalEval.guessAccuracy = c.get<double>();
        r.finalEval.bitRate = c.get<double>();
        r.finalEval.detectionRate = c.get<double>();
        r.finalEval.episodes =
            static_cast<std::size_t>(c.get<std::uint64_t>());
        r.finalEval.guesses =
            static_cast<std::size_t>(c.get<std::uint64_t>());
        results->push_back(std::move(r));
    }
    c.expectExhausted();
}

} // namespace

std::uint64_t
checkpointBoundarySeed(std::uint64_t stream_seed, int global_epoch)
{
    // splitmix64-style finalizer over (seed, epoch) so consecutive
    // boundaries of one stream decorrelate.
    std::uint64_t x = stream_seed + 0x9e3779b97f4a7c15ull *
                                        (static_cast<std::uint64_t>(
                                             global_epoch) +
                                         1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

void
RewardOverrides::apply(EnvConfig &env) const
{
    if (correctGuessReward)
        env.correctGuessReward = *correctGuessReward;
    if (wrongGuessReward)
        env.wrongGuessReward = *wrongGuessReward;
    if (stepReward)
        env.stepReward = *stepReward;
    if (lengthViolationReward)
        env.lengthViolationReward = *lengthViolationReward;
    if (detectionReward)
        env.detectionReward = *detectionReward;
    if (noGuessReward)
        env.noGuessReward = *noGuessReward;
}

TrainingSession::TrainingSession(CampaignConfig config,
                                 std::unique_ptr<MemorySystem> memory,
                                 EnvDecorator decorate)
    : config_(std::move(config)),
      memory_(std::move(memory)),
      decorate_(std::move(decorate))
{
}

TrainingSession::~TrainingSession() = default;

PpoTrainer &
TrainingSession::trainer()
{
    if (!trainer_)
        throw std::logic_error(
            "TrainingSession::trainer: run() has not built the trainer "
            "yet");
    return *trainer_;
}

std::vector<CurriculumPhase>
TrainingSession::resolvedPhases() const
{
    if (!config_.phases.empty())
        return config_.phases;
    // Legacy explore() semantics: one phase driven by the base config's
    // budget and accuracy target. trainUntil() treated ANY target as an
    // active criterion (a negative target converges on the first
    // guessing epoch), while a negative phase target means "disabled" —
    // clamp to 0 so the legacy behavior is preserved exactly.
    CurriculumPhase legacy;
    legacy.name = "explore";
    legacy.maxEpochs = config_.base.maxEpochs;
    legacy.targetAccuracy = std::max(0.0, config_.base.targetAccuracy);
    return {legacy};
}

std::string
TrainingSession::phaseScenario(const CurriculumPhase &phase) const
{
    return phase.scenario.empty() ? config_.base.scenario : phase.scenario;
}

ScenarioContext
TrainingSession::phaseContext(const CurriculumPhase &phase) const
{
    ScenarioContext ctx(config_.base.env);
    phase.rewards.apply(ctx.env);
    if (phase.detectionEnable)
        ctx.env.detectionEnable = *phase.detectionEnable;
    if (phase.multiSecret)
        ctx.env.multiSecret = *phase.multiSecret;
    if (phase.multiSecretEpisodeSteps)
        ctx.env.multiSecretEpisodeSteps = *phase.multiSecretEpisodeSteps;
    ctx.detectors = phase.detectors;
    return ctx;
}

void
TrainingSession::buildPhaseEnv(const CurriculumPhase &phase,
                               const ScenarioContext &ctx)
{
    const std::string scenario = phaseScenario(phase);
    const auto decorate_stream = [this](Environment &env) {
        if (!decorate_)
            return;
        auto *game = dynamic_cast<CacheGuessingGame *>(&env);
        if (!game)
            throw std::invalid_argument(
                "explore: the decorator requires a CacheGuessingGame "
                "scenario");
        decorate_(*game);
    };

    const VecEnvKind kind = config_.base.batchEnv
                                ? VecEnvKind::Batch
                                : (config_.base.threadedEnvs
                                       ? VecEnvKind::Threaded
                                       : VecEnvKind::Sync);
    if (memory_) {
        // An externally-built memory system exists exactly once, so it
        // can back exactly one stream.
        std::vector<std::unique_ptr<Environment>> envs;
        envs.push_back(makeEnv(scenario, ctx, std::move(memory_)));
        decorate_stream(*envs.front());
        switch (kind) {
          case VecEnvKind::Batch:
            vec_ = std::make_unique<BatchVecEnv>(std::move(envs));
            break;
          case VecEnvKind::Threaded:
            vec_ = std::make_unique<ThreadedVecEnv>(std::move(envs));
            break;
          case VecEnvKind::Sync:
            vec_ = std::make_unique<SyncVecEnv>(std::move(envs));
            break;
        }
    } else {
        vec_ = makeVecEnv(
            scenario, ctx,
            static_cast<std::size_t>(
                std::max(1, config_.base.numStreams)),
            kind, decorate_stream);
    }
}

void
TrainingSession::boundarySync(const ScenarioContext &ctx)
{
    const std::size_t n = vec_->numEnvs();
    for (std::size_t i = 0; i < n; ++i) {
        vec_->env(i).reseed(checkpointBoundarySeed(
            ctx.env.seed + i, trainer_->epochsCompleted()));
    }
    trainer_->restartCollection();
}

void
TrainingSession::writeCheckpoint(std::size_t next_phase, int epochs_done,
                                 const std::vector<PhaseResult> &results)
{
    // Crash-safe: both sections are staged in memory and land on disk
    // via temp file + fsync + atomic rename, so a worker killed at any
    // instant leaves either the previous complete checkpoint or the
    // new one — never a truncated file that blocks resume.
    std::ostringstream oss(std::ios::binary);
    writeBinarySection(oss, kCampaignMagic, kCampaignVersion,
                       buildCampaignPayload(next_phase, epochs_done,
                                            results),
                       "campaign checkpoint");
    writePpoCheckpoint(oss, *trainer_);
    atomicWriteFile(config_.checkpointPath, oss.str(),
                    "campaign checkpoint");
}

std::unique_ptr<std::ifstream>
TrainingSession::openResume(const std::vector<CurriculumPhase> &phases,
                            std::size_t *start_phase, int *start_epoch,
                            std::vector<PhaseResult> *results)
{
    auto in = std::make_unique<std::ifstream>(config_.checkpointPath,
                                              std::ios::binary);
    if (!*in)
        return nullptr;  // missing file: start fresh
    const std::string payload = readBinarySection(
        *in, kCampaignMagic, kCampaignVersion, "campaign checkpoint");
    parseCampaignPayload(payload, start_phase, start_epoch, results);
    if (*start_phase > phases.size())
        throw std::runtime_error(
            "campaign checkpoint: position beyond the configured phase "
            "list (phase " + std::to_string(*start_phase) + " of " +
            std::to_string(phases.size()) + ")");
    if (results->size() != *start_phase)
        throw std::runtime_error(
            "campaign checkpoint: stored phase results do not match the "
            "campaign position (corrupt file?)");
    if (*start_phase < phases.size() &&
        *start_epoch >= phases[*start_phase].maxEpochs)
        throw std::runtime_error(
            "campaign checkpoint: mid-phase epoch beyond the phase "
            "budget (config changed since the checkpoint?)");
    return in;
}

CampaignResult
TrainingSession::run(const EpochCallback &epoch_cb,
                     const PhaseCallback &phase_cb,
                     const CheckpointCallback &checkpoint_cb)
{
    if (ran_)
        throw std::logic_error("TrainingSession::run: already ran");
    ran_ = true;

    const std::vector<CurriculumPhase> phases = resolvedPhases();
    const bool checkpointing = !config_.checkpointPath.empty();
    if (checkpointing && memory_)
        throw std::invalid_argument(
            "campaign: checkpointing cannot rebuild an externally-built "
            "memory system; drop the memory argument or the checkpoint "
            "path");
    if (phases.size() > 1 && memory_)
        throw std::invalid_argument(
            "campaign: an externally-built memory system supports a "
            "single phase only");

    CampaignResult result;
    std::size_t start_phase = 0;
    int start_epoch = 0;
    std::unique_ptr<std::ifstream> resume_in;
    if (config_.resume && checkpointing) {
        resume_in =
            openResume(phases, &start_phase, &start_epoch, &result.phases);
        result.resumed = resume_in != nullptr;
    }
    // A checkpoint taken after the last phase has nothing left to
    // train; rebuild the final phase for evaluation/extraction only.
    bool already_complete = false;
    if (result.resumed && start_phase >= phases.size()) {
        already_complete = true;
        start_phase = phases.size() - 1;
        start_epoch = phases[start_phase].maxEpochs;
    }

    ScenarioContext ctx;
    for (std::size_t p = start_phase; p < phases.size(); ++p) {
        const CurriculumPhase &phase = phases[p];
        ctx = phaseContext(phase);
        // The trainer's dimension check in setVecEnv reads the old
        // VecEnv, so the previous phase's environments must outlive
        // the rebind.
        std::unique_ptr<VecEnv> previous = std::move(vec_);
        buildPhaseEnv(phase, ctx);
        if (!trainer_) {
            trainer_ =
                std::make_unique<PpoTrainer>(*vec_, config_.base.ppo);
        } else {
            trainer_->setVecEnv(*vec_);
        }
        previous.reset();
        const int epochs_done = (p == start_phase) ? start_epoch : 0;
        if (resume_in) {
            readPpoCheckpoint(*resume_in, *trainer_);
            resume_in.reset();
        }
        // Every point a checkpoint can resume at must be entered in
        // the boundary-synced state by BOTH the uninterrupted and the
        // resumed run: any phase entry after the first (the phase-end
        // write put a checkpoint exactly here) and any mid-phase
        // resume position. Without the phase-entry sync, an
        // uninterrupted run would train a new phase on its
        // construction-seeded streams while a resumed run trains on
        // reseeded ones — breaking the bit-identity contract.
        if (checkpointing && (p > 0 || epochs_done > 0))
            boundarySync(ctx);

        PhaseResult pr;
        pr.name = phase.name.empty() ? ("phase-" + std::to_string(p))
                                     : phase.name;
        bool recorded = false;

        for (int e = epochs_done + 1; e <= phase.maxEpochs; ++e) {
            EpochStats stats = trainer_->runEpoch();
            stats.eval = trainer_->evaluate(config_.base.evalEpisodes,
                                            /*greedy=*/true);
            if (epoch_cb)
                epoch_cb(stats);

            const bool stop = phaseStopSatisfied(phase, stats.eval);
            if (stop && !pr.converged) {
                pr.converged = true;
                pr.convergedEpoch = e;
            }
            const bool phase_over = stop || e == phase.maxEpochs;
            if (phase_over) {
                pr.epochsRun = e;
                pr.finalEval = stats.eval;
                pr.envStepsEnd = trainer_->totalEnvSteps();
                result.phases.push_back(pr);
                recorded = true;
            }
            const bool cadence = config_.checkpointEvery > 0 &&
                                 e % config_.checkpointEvery == 0;
            if (checkpointing && (phase_over || cadence)) {
                boundarySync(ctx);
                writeCheckpoint(phase_over ? p + 1 : p,
                                phase_over ? 0 : e, result.phases);
                if (checkpoint_cb) {
                    checkpoint_cb(config_.checkpointPath,
                                  phase_over ? p + 1 : p,
                                  phase_over ? 0 : e);
                }
            }
            if (phase_over)
                break;
        }

        if (!recorded && !already_complete) {
            // Zero-epoch phase (maxEpochs <= epochs already done):
            // record it so results line up with the phase list.
            pr.epochsRun = epochs_done;
            pr.envStepsEnd = trainer_->totalEnvSteps();
            result.phases.push_back(pr);
            recorded = true;
        }
        if (recorded && phase_cb)
            phase_cb(p, result.phases.back());
    }

    // Final summary in explore()'s result shape.
    const PhaseResult &last = result.phases.back();
    ExplorationResult &fin = result.final;
    fin.converged = last.converged;
    fin.epochsToConverge = last.convergedEpoch;
    fin.envSteps = trainer_->totalEnvSteps();
    // Phases stop at their first convergence check that passes, so the
    // converging phase's end-of-phase step count IS the steps-to-
    // discovery sample-efficiency measure. Derived here — checkpoints
    // already record envStepsEnd, so resumed runs agree for free.
    fin.stepsToDiscovery = last.converged ? last.envStepsEnd : -1;

    const EvalStats final_eval =
        trainer_->evaluate(config_.base.evalEpisodes, /*greedy=*/true);
    fin.finalAccuracy = final_eval.guessAccuracy;
    fin.finalEpisodeLength = final_eval.meanEpisodeLength;
    fin.bitRate = final_eval.bitRate;
    fin.detectionRate = final_eval.detectionRate;

    // Sequence extraction needs guessing-game introspection; scenarios
    // that are not guessing games report metrics only.
    if (auto *game = dynamic_cast<CacheGuessingGame *>(&vec_->env(0))) {
        fin.sequence =
            extractSequence(*game, trainer_->policy(), &fin.finalGuess);
        fin.category = classifyAttack(fin.sequence, ctx.env);
    }
    return result;
}

CampaignResult
runCampaign(CampaignConfig config,
            const TrainingSession::EpochCallback &epoch_cb,
            const TrainingSession::PhaseCallback &phase_cb)
{
    TrainingSession session(std::move(config));
    return session.run(epoch_cb, phase_cb);
}

} // namespace autocat
