#include "core/config_parser.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace autocat {

bool
parseConfigBool(const std::string &value, const std::string &key)
{
    if (value == "true" || value == "1" || value == "yes")
        return true;
    if (value == "false" || value == "0" || value == "no")
        return false;
    throw std::invalid_argument("config: bad boolean for " + key + ": " +
                                value);
}

std::uint64_t
parseConfigUint(const std::string &value, const std::string &key)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("config: bad unsigned integer for " +
                                    key + ": " + value);
    }
    try {
        return std::stoull(value);
    } catch (const std::exception &) {
        throw std::invalid_argument("config: value out of range for " +
                                    key + ": " + value);
    }
}

double
parseConfigDouble(const std::string &value, const std::string &key)
{
    try {
        std::size_t consumed = 0;
        const double parsed = std::stod(value, &consumed);
        // "nan"/"inf" parse cleanly but are never a sane knob value;
        // they would train silently-garbage agents.
        if (consumed != value.size() || !std::isfinite(parsed))
            throw std::invalid_argument("not a finite number");
        return parsed;
    } catch (const std::exception &) {
        throw std::invalid_argument("config: bad number for " + key +
                                    ": " + value);
    }
}

unsigned
parseConfigU32(const std::string &value, const std::string &key)
{
    const std::uint64_t parsed = parseConfigUint(value, key);
    if (parsed > 0xffffffffull) {
        throw std::invalid_argument("config: value out of range for " +
                                    key + ": " + value);
    }
    return static_cast<unsigned>(parsed);
}

int
parseConfigInt(const std::string &value, const std::string &key)
{
    const std::uint64_t parsed = parseConfigUint(value, key);
    if (parsed > 0x7fffffffull) {
        throw std::invalid_argument("config: value out of range for " +
                                    key + ": " + value);
    }
    return static_cast<int>(parsed);
}

std::string
trimConfigToken(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

std::string
renderConfigDouble(double v)
{
    // Default ostream precision is 6 digits, which silently perturbs
    // high-precision knobs; std::to_chars emits the shortest exact
    // rendering, locale-independently.
    char buf[40];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

namespace {

/** Hierarchy depth cap for the config surface (sanity bound). */
constexpr unsigned kMaxHierarchyLevels = 8;

/**
 * Apply a "hierarchy." key: either hierarchy.num_cores or a
 * hierarchy.levels[K].field entry, where field is one of num_sets /
 * num_ways / rep_policy / prefetcher / random_set_mapping /
 * address_space / seed / inclusion / shared. The levels list grows on
 * demand so levels may be configured in any order.
 */
void
applyHierarchyKey(ExplorationConfig &cfg, const std::string &key,
                  const std::string &value)
{
    HierarchyConfig &h = cfg.env.hierarchy;
    if (key == "hierarchy.num_cores") {
        h.numCores = parseConfigU32(value, key);
        return;
    }

    const std::string prefix = "hierarchy.levels[";
    const auto close = key.find(']');
    if (key.compare(0, prefix.size(), prefix) != 0 ||
        close == std::string::npos || close + 1 >= key.size() ||
        key[close + 1] != '.') {
        throw std::invalid_argument("config: unknown option '" + key +
                                    "'");
    }

    // Strict index parse: "0z" must not silently parse as level 0.
    const std::uint64_t idx = parseConfigUint(
        key.substr(prefix.size(), close - prefix.size()), key);
    if (idx >= kMaxHierarchyLevels) {
        throw std::invalid_argument(
            "config: hierarchy level index out of range in '" + key +
            "'");
    }
    if (h.levels.size() <= idx)
        h.levels.resize(idx + 1);
    HierarchyLevelConfig &lvl = h.levels[idx];

    const std::string field = key.substr(close + 2);
    if (field == "num_sets")
        lvl.cache.numSets = parseConfigU32(value, key);
    else if (field == "num_ways")
        lvl.cache.numWays = parseConfigU32(value, key);
    else if (field == "rep_policy")
        lvl.cache.policy = replPolicyFromString(value);
    else if (field == "prefetcher")
        lvl.cache.prefetcher = prefetcherFromString(value);
    else if (field == "random_set_mapping")
        lvl.cache.randomSetMapping = parseConfigBool(value, key);
    else if (field == "address_space")
        lvl.cache.addressSpaceSize = parseConfigUint(value, key);
    else if (field == "seed")
        lvl.cache.seed = parseConfigUint(value, key);
    else if (field == "inclusion")
        lvl.inclusion = inclusionFromString(value);
    else if (field == "shared")
        lvl.shared = parseConfigBool(value, key);
    else
        throw std::invalid_argument("config: unknown hierarchy field '" +
                                    field + "' in '" + key + "'");
}

/**
 * Apply a "tlb." key: the TLB channel's geometry / walk parameters
 * (only the tlb_evict scenario reads them, but the keys parse and
 * round-trip regardless of scenario).
 */
void
applyTlbKey(ExplorationConfig &cfg, const std::string &key,
            const std::string &value)
{
    TlbConfig &t = cfg.env.channel.tlb;
    const std::string field = key.substr(4);
    if (field == "num_sets")
        t.numSets = parseConfigU32(value, key);
    else if (field == "num_ways")
        t.numWays = parseConfigU32(value, key);
    else if (field == "rep_policy")
        t.policy = replPolicyFromString(value);
    else if (field == "walk_levels")
        t.walkLevels = parseConfigU32(value, key);
    else if (field == "level_bits")
        t.levelBits = parseConfigU32(value, key);
    else if (field == "pwc_sets")
        t.pwcSets = parseConfigU32(value, key);
    else if (field == "pwc_ways")
        t.pwcWays = parseConfigU32(value, key);
    else if (field == "address_space")
        t.addressSpaceSize = parseConfigUint(value, key);
    else if (field == "seed")
        t.seed = parseConfigUint(value, key);
    else
        throw std::invalid_argument("config: unknown tlb field '" +
                                    field + "' in '" + key + "'");
}

/**
 * Apply a "channel." key: the prefetch_probe victim burst shape.
 */
void
applyChannelKey(ExplorationConfig &cfg, const std::string &key,
                const std::string &value)
{
    ChannelConfig &c = cfg.env.channel;
    const std::string field = key.substr(8);
    if (field == "prefetch_burst_len")
        c.prefetchBurstLen = parseConfigU32(value, key);
    else if (field == "prefetch_burst_base")
        c.prefetchBurstBase = parseConfigUint(value, key);
    else
        throw std::invalid_argument("config: unknown channel field '" +
                                    field + "' in '" + key + "'");
}

} // namespace

ExplorationConfig
parseExplorationConfig(std::istream &in, const ConfigKeyHandler &extra)
{
    ExplorationConfig cfg;

    using Setter = std::function<void(const std::string &)>;
    const std::map<std::string, Setter> setters = {
        // ----- cache configuration (Table II)
        {"num_sets",
         [&](const std::string &v) {
             cfg.env.cache.numSets = parseConfigU32(v, "num_sets");
         }},
        {"num_ways",
         [&](const std::string &v) {
             cfg.env.cache.numWays = parseConfigU32(v, "num_ways");
         }},
        {"rep_policy",
         [&](const std::string &v) {
             cfg.env.cache.policy = replPolicyFromString(v);
         }},
        {"prefetcher",
         [&](const std::string &v) {
             cfg.env.cache.prefetcher = prefetcherFromString(v);
         }},
        {"random_set_mapping",
         [&](const std::string &v) {
             cfg.env.cache.randomSetMapping =
                 parseConfigBool(v, "random_set_mapping");
         }},
        {"address_space",
         [&](const std::string &v) {
             cfg.env.cache.addressSpaceSize =
                 parseConfigUint(v, "address_space");
         }},
        {"cache_seed",
         [&](const std::string &v) {
             cfg.env.cache.seed = parseConfigUint(v, "cache_seed");
         }},
        // ----- attack & victim configuration (Table II)
        {"attack_addr_s",
         [&](const std::string &v) {
             cfg.env.attackAddrS = parseConfigUint(v, "attack_addr_s");
         }},
        {"attack_addr_e",
         [&](const std::string &v) {
             cfg.env.attackAddrE = parseConfigUint(v, "attack_addr_e");
         }},
        {"victim_addr_s",
         [&](const std::string &v) {
             cfg.env.victimAddrS = parseConfigUint(v, "victim_addr_s");
         }},
        {"victim_addr_e",
         [&](const std::string &v) {
             cfg.env.victimAddrE = parseConfigUint(v, "victim_addr_e");
         }},
        {"flush_enable",
         [&](const std::string &v) {
             cfg.env.flushEnable = parseConfigBool(v, "flush_enable");
         }},
        {"victim_no_access_enable",
         [&](const std::string &v) {
             cfg.env.victimNoAccessEnable =
                 parseConfigBool(v, "victim_no_access_enable");
         }},
        {"detection_enable",
         [&](const std::string &v) {
             cfg.env.detectionEnable =
                 parseConfigBool(v, "detection_enable");
         }},
        {"pl_cache_lock_victim",
         [&](const std::string &v) {
             cfg.env.plCacheLockVictim =
                 parseConfigBool(v, "pl_cache_lock_victim");
         }},
        {"require_trigger_before_guess",
         [&](const std::string &v) {
             cfg.env.requireTriggerBeforeGuess =
                 parseConfigBool(v, "require_trigger_before_guess");
         }},
        // ----- episode / RL configuration (Table II)
        {"window_size",
         [&](const std::string &v) {
             cfg.env.windowSize = parseConfigU32(v, "window_size");
         }},
        {"episode_length_limit",
         [&](const std::string &v) {
             cfg.env.episodeLengthLimit =
                 parseConfigU32(v, "episode_length_limit");
         }},
        {"multi_secret",
         [&](const std::string &v) {
             cfg.env.multiSecret = parseConfigBool(v, "multi_secret");
         }},
        {"multi_secret_episode_steps",
         [&](const std::string &v) {
             cfg.env.multiSecretEpisodeSteps =
                 parseConfigU32(v, "multi_secret_episode_steps");
         }},
        {"reveal_on_guess",
         [&](const std::string &v) {
             cfg.env.revealOnGuess =
                 parseConfigBool(v, "reveal_on_guess");
         }},
        {"random_init",
         [&](const std::string &v) {
             cfg.env.randomInit = parseConfigBool(v, "random_init");
         }},
        {"init_accesses",
         [&](const std::string &v) {
             cfg.env.initAccesses = parseConfigU32(v, "init_accesses");
         }},
        {"correct_guess_reward",
         [&](const std::string &v) {
             cfg.env.correctGuessReward =
                 parseConfigDouble(v, "correct_guess_reward");
         }},
        {"wrong_guess_reward",
         [&](const std::string &v) {
             cfg.env.wrongGuessReward =
                 parseConfigDouble(v, "wrong_guess_reward");
         }},
        {"step_reward",
         [&](const std::string &v) {
             cfg.env.stepReward = parseConfigDouble(v, "step_reward");
         }},
        {"length_violation_reward",
         [&](const std::string &v) {
             cfg.env.lengthViolationReward =
                 parseConfigDouble(v, "length_violation_reward");
         }},
        {"detection_reward",
         [&](const std::string &v) {
             cfg.env.detectionReward =
                 parseConfigDouble(v, "detection_reward");
         }},
        {"no_guess_reward",
         [&](const std::string &v) {
             cfg.env.noGuessReward =
                 parseConfigDouble(v, "no_guess_reward");
         }},
        // ----- sample-efficiency layer
        {"mask_actions",
         [&](const std::string &v) {
             cfg.env.maskActions = parseConfigBool(v, "mask_actions");
         }},
        {"mask_useless_actions",
         [&](const std::string &v) {
             cfg.env.maskUselessActions =
                 parseConfigBool(v, "mask_useless_actions");
         }},
        {"useless_action_penalty",
         [&](const std::string &v) {
             cfg.env.uselessActionPenalty =
                 parseConfigDouble(v, "useless_action_penalty");
         }},
        {"seed",
         [&](const std::string &v) {
             cfg.env.seed = parseConfigUint(v, "seed");
         }},
        // ----- PPO hyper-parameters
        {"ppo_seed",
         [&](const std::string &v) {
             cfg.ppo.seed = parseConfigUint(v, "ppo_seed");
         }},
        {"steps_per_epoch",
         [&](const std::string &v) {
             cfg.ppo.stepsPerEpoch = parseConfigInt(v, "steps_per_epoch");
         }},
        {"learning_rate",
         [&](const std::string &v) {
             cfg.ppo.lr = parseConfigDouble(v, "learning_rate");
         }},
        {"entropy_coef",
         [&](const std::string &v) {
             cfg.ppo.entropyCoef = parseConfigDouble(v, "entropy_coef");
         }},
        {"gamma",
         [&](const std::string &v) {
             cfg.ppo.gamma = parseConfigDouble(v, "gamma");
         }},
        {"lambda",
         [&](const std::string &v) {
             cfg.ppo.lambda = parseConfigDouble(v, "lambda");
         }},
        {"clip",
         [&](const std::string &v) {
             cfg.ppo.clip = parseConfigDouble(v, "clip");
         }},
        {"update_passes",
         [&](const std::string &v) {
             cfg.ppo.updatePasses = parseConfigInt(v, "update_passes");
         }},
        {"minibatch_size",
         [&](const std::string &v) {
             cfg.ppo.minibatchSize = parseConfigInt(v, "minibatch_size");
         }},
        {"entropy_decay",
         [&](const std::string &v) {
             cfg.ppo.entropyDecay = parseConfigDouble(v, "entropy_decay");
         }},
        {"entropy_min",
         [&](const std::string &v) {
             cfg.ppo.entropyMin = parseConfigDouble(v, "entropy_min");
         }},
        {"value_coef",
         [&](const std::string &v) {
             cfg.ppo.valueCoef = parseConfigDouble(v, "value_coef");
         }},
        {"max_grad_norm",
         [&](const std::string &v) {
             cfg.ppo.maxGradNorm = parseConfigDouble(v, "max_grad_norm");
         }},
        {"hidden",
         [&](const std::string &v) {
             cfg.ppo.hidden = parseConfigUint(v, "hidden");
         }},
        {"layers",
         [&](const std::string &v) {
             cfg.ppo.layers = parseConfigUint(v, "layers");
         }},
        // ----- exploration control
        {"scenario",
         [&](const std::string &v) { cfg.scenario = v; }},
        {"num_streams",
         [&](const std::string &v) {
             cfg.numStreams = parseConfigInt(v, "num_streams");
         }},
        {"threaded_envs",
         [&](const std::string &v) {
             cfg.threadedEnvs = parseConfigBool(v, "threaded_envs");
         }},
        {"batch_env",
         [&](const std::string &v) {
             cfg.batchEnv = parseConfigBool(v, "batch_env");
         }},
        {"double_buffered",
         [&](const std::string &v) {
             cfg.ppo.doubleBuffered =
                 parseConfigBool(v, "double_buffered");
         }},
        {"max_epochs",
         [&](const std::string &v) {
             cfg.maxEpochs = parseConfigInt(v, "max_epochs");
         }},
        {"target_accuracy",
         [&](const std::string &v) {
             cfg.targetAccuracy = parseConfigDouble(v, "target_accuracy");
         }},
        {"eval_episodes",
         [&](const std::string &v) {
             cfg.evalEpisodes = parseConfigInt(v, "eval_episodes");
         }},
        {"verbose",
         [&](const std::string &v) {
             cfg.verbose = parseConfigBool(v, "verbose");
         }},
    };

    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trimConfigToken(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument(
                "config: missing '=' on line " + std::to_string(lineno));
        }
        const std::string key = trimConfigToken(line.substr(0, eq));
        const std::string value =
            trimConfigToken(line.substr(eq + 1));

        // Every key family reports errors with the offending line.
        const auto with_line = [&](const auto &apply) {
            try {
                apply();
            } catch (const std::invalid_argument &e) {
                throw std::invalid_argument(std::string(e.what()) +
                                            " on line " +
                                            std::to_string(lineno));
            }
        };

        const auto it = setters.find(key);
        if (it != setters.end()) {
            with_line([&] { it->second(value); });
        } else if (key.compare(0, 10, "hierarchy.") == 0) {
            with_line([&] { applyHierarchyKey(cfg, key, value); });
        } else if (key.compare(0, 4, "tlb.") == 0) {
            with_line([&] { applyTlbKey(cfg, key, value); });
        } else if (key.compare(0, 8, "channel.") == 0) {
            with_line([&] { applyChannelKey(cfg, key, value); });
        } else {
            bool handled = false;
            if (extra)
                with_line([&] { handled = extra(key, value); });
            if (!handled) {
                throw std::invalid_argument("config: unknown option '" +
                                            key + "' on line " +
                                            std::to_string(lineno));
            }
        }
    }

    // Keep the address space large enough for the configured ranges.
    const std::uint64_t needed =
        std::max(cfg.env.attackAddrE, cfg.env.victimAddrE) + 2;
    if (cfg.env.cache.addressSpaceSize < needed)
        cfg.env.cache.addressSpaceSize = needed;
    for (auto &lvl : cfg.env.hierarchy.levels) {
        if (lvl.cache.addressSpaceSize < needed)
            lvl.cache.addressSpaceSize = needed;
    }
    if (cfg.env.channel.tlb.addressSpaceSize < needed)
        cfg.env.channel.tlb.addressSpaceSize = needed;
    return cfg;
}

ExplorationConfig
parseExplorationConfig(const std::string &text,
                       const ConfigKeyHandler &extra)
{
    std::istringstream iss(text);
    return parseExplorationConfig(iss, extra);
}

ExplorationConfig
loadExplorationConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("config: cannot open " + path);
    return parseExplorationConfig(in);
}

std::string
renderExplorationConfig(const ExplorationConfig &cfg)
{
    // The one free-form string this renderer emits: '#' starts a
    // comment anywhere in a line, '\n' would inject a config line, and
    // values are whitespace-trimmed on parse, so such a scenario name
    // would silently re-parse changed instead of round-tripping.
    if (cfg.scenario.find_first_of("#\n") != std::string::npos ||
        cfg.scenario != trimConfigToken(cfg.scenario)) {
        throw std::invalid_argument(
            "renderExplorationConfig: scenario name is not "
            "representable in the config format: '" + cfg.scenario + "'");
    }

    std::ostringstream out;
    out << "num_sets = " << cfg.env.cache.numSets << "\n"
        << "num_ways = " << cfg.env.cache.numWays << "\n"
        << "rep_policy = " << replPolicyName(cfg.env.cache.policy) << "\n"
        << "prefetcher = " << prefetcherName(cfg.env.cache.prefetcher)
        << "\n"
        << "random_set_mapping = "
        << (cfg.env.cache.randomSetMapping ? "true" : "false") << "\n"
        << "address_space = " << cfg.env.cache.addressSpaceSize << "\n"
        << "cache_seed = " << cfg.env.cache.seed << "\n"
        << "attack_addr_s = " << cfg.env.attackAddrS << "\n"
        << "attack_addr_e = " << cfg.env.attackAddrE << "\n"
        << "victim_addr_s = " << cfg.env.victimAddrS << "\n"
        << "victim_addr_e = " << cfg.env.victimAddrE << "\n"
        << "flush_enable = " << (cfg.env.flushEnable ? "true" : "false")
        << "\n"
        << "victim_no_access_enable = "
        << (cfg.env.victimNoAccessEnable ? "true" : "false") << "\n"
        << "detection_enable = "
        << (cfg.env.detectionEnable ? "true" : "false") << "\n"
        << "pl_cache_lock_victim = "
        << (cfg.env.plCacheLockVictim ? "true" : "false") << "\n"
        << "require_trigger_before_guess = "
        << (cfg.env.requireTriggerBeforeGuess ? "true" : "false") << "\n"
        << "window_size = " << cfg.env.windowSize << "\n"
        << "episode_length_limit = " << cfg.env.episodeLengthLimit << "\n";
    if (!cfg.env.hierarchy.levels.empty()) {
        out << "hierarchy.num_cores = " << cfg.env.hierarchy.numCores
            << "\n";
        for (std::size_t k = 0; k < cfg.env.hierarchy.levels.size();
             ++k) {
            const HierarchyLevelConfig &lvl = cfg.env.hierarchy.levels[k];
            const std::string p =
                "hierarchy.levels[" + std::to_string(k) + "].";
            out << p << "num_sets = " << lvl.cache.numSets << "\n"
                << p << "num_ways = " << lvl.cache.numWays << "\n"
                << p << "rep_policy = " << replPolicyName(lvl.cache.policy)
                << "\n"
                << p << "prefetcher = "
                << prefetcherName(lvl.cache.prefetcher) << "\n"
                << p << "random_set_mapping = "
                << (lvl.cache.randomSetMapping ? "true" : "false") << "\n"
                << p << "address_space = " << lvl.cache.addressSpaceSize
                << "\n"
                << p << "seed = " << lvl.cache.seed << "\n"
                << p << "inclusion = " << inclusionName(lvl.inclusion)
                << "\n"
                << p << "shared = " << (lvl.shared ? "true" : "false")
                << "\n";
        }
    }
    const TlbConfig &tlb = cfg.env.channel.tlb;
    out << "tlb.num_sets = " << tlb.numSets << "\n"
        << "tlb.num_ways = " << tlb.numWays << "\n"
        << "tlb.rep_policy = " << replPolicyName(tlb.policy) << "\n"
        << "tlb.walk_levels = " << tlb.walkLevels << "\n"
        << "tlb.level_bits = " << tlb.levelBits << "\n"
        << "tlb.pwc_sets = " << tlb.pwcSets << "\n"
        << "tlb.pwc_ways = " << tlb.pwcWays << "\n"
        << "tlb.address_space = " << tlb.addressSpaceSize << "\n"
        << "tlb.seed = " << tlb.seed << "\n"
        << "channel.prefetch_burst_len = "
        << cfg.env.channel.prefetchBurstLen << "\n"
        << "channel.prefetch_burst_base = "
        << cfg.env.channel.prefetchBurstBase << "\n";
    out
        << "multi_secret = "
        << (cfg.env.multiSecret ? "true" : "false") << "\n"
        << "multi_secret_episode_steps = "
        << cfg.env.multiSecretEpisodeSteps << "\n"
        << "reveal_on_guess = "
        << (cfg.env.revealOnGuess ? "true" : "false") << "\n"
        << "random_init = " << (cfg.env.randomInit ? "true" : "false")
        << "\n"
        << "init_accesses = " << cfg.env.initAccesses << "\n"
        << "correct_guess_reward = " << renderConfigDouble(cfg.env.correctGuessReward)
        << "\n"
        << "wrong_guess_reward = " << renderConfigDouble(cfg.env.wrongGuessReward)
        << "\n"
        << "step_reward = " << renderConfigDouble(cfg.env.stepReward) << "\n"
        << "length_violation_reward = "
        << renderConfigDouble(cfg.env.lengthViolationReward) << "\n"
        << "detection_reward = " << renderConfigDouble(cfg.env.detectionReward)
        << "\n"
        << "no_guess_reward = " << renderConfigDouble(cfg.env.noGuessReward)
        << "\n"
        << "mask_actions = " << (cfg.env.maskActions ? "true" : "false")
        << "\n"
        << "mask_useless_actions = "
        << (cfg.env.maskUselessActions ? "true" : "false") << "\n"
        << "useless_action_penalty = "
        << renderConfigDouble(cfg.env.uselessActionPenalty) << "\n"
        << "seed = " << cfg.env.seed << "\n"
        << "scenario = " << cfg.scenario << "\n"
        << "num_streams = " << cfg.numStreams << "\n"
        << "threaded_envs = " << (cfg.threadedEnvs ? "true" : "false")
        << "\n"
        << "batch_env = " << (cfg.batchEnv ? "true" : "false") << "\n"
        << "double_buffered = "
        << (cfg.ppo.doubleBuffered ? "true" : "false") << "\n"
        << "ppo_seed = " << cfg.ppo.seed << "\n"
        << "steps_per_epoch = " << cfg.ppo.stepsPerEpoch << "\n"
        << "learning_rate = " << renderConfigDouble(cfg.ppo.lr) << "\n"
        << "entropy_coef = " << renderConfigDouble(cfg.ppo.entropyCoef) << "\n"
        << "gamma = " << renderConfigDouble(cfg.ppo.gamma) << "\n"
        << "lambda = " << renderConfigDouble(cfg.ppo.lambda) << "\n"
        << "clip = " << renderConfigDouble(cfg.ppo.clip) << "\n"
        << "update_passes = " << cfg.ppo.updatePasses << "\n"
        << "minibatch_size = " << cfg.ppo.minibatchSize << "\n"
        << "entropy_decay = " << renderConfigDouble(cfg.ppo.entropyDecay)
        << "\n"
        << "entropy_min = " << renderConfigDouble(cfg.ppo.entropyMin)
        << "\n"
        << "value_coef = " << renderConfigDouble(cfg.ppo.valueCoef) << "\n"
        << "max_grad_norm = " << renderConfigDouble(cfg.ppo.maxGradNorm)
        << "\n"
        << "hidden = " << cfg.ppo.hidden << "\n"
        << "layers = " << cfg.ppo.layers << "\n"
        << "max_epochs = " << cfg.maxEpochs << "\n"
        << "target_accuracy = " << renderConfigDouble(cfg.targetAccuracy) << "\n"
        << "eval_episodes = " << cfg.evalEpisodes << "\n"
        << "verbose = " << (cfg.verbose ? "true" : "false") << "\n";
    return out.str();
}

} // namespace autocat
