#include "core/config_parser.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace autocat {

namespace {

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

bool
parseBool(const std::string &v, const std::string &key)
{
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    throw std::invalid_argument("config: bad boolean for " + key + ": " +
                                v);
}

/** Hierarchy depth cap for the config surface (sanity bound). */
constexpr unsigned kMaxHierarchyLevels = 8;

/**
 * Apply a "hierarchy." key: either hierarchy.num_cores or a
 * hierarchy.levels[K].field entry, where field is one of num_sets /
 * num_ways / rep_policy / prefetcher / random_set_mapping /
 * address_space / seed / inclusion / shared. The levels list grows on
 * demand so levels may be configured in any order.
 */
void
applyHierarchyKey(ExplorationConfig &cfg, const std::string &key,
                  const std::string &value)
{
    HierarchyConfig &h = cfg.env.hierarchy;
    if (key == "hierarchy.num_cores") {
        h.numCores = static_cast<unsigned>(std::stoul(value));
        return;
    }

    const std::string prefix = "hierarchy.levels[";
    const auto close = key.find(']');
    if (key.compare(0, prefix.size(), prefix) != 0 ||
        close == std::string::npos || close + 1 >= key.size() ||
        key[close + 1] != '.') {
        throw std::invalid_argument("config: unknown option '" + key +
                                    "'");
    }

    const unsigned idx = static_cast<unsigned>(
        std::stoul(key.substr(prefix.size(), close - prefix.size())));
    if (idx >= kMaxHierarchyLevels) {
        throw std::invalid_argument(
            "config: hierarchy level index out of range in '" + key +
            "'");
    }
    if (h.levels.size() <= idx)
        h.levels.resize(idx + 1);
    HierarchyLevelConfig &lvl = h.levels[idx];

    const std::string field = key.substr(close + 2);
    if (field == "num_sets")
        lvl.cache.numSets = static_cast<unsigned>(std::stoul(value));
    else if (field == "num_ways")
        lvl.cache.numWays = static_cast<unsigned>(std::stoul(value));
    else if (field == "rep_policy")
        lvl.cache.policy = replPolicyFromString(value);
    else if (field == "prefetcher")
        lvl.cache.prefetcher = prefetcherFromString(value);
    else if (field == "random_set_mapping")
        lvl.cache.randomSetMapping = parseBool(value, key);
    else if (field == "address_space")
        lvl.cache.addressSpaceSize = std::stoull(value);
    else if (field == "seed")
        lvl.cache.seed = std::stoull(value);
    else if (field == "inclusion")
        lvl.inclusion = inclusionFromString(value);
    else if (field == "shared")
        lvl.shared = parseBool(value, key);
    else
        throw std::invalid_argument("config: unknown hierarchy field '" +
                                    field + "' in '" + key + "'");
}

} // namespace

ExplorationConfig
parseExplorationConfig(std::istream &in)
{
    ExplorationConfig cfg;

    using Setter = std::function<void(const std::string &)>;
    const std::map<std::string, Setter> setters = {
        // ----- cache configuration (Table II)
        {"num_sets",
         [&](const std::string &v) { cfg.env.cache.numSets = std::stoul(v); }},
        {"num_ways",
         [&](const std::string &v) { cfg.env.cache.numWays = std::stoul(v); }},
        {"rep_policy",
         [&](const std::string &v) {
             cfg.env.cache.policy = replPolicyFromString(v);
         }},
        {"prefetcher",
         [&](const std::string &v) {
             cfg.env.cache.prefetcher = prefetcherFromString(v);
         }},
        {"random_set_mapping",
         [&](const std::string &v) {
             cfg.env.cache.randomSetMapping =
                 parseBool(v, "random_set_mapping");
         }},
        {"address_space",
         [&](const std::string &v) {
             cfg.env.cache.addressSpaceSize = std::stoull(v);
         }},
        // ----- attack & victim configuration (Table II)
        {"attack_addr_s",
         [&](const std::string &v) { cfg.env.attackAddrS = std::stoull(v); }},
        {"attack_addr_e",
         [&](const std::string &v) { cfg.env.attackAddrE = std::stoull(v); }},
        {"victim_addr_s",
         [&](const std::string &v) { cfg.env.victimAddrS = std::stoull(v); }},
        {"victim_addr_e",
         [&](const std::string &v) { cfg.env.victimAddrE = std::stoull(v); }},
        {"flush_enable",
         [&](const std::string &v) {
             cfg.env.flushEnable = parseBool(v, "flush_enable");
         }},
        {"victim_no_access_enable",
         [&](const std::string &v) {
             cfg.env.victimNoAccessEnable =
                 parseBool(v, "victim_no_access_enable");
         }},
        {"detection_enable",
         [&](const std::string &v) {
             cfg.env.detectionEnable = parseBool(v, "detection_enable");
         }},
        {"pl_cache_lock_victim",
         [&](const std::string &v) {
             cfg.env.plCacheLockVictim =
                 parseBool(v, "pl_cache_lock_victim");
         }},
        // ----- episode / RL configuration (Table II)
        {"window_size",
         [&](const std::string &v) { cfg.env.windowSize = std::stoul(v); }},
        {"episode_length_limit",
         [&](const std::string &v) {
             cfg.env.episodeLengthLimit = std::stoul(v);
         }},
        {"multi_secret",
         [&](const std::string &v) {
             cfg.env.multiSecret = parseBool(v, "multi_secret");
         }},
        {"multi_secret_episode_steps",
         [&](const std::string &v) {
             cfg.env.multiSecretEpisodeSteps = std::stoul(v);
         }},
        {"reveal_on_guess",
         [&](const std::string &v) {
             cfg.env.revealOnGuess = parseBool(v, "reveal_on_guess");
         }},
        {"random_init",
         [&](const std::string &v) {
             cfg.env.randomInit = parseBool(v, "random_init");
         }},
        {"init_accesses",
         [&](const std::string &v) {
             cfg.env.initAccesses = std::stoul(v);
         }},
        {"correct_guess_reward",
         [&](const std::string &v) {
             cfg.env.correctGuessReward = std::stod(v);
         }},
        {"wrong_guess_reward",
         [&](const std::string &v) {
             cfg.env.wrongGuessReward = std::stod(v);
         }},
        {"step_reward",
         [&](const std::string &v) { cfg.env.stepReward = std::stod(v); }},
        {"length_violation_reward",
         [&](const std::string &v) {
             cfg.env.lengthViolationReward = std::stod(v);
         }},
        {"detection_reward",
         [&](const std::string &v) {
             cfg.env.detectionReward = std::stod(v);
         }},
        {"seed",
         [&](const std::string &v) { cfg.env.seed = std::stoull(v); }},
        // ----- PPO hyper-parameters
        {"ppo_seed",
         [&](const std::string &v) { cfg.ppo.seed = std::stoull(v); }},
        {"steps_per_epoch",
         [&](const std::string &v) { cfg.ppo.stepsPerEpoch = std::stoi(v); }},
        {"learning_rate",
         [&](const std::string &v) { cfg.ppo.lr = std::stod(v); }},
        {"entropy_coef",
         [&](const std::string &v) { cfg.ppo.entropyCoef = std::stod(v); }},
        {"gamma",
         [&](const std::string &v) { cfg.ppo.gamma = std::stod(v); }},
        {"hidden",
         [&](const std::string &v) { cfg.ppo.hidden = std::stoul(v); }},
        // ----- exploration control
        {"scenario",
         [&](const std::string &v) { cfg.scenario = v; }},
        {"num_streams",
         [&](const std::string &v) { cfg.numStreams = std::stoi(v); }},
        {"threaded_envs",
         [&](const std::string &v) {
             cfg.threadedEnvs = parseBool(v, "threaded_envs");
         }},
        {"double_buffered",
         [&](const std::string &v) {
             cfg.ppo.doubleBuffered = parseBool(v, "double_buffered");
         }},
        {"max_epochs",
         [&](const std::string &v) { cfg.maxEpochs = std::stoi(v); }},
        {"target_accuracy",
         [&](const std::string &v) { cfg.targetAccuracy = std::stod(v); }},
        {"eval_episodes",
         [&](const std::string &v) { cfg.evalEpisodes = std::stoi(v); }},
        {"verbose",
         [&](const std::string &v) {
             cfg.verbose = parseBool(v, "verbose");
         }},
    };

    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument(
                "config: missing '=' on line " + std::to_string(lineno));
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        const auto it = setters.find(key);
        if (it != setters.end()) {
            it->second(value);
        } else if (key.compare(0, 10, "hierarchy.") == 0) {
            try {
                applyHierarchyKey(cfg, key, value);
            } catch (const std::invalid_argument &e) {
                throw std::invalid_argument(std::string(e.what()) +
                                            " on line " +
                                            std::to_string(lineno));
            }
        } else {
            throw std::invalid_argument("config: unknown option '" + key +
                                        "' on line " +
                                        std::to_string(lineno));
        }
    }

    // Keep the address space large enough for the configured ranges.
    const std::uint64_t needed =
        std::max(cfg.env.attackAddrE, cfg.env.victimAddrE) + 2;
    if (cfg.env.cache.addressSpaceSize < needed)
        cfg.env.cache.addressSpaceSize = needed;
    for (auto &lvl : cfg.env.hierarchy.levels) {
        if (lvl.cache.addressSpaceSize < needed)
            lvl.cache.addressSpaceSize = needed;
    }
    return cfg;
}

ExplorationConfig
parseExplorationConfig(const std::string &text)
{
    std::istringstream iss(text);
    return parseExplorationConfig(iss);
}

ExplorationConfig
loadExplorationConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("config: cannot open " + path);
    return parseExplorationConfig(in);
}

std::string
renderExplorationConfig(const ExplorationConfig &cfg)
{
    std::ostringstream out;
    out << "num_sets = " << cfg.env.cache.numSets << "\n"
        << "num_ways = " << cfg.env.cache.numWays << "\n"
        << "rep_policy = " << replPolicyName(cfg.env.cache.policy) << "\n"
        << "prefetcher = " << prefetcherName(cfg.env.cache.prefetcher)
        << "\n"
        << "random_set_mapping = "
        << (cfg.env.cache.randomSetMapping ? "true" : "false") << "\n"
        << "address_space = " << cfg.env.cache.addressSpaceSize << "\n"
        << "attack_addr_s = " << cfg.env.attackAddrS << "\n"
        << "attack_addr_e = " << cfg.env.attackAddrE << "\n"
        << "victim_addr_s = " << cfg.env.victimAddrS << "\n"
        << "victim_addr_e = " << cfg.env.victimAddrE << "\n"
        << "flush_enable = " << (cfg.env.flushEnable ? "true" : "false")
        << "\n"
        << "victim_no_access_enable = "
        << (cfg.env.victimNoAccessEnable ? "true" : "false") << "\n"
        << "detection_enable = "
        << (cfg.env.detectionEnable ? "true" : "false") << "\n"
        << "pl_cache_lock_victim = "
        << (cfg.env.plCacheLockVictim ? "true" : "false") << "\n"
        << "window_size = " << cfg.env.windowSize << "\n";
    if (!cfg.env.hierarchy.levels.empty()) {
        out << "hierarchy.num_cores = " << cfg.env.hierarchy.numCores
            << "\n";
        for (std::size_t k = 0; k < cfg.env.hierarchy.levels.size();
             ++k) {
            const HierarchyLevelConfig &lvl = cfg.env.hierarchy.levels[k];
            const std::string p =
                "hierarchy.levels[" + std::to_string(k) + "].";
            out << p << "num_sets = " << lvl.cache.numSets << "\n"
                << p << "num_ways = " << lvl.cache.numWays << "\n"
                << p << "rep_policy = " << replPolicyName(lvl.cache.policy)
                << "\n"
                << p << "prefetcher = "
                << prefetcherName(lvl.cache.prefetcher) << "\n"
                << p << "random_set_mapping = "
                << (lvl.cache.randomSetMapping ? "true" : "false") << "\n"
                << p << "address_space = " << lvl.cache.addressSpaceSize
                << "\n"
                << p << "seed = " << lvl.cache.seed << "\n"
                << p << "inclusion = " << inclusionName(lvl.inclusion)
                << "\n"
                << p << "shared = " << (lvl.shared ? "true" : "false")
                << "\n";
        }
    }
    out
        << "multi_secret = "
        << (cfg.env.multiSecret ? "true" : "false") << "\n"
        << "multi_secret_episode_steps = "
        << cfg.env.multiSecretEpisodeSteps << "\n"
        << "reveal_on_guess = "
        << (cfg.env.revealOnGuess ? "true" : "false") << "\n"
        << "random_init = " << (cfg.env.randomInit ? "true" : "false")
        << "\n"
        << "correct_guess_reward = " << cfg.env.correctGuessReward << "\n"
        << "wrong_guess_reward = " << cfg.env.wrongGuessReward << "\n"
        << "step_reward = " << cfg.env.stepReward << "\n"
        << "length_violation_reward = " << cfg.env.lengthViolationReward
        << "\n"
        << "detection_reward = " << cfg.env.detectionReward << "\n"
        << "seed = " << cfg.env.seed << "\n"
        << "scenario = " << cfg.scenario << "\n"
        << "num_streams = " << cfg.numStreams << "\n"
        << "threaded_envs = " << (cfg.threadedEnvs ? "true" : "false")
        << "\n"
        << "double_buffered = "
        << (cfg.ppo.doubleBuffered ? "true" : "false") << "\n"
        << "ppo_seed = " << cfg.ppo.seed << "\n"
        << "steps_per_epoch = " << cfg.ppo.stepsPerEpoch << "\n"
        << "learning_rate = " << cfg.ppo.lr << "\n"
        << "gamma = " << cfg.ppo.gamma << "\n"
        << "max_epochs = " << cfg.maxEpochs << "\n"
        << "target_accuracy = " << cfg.targetAccuracy << "\n";
    return out.str();
}

} // namespace autocat
