/**
 * @file
 * `campaign.*` / `phase[N].*` config-file keys: parse and render a
 * CampaignConfig.
 *
 * A campaign file is an ordinary exploration config (every key
 * core/config_parser.hpp documents, serving as the shared base) plus
 * the session knobs and an indexed phase list:
 *
 *     # 2-phase curriculum: learn the attack clean, then against the
 *     # miss detector in Penalize mode
 *     campaign.checkpoint_path  = bypass.ckpt
 *     campaign.checkpoint_every = 5
 *     campaign.resume           = false
 *
 *     phase[0].name            = warmup
 *     phase[0].max_epochs      = 30
 *     phase[0].target_accuracy = 0.95
 *
 *     phase[1].name              = bypass
 *     phase[1].scenario          = miss_detect_terminate
 *     phase[1].max_epochs        = 40
 *     phase[1].target_accuracy   = 0.95
 *     phase[1].max_detection_rate = 0.05
 *     phase[1].detector          = miss
 *     phase[1].detector_mode     = penalize
 *
 * Parsing layers onto parseExplorationConfig() through its
 * ConfigKeyHandler hook (like eval/sweep_config.hpp), so all key
 * families share one format, one error style, and one renderer
 * round-trip contract: render -> parse -> render is a fixed point.
 * The phase-key handlers are exposed separately so sweep configs can
 * carry the same `phase[N].*` family (campaign cells).
 */

#ifndef AUTOCAT_CORE_CAMPAIGN_CONFIG_HPP
#define AUTOCAT_CORE_CAMPAIGN_CONFIG_HPP

#include <istream>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace autocat {

/** Phase-list cap for the config surface (sanity bound). */
constexpr std::size_t kMaxConfigPhases = 16;

/**
 * Apply one `phase[N].field` key to @p phases (the list grows on
 * demand so phases may be configured in any order). Returns false when
 * @p key is not in the phase family; throws std::invalid_argument for
 * a recognized-but-malformed key or value.
 */
bool applyPhaseKey(std::vector<CurriculumPhase> &phases,
                   const std::string &key, const std::string &value);

/**
 * Post-parse validation of a phase list assembled via applyPhaseKey:
 * rejects phases whose detector parameters (`detector_mode`,
 * `detector_penalty`, ...) were set without a `phase[N].detector`
 * kind — the keys are order-independent, so completeness can only be
 * checked once the whole file is read. Both the campaign and sweep
 * parsers call this, keeping the invariant that every accepted config
 * renders back (the fixed-point contract).
 *
 * @throws std::invalid_argument naming the offending phase
 */
void validateConfigPhases(const std::vector<CurriculumPhase> &phases);

/**
 * Render the `phase[N].*` lines of @p phases (inverse of
 * applyPhaseKey; only explicitly-set optional fields are emitted).
 *
 * @throws std::invalid_argument for values the format cannot
 *         represent (strings with '#'/newlines, more than one
 *         detector per phase, unknown detector kinds)
 */
std::string renderPhaseKeys(const std::vector<CurriculumPhase> &phases);

/**
 * Apply one `campaign.*` or `phase[N].*` key to @p cfg; returns false
 * for keys outside both families.
 */
bool applyCampaignKey(CampaignConfig &cfg, const std::string &key,
                      const std::string &value);

/**
 * Parse a campaign config (base exploration keys + campaign/phase
 * keys).
 *
 * @throws std::invalid_argument for unknown or malformed keys
 */
CampaignConfig parseCampaignConfig(std::istream &in);

/** Parse from a string (convenience for tests). */
CampaignConfig parseCampaignConfig(const std::string &text);

/** Load from a file path; throws std::runtime_error if unreadable. */
CampaignConfig loadCampaignConfig(const std::string &path);

/** Render a campaign config back to `key = value` text (round-trips). */
std::string renderCampaignConfig(const CampaignConfig &config);

} // namespace autocat

#endif // AUTOCAT_CORE_CAMPAIGN_CONFIG_HPP
