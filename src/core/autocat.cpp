#include "core/autocat.hpp"

namespace autocat {

const char *
versionString()
{
    return "autocat-cpp 1.0.0 (HPCA'23 reproduction)";
}

} // namespace autocat
