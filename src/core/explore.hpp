/**
 * @file
 * The AutoCAT exploration pipeline (Fig. 2a of the paper): take an
 * environment description, train a PPO agent on the guessing game,
 * extract the attack sequence by deterministic (greedy) replay, and
 * classify it.
 */

#ifndef AUTOCAT_CORE_EXPLORE_HPP
#define AUTOCAT_CORE_EXPLORE_HPP

#include <functional>
#include <memory>
#include <string>

#include "attacks/classifier.hpp"
#include "attacks/sequence.hpp"
#include "cache/memory_system.hpp"
#include "detect/detector.hpp"
#include "env/env_config.hpp"
#include "env/env_registry.hpp"
#include "env/guessing_game.hpp"
#include "rl/ppo.hpp"
#include "rl/vec_env.hpp"

namespace autocat {

/** Everything one exploration run needs. */
struct ExplorationConfig
{
    EnvConfig env;
    PpoConfig ppo;

    /**
     * Scenario registry name the training environments are built from
     * (see env/env_registry.hpp).
     */
    std::string scenario = "guessing_game";

    /**
     * Environment streams to collect with. Stream i is seeded
     * env.seed + i; 1 reproduces the classic single-worker loop.
     */
    int numStreams = 1;

    /**
     * Step the streams on a worker pool (ThreadedVecEnv). Orthogonal
     * knob: ppo.doubleBuffered (config key double_buffered) overlaps
     * env stepping with policy inference during collection.
     */
    bool threadedEnvs = false;

    /**
     * Collect through the SoA batch engine (BatchVecEnv): observation
     * rows are maintained in place inside the matrix the policy GEMM
     * consumes (config key batch_env). Trajectories are
     * bitwise-identical to the sync/threaded adapters. Takes
     * precedence over threadedEnvs when both are set.
     */
    bool batchEnv = false;

    /** Give up after this many epochs (paper: 1 epoch = 3000 steps). */
    int maxEpochs = 150;

    /** Greedy eval accuracy that counts as converged. */
    double targetAccuracy = 0.97;

    /** Episodes per convergence evaluation. */
    int evalEpisodes = 100;

    /** Log per-epoch progress at Info level. */
    bool verbose = false;
};

/** Outcome of one exploration run. */
struct ExplorationResult
{
    bool converged = false;
    int epochsToConverge = -1;       ///< 1-based; -1 if not converged
    double finalAccuracy = 0.0;      ///< greedy eval accuracy
    double finalEpisodeLength = 0.0; ///< greedy eval mean episode steps
    double bitRate = 0.0;            ///< guesses per step (greedy eval)
    double detectionRate = 0.0;      ///< flagged episodes fraction
    long long envSteps = 0;          ///< total training env steps

    /**
     * Environment steps spent until the run first reached its accuracy
     * target (the Sec. VI-A sample-efficiency measure): the env-step
     * count at the end of the converging phase, or -1 when the run
     * never converged. For search baselines this is the simulated
     * steps the search consumed before finding a distinguishing
     * sequence.
     */
    long long stepsToDiscovery = -1;

    /** Primitive actions of a representative greedy episode. */
    AttackSequence sequence;

    /** Final guess of that episode ("g0", "gE", ...). */
    std::string finalGuess;

    /** Automatic category label of the sequence. */
    AttackCategory category = AttackCategory::Unknown;
};

/** Hook to decorate the environment (attach detectors) before training. */
using EnvDecorator = std::function<void(CacheGuessingGame &)>;

/**
 * Run one exploration.
 *
 * Training environments are built from the scenario registry
 * (config.scenario) as a config.numStreams-stream VecEnv; the
 * decorator runs on every stream. Passing a decorator with a scenario
 * that does not produce CacheGuessingGame environments is an error
 * (std::invalid_argument) — detectors cannot be attached silently
 * nowhere.
 *
 * @param config    exploration description
 * @param memory    optional externally-built memory system (e.g. a
 *                  SimulatedHardwareTarget); forces a single stream
 *                  since only one instance exists. Defaults to the one
 *                  the EnvConfig describes.
 * @param decorate  optional detector attachment hook
 */
ExplorationResult explore(const ExplorationConfig &config,
                          std::unique_ptr<MemorySystem> memory = nullptr,
                          const EnvDecorator &decorate = {});

/**
 * Extract the greedy episode trajectory from a trained policy.
 *
 * @param env    environment (reset internally; secret forced to the
 *               first value of the secret space for determinism)
 * @param policy trained network
 * @param guess  receives the final guess action rendering
 */
AttackSequence extractSequence(CacheGuessingGame &env, ActorCritic &policy,
                               std::string *guess = nullptr);

} // namespace autocat

#endif // AUTOCAT_CORE_EXPLORE_HPP
