#include "core/campaign_config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/config_parser.hpp"

namespace autocat {

namespace {

/** The single config-visible detector spec of a phase, created on
 *  first use (the API allows several per phase; the config format
 *  carries at most one). */
DetectorSpec &
phaseDetector(CurriculumPhase &phase)
{
    if (phase.detectors.empty())
        phase.detectors.emplace_back();
    return phase.detectors.front();
}

/** Apply one phase field (key already split into index and field). */
void
applyPhaseField(CurriculumPhase &phase, const std::string &field,
                const std::string &key, const std::string &value)
{
    if (field == "name")
        phase.name = value;
    else if (field == "scenario")
        phase.scenario = value;
    else if (field == "max_epochs")
        phase.maxEpochs = parseConfigInt(value, key);
    else if (field == "target_accuracy")
        phase.targetAccuracy = parseConfigDouble(value, key);
    else if (field == "max_detection_rate")
        phase.maxDetectionRate = parseConfigDouble(value, key);
    else if (field == "detector") {
        if (value == "none") {
            phase.detectors.clear();
        } else {
            if (!hasDetectorKind(value)) {
                std::string known;
                for (const std::string &k : detectorKinds())
                    known += (known.empty() ? "" : ", ") + k;
                throw std::invalid_argument(
                    "config: unknown detector kind '" + value +
                    "' for " + key + " (known: " + known + ", none)");
            }
            phaseDetector(phase).kind = value;
        }
    } else if (field == "detector_mode")
        phaseDetector(phase).mode = detectorModeFromString(value);
    else if (field == "detector_penalty")
        phaseDetector(phase).penalty = parseConfigDouble(value, key);
    else if (field == "detector_miss_threshold")
        phaseDetector(phase).missThreshold = parseConfigU32(value, key);
    else if (field == "detector_interval")
        phaseDetector(phase).cycloneInterval = parseConfigU32(value, key);
    else if (field == "detection_enable")
        phase.detectionEnable = parseConfigBool(value, key);
    else if (field == "multi_secret")
        phase.multiSecret = parseConfigBool(value, key);
    else if (field == "multi_secret_episode_steps")
        phase.multiSecretEpisodeSteps = parseConfigU32(value, key);
    else if (field == "correct_guess_reward")
        phase.rewards.correctGuessReward = parseConfigDouble(value, key);
    else if (field == "wrong_guess_reward")
        phase.rewards.wrongGuessReward = parseConfigDouble(value, key);
    else if (field == "step_reward")
        phase.rewards.stepReward = parseConfigDouble(value, key);
    else if (field == "length_violation_reward")
        phase.rewards.lengthViolationReward =
            parseConfigDouble(value, key);
    else if (field == "detection_reward")
        phase.rewards.detectionReward = parseConfigDouble(value, key);
    else if (field == "no_guess_reward")
        phase.rewards.noGuessReward = parseConfigDouble(value, key);
    else
        throw std::invalid_argument("config: unknown phase field '" +
                                    field + "' in '" + key + "'");
}

/** Reject render values the `key = value` format cannot carry. */
void
rejectUnrepresentable(const std::string &value, const char *what)
{
    if (value.find_first_of("#\n") != std::string::npos ||
        value != trimConfigToken(value)) {
        throw std::invalid_argument(
            std::string("renderPhaseKeys: ") + what +
            " is not representable in the config format: '" + value +
            "'");
    }
}

} // namespace

bool
applyPhaseKey(std::vector<CurriculumPhase> &phases,
              const std::string &key, const std::string &value)
{
    const std::string prefix = "phase[";
    if (key.compare(0, prefix.size(), prefix) != 0)
        return false;
    const auto close = key.find(']');
    if (close == std::string::npos || close + 1 >= key.size() ||
        key[close + 1] != '.') {
        throw std::invalid_argument("config: malformed phase key '" +
                                    key + "'");
    }

    // Strict index parse: "0z" must not silently parse as phase 0.
    const std::uint64_t idx = parseConfigUint(
        key.substr(prefix.size(), close - prefix.size()), key);
    if (idx >= kMaxConfigPhases) {
        throw std::invalid_argument(
            "config: phase index out of range in '" + key + "'");
    }
    if (phases.size() <= idx)
        phases.resize(idx + 1);

    applyPhaseField(phases[idx], key.substr(close + 2), key, value);
    return true;
}

void
validateConfigPhases(const std::vector<CurriculumPhase> &phases)
{
    for (std::size_t k = 0; k < phases.size(); ++k) {
        for (const DetectorSpec &d : phases[k].detectors) {
            if (d.kind.empty()) {
                throw std::invalid_argument(
                    "config: phase[" + std::to_string(k) +
                    "] sets detector parameters without a phase[" +
                    std::to_string(k) + "].detector kind");
            }
        }
    }
}

std::string
renderPhaseKeys(const std::vector<CurriculumPhase> &phases)
{
    std::ostringstream out;
    for (std::size_t k = 0; k < phases.size(); ++k) {
        const CurriculumPhase &phase = phases[k];
        const std::string p = "phase[" + std::to_string(k) + "].";
        if (!phase.name.empty()) {
            rejectUnrepresentable(phase.name, "phase name");
            out << p << "name = " << phase.name << "\n";
        }
        if (!phase.scenario.empty()) {
            rejectUnrepresentable(phase.scenario, "phase scenario");
            out << p << "scenario = " << phase.scenario << "\n";
        }
        out << p << "max_epochs = " << phase.maxEpochs << "\n"
            << p << "target_accuracy = "
            << renderConfigDouble(phase.targetAccuracy) << "\n"
            << p << "max_detection_rate = "
            << renderConfigDouble(phase.maxDetectionRate) << "\n";
        if (phase.detectors.size() > 1) {
            throw std::invalid_argument(
                "renderPhaseKeys: the config format carries at most one "
                "detector per phase");
        }
        if (!phase.detectors.empty()) {
            const DetectorSpec &d = phase.detectors.front();
            if (!hasDetectorKind(d.kind)) {
                throw std::invalid_argument(
                    "renderPhaseKeys: unknown detector kind '" + d.kind +
                    "'");
            }
            out << p << "detector = " << d.kind << "\n"
                << p << "detector_mode = " << detectorModeName(d.mode)
                << "\n"
                << p << "detector_penalty = "
                << renderConfigDouble(d.penalty) << "\n"
                << p << "detector_miss_threshold = " << d.missThreshold
                << "\n"
                << p << "detector_interval = " << d.cycloneInterval
                << "\n";
        }
        if (phase.detectionEnable) {
            out << p << "detection_enable = "
                << (*phase.detectionEnable ? "true" : "false") << "\n";
        }
        if (phase.multiSecret) {
            out << p << "multi_secret = "
                << (*phase.multiSecret ? "true" : "false") << "\n";
        }
        if (phase.multiSecretEpisodeSteps) {
            out << p << "multi_secret_episode_steps = "
                << *phase.multiSecretEpisodeSteps << "\n";
        }
        const RewardOverrides &r = phase.rewards;
        if (r.correctGuessReward)
            out << p << "correct_guess_reward = "
                << renderConfigDouble(*r.correctGuessReward) << "\n";
        if (r.wrongGuessReward)
            out << p << "wrong_guess_reward = "
                << renderConfigDouble(*r.wrongGuessReward) << "\n";
        if (r.stepReward)
            out << p << "step_reward = "
                << renderConfigDouble(*r.stepReward) << "\n";
        if (r.lengthViolationReward)
            out << p << "length_violation_reward = "
                << renderConfigDouble(*r.lengthViolationReward) << "\n";
        if (r.detectionReward)
            out << p << "detection_reward = "
                << renderConfigDouble(*r.detectionReward) << "\n";
        if (r.noGuessReward)
            out << p << "no_guess_reward = "
                << renderConfigDouble(*r.noGuessReward) << "\n";
    }
    return out.str();
}

bool
applyCampaignKey(CampaignConfig &cfg, const std::string &key,
                 const std::string &value)
{
    if (applyPhaseKey(cfg.phases, key, value))
        return true;
    if (key.compare(0, 9, "campaign.") != 0)
        return false;
    if (key == "campaign.checkpoint_path") {
        cfg.checkpointPath = value;
    } else if (key == "campaign.checkpoint_every") {
        cfg.checkpointEvery = parseConfigInt(value, key);
    } else if (key == "campaign.resume") {
        cfg.resume = parseConfigBool(value, key);
    } else {
        throw std::invalid_argument("config: unknown campaign option '" +
                                    key + "'");
    }
    return true;
}

CampaignConfig
parseCampaignConfig(std::istream &in)
{
    CampaignConfig cfg;
    cfg.base = parseExplorationConfig(
        in, [&cfg](const std::string &key, const std::string &value) {
            return applyCampaignKey(cfg, key, value);
        });
    validateConfigPhases(cfg.phases);
    return cfg;
}

CampaignConfig
parseCampaignConfig(const std::string &text)
{
    std::istringstream iss(text);
    return parseCampaignConfig(iss);
}

CampaignConfig
loadCampaignConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("config: cannot open " + path);
    return parseCampaignConfig(in);
}

std::string
renderCampaignConfig(const CampaignConfig &cfg)
{
    if (cfg.checkpointPath.find_first_of("#\n") != std::string::npos ||
        cfg.checkpointPath != trimConfigToken(cfg.checkpointPath)) {
        throw std::invalid_argument(
            "renderCampaignConfig: checkpoint path is not representable "
            "in the config format: '" + cfg.checkpointPath + "'");
    }
    std::ostringstream out;
    out << renderExplorationConfig(cfg.base);
    if (!cfg.checkpointPath.empty())
        out << "campaign.checkpoint_path = " << cfg.checkpointPath
            << "\n";
    out << "campaign.checkpoint_every = " << cfg.checkpointEvery << "\n"
        << "campaign.resume = " << (cfg.resume ? "true" : "false")
        << "\n";
    out << renderPhaseKeys(cfg.phases);
    return out.str();
}

} // namespace autocat
