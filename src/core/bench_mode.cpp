#include "core/bench_mode.hpp"

#include <cstdlib>

namespace autocat {

BenchMode
benchMode()
{
    if (const char *v = std::getenv("AUTOCAT_FULL");
        v && v[0] && v[0] != '0') {
        return BenchMode::Full;
    }
    if (const char *v = std::getenv("AUTOCAT_FAST");
        v && v[0] && v[0] != '0') {
        return BenchMode::Fast;
    }
    return BenchMode::Default;
}

const char *
benchModeName(BenchMode mode)
{
    switch (mode) {
      case BenchMode::Fast: return "fast";
      case BenchMode::Full: return "full";
      default: return "default";
    }
}

} // namespace autocat
