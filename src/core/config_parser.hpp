/**
 * @file
 * Text-based experiment configuration.
 *
 * The upstream AutoCAT drives experiments from config files; this
 * parser accepts a simple `key = value` format (one option per line,
 * '#' comments) covering every Table II knob plus the PPO
 * hyper-parameters, so explorations can be described without
 * recompiling:
 *
 *     # 4-way LRU set, 0/E victim
 *     num_sets            = 1
 *     num_ways            = 4
 *     rep_policy          = lru
 *     attack_addr_s       = 0
 *     attack_addr_e       = 4
 *     victim_addr_s       = 0
 *     victim_addr_e       = 0
 *     victim_no_access_enable = true
 *     window_size         = 16
 *     step_reward         = -0.01
 *     max_epochs          = 120
 */

#ifndef AUTOCAT_CORE_CONFIG_PARSER_HPP
#define AUTOCAT_CORE_CONFIG_PARSER_HPP

#include <cstdint>
#include <functional>
#include <istream>
#include <string>

#include "core/explore.hpp"

namespace autocat {

/**
 * Extension hook for key families the core parser does not know.
 * Offered every key the core does not consume; return true when the
 * key was handled, false to let the parser reject it as unknown.
 * Throw std::invalid_argument for a recognized-but-malformed key (the
 * parser appends the line number).
 */
using ConfigKeyHandler =
    std::function<bool(const std::string &key, const std::string &value)>;

/**
 * Strict config-value parsers, shared by the core key set and layered
 * key families (eval/sweep_config.cpp). All of them consume the whole
 * value or throw std::invalid_argument naming @p key: "8abc" is not
 * 8, "-1" is not a valid unsigned, and out-of-range values fail as
 * invalid_argument so the parser can attach a line number.
 */
bool parseConfigBool(const std::string &value, const std::string &key);
std::uint64_t parseConfigUint(const std::string &value,
                              const std::string &key);
double parseConfigDouble(const std::string &value, const std::string &key);

/** parseConfigUint narrowed to unsigned; overflow fails loudly
 *  instead of wrapping. */
unsigned parseConfigU32(const std::string &value, const std::string &key);

/** parseConfigUint narrowed to a non-negative int. */
int parseConfigInt(const std::string &value, const std::string &key);

/** Strip leading/trailing config whitespace (spaces, tabs, CR). */
std::string trimConfigToken(const std::string &s);

/**
 * Shortest round-trip double rendering: the text re-parses to the
 * exact same double and the decimal point is locale-independent.
 * Shared by every renderer so all key families round-trip alike.
 */
std::string renderConfigDouble(double v);

/**
 * Parse an exploration config from `key = value` text.
 *
 * Unknown keys raise std::invalid_argument (typos should fail loudly,
 * not silently fall back to defaults). @p extra, when given, extends
 * the key set — e.g. eval/sweep_config.hpp layers the `sweep.*`
 * family on top.
 */
ExplorationConfig parseExplorationConfig(std::istream &in,
                                         const ConfigKeyHandler &extra = {});

/** Parse from a string (convenience for tests). */
ExplorationConfig parseExplorationConfig(const std::string &text,
                                         const ConfigKeyHandler &extra = {});

/** Load from a file path; throws std::runtime_error if unreadable. */
ExplorationConfig loadExplorationConfig(const std::string &path);

/** Render a config back to the key = value format (round-trips). */
std::string renderExplorationConfig(const ExplorationConfig &config);

} // namespace autocat

#endif // AUTOCAT_CORE_CONFIG_PARSER_HPP
