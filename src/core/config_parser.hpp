/**
 * @file
 * Text-based experiment configuration.
 *
 * The upstream AutoCAT drives experiments from config files; this
 * parser accepts a simple `key = value` format (one option per line,
 * '#' comments) covering every Table II knob plus the PPO
 * hyper-parameters, so explorations can be described without
 * recompiling:
 *
 *     # 4-way LRU set, 0/E victim
 *     num_sets            = 1
 *     num_ways            = 4
 *     rep_policy          = lru
 *     attack_addr_s       = 0
 *     attack_addr_e       = 4
 *     victim_addr_s       = 0
 *     victim_addr_e       = 0
 *     victim_no_access_enable = true
 *     window_size         = 16
 *     step_reward         = -0.01
 *     max_epochs          = 120
 */

#ifndef AUTOCAT_CORE_CONFIG_PARSER_HPP
#define AUTOCAT_CORE_CONFIG_PARSER_HPP

#include <istream>
#include <string>

#include "core/explore.hpp"

namespace autocat {

/**
 * Parse an exploration config from `key = value` text.
 *
 * Unknown keys raise std::invalid_argument (typos should fail loudly,
 * not silently fall back to defaults).
 */
ExplorationConfig parseExplorationConfig(std::istream &in);

/** Parse from a string (convenience for tests). */
ExplorationConfig parseExplorationConfig(const std::string &text);

/** Load from a file path; throws std::runtime_error if unreadable. */
ExplorationConfig loadExplorationConfig(const std::string &path);

/** Render a config back to the key = value format (round-trips). */
std::string renderExplorationConfig(const ExplorationConfig &config);

} // namespace autocat

#endif // AUTOCAT_CORE_CONFIG_PARSER_HPP
