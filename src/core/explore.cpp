#include "core/explore.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace autocat {

AttackSequence
extractSequence(CacheGuessingGame &env, ActorCritic &policy,
                std::string *guess)
{
    env.reset();
    // Deterministic replay: fix the secret so the rendered trajectory
    // is reproducible (the paper's tables show one example sequence).
    const auto secrets = env.secretSpace();
    env.forceSecret(secrets.front());

    AttackSequence seq;
    std::vector<float> obs = env.reset();
    env.forceSecret(secrets.front());

    bool done = false;
    int safety = 4096;
    while (!done && safety-- > 0) {
        const AcOutput &out = policy.forwardOne(obs);
        const std::size_t action = policy.argmax(out.logits, 0);
        const Action decoded = env.actionSpace().decode(action);
        StepResult sr = env.step(action);
        if (decoded.isGuess()) {
            if (guess)
                *guess = env.actionSpace().toString(action);
            // In multi-secret mode one symbol round is representative.
            break;
        }
        seq.push({decoded.kind, decoded.addr});
        done = sr.done;
        obs = std::move(sr.obs);
    }
    return seq;
}

ExplorationResult
explore(const ExplorationConfig &config,
        std::unique_ptr<MemorySystem> memory, const EnvDecorator &decorate)
{
    const auto decorate_stream = [&](Environment &env) {
        if (!decorate)
            return;
        auto *game = dynamic_cast<CacheGuessingGame *>(&env);
        if (!game)
            throw std::invalid_argument(
                "explore: the decorator requires a CacheGuessingGame "
                "scenario");
        decorate(*game);
    };

    std::unique_ptr<VecEnv> vec;
    if (memory) {
        // An externally-built memory system exists exactly once, so it
        // can back exactly one stream.
        std::vector<std::unique_ptr<Environment>> envs;
        envs.push_back(
            makeEnv(config.scenario, config.env, std::move(memory)));
        decorate_stream(*envs.front());
        if (config.threadedEnvs)
            vec = std::make_unique<ThreadedVecEnv>(std::move(envs));
        else
            vec = std::make_unique<SyncVecEnv>(std::move(envs));
    } else {
        vec = makeVecEnv(
            config.scenario, config.env,
            static_cast<std::size_t>(std::max(1, config.numStreams)),
            config.threadedEnvs, decorate_stream);
    }

    PpoTrainer trainer(*vec, config.ppo);

    ExplorationResult result;
    const PpoTrainer::EpochCallback log_cb =
        [&](const EpochStats &stats) {
            if (config.verbose) {
                AUTOCAT_LOG_INFO
                    << "epoch " << stats.epoch << " return "
                    << stats.meanReturn << " len "
                    << stats.meanEpisodeLength << " eval-acc "
                    << stats.eval.guessAccuracy;
            }
        };

    const int converged_epoch = trainer.trainUntil(
        config.targetAccuracy, config.maxEpochs, config.evalEpisodes,
        log_cb);

    result.converged = converged_epoch > 0;
    result.epochsToConverge = converged_epoch;
    result.envSteps = trainer.totalEnvSteps();

    const EvalStats final_eval =
        trainer.evaluate(config.evalEpisodes, /*greedy=*/true);
    result.finalAccuracy = final_eval.guessAccuracy;
    result.finalEpisodeLength = final_eval.meanEpisodeLength;
    result.bitRate = final_eval.bitRate;
    result.detectionRate = final_eval.detectionRate;

    // Sequence extraction needs guessing-game introspection; scenarios
    // that are not guessing games report metrics only.
    if (auto *game = dynamic_cast<CacheGuessingGame *>(&vec->env(0))) {
        result.sequence =
            extractSequence(*game, trainer.policy(), &result.finalGuess);
        result.category = classifyAttack(result.sequence, config.env);
    }
    return result;
}

} // namespace autocat
