#include "core/explore.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/campaign.hpp"
#include "util/logging.hpp"

namespace autocat {

AttackSequence
extractSequence(CacheGuessingGame &env, ActorCritic &policy,
                std::string *guess)
{
    env.reset();
    // Deterministic replay: fix the secret so the rendered trajectory
    // is reproducible (the paper's tables show one example sequence).
    const auto secrets = env.secretSpace();
    env.forceSecret(secrets.front());

    AttackSequence seq;
    std::vector<float> obs = env.reset();
    env.forceSecret(secrets.front());

    bool done = false;
    int safety = 4096;
    while (!done && safety-- > 0) {
        const AcOutput &out = policy.forwardOne(obs);
        // Replay under the same mask the policy trained with — a
        // masked action would be one the trained policy could never
        // have taken.
        const std::uint8_t *mask = env.actionMask();
        const std::size_t action =
            mask ? policy.argmaxMasked(out.logits, 0, mask)
                 : policy.argmax(out.logits, 0);
        const Action decoded = env.actionSpace().decode(action);
        StepResult sr = env.step(action);
        if (decoded.isGuess()) {
            if (guess)
                *guess = env.actionSpace().toString(action);
            // In multi-secret mode one symbol round is representative.
            break;
        }
        seq.push({decoded.kind, decoded.addr});
        done = sr.done;
        obs = std::move(sr.obs);
    }
    return seq;
}

/*
 * explore() is a thin one-phase campaign: an empty phase list resolves
 * to a single phase driven by the base config's budget and accuracy
 * target, and TrainingSession's epoch loop reproduces the legacy
 * trainUntil()/evaluate()/extractSequence() sequence bit-for-bit
 * (pinned by test_explore and test_e2e_discovery).
 */
ExplorationResult
explore(const ExplorationConfig &config,
        std::unique_ptr<MemorySystem> memory, const EnvDecorator &decorate)
{
    CampaignConfig campaign;
    campaign.base = config;

    const PpoTrainer::EpochCallback log_cb =
        [&](const EpochStats &stats) {
            if (config.verbose) {
                AUTOCAT_LOG_INFO
                    << "epoch " << stats.epoch << " return "
                    << stats.meanReturn << " len "
                    << stats.meanEpisodeLength << " eval-acc "
                    << stats.eval.guessAccuracy;
            }
        };

    TrainingSession session(std::move(campaign), std::move(memory),
                            decorate);
    return session.run(log_cb).final;
}

} // namespace autocat
