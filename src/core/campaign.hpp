/**
 * @file
 * Training campaigns: resumable multi-phase curriculum sessions.
 *
 * The paper's Section V-D results (Tables VIII/IX: agents that bypass
 * Cyclone, CC-Hunter, and miss-based detection) need more than a
 * one-shot explore() call: the agent first learns the attack in a
 * clean environment, then keeps training with a detector in the loop.
 * A TrainingSession owns one PPO trainer and runs an ordered list of
 * CurriculumPhases against it. Each phase carries
 *
 *  - environment mutations: a scenario swap, declarative detector
 *    attachments (DetectorSpec by name + DetectorMode), reward-weight
 *    overrides, and episode-mode switches,
 *  - its own stopping criterion: target accuracy and/or maximum
 *    detection rate (both evaluated greedily each epoch), bounded by
 *    maxEpochs,
 *  - checkpoint boundaries (see below).
 *
 * explore() (core/explore.hpp) is a thin one-phase campaign: a
 * CampaignConfig whose phase list is empty resolves to a single phase
 * built from the base ExplorationConfig, and the session's epoch loop
 * reproduces the legacy trainUntil()/evaluate()/extractSequence()
 * sequence bit-for-bit.
 *
 * ## Checkpointing and deterministic resume
 *
 * With CampaignConfig::checkpointPath set, the session writes a
 * checkpoint at every phase end and (optionally) every
 * checkpointEvery epochs. A checkpoint boundary is a *sync point*: the
 * session reseeds every environment stream with a seed derived from
 * (stream base seed, global epoch), restarts trainer collection, and
 * only then serializes the trainer (rl/checkpoint.hpp) together with
 * the campaign position and completed-phase results. Because the
 * uninterrupted run performs the same sync at the same boundary,
 * resuming from the file — which rebuilds the phase's environments
 * from scratch, loads the trainer, and applies the same reseed — is
 * bit-identical to never having stopped: same rollouts, same weights,
 * same reports.
 */

#ifndef AUTOCAT_CORE_CAMPAIGN_HPP
#define AUTOCAT_CORE_CAMPAIGN_HPP

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/explore.hpp"

namespace autocat {

/** Per-phase reward-weight overrides; unset fields keep the base. */
struct RewardOverrides
{
    std::optional<double> correctGuessReward;
    std::optional<double> wrongGuessReward;
    std::optional<double> stepReward;
    std::optional<double> lengthViolationReward;
    std::optional<double> detectionReward;
    std::optional<double> noGuessReward;

    /** Overwrite the set fields of @p env. */
    void apply(EnvConfig &env) const;
};

/** One curriculum phase of a campaign. */
struct CurriculumPhase
{
    /** Label for logs/results; empty selects "phase-<index>". */
    std::string name;

    /**
     * Scenario registry name this phase trains on; empty inherits the
     * campaign base's scenario. Swapping scenarios mid-campaign
     * requires identical observation/action dimensions (enforced by
     * PpoTrainer::setVecEnv).
     */
    std::string scenario;

    /**
     * Detectors attached to every stream at phase start. Non-empty
     * lists replace a detector scenario's built-in default attachment
     * (env/env_registry.hpp).
     */
    std::vector<DetectorSpec> detectors;

    RewardOverrides rewards;

    /** Episode-mode switches; unset fields keep the base. */
    std::optional<bool> detectionEnable;
    std::optional<bool> multiSecret;
    std::optional<unsigned> multiSecretEpisodeSteps;

    /** Hard epoch budget of the phase. */
    int maxEpochs = 50;

    /**
     * Stop early once the greedy eval reaches this accuracy (with at
     * least one guess per episode on average); negative disables the
     * accuracy criterion.
     */
    double targetAccuracy = -1.0;

    /**
     * Stop early only while the greedy eval detection rate is at or
     * below this bound (conjunctive with targetAccuracy when both are
     * set); negative disables the detection criterion.
     */
    double maxDetectionRate = -1.0;
};

/** A full campaign description. */
struct CampaignConfig
{
    /** Shared base: env/PPO config, scenario, streams, eval budget. */
    ExplorationConfig base;

    /**
     * Ordered phases; empty resolves to a single phase equivalent to
     * the legacy explore() semantics of the base config.
     */
    std::vector<CurriculumPhase> phases;

    /** Checkpoint file path; empty disables checkpointing. */
    std::string checkpointPath;

    /**
     * Mid-phase checkpoint cadence in epochs; 0 checkpoints at phase
     * ends only. Ignored without a checkpointPath.
     */
    int checkpointEvery = 0;

    /**
     * Resume from checkpointPath when the file exists (a missing file
     * starts fresh, so first runs and restarted runs share a config).
     */
    bool resume = false;
};

/** Outcome of one phase. */
struct PhaseResult
{
    std::string name;
    int epochsRun = 0;        ///< epochs executed in this phase
    bool converged = false;   ///< phase stop criterion was met
    int convergedEpoch = -1;  ///< 1-based within the phase; -1 if not
    long long envStepsEnd = 0;  ///< cumulative env steps at phase end
    EvalStats finalEval;        ///< greedy eval of the last epoch
};

/** Outcome of a whole campaign. */
struct CampaignResult
{
    std::vector<PhaseResult> phases;

    /**
     * Final-state summary in explore()'s result shape: convergence of
     * the *last* phase, final greedy evaluation, extracted attack
     * sequence and classification. Sweep campaign cells report this.
     */
    ExplorationResult final;

    /** True when this run continued from a checkpoint file. */
    bool resumed = false;
};

/**
 * A campaign execution: owns the trainer and the per-phase VecEnv.
 *
 * The optional @p memory / @p decorate arguments mirror explore()'s
 * legacy hooks (externally-built memory system forcing a single
 * stream, detector decoration). They are incompatible with
 * checkpointing and multi-phase campaigns, which must be able to
 * rebuild environments from configuration alone.
 */
class TrainingSession
{
  public:
    using EpochCallback = PpoTrainer::EpochCallback;
    /** Invoked after each phase completes (0-based phase index). */
    using PhaseCallback =
        std::function<void(std::size_t index, const PhaseResult &)>;
    /** Invoked after each checkpoint write. */
    using CheckpointCallback = std::function<void(
        const std::string &path, std::size_t phase, int epochsDone)>;

    explicit TrainingSession(CampaignConfig config,
                             std::unique_ptr<MemorySystem> memory = nullptr,
                             EnvDecorator decorate = {});
    ~TrainingSession();

    /** Execute (or resume) the campaign. One run() per session. */
    CampaignResult run(const EpochCallback &epoch_cb = {},
                       const PhaseCallback &phase_cb = {},
                       const CheckpointCallback &checkpoint_cb = {});

    /** The trainer (valid after run(); tests inspect/serialize it). */
    PpoTrainer &trainer();

    const CampaignConfig &config() const { return config_; }

    /** The phase list run() executes (resolved legacy phase included). */
    std::vector<CurriculumPhase> resolvedPhases() const;

  private:
    ScenarioContext phaseContext(const CurriculumPhase &phase) const;
    std::string phaseScenario(const CurriculumPhase &phase) const;
    void buildPhaseEnv(const CurriculumPhase &phase,
                       const ScenarioContext &ctx);
    void boundarySync(const ScenarioContext &ctx);
    void writeCheckpoint(std::size_t next_phase, int epochs_done,
                         const std::vector<PhaseResult> &results);
    /** Open checkpointPath for resume; nullptr when the file does not
     *  exist. The returned stream is positioned at the embedded PPO
     *  section. */
    std::unique_ptr<std::ifstream>
    openResume(const std::vector<CurriculumPhase> &phases,
               std::size_t *start_phase, int *start_epoch,
               std::vector<PhaseResult> *results);

    CampaignConfig config_;
    std::unique_ptr<MemorySystem> memory_;
    EnvDecorator decorate_;
    std::unique_ptr<VecEnv> vec_;
    std::unique_ptr<PpoTrainer> trainer_;
    bool ran_ = false;
};

/**
 * Seed a stream's environment RNG is reset to at a checkpoint
 * boundary: a splitmix-style mix of the stream's construction seed and
 * the boundary's global epoch. Exposed for tests that reproduce
 * boundary state by hand.
 */
std::uint64_t checkpointBoundarySeed(std::uint64_t stream_seed,
                                     int global_epoch);

/**
 * Convenience: build and run a campaign in one call.
 */
CampaignResult
runCampaign(CampaignConfig config,
            const TrainingSession::EpochCallback &epoch_cb = {},
            const TrainingSession::PhaseCallback &phase_cb = {});

} // namespace autocat

#endif // AUTOCAT_CORE_CAMPAIGN_HPP
