/**
 * @file
 * Umbrella header and version information for the AutoCAT library.
 *
 * Including this header pulls in the full public API: the cache
 * simulator, the guessing-game environment, the PPO engine, detectors,
 * known attacks, simulated hardware targets, and the exploration
 * pipeline.
 */

#ifndef AUTOCAT_CORE_AUTOCAT_HPP
#define AUTOCAT_CORE_AUTOCAT_HPP

#include "attacks/agents.hpp"
#include "attacks/classifier.hpp"
#include "attacks/replay.hpp"
#include "attacks/sequence.hpp"
#include "attacks/textbook.hpp"
#include "cache/cache.hpp"
#include "cache/memory_system.hpp"
#include "core/bench_mode.hpp"
#include "core/campaign.hpp"
#include "core/campaign_config.hpp"
#include "core/explore.hpp"
#include "detect/autocorr_detector.hpp"
#include "detect/benign_traces.hpp"
#include "detect/cyclone.hpp"
#include "detect/detector_factory.hpp"
#include "detect/miss_detector.hpp"
#include "detect/svm.hpp"
#include "env/guessing_game.hpp"
#include "env/sequence_oracle.hpp"
#include "hw/covert_channel.hpp"
#include "hw/machines.hpp"
#include "hw/target.hpp"
#include "rl/checkpoint.hpp"
#include "rl/ppo.hpp"
#include "rl/search.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace autocat {

/** Library version string. */
const char *versionString();

} // namespace autocat

#endif // AUTOCAT_CORE_AUTOCAT_HPP
