/**
 * @file
 * Bench scaling control.
 *
 * Every bench binary reproduces a paper table with a reduced default
 * budget so the full suite runs in minutes. Environment variables
 * scale the budgets:
 *
 *   AUTOCAT_FULL=1  paper-scale budgets (3 runs per cell, all rows,
 *                   generous epoch caps)
 *   AUTOCAT_FAST=1  smoke budgets (minimal rows, few epochs) for CI
 */

#ifndef AUTOCAT_CORE_BENCH_MODE_HPP
#define AUTOCAT_CORE_BENCH_MODE_HPP

namespace autocat {

/** Bench effort level. */
enum class BenchMode { Fast, Default, Full };

/** Resolve the mode from the environment variables. */
BenchMode benchMode();

/** Human-readable mode name. */
const char *benchModeName(BenchMode mode);

/** Pick a value by mode. */
template <typename T>
T
byMode(T fast, T dflt, T full)
{
    switch (benchMode()) {
      case BenchMode::Fast: return fast;
      case BenchMode::Full: return full;
      default: return dflt;
    }
}

} // namespace autocat

#endif // AUTOCAT_CORE_BENCH_MODE_HPP
