#include "attacks/sequence.hpp"

#include <stdexcept>

namespace autocat {

std::size_t
AttackSequence::countKind(ActionKind kind) const
{
    std::size_t n = 0;
    for (const auto &s : steps_) {
        if (s.kind == kind)
            ++n;
    }
    return n;
}

std::string
AttackSequence::toString(bool with_guess) const
{
    std::string out;
    for (std::size_t i = 0; i < steps_.size(); ++i) {
        if (i)
            out += " -> ";
        const AttackStep &s = steps_[i];
        switch (s.kind) {
          case ActionKind::Access:
            out += std::to_string(s.addr);
            break;
          case ActionKind::Flush:
            out += "f";
            out += std::to_string(s.addr);
            break;
          case ActionKind::TriggerVictim:
            out += "v";
            break;
          case ActionKind::Guess:
            out += "g";
            out += std::to_string(s.addr);
            break;
          case ActionKind::GuessNoAccess:
            out += "gE";
            break;
        }
    }
    if (with_guess) {
        if (!out.empty())
            out += " -> ";
        out += "g";
    }
    return out;
}

std::vector<std::size_t>
AttackSequence::toIndices(const ActionSpace &space) const
{
    std::vector<std::size_t> idx;
    idx.reserve(steps_.size());
    for (const auto &s : steps_) {
        Action a;
        a.kind = s.kind;
        a.addr = s.addr;
        idx.push_back(space.encode(a));
    }
    return idx;
}

AttackSequence
AttackSequence::fromIndices(const ActionSpace &space,
                            const std::vector<std::size_t> &idx)
{
    AttackSequence seq;
    for (std::size_t i : idx) {
        const Action a = space.decode(i);
        if (a.isGuess()) {
            throw std::invalid_argument(
                "attack sequences contain primitive actions only");
        }
        seq.push({a.kind, a.addr});
    }
    return seq;
}

} // namespace autocat
