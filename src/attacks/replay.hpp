/**
 * @file
 * Attack-sequence replay and decoding.
 *
 * A fixed attack sequence becomes a working attack once a decision
 * rule maps the observed latency pattern to a guessed secret. The
 * replayer calibrates that rule by replaying the sequence under every
 * secret (what a real attacker does during the calibration phase) and
 * then measures end-to-end guess accuracy against random secrets —
 * the "Accuracy" column of Table III.
 */

#ifndef AUTOCAT_ATTACKS_REPLAY_HPP
#define AUTOCAT_ATTACKS_REPLAY_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "attacks/sequence.hpp"
#include "env/guessing_game.hpp"

namespace autocat {

/** Calibrated decoder for one attack sequence on one environment. */
class SequenceReplayer
{
  public:
    /**
     * @param env environment to replay against (its secret is forced
     *            during calibration; the caller keeps ownership)
     */
    explicit SequenceReplayer(CacheGuessingGame &env);

    /**
     * Replay @p seq @p reps times per secret and record the majority
     * latency pattern of each secret.
     *
     * @return true when every secret produced a distinct majority
     *         pattern (the sequence is a usable attack)
     */
    bool calibrate(const AttackSequence &seq, int reps = 16);

    /**
     * Run @p trials episodes with random secrets, decode each via the
     * calibrated table (nearest pattern by Hamming distance), and
     * return the fraction guessed correctly.
     */
    double evaluateAccuracy(int trials = 200);

    /** Pattern observed in the most recent replay (tests). */
    const std::vector<int> &lastPattern() const { return last_pattern_; }

  private:
    std::vector<int> replayOnce(std::optional<std::uint64_t> secret,
                                bool force_secret);
    std::optional<std::uint64_t>
    decode(const std::vector<int> &pattern) const;

    CacheGuessingGame &env_;
    AttackSequence seq_;
    std::vector<std::size_t> indices_;
    /// majority latency pattern per secret (index into secretSpace()).
    std::vector<std::vector<int>> patterns_;
    std::vector<std::optional<std::uint64_t>> secrets_;
    std::vector<int> last_pattern_;
};

} // namespace autocat

#endif // AUTOCAT_ATTACKS_REPLAY_HPP
