#include "attacks/agents.hpp"

#include <algorithm>
#include <cassert>

namespace autocat {

TextbookPrimeProbeAgent::TextbookPrimeProbeAgent(
    const CacheGuessingGame &env)
    : actions_(env.actionSpace()), config_(env.config())
{
    // One attacker line per victim line (direct-mapped conflict pairs).
    num_lines_ = static_cast<std::size_t>(
        std::min(config_.numVictimAddrs(), config_.numAttackAddrs()));
}

void
TextbookPrimeProbeAgent::onEpisodeStart()
{
    phase_ = Phase::Prime;
    cursor_ = 0;
    missed_line_ = -1;
    first_round_ = true;
}

std::size_t
TextbookPrimeProbeAgent::act(int last_latency)
{
    switch (phase_) {
      case Phase::Prime: {
        const std::size_t a = cursor_++;
        if (cursor_ >= num_lines_) {
            phase_ = Phase::Trigger;
            cursor_ = 0;
        }
        return actions_.accessIndex(config_.attackAddrS + a);
      }
      case Phase::Trigger:
        phase_ = Phase::Probe;
        cursor_ = 0;
        missed_line_ = -1;
        return actions_.triggerIndex();
      case Phase::Probe: {
        // Record the outcome of the previous probe access.
        if (cursor_ > 0 && last_latency == LatMiss)
            missed_line_ = static_cast<long>(cursor_ - 1);
        if (cursor_ >= num_lines_) {
            phase_ = Phase::Guess;
            return act(last_latency);
        }
        const std::size_t a = cursor_++;
        if (cursor_ >= num_lines_) {
            // The next act() call scores the final probe, then guesses.
        }
        return actions_.accessIndex(config_.attackAddrS + a);
      }
      case Phase::Guess: {
        if (missed_line_ < 0 && last_latency == LatMiss)
            missed_line_ = static_cast<long>(num_lines_ - 1);
        // Probes refilled every set: they are the next round's prime.
        phase_ = Phase::Trigger;
        first_round_ = false;
        const std::uint64_t guess_addr =
            config_.victimAddrS +
            (missed_line_ >= 0 ? static_cast<std::uint64_t>(missed_line_)
                               : 0);
        return actions_.guessIndex(guess_addr);
      }
    }
    return actions_.triggerIndex();
}

namespace {

template <typename ActFn>
AgentRunStats
runLoop(CacheGuessingGame &env, int episodes, ActFn &&choose,
        const std::function<void()> &on_start)
{
    AgentRunStats stats;
    stats.episodes = static_cast<std::size_t>(episodes);

    long long steps = 0;
    std::size_t correct = 0, guesses = 0, detected_eps = 0;
    double return_sum = 0.0;

    for (int e = 0; e < episodes; ++e) {
        std::vector<float> obs = env.reset();
        if (on_start)
            on_start();
        int last_lat = LatNa;
        bool done = false;
        bool detected = false;
        while (!done) {
            const std::size_t action = choose(obs, last_lat);
            StepResult sr = env.step(action);
            ++steps;
            return_sum += sr.reward;
            last_lat = sr.info.observedLatency;
            if (sr.info.guessMade) {
                ++guesses;
                if (sr.info.guessCorrect)
                    ++correct;
            }
            if (sr.info.detected)
                detected = true;
            done = sr.done;
            obs = std::move(sr.obs);
        }
        if (detected)
            ++detected_eps;
    }

    stats.guesses = guesses;
    stats.bitRate = steps ? static_cast<double>(guesses) /
                                static_cast<double>(steps)
                          : 0.0;
    stats.guessAccuracy =
        guesses ? static_cast<double>(correct) /
                      static_cast<double>(guesses)
                : 0.0;
    stats.detectionRate =
        episodes ? static_cast<double>(detected_eps) /
                       static_cast<double>(episodes)
                 : 0.0;
    stats.meanReturn = return_sum / std::max(1, episodes);
    return stats;
}

} // namespace

AgentRunStats
runScriptedAgent(CacheGuessingGame &env, ScriptedAgent &agent,
                 int episodes)
{
    return runLoop(
        env, episodes,
        [&](const std::vector<float> &, int last_lat) {
            return agent.act(last_lat);
        },
        [&] { agent.onEpisodeStart(); });
}

AgentRunStats
runPolicyAgent(CacheGuessingGame &env, ActorCritic &policy, int episodes)
{
    return runLoop(
        env, episodes,
        [&](const std::vector<float> &obs, int) {
            const AcOutput &out = policy.forwardOne(obs);
            return policy.argmax(out.logits, 0);
        },
        {});
}

} // namespace autocat
