/**
 * @file
 * Attack-sequence representation.
 *
 * An attack sequence is the paper's "trajectory of actions": memory
 * accesses, flushes, and victim triggers, rendered in the paper's
 * arrow notation (e.g. "3 -> 1 -> 4 -> 2 -> v -> 0 -> g").
 */

#ifndef AUTOCAT_ATTACKS_SEQUENCE_HPP
#define AUTOCAT_ATTACKS_SEQUENCE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "env/action_space.hpp"

namespace autocat {

/** One step of an attack sequence. */
struct AttackStep
{
    ActionKind kind = ActionKind::Access;
    std::uint64_t addr = 0;

    static AttackStep
    access(std::uint64_t addr)
    {
        return {ActionKind::Access, addr};
    }

    static AttackStep
    flush(std::uint64_t addr)
    {
        return {ActionKind::Flush, addr};
    }

    static AttackStep
    trigger()
    {
        return {ActionKind::TriggerVictim, 0};
    }
};

/** An ordered attack sequence (primitive actions only, no guess). */
class AttackSequence
{
  public:
    AttackSequence() = default;
    explicit AttackSequence(std::vector<AttackStep> steps)
        : steps_(std::move(steps))
    {
    }

    const std::vector<AttackStep> &steps() const { return steps_; }
    std::vector<AttackStep> &steps() { return steps_; }
    std::size_t size() const { return steps_.size(); }
    bool empty() const { return steps_.empty(); }

    void push(AttackStep step) { steps_.push_back(step); }

    /** Number of steps of the given kind. */
    std::size_t countKind(ActionKind kind) const;

    /** Paper-style arrow rendering; appends "-> g" when @p with_guess. */
    std::string toString(bool with_guess = true) const;

    /** Encode into action indices of @p space. */
    std::vector<std::size_t> toIndices(const ActionSpace &space) const;

    /** Build from primitive action indices of @p space. */
    static AttackSequence fromIndices(const ActionSpace &space,
                                      const std::vector<std::size_t> &idx);

  private:
    std::vector<AttackStep> steps_;
};

} // namespace autocat

#endif // AUTOCAT_ATTACKS_SEQUENCE_HPP
