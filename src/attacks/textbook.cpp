#include "attacks/textbook.hpp"

#include <algorithm>

namespace autocat {

namespace {

/** Number of attacker lines needed to cover the attacked cache. */
std::size_t
coverCount(const EnvConfig &config)
{
    return std::min<std::size_t>(
        static_cast<std::size_t>(config.numAttackAddrs()),
        config.numBlocks());
}

} // namespace

AttackSequence
textbookPrimeProbe(const EnvConfig &config)
{
    AttackSequence seq;
    const std::size_t n = coverCount(config);
    for (std::size_t i = 0; i < n; ++i)
        seq.push(AttackStep::access(config.attackAddrS + i));
    seq.push(AttackStep::trigger());
    for (std::size_t i = 0; i < n; ++i)
        seq.push(AttackStep::access(config.attackAddrS + i));
    return seq;
}

AttackSequence
textbookFlushReload(const EnvConfig &config)
{
    AttackSequence seq;
    for (std::uint64_t a = config.victimAddrS; a <= config.victimAddrE;
         ++a) {
        seq.push(AttackStep::flush(a));
    }
    seq.push(AttackStep::trigger());
    for (std::uint64_t a = config.victimAddrS; a <= config.victimAddrE;
         ++a) {
        seq.push(AttackStep::access(a));
    }
    return seq;
}

AttackSequence
textbookEvictReload(const EnvConfig &config)
{
    AttackSequence seq;
    // Evict the victim lines by filling the cache with the attacker
    // addresses that are not shared with the victim.
    std::size_t filled = 0;
    for (std::uint64_t a = config.attackAddrS;
         a <= config.attackAddrE && filled < config.numBlocks(); ++a) {
        if (a >= config.victimAddrS && a <= config.victimAddrE)
            continue;  // do not touch shared lines while evicting
        seq.push(AttackStep::access(a));
        ++filled;
    }
    seq.push(AttackStep::trigger());
    for (std::uint64_t a = config.victimAddrS; a <= config.victimAddrE;
         ++a) {
        seq.push(AttackStep::access(a));
    }
    return seq;
}

AttackSequence
textbookLruSetBased(const EnvConfig &config)
{
    AttackSequence seq;
    const std::size_t ways = config.numBlocks();
    // Occupy ways-1 lines, leaving exactly one way of slack.
    for (std::size_t i = 0; i + 1 < ways; ++i)
        seq.push(AttackStep::access(config.attackAddrS + i));
    seq.push(AttackStep::trigger());
    // A further fill needs the slack way only if the victim consumed
    // it; the timed reload of the first line reveals which happened.
    seq.push(AttackStep::access(config.attackAddrS + ways - 1));
    seq.push(AttackStep::access(config.attackAddrS));
    return seq;
}

AttackSequence
textbookLruAddrBased(const EnvConfig &config, std::uint64_t candidate)
{
    AttackSequence seq;
    const std::size_t ways = config.numBlocks();
    // Establish a known LRU order over the shared lines with the
    // candidate line oldest.
    seq.push(AttackStep::access(candidate));
    for (std::size_t i = 0; i < ways; ++i) {
        const std::uint64_t a = config.attackAddrS + i;
        if (a != candidate)
            seq.push(AttackStep::access(a));
    }
    seq.push(AttackStep::trigger());
    // A fresh fill evicts the LRU line: the candidate, unless the
    // victim's access promoted it.
    seq.push(AttackStep::access(config.attackAddrS + ways));
    seq.push(AttackStep::access(candidate));
    return seq;
}

} // namespace autocat
