/**
 * @file
 * Rule-based attack-category classifier.
 *
 * The paper classifies RL-discovered sequences by manual inspection
 * (Section IV-D); this module automates the common cases so the
 * Table III/IV benches can label what the agent found:
 *
 *   FR  flush+reload       — uses clflush, reloads shared lines
 *   ER  evict+reload       — evicts with non-shared fills, reloads
 *                            shared lines after the trigger
 *   PP  prime+probe        — disjoint address ranges, primes enough
 *                            lines to fill the attacked cache, probes
 *                            after the trigger
 *   LRU replacement-state  — distinguishes secrets without ever
 *                            filling the cache (leaks through
 *                            replacement metadata, incl. PLRU/RRIP
 *                            variants; the paper's "LRU*")
 *
 * Combination sequences (e.g. Table IV config 4) report both labels.
 */

#ifndef AUTOCAT_ATTACKS_CLASSIFIER_HPP
#define AUTOCAT_ATTACKS_CLASSIFIER_HPP

#include <string>

#include "attacks/sequence.hpp"
#include "env/env_config.hpp"

namespace autocat {

/** Attack categories (Table I / Table IV "Attack Category" column). */
enum class AttackCategory {
    PrimeProbe,
    FlushReload,
    EvictReload,
    EvictReloadAndPrimeProbe,
    LruState,
    Unknown,
};

/** Short label used in the paper's tables ("PP", "FR", ...). */
const char *categoryLabel(AttackCategory c);

/**
 * Classify @p seq (primitive actions of one episode, guess excluded)
 * under @p config.
 */
AttackCategory classifyAttack(const AttackSequence &seq,
                              const EnvConfig &config);

} // namespace autocat

#endif // AUTOCAT_ATTACKS_CLASSIFIER_HPP
