/**
 * @file
 * Scripted attack agents for multi-secret episodes.
 *
 * The Table VIII/IX benches compare RL-trained agents against the
 * "textbook" attacker: a hand-written state machine playing the same
 * environment. Scripted agents read the per-step info (latency of
 * their last access) exactly like the RL agent reads its observation.
 */

#ifndef AUTOCAT_ATTACKS_AGENTS_HPP
#define AUTOCAT_ATTACKS_AGENTS_HPP

#include <cstdint>
#include <vector>

#include "env/guessing_game.hpp"
#include "rl/ppo.hpp"

namespace autocat {

/** Interface of a hand-written agent. */
class ScriptedAgent
{
  public:
    virtual ~ScriptedAgent() = default;

    /** Called at episode start. */
    virtual void onEpisodeStart() = 0;

    /**
     * Choose the next action index.
     *
     * @param last_latency latency class observed at the previous step
     *                     (LatNa at the first step)
     */
    virtual std::size_t act(int last_latency) = 0;
};

/**
 * Textbook prime+probe attacker for a direct-mapped cache with
 * disjoint address ranges (the Table VIII/IX setting): prime all
 * conflicting sets, trigger the victim, probe, and guess the victim
 * address whose set missed. Probes double as the next round's prime.
 */
class TextbookPrimeProbeAgent : public ScriptedAgent
{
  public:
    explicit TextbookPrimeProbeAgent(const CacheGuessingGame &env);

    void onEpisodeStart() override;
    std::size_t act(int last_latency) override;

  private:
    enum class Phase { Prime, Trigger, Probe, Guess };

    const ActionSpace &actions_;
    const EnvConfig &config_;
    std::size_t num_lines_;
    Phase phase_ = Phase::Prime;
    std::size_t cursor_ = 0;
    long missed_line_ = -1;
    bool first_round_ = true;
};

/** Aggregate results of running an agent over many episodes. */
struct AgentRunStats
{
    double bitRate = 0.0;        ///< guesses per step
    double guessAccuracy = 0.0;  ///< correct / guesses
    double detectionRate = 0.0;  ///< episodes flagged / episodes
    double meanReturn = 0.0;
    std::size_t episodes = 0;
    std::size_t guesses = 0;
};

/** Run @p agent for @p episodes on @p env. */
AgentRunStats runScriptedAgent(CacheGuessingGame &env,
                               ScriptedAgent &agent, int episodes);

/** Run a trained policy greedily for @p episodes on @p env. */
AgentRunStats runPolicyAgent(CacheGuessingGame &env, ActorCritic &policy,
                             int episodes);

} // namespace autocat

#endif // AUTOCAT_ATTACKS_AGENTS_HPP
