#include "attacks/classifier.hpp"

#include <set>

namespace autocat {

const char *
categoryLabel(AttackCategory c)
{
    switch (c) {
      case AttackCategory::PrimeProbe: return "PP";
      case AttackCategory::FlushReload: return "FR";
      case AttackCategory::EvictReload: return "ER";
      case AttackCategory::EvictReloadAndPrimeProbe: return "ER+PP";
      case AttackCategory::LruState: return "LRU";
      case AttackCategory::Unknown: return "?";
    }
    return "?";
}

AttackCategory
classifyAttack(const AttackSequence &seq, const EnvConfig &config)
{
    const auto shared = [&](std::uint64_t a) {
        return a >= config.victimAddrS && a <= config.victimAddrE;
    };

    bool found_trigger = false;
    bool used_flush = false;
    bool reload_shared_after_trigger = false;
    bool probe_disjoint_after_trigger = false;
    std::set<std::uint64_t> pre_trigger_fills;

    for (const auto &s : seq.steps()) {
        switch (s.kind) {
          case ActionKind::TriggerVictim:
            found_trigger = true;
            break;
          case ActionKind::Flush:
            used_flush = true;
            break;
          case ActionKind::Access:
            if (!found_trigger) {
                pre_trigger_fills.insert(s.addr);
            } else {
                if (shared(s.addr))
                    reload_shared_after_trigger = true;
                else
                    probe_disjoint_after_trigger = true;
            }
            break;
          default:
            break;
        }
    }

    if (!found_trigger)
        return AttackCategory::Unknown;

    if (used_flush && reload_shared_after_trigger)
        return AttackCategory::FlushReload;

    const bool filled_cache =
        pre_trigger_fills.size() >= config.numBlocks();

    if (reload_shared_after_trigger && probe_disjoint_after_trigger &&
        filled_cache) {
        return AttackCategory::EvictReloadAndPrimeProbe;
    }
    if (reload_shared_after_trigger)
        return filled_cache ? AttackCategory::EvictReload
                            : AttackCategory::LruState;
    if (probe_disjoint_after_trigger || !pre_trigger_fills.empty()) {
        // Distinguishing without ever filling the cache means the leak
        // is through replacement state, not through raw occupancy.
        return filled_cache ? AttackCategory::PrimeProbe
                            : AttackCategory::LruState;
    }
    return AttackCategory::Unknown;
}

} // namespace autocat
