/**
 * @file
 * Textbook attack-sequence generators (the baselines of Table I and the
 * "expected attacks" column of Table IV).
 *
 * Each generator produces the canonical for-loop sequence from the
 * literature, parameterized by the environment configuration. They are
 * used as comparison baselines and as the malicious traces the Cyclone
 * SVM trains against.
 */

#ifndef AUTOCAT_ATTACKS_TEXTBOOK_HPP
#define AUTOCAT_ATTACKS_TEXTBOOK_HPP

#include "attacks/sequence.hpp"
#include "env/env_config.hpp"

namespace autocat {

/**
 * Prime+probe (Liu et al., S&P'15): prime every attacker line that can
 * conflict with the victim, run the victim, probe the same lines.
 * Requires no shared addresses.
 */
AttackSequence textbookPrimeProbe(const EnvConfig &config);

/**
 * Flush+reload (Yarom & Falkner, USENIX Sec'14): flush the shared
 * victim lines, run the victim, reload and time them. Requires shared
 * addresses and clflush.
 */
AttackSequence textbookFlushReload(const EnvConfig &config);

/**
 * Evict+reload (Osvik et al., CT-RSA'06 style): evict the shared
 * victim lines via cache-filling accesses, run the victim, reload the
 * shared lines. Requires shared addresses, no clflush.
 */
AttackSequence textbookEvictReload(const EnvConfig &config);

/**
 * LRU set-based attack (Xiong & Szefer, HPCA'20): keep the set full,
 * trigger the victim, then check with a single eviction probe whether
 * the victim's access changed the replacement state of the set.
 * Shorter than prime+probe; works without shared addresses.
 */
AttackSequence textbookLruSetBased(const EnvConfig &config);

/**
 * LRU address-based attack (Xiong & Szefer, HPCA'20): with shared
 * lines resident, the victim's hit on a shared line updates the LRU
 * state; one attacker fill plus a timed reload of the candidate line
 * reveals whether it was the victim's target.
 */
AttackSequence textbookLruAddrBased(const EnvConfig &config,
                                    std::uint64_t candidate);

} // namespace autocat

#endif // AUTOCAT_ATTACKS_TEXTBOOK_HPP
