#include "attacks/replay.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace autocat {

SequenceReplayer::SequenceReplayer(CacheGuessingGame &env) : env_(env)
{
}

std::vector<int>
SequenceReplayer::replayOnce(std::optional<std::uint64_t> secret,
                             bool force_secret)
{
    env_.reset();
    if (force_secret)
        env_.forceSecret(secret);

    // Only post-trigger access latencies carry secret information;
    // pre-trigger latencies depend on the (possibly random) initial
    // cache state and would add decode noise. When the sequence has
    // no trigger, fall back to every access.
    bool has_trigger = false;
    for (std::size_t idx : indices_) {
        if (env_.actionSpace().decode(idx).kind ==
            ActionKind::TriggerVictim) {
            has_trigger = true;
            break;
        }
    }

    std::vector<int> pattern;
    bool triggered = !has_trigger;
    for (std::size_t i = 0; i < indices_.size(); ++i) {
        const StepResult sr = env_.step(indices_[i]);
        const Action a = env_.actionSpace().decode(indices_[i]);
        if (a.kind == ActionKind::TriggerVictim)
            triggered = true;
        if (a.kind == ActionKind::Access && triggered)
            pattern.push_back(sr.info.observedLatency);
        if (sr.done)
            break;  // length limit hit; pattern stays partial
    }
    last_pattern_ = pattern;
    return pattern;
}

bool
SequenceReplayer::calibrate(const AttackSequence &seq, int reps)
{
    seq_ = seq;
    indices_ = seq.toIndices(env_.actionSpace());
    secrets_ = env_.secretSpace();
    patterns_.clear();

    for (const auto &secret : secrets_) {
        // Majority vote per pattern position over the repetitions to
        // suppress random-init noise.
        std::map<std::vector<int>, int> votes;
        for (int r = 0; r < reps; ++r)
            ++votes[replayOnce(secret, /*force_secret=*/true)];
        auto best = std::max_element(
            votes.begin(), votes.end(),
            [](const auto &a, const auto &b) {
                return a.second < b.second;
            });
        patterns_.push_back(best->first);
    }

    for (std::size_t i = 0; i < patterns_.size(); ++i) {
        for (std::size_t j = i + 1; j < patterns_.size(); ++j) {
            if (patterns_[i] == patterns_[j])
                return false;
        }
    }
    return true;
}

std::optional<std::uint64_t>
SequenceReplayer::decode(const std::vector<int> &pattern) const
{
    std::size_t best = 0;
    long best_dist = -1;
    for (std::size_t s = 0; s < patterns_.size(); ++s) {
        long dist = std::labs(static_cast<long>(patterns_[s].size()) -
                              static_cast<long>(pattern.size()));
        const std::size_t n =
            std::min(patterns_[s].size(), pattern.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (patterns_[s][i] != pattern[i])
                ++dist;
        }
        if (best_dist < 0 || dist < best_dist) {
            best_dist = dist;
            best = s;
        }
    }
    return secrets_[best];
}

double
SequenceReplayer::evaluateAccuracy(int trials)
{
    int correct = 0;
    for (int t = 0; t < trials; ++t) {
        // reset() samples a fresh secret; replayOnce keeps it.
        const std::vector<int> pattern =
            replayOnce(std::nullopt, /*force_secret=*/false);
        if (decode(pattern) == env_.secret())
            ++correct;
    }
    return trials ? static_cast<double>(correct) /
                        static_cast<double>(trials)
                  : 0.0;
}

} // namespace autocat
