/**
 * @file
 * ASCII table and CSV emission for bench binaries.
 *
 * Every bench reproduces one table or figure from the paper; TextTable
 * renders the same rows the paper reports, aligned for terminal reading,
 * and can additionally dump CSV for plotting.
 */

#ifndef AUTOCAT_UTIL_TABLE_HPP
#define AUTOCAT_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace autocat {

/** Column-aligned ASCII table with an optional title and CSV export. */
class TextTable
{
  public:
    /** Create a table titled @p title with the given column headers. */
    TextTable(std::string title, std::vector<std::string> headers);

    /** Append a row; must have exactly one cell per header. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Render the aligned ASCII table to @p os. */
    void print(std::ostream &os) const;

    /** Render the table as CSV (header row first) to @p os. */
    void printCsv(std::ostream &os) const;

    /** Format a double with @p precision digits after the decimal point. */
    static std::string fmt(double v, int precision = 3);

    /** Format an integer. */
    static std::string fmt(long v);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace autocat

#endif // AUTOCAT_UTIL_TABLE_HPP
