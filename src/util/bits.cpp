#include "util/bits.hpp"

#include <algorithm>

namespace autocat {

BitString
randomBits(Rng &rng, std::size_t nbits)
{
    BitString bits(nbits);
    for (auto &b : bits)
        b = static_cast<std::uint8_t>(rng.uniformInt(2));
    return bits;
}

std::size_t
hammingDistance(const BitString &a, const BitString &b)
{
    const std::size_t n = std::max(a.size(), b.size());
    std::size_t d = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t av = i < a.size() ? a[i] : 0;
        const std::uint8_t bv = i < b.size() ? b[i] : 0;
        if (av != bv)
            ++d;
    }
    return d;
}

double
bitErrorRate(const BitString &a, const BitString &b)
{
    const std::size_t n = std::max(a.size(), b.size());
    if (n == 0)
        return 0.0;
    return static_cast<double>(hammingDistance(a, b)) /
           static_cast<double>(n);
}

std::vector<unsigned>
packSymbols(const BitString &bits, unsigned bitsPerSymbol)
{
    std::vector<unsigned> symbols;
    if (bitsPerSymbol == 0)
        return symbols;
    for (std::size_t i = 0; i < bits.size(); i += bitsPerSymbol) {
        unsigned sym = 0;
        for (unsigned j = 0; j < bitsPerSymbol; ++j) {
            sym <<= 1;
            if (i + j < bits.size())
                sym |= bits[i + j];
        }
        symbols.push_back(sym);
    }
    return symbols;
}

BitString
unpackSymbols(const std::vector<unsigned> &symbols, unsigned bitsPerSymbol)
{
    BitString bits;
    bits.reserve(symbols.size() * bitsPerSymbol);
    for (unsigned sym : symbols) {
        for (unsigned j = 0; j < bitsPerSymbol; ++j) {
            const unsigned shift = bitsPerSymbol - 1 - j;
            bits.push_back(static_cast<std::uint8_t>((sym >> shift) & 1u));
        }
    }
    return bits;
}

std::string
toString(const BitString &bits)
{
    std::string s;
    s.reserve(bits.size());
    for (auto b : bits)
        s.push_back(b ? '1' : '0');
    return s;
}

} // namespace autocat
