#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace autocat {

namespace {

[[noreturn]] void
fail(const std::string &what, const std::string &action,
     const std::string &path)
{
    throw std::runtime_error(what + ": " + action + " failed for " +
                             path + ": " + std::strerror(errno));
}

/** Write all of @p bytes to @p fd, resuming across short writes. */
bool
writeAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

void
atomicWriteFile(const std::string &path, const std::string &bytes,
                const std::string &what)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        fail(what, "open", tmp);
    if (!writeAll(fd, bytes) || ::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        fail(what, "write", tmp);
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        fail(what, "close", tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        fail(what, "rename", path);
    }

    // Make the rename durable: fsync the containing directory. Failure
    // here is non-fatal for correctness of the file content (the data
    // is either the old or the new version), so only real errors on
    // paths we could open are reported.
    const auto slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

std::string
readWholeFile(const std::string &path, const std::string &what)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error(what + ": cannot open " + path);
    std::ostringstream oss;
    oss << in.rdbuf();
    if (!in && !in.eof())
        throw std::runtime_error(what + ": read failed: " + path);
    return oss.str();
}

} // namespace autocat
