#include "util/task_pool.hpp"

#include <algorithm>

namespace autocat {

TaskPool::TaskPool(std::size_t num_threads, std::size_t max_useful)
{
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    std::size_t threads = num_threads ? num_threads : hw;
    if (max_useful)
        threads = std::min(threads, max_useful);
    threads = std::max<std::size_t>(threads, 1);

    workers_.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        quit_ = true;
        ++generation_;
    }
    work_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
TaskPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        BatchFn fn;
        void *ctx;
        std::size_t end;
        std::size_t chunk;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock,
                          [&] { return quit_ || generation_ != seen; });
            if (quit_)
                return;
            seen = generation_;
            fn = fn_;
            ctx = ctx_;
            end = end_;
            chunk = chunk_;
        }

        try {
            // Claim contiguous chunks until the batch is exhausted —
            // one atomic RMW per chunk instead of per index, and
            // neighboring indices (whose outputs often share cache
            // lines, e.g. VecEnv reward/done arrays) stay on one
            // worker. A throwing task stops only this worker's
            // claiming; the others drain the rest so the caller is
            // never left waiting.
            for (;;) {
                const std::size_t lo =
                    cursor_.fetch_add(chunk, std::memory_order_relaxed);
                if (lo >= end)
                    break;
                const std::size_t hi = std::min(lo + chunk, end);
                for (std::size_t i = lo; i < hi; ++i)
                    fn(ctx, i);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!error_)
                error_ = std::current_exception();
        }

        bool last = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            last = --remaining_ == 0;
        }
        if (last)
            done_cv_.notify_one();
    }
}

void
TaskPool::run(std::size_t begin, std::size_t end, BatchFn fn, void *ctx)
{
    if (begin >= end)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = fn;
        ctx_ = ctx;
        end_ = end;
        // ~4 chunks per worker balances load without shredding
        // contiguity.
        chunk_ = std::max<std::size_t>(
            (end - begin) / (4 * workers_.size()), 1);
        cursor_.store(begin, std::memory_order_relaxed);
        error_ = nullptr;
        remaining_ = workers_.size();
        ++generation_;
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    if (error_) {
        // Task exceptions reach the caller instead of terminating a
        // worker thread.
        std::exception_ptr e = std::move(error_);
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(e);
    }
}

} // namespace autocat
