#include "util/table.hpp"

#include <cassert>
#include <iomanip>
#include <sstream>

namespace autocat {

TextTable::TextTable(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::size_t total = 1;
    for (std::size_t w : widths)
        total += w + 3;

    os << std::string(total, '=') << '\n';
    os << "  " << title_ << '\n';
    os << std::string(total, '=') << '\n';

    auto emit_row = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        os << '\n';
    };

    emit_row(headers_);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    os << std::string(total, '=') << '\n';
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            const bool quote =
                cells[c].find(',') != std::string::npos ||
                cells[c].find('"') != std::string::npos;
            if (quote) {
                os << '"';
                for (char ch : cells[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << cells[c];
            }
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
TextTable::fmt(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
TextTable::fmt(long v)
{
    return std::to_string(v);
}

} // namespace autocat
