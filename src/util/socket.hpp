/**
 * @file
 * Minimal TCP socket + poll helpers for the networked campaign
 * service (src/serve/net), kept beside atomic_file so every
 * file/byte-transport primitive the serve layer leans on lives in
 * util.
 *
 * Scope is deliberately narrow: numeric IPv4 endpoints (plus the
 * "localhost" alias), blocking connect with a timeout, full-buffer
 * send, and poll()-based readiness — enough for localhost fleets and
 * LAN runner daemons without dragging in name resolution or TLS. All
 * wrappers are EINTR-safe and never throw; callers get -1/false plus
 * errno, because a refused or dropped connection is normal fleet
 * weather the scheduler must absorb, not an exception.
 */

#ifndef AUTOCAT_UTIL_SOCKET_HPP
#define AUTOCAT_UTIL_SOCKET_HPP

#include <cstdint>
#include <string>

namespace autocat {

/** Close-on-destruct file-descriptor owner (sockets here, but any fd
 *  works). Movable, not copyable; release() hands the fd back. */
class OwnedFd
{
  public:
    OwnedFd() = default;
    explicit OwnedFd(int fd) : fd_(fd) {}
    ~OwnedFd() { reset(); }

    OwnedFd(OwnedFd &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    OwnedFd &
    operator=(OwnedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    OwnedFd(const OwnedFd &) = delete;
    OwnedFd &operator=(const OwnedFd &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent). */
    void reset();

    /** Give up ownership without closing. */
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

  private:
    int fd_ = -1;
};

/** One "host:port" endpoint. Host must be numeric IPv4 or the literal
 *  "localhost"; port 0 is valid only for binding (ephemeral). */
struct TcpEndpoint
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    std::string toString() const;
};

/**
 * Parse "host:port". @throws std::invalid_argument for a missing
 * colon, an unparseable port, or an out-of-range port — endpoint
 * lists come from config files and must fail at parse time, not at
 * first connect.
 */
TcpEndpoint parseTcpEndpoint(const std::string &text);

/**
 * Bind + listen on @p endpoint (port 0 = kernel-assigned ephemeral
 * port, the CI-parallel-safe default). On success returns the
 * listening fd and writes the actual port to @p bound_port. Returns
 * an invalid OwnedFd on failure (errno holds the cause).
 */
OwnedFd tcpListen(const TcpEndpoint &endpoint, std::uint16_t &bound_port,
                  int backlog = 16);

/**
 * Accept one connection, waiting at most @p timeout_ms (-1 = forever,
 * 0 = non-blocking poll). Returns an invalid OwnedFd on timeout or
 * error; EINTR returns early with an invalid fd so callers can check
 * shutdown flags (the runner_daemon SIGTERM path depends on this).
 */
OwnedFd tcpAccept(int listen_fd, int timeout_ms);

/**
 * Connect to @p endpoint with a handshake timeout. Returns an invalid
 * OwnedFd on refusal/timeout/error; the fd comes back in *blocking*
 * mode. @p refused is set when the failure was ECONNREFUSED — the
 * scheduler retires dead daemons on refusal but keeps busy ones.
 */
OwnedFd tcpConnect(const TcpEndpoint &endpoint, int timeout_ms,
                   bool &refused);

/**
 * Write the whole buffer, resuming across EINTR and short writes.
 * Returns false on any error (EPIPE when the peer vanished — callers
 * must have SIGPIPE ignored, see ignoreSigpipe()).
 */
bool sendAll(int fd, const void *data, std::size_t size);

/**
 * Read whatever is available, up to @p size bytes. Returns the byte
 * count, 0 on orderly EOF, and -1 with errno for errors; -1 with
 * errno EAGAIN/EWOULDBLOCK means "nothing right now" on a
 * non-blocking fd. EINTR retries internally.
 */
long recvSome(int fd, void *data, std::size_t size);

/** poll() for readability. True when @p fd has data/EOF pending
 *  within @p timeout_ms. */
bool waitReadable(int fd, int timeout_ms);

/** Put @p fd into non-blocking mode; returns false on failure. */
bool setNonBlocking(int fd);

/** Process-wide SIG_IGN for SIGPIPE (idempotent). Every process that
 *  writes to sockets calls this first: a vanished peer must surface
 *  as an EPIPE error code, never a process-killing signal. */
void ignoreSigpipe();

} // namespace autocat

#endif // AUTOCAT_UTIL_SOCKET_HPP
