/**
 * @file
 * Persistent worker pool for index-parallel batches.
 *
 * Extracted from ThreadedVecEnv so every subsystem that fans
 * independent, index-addressed work out to threads — env stream
 * stepping (rl/vec_env.hpp), sweep campaign cells (eval/sweep.hpp) —
 * shares one proven dispatch mechanism: a generation-counted batch
 * command, dynamic index claiming, first-exception capture, and a
 * blocking caller.
 *
 * Batches are claimed dynamically (an atomic cursor handing out
 * contiguous chunks), so unequal task costs balance across workers;
 * callers relying on determinism must make tasks write to disjoint,
 * index-addressed outputs, which keeps results independent of the
 * claiming order.
 */

#ifndef AUTOCAT_UTIL_TASK_POOL_HPP
#define AUTOCAT_UTIL_TASK_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace autocat {

/** Persistent threads executing [begin, end) index batches. */
class TaskPool
{
  public:
    /**
     * @param num_threads worker count; 0 selects
     *                    std::thread::hardware_concurrency() (min 1)
     * @param max_useful  optional cap (0 = none), e.g. the number of
     *                    items a caller will ever dispatch at once —
     *                    keeps the sizing policy here instead of at
     *                    every call site
     */
    explicit TaskPool(std::size_t num_threads = 0,
                      std::size_t max_useful = 0);
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Worker threads actually running. */
    std::size_t numThreads() const { return workers_.size(); }

    /**
     * Run @p f(i) for every i in [begin, end) across the pool and
     * block until the batch completes. Tasks are claimed dynamically;
     * @p f must therefore tolerate any execution order and write only
     * to per-index state. A throwing task stops its own worker's
     * claiming (other workers keep draining the batch — with one
     * worker, or when every worker throws, unclaimed indices are
     * skipped); the first exception is rethrown here once the batch
     * settles. Must not be called concurrently with itself.
     */
    template <typename F>
    void
    parallelFor(std::size_t begin, std::size_t end, F &&f)
    {
        using Fn = std::remove_reference_t<F>;
        run(begin, end,
            [](void *ctx, std::size_t i) { (*static_cast<Fn *>(ctx))(i); },
            const_cast<void *>(static_cast<const void *>(&f)));
    }

  private:
    using BatchFn = void (*)(void *ctx, std::size_t index);

    void run(std::size_t begin, std::size_t end, BatchFn fn, void *ctx);
    void workerLoop();

    // Batch command state, published under mutex_ before each batch.
    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< workers wait for a batch
    std::condition_variable done_cv_;  ///< caller waits for completion
    bool quit_ = false;
    std::uint64_t generation_ = 0;  ///< bumped per dispatched batch
    std::size_t remaining_ = 0;     ///< workers yet to finish
    BatchFn fn_ = nullptr;
    void *ctx_ = nullptr;
    std::size_t end_ = 0;
    std::size_t chunk_ = 1;               ///< indices claimed per RMW
    std::atomic<std::size_t> cursor_{0};  ///< next index to claim
    std::exception_ptr error_;  ///< first task exception of the batch;
                                ///< rethrown on the calling thread

    std::vector<std::thread> workers_;
};

} // namespace autocat

#endif // AUTOCAT_UTIL_TASK_POOL_HPP
