/**
 * @file
 * Minimal leveled logging for the library.
 *
 * Benches and examples print their deliverable tables with TextTable;
 * this logger carries progress / diagnostic messages and can be silenced
 * globally (tests run with level Warn by default).
 */

#ifndef AUTOCAT_UTIL_LOGGING_HPP
#define AUTOCAT_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace autocat {

/** Severity levels in increasing order of importance. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global log-level control and message sink. */
class Log
{
  public:
    /** Set the minimum level that will be emitted. */
    static void setLevel(LogLevel level);

    /** Current minimum level. */
    static LogLevel level();

    /** Emit @p msg at @p level (no-op when below the threshold). */
    static void write(LogLevel level, const std::string &msg);

    /** True when messages at @p level would be emitted. */
    static bool enabled(LogLevel level);
};

namespace detail {

/** Stream-style one-shot message builder used by the LOG_* helpers. */
class LogLine
{
  public:
    explicit LogLine(LogLevel level) : level_(level) {}

    ~LogLine() { Log::write(level_, oss_.str()); }

    template <typename T>
    LogLine &
    operator<<(const T &v)
    {
        oss_ << v;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream oss_;
};

} // namespace detail

} // namespace autocat

#define AUTOCAT_LOG_DEBUG autocat::detail::LogLine(autocat::LogLevel::Debug)
#define AUTOCAT_LOG_INFO autocat::detail::LogLine(autocat::LogLevel::Info)
#define AUTOCAT_LOG_WARN autocat::detail::LogLine(autocat::LogLevel::Warn)
#define AUTOCAT_LOG_ERROR autocat::detail::LogLine(autocat::LogLevel::Error)

#endif // AUTOCAT_UTIL_LOGGING_HPP
