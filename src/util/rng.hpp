/**
 * @file
 * Deterministic, seedable pseudo-random number generation.
 *
 * Every stochastic component in the library (cache random replacement,
 * episode secret sampling, policy sampling, noise injection) draws from an
 * explicitly seeded Rng instance so experiments are reproducible run to
 * run. The generator is xoshiro256**, seeded through splitmix64, which is
 * both fast and statistically strong enough for simulation workloads.
 */

#ifndef AUTOCAT_UTIL_RNG_HPP
#define AUTOCAT_UTIL_RNG_HPP

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace autocat {

/**
 * xoshiro256** pseudo-random generator with convenience sampling helpers.
 *
 * Satisfies UniformRandomBitGenerator so it can also be handed to
 * standard-library distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        reseed(seed);
    }

    /** Re-initialize the state from @p seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step: decorrelates consecutive seeds.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit draw (xoshiro256** update). */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    result_type operator()() { return next(); }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        assert(bound > 0);
        // Lemire's nearly-divisionless bounded sampling.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (-bound) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::int64_t
    uniformRange(std::int64_t lo, std::int64_t hi)
    {
        assert(lo <= hi);
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(uniformInt(span));
    }

    /** Uniform double in [0, 1). */
    double
    uniformDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniformDouble() < p;
    }

    /** Standard normal draw (Box-Muller; one value per call). */
    double
    gaussian()
    {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniformDouble();
        const double u2 = uniformDouble();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 6.283185307179586476925286766559 * u2;
        spare_ = r * std::sin(theta);
        has_spare_ = true;
        return r * std::cos(theta);
    }

    /** Normal draw with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Uniformly pick one element of non-empty @p v. */
    template <typename T>
    const T &
    choice(const std::vector<T> &v)
    {
        assert(!v.empty());
        return v[uniformInt(v.size())];
    }

    /**
     * Sample an index from an (unnormalized, non-negative) weight vector.
     * Falls back to uniform if all weights are zero.
     */
    std::size_t
    weightedIndex(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        if (total <= 0.0)
            return uniformInt(weights.size());
        double x = uniformDouble() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            x -= weights[i];
            if (x < 0.0)
                return i;
        }
        return weights.size() - 1;
    }

    /** Derive an independent child generator (for per-worker streams). */
    Rng
    split()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ull);
    }

    /**
     * Full generator state, including the Box-Muller spare, so a
     * restored generator continues the exact draw sequence
     * (rl/checkpoint.hpp serializes this).
     */
    struct State
    {
        std::uint64_t s[4] = {};
        bool hasSpare = false;
        double spare = 0.0;
    };

    State
    state() const
    {
        State st;
        for (int i = 0; i < 4; ++i)
            st.s[i] = state_[i];
        st.hasSpare = has_spare_;
        st.spare = spare_;
        return st;
    }

    void
    setState(const State &st)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = st.s[i];
        has_spare_ = st.hasSpare;
        spare_ = st.spare;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    bool has_spare_ = false;
    double spare_ = 0.0;
};

} // namespace autocat

#endif // AUTOCAT_UTIL_RNG_HPP
