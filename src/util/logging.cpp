#include "util/logging.hpp"

#include <atomic>
#include <iostream>

namespace autocat {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO ";
      case LogLevel::Warn: return "WARN ";
      case LogLevel::Error: return "ERROR";
      default: return "?????";
    }
}

} // namespace

void
Log::setLevel(LogLevel level)
{
    g_level.store(level);
}

LogLevel
Log::level()
{
    return g_level.load();
}

bool
Log::enabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

void
Log::write(LogLevel level, const std::string &msg)
{
    if (!enabled(level) || level == LogLevel::Off)
        return;
    std::cerr << "[autocat " << levelName(level) << "] " << msg << '\n';
}

} // namespace autocat
