/**
 * @file
 * Little-endian binary serialization helpers shared by the checkpoint
 * writers (rl/checkpoint.cpp, core/campaign.cpp).
 *
 * The on-disk convention is a *section*: an 8-byte magic, a u32 format
 * version, a u64 payload size, the payload bytes, and a trailing
 * FNV-1a 64 checksum over the payload. Readers reject wrong magic,
 * unknown versions, truncation, and checksum mismatches with distinct
 * error messages, so corrupt or mismatched files fail loudly instead
 * of restoring garbage state. Multiple sections may be concatenated in
 * one stream (the campaign checkpoint embeds a PPO section after its
 * own).
 */

#ifndef AUTOCAT_UTIL_BINIO_HPP
#define AUTOCAT_UTIL_BINIO_HPP

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace autocat {

/** FNV-1a 64-bit over a byte buffer. */
inline std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Append a trivially-copyable value to the payload buffer. */
template <typename T>
void
binPut(std::string &out, const T &v)
{
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    const char *p = reinterpret_cast<const char *>(&v);
    out.append(p, sizeof(T));
}

/** Append a raw float array. */
inline void
binPutFloats(std::string &out, const float *data, std::size_t n)
{
    out.append(reinterpret_cast<const char *>(data), n * sizeof(float));
}

/** Append a length-prefixed string. */
inline void
binPutString(std::string &out, const std::string &s)
{
    binPut(out, static_cast<std::uint64_t>(s.size()));
    out.append(s);
}

/** Bounds-checked payload reader; throws instead of reading past
 *  the end, so truncated payloads fail deterministically. */
class ByteCursor
{
  public:
    explicit ByteCursor(const std::string &bytes, std::string what)
        : bytes_(bytes), what_(std::move(what))
    {
    }

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable<T>::value, "POD only");
        T v;
        need(sizeof(T));
        std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    void
    getFloats(float *data, std::size_t n)
    {
        need(n * sizeof(float));
        std::memcpy(data, bytes_.data() + pos_, n * sizeof(float));
        pos_ += n * sizeof(float);
    }

    std::string
    getString()
    {
        const auto len = get<std::uint64_t>();
        need(len);
        std::string s(bytes_.data() + pos_, len);
        pos_ += len;
        return s;
    }

    bool exhausted() const { return pos_ == bytes_.size(); }

    /** Throw unless every payload byte was consumed. */
    void
    expectExhausted() const
    {
        if (!exhausted())
            throw std::runtime_error(
                what_ + ": trailing bytes after payload (corrupt file?)");
    }

  private:
    void
    need(std::size_t n)
    {
        if (bytes_.size() - pos_ < n)
            throw std::runtime_error(what_ +
                                     ": payload truncated (corrupt file?)");
    }

    const std::string &bytes_;
    std::string what_;
    std::size_t pos_ = 0;
};

/** Write one checksummed section (see the file comment). */
inline void
writeBinarySection(std::ostream &os, const char (&magic)[8],
                   std::uint32_t version, const std::string &payload,
                   const std::string &what)
{
    os.write(magic, 8);
    os.write(reinterpret_cast<const char *>(&version), sizeof(version));
    const std::uint64_t size = payload.size();
    os.write(reinterpret_cast<const char *>(&size), sizeof(size));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    const std::uint64_t checksum = fnv1a64(payload);
    os.write(reinterpret_cast<const char *>(&checksum), sizeof(checksum));
    if (!os)
        throw std::runtime_error(what + ": write failed");
}

/**
 * Read and validate one section; returns the payload.
 *
 * @throws std::runtime_error for bad magic, version mismatch,
 *         truncation, or checksum mismatch, prefixed with @p what
 */
inline std::string
readBinarySection(std::istream &is, const char (&magic)[8],
                  std::uint32_t expected_version, const std::string &what)
{
    char seen[8];
    is.read(seen, sizeof(seen));
    if (!is || std::memcmp(seen, magic, sizeof(seen)) != 0)
        throw std::runtime_error(what + ": bad magic (wrong file type?)");
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is || version != expected_version)
        throw std::runtime_error(
            what + ": unsupported format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(expected_version) + ")");
    std::uint64_t size = 0;
    is.read(reinterpret_cast<char *>(&size), sizeof(size));
    // Cap far above any real payload so a corrupt size field fails
    // cleanly instead of attempting a huge allocation.
    if (!is || size > (1ull << 33))
        throw std::runtime_error(
            what + ": implausible payload size (corrupt file?)");
    std::string payload(size, '\0');
    is.read(&payload[0], static_cast<std::streamsize>(size));
    if (!is || is.gcount() != static_cast<std::streamsize>(size))
        throw std::runtime_error(what +
                                 ": payload truncated (corrupt file?)");
    std::uint64_t checksum = 0;
    is.read(reinterpret_cast<char *>(&checksum), sizeof(checksum));
    if (!is)
        throw std::runtime_error(what +
                                 ": missing checksum (corrupt file?)");
    if (checksum != fnv1a64(payload))
        throw std::runtime_error(what + ": checksum mismatch (corrupt "
                                        "file)");
    return payload;
}

} // namespace autocat

#endif // AUTOCAT_UTIL_BINIO_HPP
