/**
 * @file
 * Crash-safe whole-file writes: temp file + fsync + atomic rename.
 *
 * Checkpoint and wire-blob writers must never leave a truncated file
 * under the final name — a worker process killed mid-write would
 * otherwise block its own resume (the reader rejects the corrupt file
 * and the scheduler retries into the same wall forever). The contract
 * here is all-or-nothing: after atomicWriteFile returns, the path
 * holds exactly the given bytes and is durable; if the writer dies at
 * any point before the rename, the previous file (or its absence) is
 * untouched and only a `<path>.tmp.<pid>` remnant is left behind,
 * which readers never open and which the next successful write of the
 * same path from the same pid overwrites.
 */

#ifndef AUTOCAT_UTIL_ATOMIC_FILE_HPP
#define AUTOCAT_UTIL_ATOMIC_FILE_HPP

#include <string>

namespace autocat {

/**
 * Atomically replace @p path with @p bytes: write them to a sibling
 * temp file, fsync it, rename it over @p path, and fsync the parent
 * directory so the rename itself is durable.
 *
 * @throws std::runtime_error (prefixed with @p what) on any I/O
 *         failure; the temp file is unlinked before throwing
 */
void atomicWriteFile(const std::string &path, const std::string &bytes,
                     const std::string &what);

/**
 * Read a whole file into a string (binary).
 *
 * @throws std::runtime_error (prefixed with @p what) when the file
 *         cannot be opened or read
 */
std::string readWholeFile(const std::string &path,
                          const std::string &what);

} // namespace autocat

#endif // AUTOCAT_UTIL_ATOMIC_FILE_HPP
