/**
 * @file
 * Small statistics toolkit used across the library and benches.
 *
 * Includes the lag-p autocorrelation estimator from CC-Hunter
 * (Chen & Venkataramani, MICRO'14) as quoted in the AutoCAT paper:
 *
 *   C_p = n * sum_{i=0}^{n-p} (X_i - mean)(X_{i+p} - mean)
 *         -----------------------------------------------
 *         (n - p) * sum_{i=0}^{n} (X_i - mean)^2
 */

#ifndef AUTOCAT_UTIL_STATS_HPP
#define AUTOCAT_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace autocat {

/** Streaming mean / variance accumulator (Welford's algorithm). */
class RunningStat
{
  public:
    /** Add one sample. */
    void push(double x);

    /** Number of samples pushed so far. */
    std::size_t count() const { return n_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample seen; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Drop all samples. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of @p xs; 0 when empty. */
double mean(const std::vector<double> &xs);

/** Unbiased sample standard deviation of @p xs; 0 with < 2 samples. */
double stddev(const std::vector<double> &xs);

/** Median (copies and sorts); 0 when empty. */
double median(std::vector<double> xs);

/**
 * Lag-p autocorrelation coefficient of the binary/real event train @p xs
 * using the CC-Hunter normalization (see file comment).
 *
 * @param xs event train X_0..X_{n}
 * @param p  lag, 1 <= p < xs.size()
 * @return C_p, or 0 when the train is constant or too short.
 */
double autocorrelation(const std::vector<double> &xs, std::size_t p);

/**
 * max_{1 <= p <= maxLag} |C_p| over the event train.
 *
 * CC-Hunter flags a covert channel when this exceeds a threshold
 * (0.75 in the paper's example).
 */
double maxAutocorrelation(const std::vector<double> &xs, std::size_t maxLag);

/** Full autocorrelogram C_1..C_maxLag (clamped to the train length). */
std::vector<double> autocorrelogram(const std::vector<double> &xs,
                                    std::size_t maxLag);

} // namespace autocat

#endif // AUTOCAT_UTIL_STATS_HPP
