#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace autocat {

void
RunningStat::push(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
autocorrelation(const std::vector<double> &xs, std::size_t p)
{
    const std::size_t n = xs.size();
    if (p == 0 || p >= n)
        return 0.0;

    const double m = mean(xs);
    double denom = 0.0;
    for (double x : xs)
        denom += (x - m) * (x - m);
    if (denom <= 0.0)
        return 0.0;

    double num = 0.0;
    for (std::size_t i = 0; i + p < n; ++i)
        num += (xs[i] - m) * (xs[i + p] - m);

    // CC-Hunter scales the biased estimator by n / (n - p) to keep long
    // lags comparable with short ones.
    const double scale = static_cast<double>(n) /
                         static_cast<double>(n - p);
    return scale * num / denom;
}

double
maxAutocorrelation(const std::vector<double> &xs, std::size_t maxLag)
{
    double best = 0.0;
    const std::size_t limit = std::min(maxLag + 1, xs.size());
    for (std::size_t p = 1; p < limit; ++p)
        best = std::max(best, std::abs(autocorrelation(xs, p)));
    return best;
}

std::vector<double>
autocorrelogram(const std::vector<double> &xs, std::size_t maxLag)
{
    std::vector<double> cs;
    const std::size_t limit = std::min(maxLag + 1, xs.size());
    for (std::size_t p = 1; p < limit; ++p)
        cs.push_back(autocorrelation(xs, p));
    return cs;
}

} // namespace autocat
