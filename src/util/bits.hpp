/**
 * @file
 * Bit-string helpers for covert-channel experiments.
 *
 * The paper measures covert channels by sending 2048-bit random strings
 * and scoring the Hamming distance between sent and received messages;
 * these helpers generate, pack, and compare such strings.
 */

#ifndef AUTOCAT_UTIL_BITS_HPP
#define AUTOCAT_UTIL_BITS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace autocat {

/** A message is a flat vector of bits (0/1). */
using BitString = std::vector<std::uint8_t>;

/** Generate @p nbits random bits. */
BitString randomBits(Rng &rng, std::size_t nbits);

/** Number of differing positions; shorter string is zero-padded. */
std::size_t hammingDistance(const BitString &a, const BitString &b);

/** Bit error rate in [0,1] relative to the longer string's length. */
double bitErrorRate(const BitString &a, const BitString &b);

/**
 * Group bits into @p bitsPerSymbol-wide symbols (big-endian within a
 * symbol); the tail is zero-padded to a full symbol.
 */
std::vector<unsigned> packSymbols(const BitString &bits,
                                  unsigned bitsPerSymbol);

/** Inverse of packSymbols; produces symbols.size()*bitsPerSymbol bits. */
BitString unpackSymbols(const std::vector<unsigned> &symbols,
                        unsigned bitsPerSymbol);

/** Render as a "0101..." string (for logs and tests). */
std::string toString(const BitString &bits);

} // namespace autocat

#endif // AUTOCAT_UTIL_BITS_HPP
