#include "util/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

namespace autocat {

namespace {

/** Resolve the endpoint into a sockaddr_in; false for a bad host. */
bool
toSockaddr(const TcpEndpoint &endpoint, sockaddr_in &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    const std::string host =
        endpoint.host == "localhost" ? "127.0.0.1" : endpoint.host;
    return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

} // namespace

void
OwnedFd::reset()
{
    if (fd_ >= 0) {
        // Preserve errno: reset() runs on error paths whose errno the
        // caller is about to report.
        const int saved = errno;
        ::close(fd_);
        errno = saved;
        fd_ = -1;
    }
}

std::string
TcpEndpoint::toString() const
{
    return host + ":" + std::to_string(port);
}

TcpEndpoint
parseTcpEndpoint(const std::string &text)
{
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= text.size()) {
        throw std::invalid_argument(
            "endpoint '" + text + "' is not of the form host:port");
    }
    TcpEndpoint ep;
    ep.host = text.substr(0, colon);
    const std::string port_text = text.substr(colon + 1);
    char *end = nullptr;
    errno = 0;
    const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
    if (errno != 0 || end == port_text.c_str() || *end != '\0' ||
        port > 65535) {
        throw std::invalid_argument("endpoint '" + text +
                                    "' has an invalid port");
    }
    ep.port = static_cast<std::uint16_t>(port);
    sockaddr_in probe;
    if (!toSockaddr(ep, probe))
        throw std::invalid_argument(
            "endpoint '" + text +
            "' host must be numeric IPv4 (or \"localhost\")");
    return ep;
}

OwnedFd
tcpListen(const TcpEndpoint &endpoint, std::uint16_t &bound_port,
          int backlog)
{
    sockaddr_in addr;
    if (!toSockaddr(endpoint, addr)) {
        errno = EINVAL;
        return OwnedFd();
    }
    OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return OwnedFd();
    const int one = 1;
    ::setsockopt(fd.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd.fd(), backlog) != 0) {
        return OwnedFd();
    }
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.fd(), reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0) {
        return OwnedFd();
    }
    bound_port = ntohs(bound.sin_port);
    return fd;
}

OwnedFd
tcpAccept(int listen_fd, int timeout_ms)
{
    if (!waitReadable(listen_fd, timeout_ms))
        return OwnedFd();
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0)
        return OwnedFd();
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return OwnedFd(fd);
}

OwnedFd
tcpConnect(const TcpEndpoint &endpoint, int timeout_ms, bool &refused)
{
    refused = false;
    sockaddr_in addr;
    if (!toSockaddr(endpoint, addr)) {
        errno = EINVAL;
        return OwnedFd();
    }
    OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return OwnedFd();
    // Non-blocking connect so the timeout is enforceable, restored to
    // blocking before handing the fd back.
    if (!setNonBlocking(fd.fd()))
        return OwnedFd();
    int rc = ::connect(fd.fd(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
        refused = errno == ECONNREFUSED;
        return OwnedFd();
    }
    if (rc != 0) {
        pollfd pfd{fd.fd(), POLLOUT, 0};
        do {
            rc = ::poll(&pfd, 1, timeout_ms);
        } while (rc < 0 && errno == EINTR);
        if (rc <= 0) {
            errno = rc == 0 ? ETIMEDOUT : errno;
            return OwnedFd();
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd.fd(), SOL_SOCKET, SO_ERROR, &err, &len) !=
                0 ||
            err != 0) {
            errno = err != 0 ? err : errno;
            refused = err == ECONNREFUSED;
            return OwnedFd();
        }
    }
    const int flags = ::fcntl(fd.fd(), F_GETFL);
    if (flags < 0 ||
        ::fcntl(fd.fd(), F_SETFL, flags & ~O_NONBLOCK) != 0) {
        return OwnedFd();
    }
    const int one = 1;
    ::setsockopt(fd.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

bool
sendAll(int fd, const void *data, std::size_t size)
{
    const char *p = static_cast<const char *>(data);
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::send(fd, p + off, size - off, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

long
recvSome(int fd, void *data, std::size_t size)
{
    for (;;) {
        const ssize_t n = ::recv(fd, data, size, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return static_cast<long>(n);
    }
}

bool
waitReadable(int fd, int timeout_ms)
{
    pollfd pfd{fd, POLLIN, 0};
    // EINTR falls through as "not readable" deliberately: accept loops
    // use the early return to re-check their shutdown flags.
    const int rc = ::poll(&pfd, 1, timeout_ms);
    return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
ignoreSigpipe()
{
    ::signal(SIGPIPE, SIG_IGN);
}

} // namespace autocat
