#include "hw/machines.hpp"

namespace autocat {

HierarchyConfig
HardwareTargetPreset::hierarchy(std::uint64_t seed) const
{
    CacheConfig cfg;
    cfg.numSets = 1;  // CacheQuery exposes one set at a time
    cfg.numWays = ways;
    cfg.policy = policy;
    cfg.addressSpaceSize = attackAddrE + 2;
    cfg.seed = seed;
    return HierarchyConfig::singleLevel(cfg);
}

std::vector<HardwareTargetPreset>
tableIIITargets()
{
    std::vector<HardwareTargetPreset> t;
    // Core i7-6700 (SkyLake)
    t.push_back({"Core i7-6700 (SkyLake)", "L1", 8, ReplPolicy::TreePlru,
                 true, 15, 0.002, 0.004});
    t.push_back({"Core i7-6700 (SkyLake)", "L2", 4, ReplPolicy::Rrip,
                 false, 8, 0.002, 0.004});
    t.push_back({"Core i7-6700 (SkyLake)", "L3", 4, ReplPolicy::Rrip,
                 false, 8, 0.002, 0.004});
    // Core i7-7700K (KabyLake), L3 way-partitioned with Intel CAT.
    t.push_back({"Core i7-7700K (KabyLake)", "L3", 4, ReplPolicy::Rrip,
                 false, 8, 0.002, 0.004});
    t.push_back({"Core i7-7700K (KabyLake)", "L3", 8, ReplPolicy::Rrip,
                 false, 15, 0.003, 0.005});
    // Core i7-9700 (CoffeeLake)
    t.push_back({"Core i7-9700 (CoffeeLake)", "L1", 8,
                 ReplPolicy::TreePlru, true, 15, 0.002, 0.004});
    t.push_back({"Core i7-9700 (CoffeeLake)", "L2", 4, ReplPolicy::Rrip,
                 false, 8, 0.002, 0.004});
    return t;
}

std::vector<CovertMachinePreset>
tableXMachines()
{
    std::vector<CovertMachinePreset> m;

    CovertMachinePreset ivy;
    ivy.cpu = "Xeon E5-2687W v2";
    ivy.uarch = "IvyBridge";
    ivy.l1d = "32KB(8way)";
    ivy.os = "Ubuntu18";
    ivy.l1Ways = 8;
    ivy.latency.freqGHz = 3.4;
    ivy.latency.l1HitCycles = 4.0;
    ivy.latency.l2HitCycles = 12.0;
    ivy.latency.measureCycles = 24.0;
    ivy.noise = 0.0015;
    m.push_back(ivy);

    CovertMachinePreset sky;
    sky.cpu = "Core i7-6700";
    sky.uarch = "Skylake";
    sky.l1d = "32KB(8way)";
    sky.os = "Ubuntu18";
    sky.l1Ways = 8;
    sky.latency.freqGHz = 3.4;
    sky.latency.l1HitCycles = 4.0;
    sky.latency.l2HitCycles = 14.0;
    sky.latency.measureCycles = 30.0;
    sky.noise = 0.003;
    m.push_back(sky);

    CovertMachinePreset rocket1;
    rocket1.cpu = "Core i5-11600K";
    rocket1.uarch = "RocketLake";
    rocket1.l1d = "48KB(12way)";
    rocket1.os = "CentOS8";
    rocket1.l1Ways = 12;
    rocket1.latency.freqGHz = 3.9;
    rocket1.latency.l1HitCycles = 5.0;
    rocket1.latency.l2HitCycles = 13.0;
    rocket1.latency.measureCycles = 30.0;
    rocket1.noise = 0.003;
    m.push_back(rocket1);

    CovertMachinePreset rocket2;
    rocket2.cpu = "Xeon W-1350P";
    rocket2.uarch = "RocketLake";
    rocket2.l1d = "48KB(12way)";
    rocket2.os = "Ubuntu20";
    rocket2.l1Ways = 12;
    rocket2.latency.freqGHz = 4.0;
    rocket2.latency.l1HitCycles = 5.0;
    rocket2.latency.l2HitCycles = 13.0;
    rocket2.latency.measureCycles = 32.0;
    rocket2.noise = 0.004;
    m.push_back(rocket2);

    return m;
}

} // namespace autocat
