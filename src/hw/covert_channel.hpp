/**
 * @file
 * Cache covert-channel protocols for the Table X / Figure 5
 * experiments: the LRU address-based channel (Xiong & Szefer,
 * HPCA'20) and StealthyStreamline (the paper's new attack, Fig. 4c),
 * executed on the cache simulator with a cycle-level latency model.
 *
 * StealthyStreamline round (N-way set, 2-bit symbol s in 0..3), from
 * the canonical state "lines 0..N-1 resident, 0..3 oldest":
 *   1. sender accesses candidate line s            (1 plain access)
 *   2. receiver accesses a fresh evictor line      (1 plain miss)
 *   3. receiver times candidate lines 0..3         (4 measured)
 *      -> the hit position identifies s
 *   4. receiver re-accesses lines 4..N-1           (N-4 plain)
 *      -> restores the canonical state (streamline overlap: the
 *         timed probes of step 3 double as next round's prime)
 * Total N+2 accesses per 2 bits, 4 of them measured — matching the
 * paper's "4 out of 10 (8-way) vs 4 out of 14 (12-way)" accounting.
 * No victim/sender access ever misses, so the channel is invisible to
 * miss-count detectors (the "stealthy" property).
 *
 * LRU address-based round (1 bit b):
 *   1. receiver primes lines 0..N-1 in order       (N plain)
 *   2. sender accesses line 0 when b = 1           (<=1 plain)
 *   3. receiver accesses a fresh evictor line      (1 plain miss)
 *   4. receiver times line 0: hit => b = 1         (1 measured)
 */

#ifndef AUTOCAT_HW_COVERT_CHANNEL_HPP
#define AUTOCAT_HW_COVERT_CHANNEL_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "cache/cache.hpp"
#include "hw/latency_model.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace autocat {

/** Which protocol a channel instance runs. */
enum class CovertProtocol {
    LruAddrBased,         ///< 1 bit per round baseline
    StealthyStreamline,   ///< 2+ bits per round, paper's new attack
};

/** Channel configuration. */
struct CovertChannelConfig
{
    CovertProtocol protocol = CovertProtocol::StealthyStreamline;
    unsigned ways = 8;
    /// Bits per StealthyStreamline symbol (2 or 3; Table X uses 2).
    unsigned bitsPerSymbol = 2;
    ReplPolicy policy = ReplPolicy::Lru;
    LatencyModel latency;
    /// Per-access probability of a stray interfering access to the set.
    double noise = 0.0;
    /// Send each symbol this many times and majority-vote (trades bit
    /// rate for error rate; generates the Fig. 5 curve).
    unsigned repeats = 1;
    /// Fixed per-round protocol overhead (sync, branches) in cycles.
    double roundOverheadCycles = 400.0;
    std::uint64_t seed = 1;
};

/** Transmission outcome. */
struct CovertResult
{
    double mbps = 0.0;
    double errorRate = 0.0;
    double cyclesPerBit = 0.0;
    std::size_t bitsSent = 0;
    std::size_t victimMisses = 0;  ///< sender demand misses (stealth)
};

/** A configured covert channel over one simulated cache set. */
class CovertChannel
{
  public:
    explicit CovertChannel(const CovertChannelConfig &config);

    /** Transmit @p message; returns rate/error measurements. */
    CovertResult transmit(const BitString &message);

    /** Symbols representable per round. */
    unsigned symbolsPerRound() const;

    /** Accesses per round (paper's accounting; no noise). */
    unsigned accessesPerRound() const;

    /** Measured (timed) accesses per round. */
    unsigned measuredPerRound() const;

  private:
    void primeCanonical();
    void maybeInterfere();
    /// One protocol round; returns the decoded symbol.
    unsigned sendSymbolOnce(unsigned symbol);
    void buildDecodeTable();

    CovertChannelConfig config_;
    Cache cache_;
    Rng rng_;
    double cycles_ = 0.0;
    std::size_t sender_misses_ = 0;
    std::uint64_t evictor_cursor_ = 0;
    std::map<std::vector<int>, unsigned> decode_;

    unsigned candidates_ = 4;  ///< timed lines per SS round
};

} // namespace autocat

#endif // AUTOCAT_HW_COVERT_CHANNEL_HPP
