/**
 * @file
 * Simulated black-box hardware target (the CacheQuery substitution).
 *
 * Presents the MemorySystem interface the environment consumes, backed
 * by a CacheHierarchy built from the preset's hierarchy description —
 * a single set of the exposed cache level whose replacement policy is
 * never revealed through the interface; the RL agent must adapt to it
 * exactly as it would to real silicon.
 *
 * Two noise processes model real-machine conditions:
 *  - observation noise: with probability obsNoise a latency
 *    measurement is misread (hit reported as miss or vice versa);
 *  - interference: with probability interference per demand access, a
 *    stray system access touches a random line of the set first,
 *    perturbing the true cache state.
 */

#ifndef AUTOCAT_HW_TARGET_HPP
#define AUTOCAT_HW_TARGET_HPP

#include <cstdint>
#include <memory>

#include "cache/memory_system.hpp"
#include "hw/machines.hpp"
#include "util/rng.hpp"

namespace autocat {

/** Black-box single-set hardware target. */
class SimulatedHardwareTarget : public MemorySystem
{
  public:
    /**
     * @param preset machine/level description
     * @param seed   noise determinism
     */
    SimulatedHardwareTarget(const HardwareTargetPreset &preset,
                            std::uint64_t seed);

    MemoryAccessResult access(std::uint64_t addr, Domain domain) override;
    void flush(std::uint64_t addr, Domain domain) override;
    bool contains(std::uint64_t addr) const override;
    void reset() override;
    void setEventListener(CacheEventListener listener) override;
    unsigned numBlocks() const override;

    /** The preset this target was built from. */
    const HardwareTargetPreset &preset() const { return preset_; }

  private:
    HardwareTargetPreset preset_;
    CacheHierarchy hier_;
    std::uint64_t addressSpace_;
    Rng rng_;
};

} // namespace autocat

#endif // AUTOCAT_HW_TARGET_HPP
