#include "hw/covert_channel.hpp"

#include <cassert>
#include <stdexcept>

namespace autocat {

namespace {

CacheConfig
channelCache(const CovertChannelConfig &config)
{
    CacheConfig cfg;
    cfg.numSets = 1;
    cfg.numWays = config.ways;
    cfg.policy = config.policy;
    // Shared lines + a rotating evictor pool of the same size.
    cfg.addressSpaceSize = 2ull * config.ways;
    cfg.seed = config.seed;
    return cfg;
}

} // namespace

CovertChannel::CovertChannel(const CovertChannelConfig &config)
    : config_(config), cache_(channelCache(config)), rng_(config.seed)
{
    if (config_.protocol == CovertProtocol::StealthyStreamline) {
        candidates_ = 1u << config_.bitsPerSymbol;
        if (candidates_ > config_.ways) {
            throw std::invalid_argument(
                "SS: 2^bitsPerSymbol must fit in the set");
        }
    } else {
        candidates_ = 1;
    }
    buildDecodeTable();
}

unsigned
CovertChannel::symbolsPerRound() const
{
    return config_.protocol == CovertProtocol::StealthyStreamline
               ? (1u << config_.bitsPerSymbol)
               : 2;
}

unsigned
CovertChannel::accessesPerRound() const
{
    if (config_.protocol == CovertProtocol::StealthyStreamline) {
        // sender + evictor + candidates timed + (ways - candidates)
        // reorder accesses.
        return config_.ways + 2;
    }
    // prime N + sender (counted as 1) + evictor + 1 timed probe.
    return config_.ways + 3;
}

unsigned
CovertChannel::measuredPerRound() const
{
    return config_.protocol == CovertProtocol::StealthyStreamline
               ? candidates_
               : 1;
}

void
CovertChannel::primeCanonical()
{
    for (unsigned a = 0; a < config_.ways; ++a) {
        const AccessResult r = cache_.access(a, Domain::Attacker);
        cycles_ += config_.latency.plainAccess(r.hit ? 1 : 2);
    }
}

void
CovertChannel::maybeInterfere()
{
    if (config_.noise > 0.0 && rng_.bernoulli(config_.noise)) {
        const std::uint64_t stray =
            rng_.uniformInt(cache_.config().addressSpaceSize);
        cache_.access(stray, Domain::Attacker);
    }
}

unsigned
CovertChannel::sendSymbolOnce(unsigned symbol)
{
    cycles_ += config_.roundOverheadCycles;

    const std::uint64_t evictor =
        config_.ways + (evictor_cursor_++ % config_.ways);

    if (config_.protocol == CovertProtocol::StealthyStreamline) {
        // 1. sender encodes by touching candidate line `symbol`.
        maybeInterfere();
        const AccessResult s = cache_.access(symbol, Domain::Victim);
        if (!s.hit)
            ++sender_misses_;
        cycles_ += config_.latency.plainAccess(s.hit ? 1 : 2);

        // 2. evictor access displaces the oldest candidate.
        maybeInterfere();
        const AccessResult e = cache_.access(evictor, Domain::Attacker);
        cycles_ += config_.latency.plainAccess(e.hit ? 1 : 2);

        // 3. timed probes of the candidates; hit position decodes.
        std::vector<int> pattern;
        for (unsigned c = 0; c < candidates_; ++c) {
            maybeInterfere();
            const AccessResult p = cache_.access(c, Domain::Attacker);
            cycles_ += config_.latency.measuredAccess(p.hit ? 1 : 2);
            pattern.push_back(p.hit ? 1 : 0);
        }

        // 4. re-normalize the rest of the set (streamline overlap:
        // the probes above already re-primed the candidates).
        for (unsigned a = candidates_; a < config_.ways; ++a) {
            maybeInterfere();
            const AccessResult r = cache_.access(a, Domain::Attacker);
            cycles_ += config_.latency.plainAccess(r.hit ? 1 : 2);
        }

        const auto it = decode_.find(pattern);
        if (it != decode_.end())
            return it->second;
        return 0;  // undecodable pattern: report symbol 0
    }

    // LRU address-based: one bit per round.
    primeCanonical();
    if (symbol & 1u) {
        maybeInterfere();
        const AccessResult s = cache_.access(0, Domain::Victim);
        if (!s.hit)
            ++sender_misses_;
        cycles_ += config_.latency.plainAccess(s.hit ? 1 : 2);
    }
    maybeInterfere();
    const AccessResult e = cache_.access(evictor, Domain::Attacker);
    cycles_ += config_.latency.plainAccess(e.hit ? 1 : 2);

    maybeInterfere();
    const AccessResult p = cache_.access(0, Domain::Attacker);
    cycles_ += config_.latency.measuredAccess(p.hit ? 1 : 2);
    return p.hit ? 1u : 0u;
}

void
CovertChannel::buildDecodeTable()
{
    if (config_.protocol != CovertProtocol::StealthyStreamline)
        return;

    // Dry-run each symbol from the canonical state with no noise to
    // learn the pattern -> symbol mapping (channel calibration phase).
    const double saved_noise = config_.noise;
    config_.noise = 0.0;
    for (unsigned s = 0; s < symbolsPerRound(); ++s) {
        cache_.reset();
        evictor_cursor_ = 0;
        primeCanonical();

        // Inline round without decoding.
        const std::uint64_t evictor =
            config_.ways + (evictor_cursor_++ % config_.ways);
        cache_.access(s, Domain::Victim);
        cache_.access(evictor, Domain::Attacker);
        std::vector<int> pattern;
        for (unsigned c = 0; c < candidates_; ++c) {
            const AccessResult p = cache_.access(c, Domain::Attacker);
            pattern.push_back(p.hit ? 1 : 0);
        }
        decode_[pattern] = s;
    }
    config_.noise = saved_noise;

    cache_.reset();
    evictor_cursor_ = 0;
    cycles_ = 0.0;
    sender_misses_ = 0;
}

CovertResult
CovertChannel::transmit(const BitString &message)
{
    cache_.reset();
    cycles_ = 0.0;
    sender_misses_ = 0;
    evictor_cursor_ = 0;
    primeCanonical();

    const unsigned bits_per_symbol =
        config_.protocol == CovertProtocol::StealthyStreamline
            ? config_.bitsPerSymbol
            : 1;
    const std::vector<unsigned> symbols =
        packSymbols(message, bits_per_symbol);

    std::vector<unsigned> received;
    received.reserve(symbols.size());
    for (unsigned s : symbols) {
        std::vector<unsigned> votes(symbolsPerRound(), 0);
        for (unsigned r = 0; r < std::max(1u, config_.repeats); ++r)
            ++votes[sendSymbolOnce(s) % votes.size()];
        unsigned best = 0;
        for (unsigned v = 1; v < votes.size(); ++v) {
            if (votes[v] > votes[best])
                best = v;
        }
        received.push_back(best);
    }

    BitString decoded = unpackSymbols(received, bits_per_symbol);
    decoded.resize(message.size());

    CovertResult result;
    result.bitsSent = message.size();
    result.errorRate = bitErrorRate(message, decoded);
    result.cyclesPerBit =
        message.empty() ? 0.0
                        : cycles_ / static_cast<double>(message.size());
    result.mbps = config_.latency.mbps(
        static_cast<double>(message.size()), cycles_);
    result.victimMisses = sender_misses_;
    return result;
}

} // namespace autocat
