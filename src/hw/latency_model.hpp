/**
 * @file
 * Cycle-level latency model for the simulated hardware targets.
 *
 * Converts attack/covert-channel access sequences into cycle counts
 * (and thus Mbps at a given core frequency). The constants follow
 * typical published Intel load-to-use latencies; the exact values are
 * documented in EXPERIMENTS.md since the paper's absolute bit rates
 * depend on its authors' silicon.
 */

#ifndef AUTOCAT_HW_LATENCY_MODEL_HPP
#define AUTOCAT_HW_LATENCY_MODEL_HPP

namespace autocat {

/** Cycle costs of the memory operations a channel performs. */
struct LatencyModel
{
    double l1HitCycles = 4.0;      ///< L1D load-to-use
    double l2HitCycles = 14.0;     ///< L1 miss hitting L2
    double l3HitCycles = 40.0;     ///< L2 miss hitting L3
    double memCycles = 200.0;      ///< full miss to DRAM
    double measureCycles = 26.0;   ///< rdtscp fencing around a load
    double loopCycles = 2.0;       ///< per-access loop overhead
    double freqGHz = 3.4;          ///< core clock

    /** Cycles of one plain access that hits at @p level (1=L1,0=mem). */
    double
    plainAccess(int hit_level) const
    {
        return loopCycles + levelCycles(hit_level);
    }

    /** Cycles of one timed access that hits at @p level. */
    double
    measuredAccess(int hit_level) const
    {
        return loopCycles + measureCycles + levelCycles(hit_level);
    }

    /** Raw load latency by hit level. */
    double
    levelCycles(int hit_level) const
    {
        switch (hit_level) {
          case 1: return l1HitCycles;
          case 2: return l2HitCycles;
          case 3: return l3HitCycles;
          default: return memCycles;
        }
    }

    /** Convert cycles to seconds. */
    double
    seconds(double cycles) const
    {
        return cycles / (freqGHz * 1e9);
    }

    /** Megabits per second for @p bits transferred in @p cycles. */
    double
    mbps(double bits, double cycles) const
    {
        if (cycles <= 0.0)
            return 0.0;
        return bits / seconds(cycles) / 1e6;
    }
};

} // namespace autocat

#endif // AUTOCAT_HW_LATENCY_MODEL_HPP
