/**
 * @file
 * Machine presets standing in for the paper's physical test systems.
 *
 * Table III explores attacks on specific cache levels of three Intel
 * CPUs via CacheQuery; Table X measures covert channels on four
 * machines. We reproduce each as a configured simulator: documented
 * geometry, a *hidden* replacement policy (the RL agent is never told
 * which), realistic latencies, and injected noise.
 *
 * "N.O.D." levels (not officially documented) use RRIP here, which is
 * a public approximation of Intel's QLRU family — the point of the
 * experiment is that the agent adapts without knowing this.
 */

#ifndef AUTOCAT_HW_MACHINES_HPP
#define AUTOCAT_HW_MACHINES_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_config.hpp"
#include "hw/latency_model.hpp"

namespace autocat {

/** One Table III exploration target: a single set of one cache level. */
struct HardwareTargetPreset
{
    std::string cpu;        ///< e.g. "Core i7-6700 (SkyLake)"
    std::string level;      ///< "L1", "L2", "L3"
    unsigned ways = 8;
    ReplPolicy policy = ReplPolicy::TreePlru;  ///< hidden from the agent
    bool documented = false;  ///< false => "N.O.D." in the table
    std::uint64_t attackAddrE = 15;  ///< attacker range is [0, attackAddrE]
    double obsNoise = 0.002;   ///< per-access latency misread probability
    double interference = 0.004;  ///< per-step stray-access probability

    /**
     * Hierarchy description of the exposed level: one single set of
     * the target cache level, CacheQuery style. The simulated target
     * (hw/target.hpp) is built from this instead of hand-plumbing its
     * own cache level.
     */
    HierarchyConfig hierarchy(std::uint64_t seed) const;
};

/** The seven Table III rows. */
std::vector<HardwareTargetPreset> tableIIITargets();

/** One Table X covert-channel machine. */
struct CovertMachinePreset
{
    std::string cpu;     ///< e.g. "Xeon E5-2687W v2"
    std::string uarch;   ///< e.g. "IvyBridge"
    std::string l1d;     ///< e.g. "32KB(8way)"
    std::string os;      ///< e.g. "Ubuntu18"
    unsigned l1Ways = 8;
    LatencyModel latency;
    double noise = 0.002;  ///< per-access interference probability
};

/** The four Table X machines. */
std::vector<CovertMachinePreset> tableXMachines();

} // namespace autocat

#endif // AUTOCAT_HW_MACHINES_HPP
