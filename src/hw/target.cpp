#include "hw/target.hpp"

namespace autocat {

namespace {

CacheConfig
presetCacheConfig(const HardwareTargetPreset &preset, std::uint64_t seed)
{
    CacheConfig cfg;
    cfg.numSets = 1;  // CacheQuery exposes one set at a time
    cfg.numWays = preset.ways;
    cfg.policy = preset.policy;
    cfg.addressSpaceSize = preset.attackAddrE + 2;
    cfg.seed = seed;
    return cfg;
}

} // namespace

SimulatedHardwareTarget::SimulatedHardwareTarget(
    const HardwareTargetPreset &preset, std::uint64_t seed)
    : preset_(preset),
      cache_(presetCacheConfig(preset, seed)),
      rng_(seed ^ 0x4a7dull)
{
}

MemoryAccessResult
SimulatedHardwareTarget::access(std::uint64_t addr, Domain domain)
{
    // Stray system activity occasionally touches the set first.
    if (rng_.bernoulli(preset_.interference)) {
        const std::uint64_t stray =
            rng_.uniformInt(cache_.config().addressSpaceSize);
        cache_.access(stray, domain);
    }

    const AccessResult res = cache_.access(addr, domain);

    bool observed_hit = res.hit;
    if (rng_.bernoulli(preset_.obsNoise))
        observed_hit = !observed_hit;

    MemoryAccessResult out;
    out.hit = observed_hit;
    out.hitLevel = observed_hit ? 1 : 0;
    out.victimMissed = domain == Domain::Victim && !res.hit;
    return out;
}

void
SimulatedHardwareTarget::flush(std::uint64_t addr, Domain domain)
{
    cache_.flush(addr, domain);
}

bool
SimulatedHardwareTarget::contains(std::uint64_t addr) const
{
    return cache_.contains(addr);
}

void
SimulatedHardwareTarget::reset()
{
    cache_.reset();
}

void
SimulatedHardwareTarget::setEventListener(CacheEventListener listener)
{
    cache_.setEventListener(std::move(listener));
}

unsigned
SimulatedHardwareTarget::numBlocks() const
{
    return cache_.numBlocks();
}

} // namespace autocat
