#include "hw/target.hpp"

namespace autocat {

SimulatedHardwareTarget::SimulatedHardwareTarget(
    const HardwareTargetPreset &preset, std::uint64_t seed)
    : preset_(preset),
      hier_(preset.hierarchy(seed)),
      addressSpace_(preset.attackAddrE + 2),
      rng_(seed ^ 0x4a7dull)
{
}

MemoryAccessResult
SimulatedHardwareTarget::access(std::uint64_t addr, Domain domain)
{
    // Stray system activity occasionally touches the set first.
    if (rng_.bernoulli(preset_.interference)) {
        const std::uint64_t stray = rng_.uniformInt(addressSpace_);
        hier_.access(stray, domain);
    }

    MemoryAccessResult out = hier_.access(addr, domain);

    // victimMissed stays tied to the true cache state (it feeds
    // miss-based detection); only the observed latency is noisy.
    if (rng_.bernoulli(preset_.obsNoise)) {
        out.hit = !out.hit;
        out.hitLevel = out.hit ? 1 : 0;
    }
    return out;
}

void
SimulatedHardwareTarget::flush(std::uint64_t addr, Domain domain)
{
    hier_.flush(addr, domain);
}

bool
SimulatedHardwareTarget::contains(std::uint64_t addr) const
{
    return hier_.contains(addr);
}

void
SimulatedHardwareTarget::reset()
{
    hier_.reset();
}

void
SimulatedHardwareTarget::setEventListener(CacheEventListener listener)
{
    hier_.setEventListener(std::move(listener));
}

unsigned
SimulatedHardwareTarget::numBlocks() const
{
    return hier_.numBlocks();
}

} // namespace autocat
