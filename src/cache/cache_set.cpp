#include "cache/cache_set.hpp"

#include <cassert>

namespace autocat {

CacheSet::CacheSet(unsigned ways, ReplPolicy policy, Rng *rng)
    : ways_(ways),
      tags_(ways, 0),
      valid_(ways, false),
      locked_(ways, false),
      owner_(ways, Domain::Attacker),
      policy_(makeReplacementPolicy(policy, ways, rng))
{
}

int
CacheSet::findWay(std::uint64_t addr) const
{
    for (unsigned w = 0; w < ways_; ++w) {
        if (valid_[w] && tags_[w] == addr)
            return static_cast<int>(w);
    }
    return -1;
}

int
CacheSet::findInvalidWay() const
{
    for (unsigned w = 0; w < ways_; ++w) {
        if (!valid_[w])
            return static_cast<int>(w);
    }
    return -1;
}

AccessResult
CacheSet::access(std::uint64_t addr, Domain domain)
{
    AccessResult result;

    const int hit_way = findWay(addr);
    if (hit_way >= 0) {
        result.hit = true;
        result.hitLevel = 1;
        owner_[hit_way] = domain;
        policy_->onHit(static_cast<unsigned>(hit_way));
        return result;
    }

    int way = findInvalidWay();
    if (way < 0) {
        way = policy_->victimWay(valid_, locked_);
        if (way < 0) {
            // Every valid way is locked: PL cache serves the access
            // without caching it and without perturbing any state.
            result.servedUncached = true;
            return result;
        }
        result.evicted = true;
        result.evictedAddr = tags_[way];
        result.evictedOwner = owner_[way];
    }

    tags_[way] = addr;
    valid_[way] = true;
    locked_[way] = false;
    owner_[way] = domain;
    policy_->onFill(static_cast<unsigned>(way));
    return result;
}

bool
CacheSet::invalidate(std::uint64_t addr)
{
    const int way = findWay(addr);
    if (way < 0)
        return false;
    valid_[way] = false;
    locked_[way] = false;
    policy_->onInvalidate(static_cast<unsigned>(way));
    return true;
}

bool
CacheSet::contains(std::uint64_t addr) const
{
    return findWay(addr) >= 0;
}

bool
CacheSet::lockLine(std::uint64_t addr, Domain domain)
{
    int way = findWay(addr);
    if (way < 0) {
        const AccessResult res = access(addr, domain);
        if (res.servedUncached)
            return false;
        way = findWay(addr);
        assert(way >= 0);
    }
    locked_[way] = true;
    return true;
}

bool
CacheSet::unlockLine(std::uint64_t addr)
{
    const int way = findWay(addr);
    if (way < 0)
        return false;
    locked_[way] = false;
    return true;
}

bool
CacheSet::isLocked(std::uint64_t addr) const
{
    const int way = findWay(addr);
    return way >= 0 && locked_[way];
}

void
CacheSet::reset()
{
    valid_.assign(ways_, false);
    locked_.assign(ways_, false);
    owner_.assign(ways_, Domain::Attacker);
    policy_->reset();
}

std::vector<std::uint64_t>
CacheSet::residentAddrs() const
{
    std::vector<std::uint64_t> out;
    for (unsigned w = 0; w < ways_; ++w) {
        if (valid_[w])
            out.push_back(tags_[w]);
    }
    return out;
}

Domain
CacheSet::ownerOf(std::uint64_t addr) const
{
    const int way = findWay(addr);
    assert(way >= 0);
    return owner_[way];
}

std::vector<unsigned>
CacheSet::policyState() const
{
    return policy_->stateSnapshot();
}

} // namespace autocat
