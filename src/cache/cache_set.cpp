#include "cache/cache_set.hpp"

#include <cassert>

namespace autocat {

CacheSet::CacheSet(unsigned ways, std::uint64_t setIndex)
    : ways_(ways),
      index_(setIndex),
      tags_(ways, 0),
      valid_(ways, 0),
      locked_(ways, 0),
      owner_(ways, Domain::Attacker)
{
}

int
CacheSet::findWay(std::uint64_t addr) const
{
    for (unsigned w = 0; w < ways_; ++w) {
        if (valid_[w] && tags_[w] == addr)
            return static_cast<int>(w);
    }
    return -1;
}

int
CacheSet::findInvalidWay() const
{
    for (unsigned w = 0; w < ways_; ++w) {
        if (!valid_[w])
            return static_cast<int>(w);
    }
    return -1;
}

AccessResult
CacheSet::access(ReplacementState &repl, std::uint64_t addr, Domain domain)
{
    AccessResult result;

    const int hit_way = findWay(addr);
    if (hit_way >= 0) {
        result.hit = true;
        result.hitLevel = 1;
        owner_[hit_way] = domain;
        repl.onHit(index_, static_cast<unsigned>(hit_way));
        return result;
    }

    int way = findInvalidWay();
    if (way < 0) {
        way = repl.victimWay(index_, valid_.data(), locked_.data());
        if (way < 0) {
            // Every valid way is locked: PL cache serves the access
            // without caching it and without perturbing any state.
            result.servedUncached = true;
            return result;
        }
        result.evicted = true;
        result.evictedAddr = tags_[way];
        result.evictedOwner = owner_[way];
    }

    tags_[way] = addr;
    valid_[way] = 1;
    locked_[way] = 0;
    owner_[way] = domain;
    repl.onFill(index_, static_cast<unsigned>(way));
    return result;
}

bool
CacheSet::accessFast(ReplacementState &repl, std::uint64_t addr,
                     Domain domain)
{
    const int hit_way = findWay(addr);
    if (hit_way >= 0) {
        owner_[hit_way] = domain;
        repl.onHit(index_, static_cast<unsigned>(hit_way));
        return true;
    }

    int way = findInvalidWay();
    if (way < 0) {
        way = repl.victimWay(index_, valid_.data(), locked_.data());
        if (way < 0)
            return false;  // PL cache: served uncached
    }
    tags_[way] = addr;
    valid_[way] = 1;
    locked_[way] = 0;
    owner_[way] = domain;
    repl.onFill(index_, static_cast<unsigned>(way));
    return false;
}

bool
CacheSet::invalidate(ReplacementState &repl, std::uint64_t addr)
{
    const int way = findWay(addr);
    if (way < 0)
        return false;
    valid_[way] = 0;
    locked_[way] = 0;
    repl.onInvalidate(index_, static_cast<unsigned>(way));
    return true;
}

bool
CacheSet::contains(std::uint64_t addr) const
{
    return findWay(addr) >= 0;
}

bool
CacheSet::lockLine(ReplacementState &repl, std::uint64_t addr,
                   Domain domain, AccessResult *fill)
{
    int way = findWay(addr);
    if (way < 0) {
        const AccessResult res = access(repl, addr, domain);
        if (fill)
            *fill = res;
        if (res.servedUncached)
            return false;
        way = findWay(addr);
        assert(way >= 0);
    }
    locked_[way] = 1;
    return true;
}

bool
CacheSet::unlockLine(std::uint64_t addr)
{
    const int way = findWay(addr);
    if (way < 0)
        return false;
    locked_[way] = 0;
    return true;
}

bool
CacheSet::isLocked(std::uint64_t addr) const
{
    const int way = findWay(addr);
    return way >= 0 && locked_[way];
}

void
CacheSet::reset(ReplacementState &repl)
{
    valid_.assign(ways_, 0);
    locked_.assign(ways_, 0);
    owner_.assign(ways_, Domain::Attacker);
    repl.resetSet(index_);
}

std::vector<std::uint64_t>
CacheSet::residentAddrs() const
{
    std::vector<std::uint64_t> out;
    for (unsigned w = 0; w < ways_; ++w) {
        if (valid_[w])
            out.push_back(tags_[w]);
    }
    return out;
}

Domain
CacheSet::ownerOf(std::uint64_t addr) const
{
    const int way = findWay(addr);
    assert(way >= 0);
    return owner_[way];
}

} // namespace autocat
