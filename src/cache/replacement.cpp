#include "cache/replacement.hpp"

#include <cassert>
#include <stdexcept>

namespace autocat {

ReplPolicy
replPolicyFromString(const std::string &name)
{
    if (name == "lru")
        return ReplPolicy::Lru;
    if (name == "plru")
        return ReplPolicy::TreePlru;
    if (name == "rrip")
        return ReplPolicy::Rrip;
    if (name == "random")
        return ReplPolicy::Random;
    throw std::invalid_argument("unknown replacement policy: " + name);
}

const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Lru: return "lru";
      case ReplPolicy::TreePlru: return "plru";
      case ReplPolicy::Rrip: return "rrip";
      case ReplPolicy::Random: return "random";
    }
    return "?";
}

namespace {

bool
isPowerOfTwo(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

ReplacementState::ReplacementState(ReplPolicy policy, std::uint64_t numSets,
                                   unsigned ways, Rng *rng)
    : policy_(policy), ways_(ways), rng_(rng)
{
    if (ways == 0)
        throw std::invalid_argument("replacement: ways must be > 0");
    if (ways > 255)
        throw std::invalid_argument(
            "replacement: ways must fit 8-bit metadata (max 255)");
    switch (policy) {
      case ReplPolicy::Lru:
      case ReplPolicy::Rrip:
        stride_ = ways;
        break;
      case ReplPolicy::TreePlru:
        if (!isPowerOfTwo(ways))
            throw std::invalid_argument(
                "PLRU: ways must be a power of two");
        for (unsigned w = ways; w > 1; w >>= 1)
            ++levels_;
        // Heap-ordered tree bits live at entries [1, ways).
        stride_ = ways;
        break;
      case ReplPolicy::Random:
        if (!rng)
            throw std::invalid_argument("random policy requires an Rng");
        stride_ = 0;
        break;
      default:
        throw std::invalid_argument("unknown replacement policy enum");
    }
    meta_.resize(numSets * stride_);
    reset();
}

void
ReplacementState::lruTouch(std::uint64_t set, unsigned way)
{
    assert(way < ways_);
    std::uint8_t *age = meta_.data() + set * stride_;
    const std::uint8_t old = age[way];
    for (unsigned w = 0; w < ways_; ++w) {
        if (age[w] < old)
            ++age[w];
    }
    age[way] = 0;
}

void
ReplacementState::plruPoint(std::uint64_t set, unsigned way, bool away)
{
    assert(way < ways_);
    // Walk from the root; at each node record the direction away from
    // (on hit/fill) or toward (on invalidate) the given way. Bit = 1
    // means "victim search goes right".
    std::uint8_t *bits = meta_.data() + set * stride_;
    unsigned node = 1;
    for (unsigned level = 0; level < levels_; ++level) {
        const unsigned shift = levels_ - 1 - level;
        const bool went_right = ((way >> shift) & 1u) != 0;
        bits[node] = static_cast<std::uint8_t>(away ? !went_right
                                                    : went_right);
        node = node * 2 + (went_right ? 1 : 0);
    }
}

void
ReplacementState::onInvalidate(std::uint64_t set, unsigned way)
{
    switch (policy_) {
      case ReplPolicy::Lru: {
        // Age the invalidated way to maximum so it is reused first.
        std::uint8_t *age = meta_.data() + set * stride_;
        const std::uint8_t old = age[way];
        for (unsigned w = 0; w < ways_; ++w) {
            if (age[w] > old)
                --age[w];
        }
        age[way] = static_cast<std::uint8_t>(ways_ - 1);
        break;
      }
      case ReplPolicy::TreePlru:
        // Point the tree toward the invalidated way so it refills first.
        plruPoint(set, way, /*away=*/false);
        break;
      case ReplPolicy::Rrip:
        meta_[set * stride_ + way] = rripMax;
        break;
      case ReplPolicy::Random:
        break;
    }
}

int
ReplacementState::victimWay(std::uint64_t set, const std::uint8_t *valid,
                            const std::uint8_t *locked)
{
    switch (policy_) {
      case ReplPolicy::Lru: {
        const std::uint8_t *age = meta_.data() + set * stride_;
        int best = -1;
        std::uint8_t best_age = 0;
        for (unsigned w = 0; w < ways_; ++w) {
            if (!valid[w] || locked[w])
                continue;
            if (best < 0 || age[w] > best_age) {
                best = static_cast<int>(w);
                best_age = age[w];
            }
        }
        return best;
      }

      case ReplPolicy::TreePlru: {
        // Follow the tree bits to the PLRU victim.
        const std::uint8_t *bits = meta_.data() + set * stride_;
        unsigned node = 1;
        unsigned way = 0;
        for (unsigned level = 0; level < levels_; ++level) {
            const bool go_right = bits[node] != 0;
            way = (way << 1) | (go_right ? 1u : 0u);
            node = node * 2 + (go_right ? 1 : 0);
        }
        if (valid[way] && !locked[way])
            return static_cast<int>(way);
        // The tree-designated victim is locked (PL cache): fall back to
        // the first unlocked valid way; hardware PLRU implementations
        // use similar priority muxes when lock bits mask the tree choice.
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid[w] && !locked[w])
                return static_cast<int>(w);
        }
        return -1;
      }

      case ReplPolicy::Rrip: {
        std::uint8_t *rrpv = meta_.data() + set * stride_;
        bool any_candidate = false;
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid[w] && !locked[w])
                any_candidate = true;
        }
        if (!any_candidate)
            return -1;
        // Age until some unlocked way reaches the maximum RRPV. Bounded
        // by rripMax iterations since each pass increments candidates.
        for (;;) {
            for (unsigned w = 0; w < ways_; ++w) {
                if (valid[w] && !locked[w] && rrpv[w] >= rripMax)
                    return static_cast<int>(w);
            }
            for (unsigned w = 0; w < ways_; ++w) {
                if (valid[w] && !locked[w] && rrpv[w] < rripMax)
                    ++rrpv[w];
            }
        }
      }

      case ReplPolicy::Random: {
        unsigned candidates = 0;
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid[w] && !locked[w])
                ++candidates;
        }
        if (candidates == 0)
            return -1;
        std::uint64_t pick = rng_->uniformInt(candidates);
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid[w] && !locked[w] && pick-- == 0)
                return static_cast<int>(w);
        }
        break;
      }
    }
    return -1;
}

void
ReplacementState::reset()
{
    const std::uint64_t sets = stride_ ? meta_.size() / stride_ : 0;
    for (std::uint64_t s = 0; s < sets; ++s)
        resetSet(s);
}

void
ReplacementState::resetSet(std::uint64_t set)
{
    std::uint8_t *slice = meta_.data() + set * stride_;
    switch (policy_) {
      case ReplPolicy::Lru:
        // Way 0 is the power-on victim (oldest age).
        for (unsigned w = 0; w < ways_; ++w)
            slice[w] = static_cast<std::uint8_t>(ways_ - 1 - w);
        break;
      case ReplPolicy::TreePlru:
        for (unsigned w = 0; w < ways_; ++w)
            slice[w] = 0;
        break;
      case ReplPolicy::Rrip:
        for (unsigned w = 0; w < ways_; ++w)
            slice[w] = rripMax;
        break;
      case ReplPolicy::Random:
        break;
    }
}

std::vector<unsigned>
ReplacementState::stateSnapshot(std::uint64_t set) const
{
    const std::uint8_t *slice = meta_.data() + set * stride_;
    std::vector<unsigned> out;
    switch (policy_) {
      case ReplPolicy::Lru:
      case ReplPolicy::Rrip:
        out.assign(slice, slice + ways_);
        break;
      case ReplPolicy::TreePlru:
        // Tree direction bits in heap order (entry 0 unused).
        for (unsigned i = 1; i < ways_; ++i)
            out.push_back(slice[i]);
        break;
      case ReplPolicy::Random:
        break;
    }
    return out;
}

} // namespace autocat
