#include "cache/replacement.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace autocat {

ReplPolicy
replPolicyFromString(const std::string &name)
{
    if (name == "lru")
        return ReplPolicy::Lru;
    if (name == "plru")
        return ReplPolicy::TreePlru;
    if (name == "rrip")
        return ReplPolicy::Rrip;
    if (name == "random")
        return ReplPolicy::Random;
    throw std::invalid_argument("unknown replacement policy: " + name);
}

const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Lru: return "lru";
      case ReplPolicy::TreePlru: return "plru";
      case ReplPolicy::Rrip: return "rrip";
      case ReplPolicy::Random: return "random";
    }
    return "?";
}

std::unique_ptr<SetReplacementPolicy>
makeReplacementPolicy(ReplPolicy policy, unsigned ways, Rng *rng)
{
    switch (policy) {
      case ReplPolicy::Lru:
        return std::make_unique<LruReplacement>(ways);
      case ReplPolicy::TreePlru:
        return std::make_unique<TreePlruReplacement>(ways);
      case ReplPolicy::Rrip:
        return std::make_unique<RripReplacement>(ways);
      case ReplPolicy::Random:
        if (!rng)
            throw std::invalid_argument("random policy requires an Rng");
        return std::make_unique<RandomReplacement>(ways, rng);
    }
    throw std::invalid_argument("unknown replacement policy enum");
}

// ---------------------------------------------------------------- LRU --

LruReplacement::LruReplacement(unsigned ways) : ways_(ways)
{
    if (ways == 0)
        throw std::invalid_argument("LRU: ways must be > 0");
    reset();
}

void
LruReplacement::touch(unsigned way)
{
    assert(way < ways_);
    const unsigned old = age_[way];
    for (unsigned w = 0; w < ways_; ++w) {
        if (age_[w] < old)
            ++age_[w];
    }
    age_[way] = 0;
}

void
LruReplacement::onHit(unsigned way)
{
    touch(way);
}

void
LruReplacement::onFill(unsigned way)
{
    touch(way);
}

void
LruReplacement::onInvalidate(unsigned way)
{
    // Age the invalidated way to maximum so it is reused first.
    const unsigned old = age_[way];
    for (unsigned w = 0; w < ways_; ++w) {
        if (age_[w] > old)
            --age_[w];
    }
    age_[way] = ways_ - 1;
}

int
LruReplacement::victimWay(const std::vector<bool> &valid,
                          const std::vector<bool> &locked)
{
    int best = -1;
    unsigned best_age = 0;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!valid[w] || locked[w])
            continue;
        if (best < 0 || age_[w] > best_age) {
            best = static_cast<int>(w);
            best_age = age_[w];
        }
    }
    return best;
}

void
LruReplacement::reset()
{
    age_.assign(ways_, 0);
    for (unsigned w = 0; w < ways_; ++w)
        age_[w] = ways_ - 1 - w;
}

std::vector<unsigned>
LruReplacement::stateSnapshot() const
{
    return age_;
}

// --------------------------------------------------------------- PLRU --

namespace {

bool
isPowerOfTwo(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

TreePlruReplacement::TreePlruReplacement(unsigned ways) : ways_(ways)
{
    if (!isPowerOfTwo(ways))
        throw std::invalid_argument("PLRU: ways must be a power of two");
    levels_ = 0;
    for (unsigned w = ways; w > 1; w >>= 1)
        ++levels_;
    reset();
}

void
TreePlruReplacement::touch(unsigned way)
{
    assert(way < ways_);
    // Walk from the root; at each node record the direction *away* from
    // the accessed way (bit = 1 means "victim search goes right").
    unsigned node = 1;
    for (unsigned level = 0; level < levels_; ++level) {
        const unsigned shift = levels_ - 1 - level;
        const bool went_right = ((way >> shift) & 1u) != 0;
        bits_[node] = !went_right;
        node = node * 2 + (went_right ? 1 : 0);
    }
}

void
TreePlruReplacement::onHit(unsigned way)
{
    touch(way);
}

void
TreePlruReplacement::onFill(unsigned way)
{
    touch(way);
}

void
TreePlruReplacement::onInvalidate(unsigned way)
{
    // Point the tree toward the invalidated way so it is refilled first.
    unsigned node = 1;
    for (unsigned level = 0; level < levels_; ++level) {
        const unsigned shift = levels_ - 1 - level;
        const bool went_right = ((way >> shift) & 1u) != 0;
        bits_[node] = went_right;
        node = node * 2 + (went_right ? 1 : 0);
    }
}

int
TreePlruReplacement::victimWay(const std::vector<bool> &valid,
                               const std::vector<bool> &locked)
{
    // Follow the tree bits to the PLRU victim.
    unsigned node = 1;
    unsigned way = 0;
    for (unsigned level = 0; level < levels_; ++level) {
        const bool go_right = bits_[node];
        way = (way << 1) | (go_right ? 1u : 0u);
        node = node * 2 + (go_right ? 1 : 0);
    }
    if (valid[way] && !locked[way])
        return static_cast<int>(way);

    // The tree-designated victim is locked (PL cache): fall back to the
    // first unlocked valid way; hardware PLRU implementations use similar
    // priority muxes when lock bits mask the tree choice.
    for (unsigned w = 0; w < ways_; ++w) {
        if (valid[w] && !locked[w])
            return static_cast<int>(w);
    }
    return -1;
}

void
TreePlruReplacement::reset()
{
    bits_.assign(2 * ways_, false);
}

std::vector<unsigned>
TreePlruReplacement::stateSnapshot() const
{
    std::vector<unsigned> out;
    for (unsigned i = 1; i < ways_; ++i)
        out.push_back(bits_[i] ? 1 : 0);
    return out;
}

// --------------------------------------------------------------- RRIP --

RripReplacement::RripReplacement(unsigned ways) : ways_(ways)
{
    if (ways == 0)
        throw std::invalid_argument("RRIP: ways must be > 0");
    reset();
}

void
RripReplacement::onHit(unsigned way)
{
    rrpv_[way] = 0;
}

void
RripReplacement::onFill(unsigned way)
{
    rrpv_[way] = insertRrpv;
}

void
RripReplacement::onInvalidate(unsigned way)
{
    rrpv_[way] = maxRrpv;
}

int
RripReplacement::victimWay(const std::vector<bool> &valid,
                           const std::vector<bool> &locked)
{
    bool any_candidate = false;
    for (unsigned w = 0; w < ways_; ++w) {
        if (valid[w] && !locked[w])
            any_candidate = true;
    }
    if (!any_candidate)
        return -1;

    // Age until some unlocked way reaches the maximum RRPV. Bounded by
    // maxRrpv iterations since each pass increments candidates.
    for (;;) {
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid[w] && !locked[w] && rrpv_[w] >= maxRrpv)
                return static_cast<int>(w);
        }
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid[w] && !locked[w] && rrpv_[w] < maxRrpv)
                ++rrpv_[w];
        }
    }
}

void
RripReplacement::reset()
{
    rrpv_.assign(ways_, maxRrpv);
}

std::vector<unsigned>
RripReplacement::stateSnapshot() const
{
    return rrpv_;
}

// ------------------------------------------------------------- Random --

RandomReplacement::RandomReplacement(unsigned ways, Rng *rng)
    : ways_(ways), rng_(rng)
{
    if (ways == 0)
        throw std::invalid_argument("random: ways must be > 0");
    assert(rng != nullptr);
}

void
RandomReplacement::onHit(unsigned way)
{
    (void)way;
}

void
RandomReplacement::onFill(unsigned way)
{
    (void)way;
}

void
RandomReplacement::onInvalidate(unsigned way)
{
    (void)way;
}

int
RandomReplacement::victimWay(const std::vector<bool> &valid,
                             const std::vector<bool> &locked)
{
    std::vector<unsigned> candidates;
    candidates.reserve(ways_);
    for (unsigned w = 0; w < ways_; ++w) {
        if (valid[w] && !locked[w])
            candidates.push_back(w);
    }
    if (candidates.empty())
        return -1;
    return static_cast<int>(
        candidates[rng_->uniformInt(candidates.size())]);
}

void
RandomReplacement::reset()
{
}

std::vector<unsigned>
RandomReplacement::stateSnapshot() const
{
    return {};
}

} // namespace autocat
