#include "cache/tlb.hpp"

#include <cassert>
#include <stdexcept>

namespace autocat {

namespace {

const TlbConfig &
validated(const TlbConfig &config)
{
    if (config.numSets == 0 || config.numWays == 0)
        throw std::invalid_argument("tlb: sets and ways must be > 0");
    if (config.walkLevels == 0)
        throw std::invalid_argument("tlb: need at least one walk level");
    if (config.levelBits == 0)
        throw std::invalid_argument("tlb: level_bits must be > 0");
    if (config.pwcSets == 0 || config.pwcWays == 0)
        throw std::invalid_argument("tlb: pwc sets and ways must be > 0");
    return config;
}

} // namespace

Tlb::Tlb(const TlbConfig &config)
    : config_(validated(config)),
      rng_(config_.seed),
      repl_(config_.policy, config_.numSets, config_.numWays, &rng_)
{
    sets_.reserve(config_.numSets);
    for (unsigned s = 0; s < config_.numSets; ++s)
        sets_.emplace_back(config_.numWays, s);

    walk_.reserve(config_.walkLevels);
    for (unsigned k = 0; k < config_.walkLevels; ++k) {
        // PWCs are small true-LRU structures regardless of the TLB's
        // own policy (hardware paging-structure caches are not
        // configurable the way the TLB replacement is).
        WalkCache wc{ReplacementState(ReplPolicy::Lru, config_.pwcSets,
                                      config_.pwcWays, &rng_),
                     {}};
        wc.sets.reserve(config_.pwcSets);
        for (unsigned s = 0; s < config_.pwcSets; ++s)
            wc.sets.emplace_back(config_.pwcWays, s);
        walk_.push_back(std::move(wc));
    }
}

std::uint64_t
Tlb::setIndexOf(std::uint64_t page) const
{
    return page % config_.numSets;
}

const CacheSet &
Tlb::set(std::uint64_t index) const
{
    assert(index < sets_.size());
    return sets_[index];
}

std::uint64_t
Tlb::walkPrefix(unsigned level, std::uint64_t page) const
{
    assert(level < config_.walkLevels);
    const unsigned shift = config_.levelBits * (config_.walkLevels - level);
    // A shift of >= 64 bits is UB; such a level translates the whole
    // (small) address space, so every page shares prefix 0.
    return shift >= 64 ? 0 : page >> shift;
}

bool
Tlb::pwcContains(unsigned level, std::uint64_t prefix) const
{
    assert(level < config_.walkLevels);
    const WalkCache &wc = walk_[level];
    return wc.sets[prefix % config_.pwcSets].contains(prefix);
}

TlbLookupResult
Tlb::lookup(std::uint64_t page, Domain domain)
{
    const std::uint64_t idx = setIndexOf(page);
    const AccessResult res = sets_[idx].access(repl_, page, domain);

    TlbLookupResult out;
    out.hit = res.hit;
    out.evicted = res.evicted;
    out.evictedPage = res.evictedAddr;
    out.evictedOwner = res.evictedOwner;

    if (!res.hit) {
        // Walk root -> leaf: each level whose prefix misses its PWC
        // goes to memory and installs the prefix for later walks.
        for (unsigned k = 0; k < config_.walkLevels; ++k) {
            WalkCache &wc = walk_[k];
            const std::uint64_t prefix = walkPrefix(k, page);
            const bool cached = wc.sets[prefix % config_.pwcSets]
                                    .accessFast(wc.repl, prefix, domain);
            if (!cached)
                ++out.walkedLevels;
        }
    }

    if (listener_) {
        CacheEvent ev;
        ev.op = CacheOp::DemandAccess;
        ev.domain = domain;
        ev.addr = page;
        ev.setIndex = idx;
        ev.hit = res.hit;
        ev.evicted = res.evicted;
        ev.evictedAddr = res.evictedAddr;
        ev.evictedOwner = res.evictedOwner;
        listener_(ev);
    }

    return out;
}

bool
Tlb::flushPage(std::uint64_t page, Domain domain)
{
    const std::uint64_t idx = setIndexOf(page);
    const bool dropped = sets_[idx].invalidate(repl_, page);

    if (listener_) {
        CacheEvent ev;
        ev.op = CacheOp::Flush;
        ev.domain = domain;
        ev.addr = page;
        ev.setIndex = idx;
        ev.hit = dropped;
        listener_(ev);
    }

    return dropped;
}

bool
Tlb::contains(std::uint64_t page) const
{
    return sets_[setIndexOf(page)].contains(page);
}

void
Tlb::reset()
{
    for (auto &set : sets_)
        set.reset(repl_);
    for (auto &wc : walk_) {
        for (auto &set : wc.sets)
            set.reset(wc.repl);
    }
}

void
Tlb::setEventListener(CacheEventListener listener)
{
    listener_ = std::move(listener);
}

} // namespace autocat
