/**
 * @file
 * Configuration records for the cache simulator.
 *
 * Mirrors the "Cache configs in cache simulator" block of Table II in the
 * paper: total blocks, associativity, replacement policy, plus the
 * prefetcher and address-mapping options exercised by Table IV.
 */

#ifndef AUTOCAT_CACHE_CACHE_CONFIG_HPP
#define AUTOCAT_CACHE_CACHE_CONFIG_HPP

#include <cstdint>
#include <string>

#include "cache/replacement.hpp"

namespace autocat {

/** Hardware prefetcher attached to a cache (Table IV configs 2/13/14). */
enum class PrefetcherKind : std::uint8_t {
    None,      ///< no prefetching
    NextLine,  ///< on every demand access to X, prefetch X+1
    Stream,    ///< detect constant-stride streams, prefetch ahead
};

/** Parse "none" / "nextline" / "stream". */
PrefetcherKind prefetcherFromString(const std::string &name);

/** Canonical name of a prefetcher kind. */
const char *prefetcherName(PrefetcherKind k);

/** Configuration of one cache level. */
struct CacheConfig
{
    /** Number of sets; 1 makes the cache fully associative. */
    unsigned numSets = 1;

    /** Associativity; 1 makes the cache direct mapped. */
    unsigned numWays = 4;

    /** Replacement policy for every set. */
    ReplPolicy policy = ReplPolicy::Lru;

    /** Hardware prefetcher. */
    PrefetcherKind prefetcher = PrefetcherKind::None;

    /**
     * When true, addresses map to sets through a fixed random permutation
     * instead of addr % numSets (Section V-B "fixed random address-to-set
     * mapping").
     */
    bool randomSetMapping = false;

    /**
     * Size of the flat address space the programs use; needed for the
     * next-line prefetcher wraparound and the random set mapping table.
     */
    std::uint64_t addressSpaceSize = 64;

    /** Seed for the random policy / random mapping. */
    std::uint64_t seed = 1;

    /** Total number of blocks (paper's num_blocks). */
    unsigned numBlocks() const { return numSets * numWays; }
};

/** Configuration of a two-level hierarchy (Table IV configs 16/17). */
struct TwoLevelConfig
{
    /** Number of cores, each with a private L1. */
    unsigned numCores = 2;

    /** Private L1 configuration (replicated per core). */
    CacheConfig l1;

    /** Shared inclusive L2 configuration. */
    CacheConfig l2;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_CACHE_CONFIG_HPP
