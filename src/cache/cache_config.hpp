/**
 * @file
 * Configuration records for the cache simulator.
 *
 * Mirrors the "Cache configs in cache simulator" block of Table II in the
 * paper: total blocks, associativity, replacement policy, plus the
 * prefetcher and address-mapping options exercised by Table IV, and the
 * declarative hierarchy description behind multi-level scenarios.
 */

#ifndef AUTOCAT_CACHE_CACHE_CONFIG_HPP
#define AUTOCAT_CACHE_CACHE_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cache/replacement.hpp"

namespace autocat {

/** Hardware prefetcher attached to a cache (Table IV configs 2/13/14). */
enum class PrefetcherKind : std::uint8_t {
    None,      ///< no prefetching
    NextLine,  ///< on every demand access to X, prefetch X+1
    Stream,    ///< detect constant-stride streams, prefetch ahead
};

/** Parse "none" / "nextline" / "stream". */
PrefetcherKind prefetcherFromString(const std::string &name);

/** Canonical name of a prefetcher kind. */
const char *prefetcherName(PrefetcherKind k);

/** Configuration of one cache level. */
struct CacheConfig
{
    /** Number of sets; 1 makes the cache fully associative. */
    unsigned numSets = 1;

    /** Associativity; 1 makes the cache direct mapped. */
    unsigned numWays = 4;

    /** Replacement policy for every set. */
    ReplPolicy policy = ReplPolicy::Lru;

    /** Hardware prefetcher. */
    PrefetcherKind prefetcher = PrefetcherKind::None;

    /**
     * When true, addresses map to sets through a fixed random permutation
     * instead of addr % numSets (Section V-B "fixed random address-to-set
     * mapping").
     */
    bool randomSetMapping = false;

    /**
     * Size of the flat address space the programs use; needed for the
     * next-line prefetcher wraparound and the random set mapping table.
     */
    std::uint64_t addressSpaceSize = 64;

    /** Seed for the random policy / random mapping. */
    std::uint64_t seed = 1;

    /** Total number of blocks (paper's num_blocks). */
    unsigned numBlocks() const { return numSets * numWays; }
};

/**
 * How a cache level relates to the levels inside it.
 *
 * The attribute describes the level itself: an Inclusive L2 guarantees
 * every L1-resident line is also L2-resident (evicting from L2
 * back-invalidates every inner copy — the contention channel behind
 * cross-core prime+probe); an Exclusive level holds only lines the inner
 * levels evicted (a victim cache: an inner hit pulls the line out of it);
 * Nine (non-inclusive non-exclusive) fills on the demand path like an
 * inclusive level but never back-invalidates. The attribute of the
 * innermost level is ignored — there is nothing inside it to relate to.
 */
enum class InclusionPolicy : std::uint8_t { Inclusive, Exclusive, Nine };

/** Parse "inclusive" / "exclusive" / "nine" (throws on unknown). */
InclusionPolicy inclusionFromString(const std::string &name);

/** Canonical lowercase name of an inclusion policy. */
const char *inclusionName(InclusionPolicy p);

/** One level of a cache hierarchy. */
struct HierarchyLevelConfig
{
    /** Geometry / policy of this level. */
    CacheConfig cache;

    /** Relationship to the inner levels (ignored for the innermost). */
    InclusionPolicy inclusion = InclusionPolicy::Inclusive;

    /**
     * Shared across all cores, or replicated per core. Private level
     * instance c derives its seed as cache.seed + level*numCores + c + 1
     * so per-core random state is decorrelated but reproducible.
     */
    bool shared = true;
};

/**
 * Declarative description of an N-level hierarchy: an ordered list of
 * level configs, innermost (L1) first. The paper's two-level shared-L2
 * setup (Table IV configs 16/17) is a two-entry list with a private L1
 * and a shared inclusive L2.
 *
 * Domain-to-core mapping: the attacker runs on core 0, the victim on
 * core 1 (paper: "the victim program and the attack program each run on
 * one core").
 */
struct HierarchyConfig
{
    /** Number of cores; private levels get one instance per core. */
    unsigned numCores = 2;

    /** Level configs, levels[0] = L1 (innermost). Empty = unset. */
    std::vector<HierarchyLevelConfig> levels;

    /** Number of levels. */
    unsigned depth() const { return static_cast<unsigned>(levels.size()); }

    /** Single-level hierarchy over @p cache. */
    static HierarchyConfig
    singleLevel(const CacheConfig &cache)
    {
        HierarchyConfig cfg;
        cfg.numCores = 1;
        cfg.levels.push_back({cache, InclusionPolicy::Inclusive, true});
        return cfg;
    }

    /** Private-L1 / shared-L2 hierarchy (the classic two-level shape). */
    static HierarchyConfig
    twoLevel(const CacheConfig &l1, const CacheConfig &l2,
             InclusionPolicy l2Inclusion = InclusionPolicy::Inclusive,
             bool sharedL1 = false, unsigned numCores = 2)
    {
        HierarchyConfig cfg;
        cfg.numCores = numCores;
        cfg.levels.push_back({l1, InclusionPolicy::Inclusive, sharedL1});
        cfg.levels.push_back({l2, l2Inclusion, true});
        return cfg;
    }
};

} // namespace autocat

#endif // AUTOCAT_CACHE_CACHE_CONFIG_HPP
