/**
 * @file
 * Event and result types shared across the cache simulator.
 *
 * Detectors (CC-Hunter, Cyclone, miss-count) observe the cache purely
 * through CacheEvent records, mirroring how hardware detectors tap
 * microarchitectural event signals rather than inspecting cache internals.
 */

#ifndef AUTOCAT_CACHE_EVENTS_HPP
#define AUTOCAT_CACHE_EVENTS_HPP

#include <cstdint>
#include <functional>
#include <string>

namespace autocat {

/** Security domain issuing a memory operation. */
enum class Domain : std::uint8_t { Attacker = 0, Victim = 1 };

/** Human-readable domain name. */
const char *domainName(Domain d);

/** Kind of cache operation an event describes. */
enum class CacheOp : std::uint8_t {
    DemandAccess,  ///< load issued by a program
    Prefetch,      ///< access injected by a hardware prefetcher
    Flush,         ///< clflush-style invalidation
    VictimFill,    ///< exclusive outer level absorbing an inner eviction
};

/** Result of a single cache access as seen by the accessor. */
struct AccessResult
{
    bool hit = false;           ///< line was present
    int hitLevel = 0;           ///< level-k hit (1-based); 0 = memory
    bool evicted = false;       ///< a valid line was displaced
    std::uint64_t evictedAddr = 0;  ///< address of the displaced line
    Domain evictedOwner = Domain::Attacker;  ///< last toucher of that line
    bool servedUncached = false;  ///< PL cache: all candidate ways locked
};

/** One observable cache event, delivered to registered listeners. */
struct CacheEvent
{
    CacheOp op = CacheOp::DemandAccess;
    Domain domain = Domain::Attacker;  ///< who issued the operation
    std::uint64_t addr = 0;
    std::uint64_t setIndex = 0;
    bool hit = false;
    bool evicted = false;
    std::uint64_t evictedAddr = 0;
    Domain evictedOwner = Domain::Attacker;
    bool servedUncached = false;
};

/** Callback type for cache event observation. */
using CacheEventListener = std::function<void(const CacheEvent &)>;

} // namespace autocat

#endif // AUTOCAT_CACHE_EVENTS_HPP
