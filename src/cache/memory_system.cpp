#include "cache/memory_system.hpp"

#include <cassert>

namespace autocat {

bool
MemorySystem::lockLine(std::uint64_t addr, Domain domain)
{
    (void)addr;
    (void)domain;
    return false;
}

bool
MemorySystem::unlockLine(std::uint64_t addr)
{
    (void)addr;
    return false;
}

// -------------------------------------------------- SingleLevelMemory --

SingleLevelMemory::SingleLevelMemory(const CacheConfig &config)
    : cache_(config)
{
}

MemoryAccessResult
SingleLevelMemory::access(std::uint64_t addr, Domain domain)
{
    const AccessResult res = cache_.access(addr, domain);
    MemoryAccessResult out;
    out.hit = res.hit;
    out.hitLevel = res.hit ? 1 : 0;
    out.victimMissed = domain == Domain::Victim && !res.hit &&
                       !res.servedUncached;
    return out;
}

void
SingleLevelMemory::flush(std::uint64_t addr, Domain domain)
{
    cache_.flush(addr, domain);
}

bool
SingleLevelMemory::contains(std::uint64_t addr) const
{
    return cache_.contains(addr);
}

void
SingleLevelMemory::reset()
{
    cache_.reset();
}

void
SingleLevelMemory::setEventListener(CacheEventListener listener)
{
    cache_.setEventListener(std::move(listener));
}

bool
SingleLevelMemory::lockLine(std::uint64_t addr, Domain domain)
{
    return cache_.lockLine(addr, domain);
}

bool
SingleLevelMemory::unlockLine(std::uint64_t addr)
{
    return cache_.unlockLine(addr);
}

unsigned
SingleLevelMemory::numBlocks() const
{
    return cache_.numBlocks();
}

// ----------------------------------------------------- TwoLevelMemory --

TwoLevelMemory::TwoLevelMemory(const TwoLevelConfig &config)
    : config_(config), l2_(config.l2)
{
    assert(config.numCores >= 2);
    l1s_.reserve(config.numCores);
    for (unsigned c = 0; c < config.numCores; ++c) {
        CacheConfig l1cfg = config.l1;
        l1cfg.seed = config.l1.seed + c + 1;
        l1s_.emplace_back(l1cfg);
    }
}

unsigned
TwoLevelMemory::coreOf(Domain domain)
{
    return domain == Domain::Attacker ? 0 : 1;
}

MemoryAccessResult
TwoLevelMemory::access(std::uint64_t addr, Domain domain)
{
    const unsigned core = coreOf(domain);
    MemoryAccessResult out;

    const AccessResult l1res = l1s_[core].access(addr, domain);
    if (l1res.hit) {
        out.hit = true;
        out.hitLevel = 1;
        return out;
    }

    // L1 fill already happened inside Cache::access (it installs on
    // miss); the L1 eviction it may have caused is private and harmless
    // for inclusion. Now consult the shared L2.
    const AccessResult l2res = l2_.access(addr, domain);
    if (l2res.evicted) {
        // Inclusive hierarchy: an L2 eviction removes the line from
        // every private L1.
        for (auto &l1 : l1s_)
            l1.backInvalidate(l2res.evictedAddr);
    }

    out.hit = l2res.hit;
    out.hitLevel = l2res.hit ? 2 : 0;
    out.victimMissed = domain == Domain::Victim && !l2res.hit;
    return out;
}

void
TwoLevelMemory::flush(std::uint64_t addr, Domain domain)
{
    for (auto &l1 : l1s_)
        l1.backInvalidate(addr);
    l2_.flush(addr, domain);
}

bool
TwoLevelMemory::contains(std::uint64_t addr) const
{
    return l2_.contains(addr);
}

void
TwoLevelMemory::reset()
{
    for (auto &l1 : l1s_)
        l1.reset();
    l2_.reset();
}

void
TwoLevelMemory::setEventListener(CacheEventListener listener)
{
    // Detectors watch the shared level, where cross-domain contention
    // happens.
    l2_.setEventListener(std::move(listener));
}

unsigned
TwoLevelMemory::numBlocks() const
{
    return l2_.numBlocks();
}

} // namespace autocat
