#include "cache/memory_system.hpp"

#include <cassert>
#include <stdexcept>

namespace autocat {

bool
MemorySystem::lockLine(std::uint64_t addr, Domain domain)
{
    (void)addr;
    (void)domain;
    return false;
}

bool
MemorySystem::unlockLine(std::uint64_t addr)
{
    (void)addr;
    return false;
}

// -------------------------------------------------- SingleLevelMemory --

SingleLevelMemory::SingleLevelMemory(const CacheConfig &config)
    : cache_(config)
{
}

MemoryAccessResult
SingleLevelMemory::access(std::uint64_t addr, Domain domain)
{
    const AccessResult res = cache_.access(addr, domain);
    MemoryAccessResult out;
    out.hit = res.hit;
    out.hitLevel = res.hit ? 1 : 0;
    out.servedUncached = res.servedUncached;
    out.victimMissed = domain == Domain::Victim && !res.hit &&
                       !res.servedUncached;
    return out;
}

void
SingleLevelMemory::flush(std::uint64_t addr, Domain domain)
{
    cache_.flush(addr, domain);
}

bool
SingleLevelMemory::contains(std::uint64_t addr) const
{
    return cache_.contains(addr);
}

void
SingleLevelMemory::reset()
{
    cache_.reset();
}

void
SingleLevelMemory::setEventListener(CacheEventListener listener)
{
    cache_.setEventListener(std::move(listener));
}

bool
SingleLevelMemory::lockLine(std::uint64_t addr, Domain domain)
{
    return cache_.lockLine(addr, domain);
}

bool
SingleLevelMemory::unlockLine(std::uint64_t addr)
{
    return cache_.unlockLine(addr);
}

unsigned
SingleLevelMemory::numBlocks() const
{
    return cache_.numBlocks();
}

// ----------------------------------------------------- CacheHierarchy --

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config)
{
    if (config_.levels.empty())
        throw std::invalid_argument(
            "hierarchy: at least one level is required");
    if (config_.numCores == 0)
        throw std::invalid_argument("hierarchy: numCores must be > 0");

    bool any_private = false;
    for (const auto &lvl : config_.levels)
        any_private |= !lvl.shared;
    if (any_private && config_.numCores < 2) {
        throw std::invalid_argument(
            "hierarchy: private levels need one core per domain "
            "(numCores >= 2)");
    }

    levels_.reserve(config_.levels.size());
    for (unsigned k = 0; k < config_.levels.size(); ++k) {
        const HierarchyLevelConfig &lvl = config_.levels[k];
        Level level;
        level.inclusion = lvl.inclusion;
        level.shared = lvl.shared;
        const unsigned instances = lvl.shared ? 1 : config_.numCores;
        for (unsigned c = 0; c < instances; ++c) {
            CacheConfig cache_cfg = lvl.cache;
            if (!lvl.shared) {
                // Decorrelate per-core random state, reproducibly.
                cache_cfg.seed = lvl.cache.seed +
                                 k * config_.numCores + c + 1;
            }
            level.instances.push_back(std::make_unique<Cache>(cache_cfg));
        }
        levels_.push_back(std::move(level));
    }
}

unsigned
CacheHierarchy::coreOf(Domain domain)
{
    return domain == Domain::Attacker ? 0 : 1;
}

Cache &
CacheHierarchy::instanceFor(unsigned level, unsigned core)
{
    Level &l = levels_[level];
    return *l.instances[l.shared ? 0 : core];
}

const Cache &
CacheHierarchy::level(unsigned level, unsigned core) const
{
    assert(level < levels_.size());
    const Level &l = levels_[level];
    return *l.instances[l.shared ? 0 : core];
}

void
CacheHierarchy::backInvalidateInner(unsigned level, std::uint64_t addr,
                                    unsigned core)
{
    // A shared level backs every core's inner caches, so its eviction
    // invalidates them all (the cross-core contention channel). A
    // private level backs only its own core's path — other cores'
    // private caches are untouched (no cross-core artifact); an inner
    // shared level sits on that path and must still drop its copy.
    const bool evicting_shared = levels_[level].shared;
    for (unsigned k = 0; k < level; ++k) {
        if (evicting_shared || levels_[k].shared) {
            for (auto &cache : levels_[k].instances)
                cache->backInvalidate(addr);
        } else {
            instanceFor(k, core).backInvalidate(addr);
        }
    }
}

void
CacheHierarchy::spillVictim(unsigned level, std::uint64_t addr,
                            Domain owner, unsigned core)
{
    // Offer an evicted line to consecutive exclusive levels starting
    // at @p level; it vanishes to memory at the first non-absorber.
    for (unsigned k = level;
         k < depth() && levels_[k].inclusion == InclusionPolicy::Exclusive;
         ++k) {
        const AccessResult fill = instanceFor(k, core).install(addr, owner);
        if (!fill.evicted)
            return;
        addr = fill.evictedAddr;
        owner = fill.evictedOwner;
    }
}

MemoryAccessResult
CacheHierarchy::access(std::uint64_t addr, Domain domain)
{
    const unsigned core = coreOf(domain);
    MemoryAccessResult out;

    // Whether some level now holds the line (false only while every
    // probed level served it uncached — the PL all-ways-locked path).
    bool resident = false;
    // A line evicted at the previous level, awaiting an exclusive
    // absorber; dropped (written back to memory) at any other level.
    bool have_victim = false;
    std::uint64_t victim_addr = 0;
    Domain victim_owner = Domain::Attacker;

    for (unsigned k = 0; k < depth(); ++k) {
        Level &lvl = levels_[k];
        Cache &cache = instanceFor(k, core);
        bool hit_here = false;

        if (lvl.inclusion == InclusionPolicy::Exclusive && k > 0) {
            // Exclusive level: no demand fill. On a hit the line moves
            // inward — the inner miss path just installed it, so drop
            // the copy here to keep single residency (unless no inner
            // level could take it, i.e. all ways locked).
            if (cache.contains(addr)) {
                if (resident)
                    cache.backInvalidate(addr);
                hit_here = true;
            }
            // Absorb the inner level's victim; our own eviction spills
            // outward to the next exclusive level on the next iteration.
            if (have_victim) {
                const AccessResult fill =
                    cache.install(victim_addr, victim_owner);
                have_victim = fill.evicted;
                victim_addr = fill.evictedAddr;
                victim_owner = fill.evictedOwner;
            }
        } else {
            const AccessResult res = cache.access(addr, domain);
            if (!res.servedUncached)
                resident = true;
            hit_here = res.hit;
            have_victim = res.evicted;
            victim_addr = res.evictedAddr;
            victim_owner = res.evictedOwner;
            if (res.evicted &&
                lvl.inclusion == InclusionPolicy::Inclusive && k > 0) {
                // Inclusive level: its eviction removes the line from
                // the inner instances it backs (the back-invalidation
                // channel).
                backInvalidateInner(k, res.evictedAddr, core);
            }
        }

        if (hit_here) {
            out.hit = true;
            out.hitLevel = static_cast<int>(k) + 1;
            // A victim still in flight (evicted by this exclusive
            // level's absorb above) spills outward even though the
            // demand walk stops here.
            if (have_victim)
                spillVictim(k + 1, victim_addr, victim_owner, core);
            break;
        }
    }

    out.servedUncached = !out.hit && !resident;
    out.victimMissed =
        domain == Domain::Victim && !out.hit && resident;
    return out;
}

void
CacheHierarchy::flush(std::uint64_t addr, Domain domain)
{
    // Inner copies drop silently; the outermost level emits the Flush
    // event the detectors observe.
    for (unsigned k = 0; k + 1 < depth(); ++k) {
        for (auto &cache : levels_[k].instances)
            cache->backInvalidate(addr);
    }
    for (auto &cache : levels_.back().instances)
        cache->flush(addr, domain);
}

bool
CacheHierarchy::contains(std::uint64_t addr) const
{
    for (const auto &lvl : levels_) {
        for (const auto &cache : lvl.instances) {
            if (cache->contains(addr))
                return true;
        }
    }
    return false;
}

void
CacheHierarchy::reset()
{
    for (auto &lvl : levels_) {
        for (auto &cache : lvl.instances)
            cache->reset();
    }
}

void
CacheHierarchy::setEventListener(CacheEventListener listener)
{
    // Detectors watch the outermost level, where cross-domain
    // contention happens.
    listener_ = std::move(listener);
    for (auto &cache : levels_.back().instances)
        cache->setEventListener(listener_);
}

bool
CacheHierarchy::lockLine(std::uint64_t addr, Domain domain)
{
    // Lock along the issuing core's path. Locking an inclusive outer
    // copy too keeps inclusion valid (a locked outer line is never
    // evicted, so it never back-invalidates the locked inner copy).
    // Exclusive levels hold no demand-path copy to lock.
    const unsigned core = coreOf(domain);
    bool ok = true;
    for (unsigned k = 0; k < depth(); ++k) {
        if (levels_[k].inclusion == InclusionPolicy::Exclusive && k > 0)
            continue;
        AccessResult fill;
        ok = instanceFor(k, core).lockLine(addr, domain, &fill) && ok;
        // The lock-install is a fill like any other: its eviction must
        // back-invalidate inner copies (inclusion) and spill into an
        // exclusive outer neighbor, or stale inner lines would survive.
        if (fill.evicted) {
            if (levels_[k].inclusion == InclusionPolicy::Inclusive &&
                k > 0) {
                backInvalidateInner(k, fill.evictedAddr, core);
            }
            spillVictim(k + 1, fill.evictedAddr, fill.evictedOwner,
                        core);
        }
    }
    return ok;
}

bool
CacheHierarchy::unlockLine(std::uint64_t addr)
{
    bool any = false;
    for (auto &lvl : levels_) {
        for (auto &cache : lvl.instances)
            any = cache->unlockLine(addr) || any;
    }
    return any;
}

unsigned
CacheHierarchy::numBlocks() const
{
    return levels_.back().instances.front()->numBlocks();
}

} // namespace autocat
