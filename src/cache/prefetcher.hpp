/**
 * @file
 * Hardware prefetchers (Table IV configs 2, 13, 14).
 *
 * Prefetchers observe demand accesses and emit prefetch addresses that
 * the owning cache installs. In the paper's notation an access "6 (p7)"
 * means the demand access to 6 triggered a prefetch of 7.
 */

#ifndef AUTOCAT_CACHE_PREFETCHER_HPP
#define AUTOCAT_CACHE_PREFETCHER_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_config.hpp"

namespace autocat {

/** Interface of a hardware prefetcher. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe a demand access and return addresses to prefetch.
     *
     * @param addr demand address
     * @param hit  whether the demand access hit
     */
    virtual std::vector<std::uint64_t>
    onDemandAccess(std::uint64_t addr, bool hit) = 0;

    /** Clear any stream-detection state. */
    virtual void reset() = 0;
};

/** Build a prefetcher; returns nullptr for PrefetcherKind::None. */
std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, std::uint64_t addressSpaceSize);

/**
 * Next-line prefetcher: every demand access to X prefetches
 * (X + 1) mod addressSpaceSize (Smith, 1982).
 */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(std::uint64_t addressSpaceSize);

    std::vector<std::uint64_t>
    onDemandAccess(std::uint64_t addr, bool hit) override;

    void reset() override;

  private:
    std::uint64_t space_;
};

/**
 * Stream prefetcher: after observing two consecutive accesses with the
 * same non-zero stride (a, a+s, a+2s), prefetches a+3s (Jouppi, 1990
 * style stream buffer, simplified to one stream).
 */
class StreamPrefetcher : public Prefetcher
{
  public:
    explicit StreamPrefetcher(std::uint64_t addressSpaceSize);

    std::vector<std::uint64_t>
    onDemandAccess(std::uint64_t addr, bool hit) override;

    void reset() override;

  private:
    std::uint64_t space_;
    bool have_prev_ = false;
    bool have_stride_ = false;
    std::uint64_t prev_ = 0;
    std::int64_t stride_ = 0;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_PREFETCHER_HPP
