/**
 * @file
 * Set-associative TLB model with a multi-level page walk on miss.
 *
 * The TLB is the second attacked resource the channel layer exposes
 * (env/channel_model.hpp): translations live in a set-associative
 * structure built from the same CacheSet / ReplacementState machinery
 * as the data cache, so prime+probe over TLB sets leaks victim page
 * accesses exactly the way cache-set contention leaks line accesses.
 *
 * A lookup that misses walks a radix page table root -> leaf. Each
 * walk level has its own small page-walk cache (PWC) of translation
 * prefixes; a level whose prefix misses its PWC costs one memory
 * access and installs the prefix. The lookup result reports how many
 * levels actually went to memory (walkedLevels) — the timing signal a
 * real page walk exposes — plus the eviction the fill caused, which is
 * the differential-test surface.
 *
 * Flush semantics: flushPage models an invlpg of the leaf translation
 * only; walk-cache entries persist (documented simplification — the
 * attack channel needs the TLB entry gone, not the paging-structure
 * caches).
 *
 * Addresses are page-granular integers, mirroring the cache model's
 * line-granular convention.
 */

#ifndef AUTOCAT_CACHE_TLB_HPP
#define AUTOCAT_CACHE_TLB_HPP

#include <cstdint>
#include <vector>

#include "cache/cache_set.hpp"
#include "cache/events.hpp"
#include "cache/replacement.hpp"
#include "util/rng.hpp"

namespace autocat {

/** Geometry and walk parameters of a Tlb (config keys tlb.*). */
struct TlbConfig
{
    /** Number of TLB sets; 1 makes it fully associative. */
    unsigned numSets = 2;

    /** TLB associativity. */
    unsigned numWays = 2;

    /** Replacement policy of the TLB sets. */
    ReplPolicy policy = ReplPolicy::Lru;

    /** Page-table levels walked on a TLB miss (>= 1). */
    unsigned walkLevels = 2;

    /** Address bits one walk level translates; level k's PWC caches
     *  the prefix `page >> (levelBits * (walkLevels - k))`. */
    unsigned levelBits = 2;

    /** Page-walk cache geometry (one PWC per walk level, LRU). */
    unsigned pwcSets = 1;
    unsigned pwcWays = 2;

    /** Size of the flat page address space the programs use. */
    std::uint64_t addressSpaceSize = 64;

    /** Seed for the random replacement policy. */
    std::uint64_t seed = 1;

    /** Total number of TLB entries (the channel's num_blocks). */
    unsigned numEntries() const { return numSets * numWays; }
};

/** What one translation lookup observed. */
struct TlbLookupResult
{
    bool hit = false;           ///< translation was TLB-resident
    unsigned walkedLevels = 0;  ///< walk levels that missed their PWC
    bool evicted = false;       ///< the fill displaced a translation
    std::uint64_t evictedPage = 0;
    Domain evictedOwner = Domain::Attacker;
};

/** Set-associative TLB with per-level page-walk caches. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    // The flat ReplacementState points at the TLB-owned RNG (same
    // aliasing the Cache has); copying would leave it dangling.
    Tlb(const Tlb &) = delete;
    Tlb &operator=(const Tlb &) = delete;

    /** The configuration this TLB was built with. */
    const TlbConfig &config() const { return config_; }

    /** Total TLB entries. */
    unsigned numEntries() const { return config_.numEntries(); }

    /**
     * Translate @p page for @p domain: probe the TLB, walk the page
     * table on miss (updating the PWCs), and install the translation.
     */
    TlbLookupResult lookup(std::uint64_t page, Domain domain);

    /** invlpg: drop @p page's translation; true if it was resident.
     *  Walk-cache entries for the page's prefixes are kept. */
    bool flushPage(std::uint64_t page, Domain domain);

    /** True when @p page's translation is TLB-resident. */
    bool contains(std::uint64_t page) const;

    /** Drop all translations, walk-cache entries, and metadata. */
    void reset();

    /** Register the (single) event listener; nullptr clears. One
     *  DemandAccess event per lookup, one Flush event per flushPage —
     *  the same taps the detector layer observes on caches. */
    void setEventListener(CacheEventListener listener);

    /** TLB set @p page maps to. */
    std::uint64_t setIndexOf(std::uint64_t page) const;

    /** One TLB set, for tests and state dumps. */
    const CacheSet &set(std::uint64_t index) const;

    /** Walk-level @p level's PWC prefix for @p page. */
    std::uint64_t walkPrefix(unsigned level, std::uint64_t page) const;

    /** True when walk level @p level's PWC holds @p prefix. */
    bool pwcContains(unsigned level, std::uint64_t prefix) const;

  private:
    TlbConfig config_;
    Rng rng_;
    ReplacementState repl_;
    std::vector<CacheSet> sets_;

    /** One page-walk cache per walk level (root first), true-LRU. */
    struct WalkCache
    {
        ReplacementState repl;
        std::vector<CacheSet> sets;
    };
    std::vector<WalkCache> walk_;

    CacheEventListener listener_;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_TLB_HPP
