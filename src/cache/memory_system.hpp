/**
 * @file
 * Abstract memory-system interface consumed by the guessing-game
 * environment.
 *
 * The RL engine is deliberately agnostic to the cache implementation
 * behind this interface (Section III-A): a single-level simulator, a
 * two-level hierarchy, or the simulated "real hardware" target in
 * src/hw all plug in here unchanged.
 */

#ifndef AUTOCAT_CACHE_MEMORY_SYSTEM_HPP
#define AUTOCAT_CACHE_MEMORY_SYSTEM_HPP

#include <cstdint>
#include <memory>

#include "cache/cache.hpp"
#include "cache/cache_config.hpp"
#include "cache/events.hpp"

namespace autocat {

/** What a program observes for one memory operation. */
struct MemoryAccessResult
{
    bool hit = false;          ///< any-level cache hit
    int hitLevel = 0;          ///< 1 = L1, 2 = L2, 0 = served from memory
    bool victimMissed = false; ///< bookkeeping for miss-based detection
};

/** Memory-system abstraction used by environments and attack replays. */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** Demand access issued by @p domain. */
    virtual MemoryAccessResult access(std::uint64_t addr, Domain domain) = 0;

    /** clflush of @p addr by @p domain. */
    virtual void flush(std::uint64_t addr, Domain domain) = 0;

    /** True when @p addr is resident at any level. */
    virtual bool contains(std::uint64_t addr) const = 0;

    /** Drop all cache contents and metadata. */
    virtual void reset() = 0;

    /** Register a single cache-event listener (nullptr clears). */
    virtual void setEventListener(CacheEventListener listener) = 0;

    /** PL cache: install and lock (default: unsupported, returns false). */
    virtual bool lockLine(std::uint64_t addr, Domain domain);

    /** PL cache: unlock (default: unsupported, returns false). */
    virtual bool unlockLine(std::uint64_t addr);

    /** Total cache blocks visible to the attack (window-size heuristic). */
    virtual unsigned numBlocks() const = 0;
};

/** MemorySystem backed by one Cache. */
class SingleLevelMemory : public MemorySystem
{
  public:
    explicit SingleLevelMemory(const CacheConfig &config);

    MemoryAccessResult access(std::uint64_t addr, Domain domain) override;
    void flush(std::uint64_t addr, Domain domain) override;
    bool contains(std::uint64_t addr) const override;
    void reset() override;
    void setEventListener(CacheEventListener listener) override;
    bool lockLine(std::uint64_t addr, Domain domain) override;
    bool unlockLine(std::uint64_t addr) override;
    unsigned numBlocks() const override;

    /** Underlying cache (tests and Fig. 4 state dumps). */
    Cache &cache() { return cache_; }
    const Cache &cache() const { return cache_; }

  private:
    Cache cache_;
};

/**
 * Two-level hierarchy: per-core private L1 caches and a shared,
 * inclusive L2. Evicting a line from L2 back-invalidates it from every
 * L1 (inclusion), which is what makes cross-core prime+probe through the
 * shared L2 possible (Table IV configs 16/17).
 *
 * Domain-to-core mapping: the attacker runs on core 0, the victim on
 * core 1 (paper: "the victim program and the attack program each run on
 * one core").
 */
class TwoLevelMemory : public MemorySystem
{
  public:
    explicit TwoLevelMemory(const TwoLevelConfig &config);

    MemoryAccessResult access(std::uint64_t addr, Domain domain) override;
    void flush(std::uint64_t addr, Domain domain) override;
    bool contains(std::uint64_t addr) const override;
    void reset() override;
    void setEventListener(CacheEventListener listener) override;
    unsigned numBlocks() const override;

    /** Core index a domain runs on. */
    static unsigned coreOf(Domain domain);

    /** The shared L2 (tests). */
    const Cache &l2() const { return l2_; }

    /** Private L1 of @p core (tests). */
    const Cache &l1(unsigned core) const { return l1s_[core]; }

  private:
    TwoLevelConfig config_;
    std::vector<Cache> l1s_;
    Cache l2_;
    CacheEventListener listener_;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_MEMORY_SYSTEM_HPP
