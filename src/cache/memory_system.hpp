/**
 * @file
 * Abstract memory-system interface consumed by the guessing-game
 * environment.
 *
 * The RL engine is deliberately agnostic to the cache implementation
 * behind this interface (Section III-A): a single-level simulator, a
 * composable N-level hierarchy, or the simulated "real hardware" target
 * in src/hw all plug in here unchanged.
 */

#ifndef AUTOCAT_CACHE_MEMORY_SYSTEM_HPP
#define AUTOCAT_CACHE_MEMORY_SYSTEM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cache/cache_config.hpp"
#include "cache/events.hpp"

namespace autocat {

/**
 * What a program observes for one memory operation.
 *
 * hitLevel generalizes to any hierarchy depth: k means the access hit
 * at level k (1-based, 1 = innermost/L1), 0 means it was served from
 * memory. victimMissed is set by every MemorySystem the same way: the
 * victim issued the access, no cache level hit, and the line was
 * actually refilled from memory (a PL-cache uncached serve does not
 * count) — the signal miss-based detection keys on.
 */
struct MemoryAccessResult
{
    bool hit = false;          ///< any-level cache hit
    int hitLevel = 0;          ///< level-k hit (1-based); 0 = memory
    bool victimMissed = false; ///< victim demand miss refilled from memory
    bool servedUncached = false; ///< PL cache: no level could install
};

/** Memory-system abstraction used by environments and attack replays. */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** Demand access issued by @p domain. */
    virtual MemoryAccessResult access(std::uint64_t addr, Domain domain) = 0;

    /** clflush of @p addr by @p domain. */
    virtual void flush(std::uint64_t addr, Domain domain) = 0;

    /** True when @p addr is resident at any level. */
    virtual bool contains(std::uint64_t addr) const = 0;

    /** Drop all cache contents and metadata. */
    virtual void reset() = 0;

    /** Register a single cache-event listener (nullptr clears). */
    virtual void setEventListener(CacheEventListener listener) = 0;

    /** PL cache: install and lock (default: unsupported, returns false). */
    virtual bool lockLine(std::uint64_t addr, Domain domain);

    /** PL cache: unlock (default: unsupported, returns false). */
    virtual bool unlockLine(std::uint64_t addr);

    /** Total cache blocks visible to the attack (window-size heuristic). */
    virtual unsigned numBlocks() const = 0;
};

/** MemorySystem backed by one Cache. */
class SingleLevelMemory : public MemorySystem
{
  public:
    explicit SingleLevelMemory(const CacheConfig &config);

    MemoryAccessResult access(std::uint64_t addr, Domain domain) override;
    void flush(std::uint64_t addr, Domain domain) override;
    bool contains(std::uint64_t addr) const override;
    void reset() override;
    void setEventListener(CacheEventListener listener) override;
    bool lockLine(std::uint64_t addr, Domain domain) override;
    bool unlockLine(std::uint64_t addr) override;
    unsigned numBlocks() const override;

    /** Underlying cache (tests and Fig. 4 state dumps). */
    Cache &cache() { return cache_; }
    const Cache &cache() const { return cache_; }

  private:
    Cache cache_;
};

/**
 * Composable N-level hierarchy built from a declarative HierarchyConfig:
 * each level has its own geometry, an inclusion policy (inclusive with
 * back-invalidation, exclusive, or NINE), and a private-per-core vs
 * shared flag. The paper's two-level setup — per-core private L1s and a
 * shared inclusive L2 whose evictions back-invalidate every L1 (the
 * mechanism behind cross-core prime+probe, Table IV configs 16/17) — is
 * just a two-entry config.
 *
 * Walk semantics: a demand access probes levels innermost-out and stops
 * at the first hit. Inclusive/NINE levels install the line on their
 * miss path; an inclusive level's eviction removes the line from every
 * inner instance. An exclusive level never fills on the demand path: it
 * absorbs the lines its inner neighbor evicts (victim fills), and an
 * exclusive hit moves the line inward (removes it from the exclusive
 * level) so a line is resident in at most one place along an access
 * path.
 *
 * Events: the listener observes the outermost level only — the shared
 * level where cross-domain contention happens and where hardware
 * detectors tap (same convention the old two-level system used).
 */
class CacheHierarchy : public MemorySystem
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config);

    MemoryAccessResult access(std::uint64_t addr, Domain domain) override;
    void flush(std::uint64_t addr, Domain domain) override;
    bool contains(std::uint64_t addr) const override;
    void reset() override;
    void setEventListener(CacheEventListener listener) override;
    bool lockLine(std::uint64_t addr, Domain domain) override;
    bool unlockLine(std::uint64_t addr) override;
    unsigned numBlocks() const override;

    /** The configuration this hierarchy was built from. */
    const HierarchyConfig &config() const { return config_; }

    /** Number of levels. */
    unsigned depth() const { return static_cast<unsigned>(levels_.size()); }

    /** Core index a domain runs on (attacker 0, victim 1). */
    static unsigned coreOf(Domain domain);

    /**
     * Cache instance of @p level (0-based, 0 = L1) serving @p core;
     * @p core is ignored for shared levels. Tests and state dumps.
     */
    const Cache &level(unsigned level, unsigned core = 0) const;

  private:
    struct Level
    {
        InclusionPolicy inclusion;
        bool shared;
        /// One instance when shared, numCores instances when private.
        std::vector<std::unique_ptr<Cache>> instances;
    };

    Cache &instanceFor(unsigned level, unsigned core);
    void backInvalidateInner(unsigned level, std::uint64_t addr,
                             unsigned core);
    void spillVictim(unsigned level, std::uint64_t addr, Domain owner,
                     unsigned core);

    HierarchyConfig config_;
    std::vector<Level> levels_;
    CacheEventListener listener_;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_MEMORY_SYSTEM_HPP
