/**
 * @file
 * Single-level set-associative cache model.
 *
 * Addresses are cache-line granular integers (the paper's convention);
 * the full address is kept as the tag. Supports flush (clflush), PL-cache
 * line locking, hardware prefetching, and a fixed random address-to-set
 * permutation. All observable activity is reported to an optional event
 * listener for the detector subsystems.
 *
 * Replacement metadata for every set lives in one flat ReplacementState
 * owned by the cache (no per-set policy objects), so the access and
 * reset hot paths stay on contiguous memory.
 */

#ifndef AUTOCAT_CACHE_CACHE_HPP
#define AUTOCAT_CACHE_CACHE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/cache_set.hpp"
#include "cache/events.hpp"
#include "cache/prefetcher.hpp"
#include "util/rng.hpp"

namespace autocat {

/** A single cache level. */
class Cache
{
  public:
    /** Build a cache from @p config. */
    explicit Cache(const CacheConfig &config);

    // The flat ReplacementState points at the cache-owned RNG; copying
    // or moving would leave that pointer dangling. Hierarchies hold
    // caches behind unique_ptr instead.
    Cache(const Cache &) = delete;
    Cache &operator=(const Cache &) = delete;

    /** The configuration this cache was built with. */
    const CacheConfig &config() const { return config_; }

    /** Total number of blocks. */
    unsigned numBlocks() const { return config_.numBlocks(); }

    /**
     * Demand access from @p domain; may trigger prefetches.
     * Prefetch installs are reported to the listener but their results
     * are not folded into the returned AccessResult (the accessor only
     * observes its own latency).
     */
    AccessResult access(std::uint64_t addr, Domain domain);

    /**
     * access() returning only the hit flag — the batch env engine's
     * entry point. Identical state transitions and events; the hit
     * path just skips materializing the full AccessResult.
     */
    bool accessFast(std::uint64_t addr, Domain domain);

    /**
     * Install @p addr without a demand lookup: used by an exclusive
     * outer level absorbing a line evicted from an inner level. No
     * prefetches are triggered; the event is tagged CacheOp::VictimFill.
     * A no-op (reported as a hit) when the line is already resident.
     */
    AccessResult install(std::uint64_t addr, Domain domain);

    /**
     * Install @p addr on behalf of an externally-modeled prefetcher
     * (the prefetcher side channel drives its own stride detector and
     * feeds the targets back here). Identical state transitions to the
     * installs an internal prefetcher performs; the event is tagged
     * CacheOp::Prefetch. Never recurses into this cache's own
     * prefetcher.
     */
    AccessResult prefetchInstall(std::uint64_t addr, Domain domain);

    /** clflush: invalidate @p addr everywhere; true if it was cached. */
    bool flush(std::uint64_t addr, Domain domain);

    /** True when @p addr is resident. */
    bool contains(std::uint64_t addr) const;

    /**
     * PL cache: install (if needed) and lock @p addr. @p fill, when
     * non-null, receives the install's AccessResult so a hierarchy can
     * handle the eviction the install may cause.
     */
    bool lockLine(std::uint64_t addr, Domain domain,
                  AccessResult *fill = nullptr);

    /** PL cache: unlock @p addr. */
    bool unlockLine(std::uint64_t addr);

    /** True when @p addr is resident and locked. */
    bool isLocked(std::uint64_t addr) const;

    /** Invalidate @p addr without emitting a Flush event (back-inval). */
    bool backInvalidate(std::uint64_t addr);

    /** Set index @p addr maps to. */
    std::uint64_t setIndexOf(std::uint64_t addr) const;

    /** Access to a set for inspection (tests / Fig. 4 visualization). */
    const CacheSet &set(std::uint64_t index) const;

    /**
     * Replacement-metadata snapshot of one set (policy-specific; see
     * ReplacementState::stateSnapshot).
     */
    std::vector<unsigned> policyState(std::uint64_t setIndex) const;

    /** Drop all contents and metadata; keeps the random mapping fixed. */
    void reset();

    /** Register the (single) event listener; pass nullptr to clear. */
    void setEventListener(CacheEventListener listener);

    /** Reseed the internal RNG (random replacement determinism). */
    void reseed(std::uint64_t seed);

  private:
    AccessResult accessInternal(std::uint64_t addr, Domain domain,
                                CacheOp op);
    void emit(const CacheEvent &ev);

    CacheConfig config_;
    Rng rng_;
    ReplacementState repl_;
    std::vector<CacheSet> sets_;
    std::vector<std::uint64_t> setMap_;
    /** numSets - 1 when numSets is a power of two (the common case),
     *  so the per-access set lookup is a mask instead of a 64-bit
     *  modulo; ~0 selects the modulo fallback. */
    std::uint64_t set_mask_ = ~std::uint64_t{0};
    std::unique_ptr<Prefetcher> prefetcher_;
    CacheEventListener listener_;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_CACHE_HPP
