/**
 * @file
 * Single-level set-associative cache model.
 *
 * Addresses are cache-line granular integers (the paper's convention);
 * the full address is kept as the tag. Supports flush (clflush), PL-cache
 * line locking, hardware prefetching, and a fixed random address-to-set
 * permutation. All observable activity is reported to an optional event
 * listener for the detector subsystems.
 */

#ifndef AUTOCAT_CACHE_CACHE_HPP
#define AUTOCAT_CACHE_CACHE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/cache_set.hpp"
#include "cache/events.hpp"
#include "cache/prefetcher.hpp"
#include "util/rng.hpp"

namespace autocat {

/** A single cache level. */
class Cache
{
  public:
    /** Build a cache from @p config. */
    explicit Cache(const CacheConfig &config);

    /** The configuration this cache was built with. */
    const CacheConfig &config() const { return config_; }

    /** Total number of blocks. */
    unsigned numBlocks() const { return config_.numBlocks(); }

    /**
     * Demand access from @p domain; may trigger prefetches.
     * Prefetch installs are reported to the listener but their results
     * are not folded into the returned AccessResult (the accessor only
     * observes its own latency).
     */
    AccessResult access(std::uint64_t addr, Domain domain);

    /** clflush: invalidate @p addr everywhere; true if it was cached. */
    bool flush(std::uint64_t addr, Domain domain);

    /** True when @p addr is resident. */
    bool contains(std::uint64_t addr) const;

    /** PL cache: install (if needed) and lock @p addr. */
    bool lockLine(std::uint64_t addr, Domain domain);

    /** PL cache: unlock @p addr. */
    bool unlockLine(std::uint64_t addr);

    /** True when @p addr is resident and locked. */
    bool isLocked(std::uint64_t addr) const;

    /** Invalidate @p addr without emitting a Flush event (back-inval). */
    bool backInvalidate(std::uint64_t addr);

    /** Set index @p addr maps to. */
    std::uint64_t setIndexOf(std::uint64_t addr) const;

    /** Access to a set for inspection (tests / Fig. 4 visualization). */
    const CacheSet &set(std::uint64_t index) const;

    /** Drop all contents and metadata; keeps the random mapping fixed. */
    void reset();

    /** Register the (single) event listener; pass nullptr to clear. */
    void setEventListener(CacheEventListener listener);

    /** Reseed the internal RNG (random replacement determinism). */
    void reseed(std::uint64_t seed);

  private:
    AccessResult accessInternal(std::uint64_t addr, Domain domain,
                                CacheOp op);
    void emit(const CacheEvent &ev);

    CacheConfig config_;
    Rng rng_;
    std::vector<CacheSet> sets_;
    std::vector<std::uint64_t> setMap_;
    std::unique_ptr<Prefetcher> prefetcher_;
    CacheEventListener listener_;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_CACHE_HPP
