#include "cache/cache_config.hpp"

#include <stdexcept>

namespace autocat {

InclusionPolicy
inclusionFromString(const std::string &name)
{
    if (name == "inclusive")
        return InclusionPolicy::Inclusive;
    if (name == "exclusive")
        return InclusionPolicy::Exclusive;
    if (name == "nine")
        return InclusionPolicy::Nine;
    throw std::invalid_argument("unknown inclusion policy: " + name);
}

const char *
inclusionName(InclusionPolicy p)
{
    switch (p) {
      case InclusionPolicy::Inclusive: return "inclusive";
      case InclusionPolicy::Exclusive: return "exclusive";
      case InclusionPolicy::Nine: return "nine";
    }
    return "?";
}

} // namespace autocat
