/**
 * @file
 * One set of a set-associative cache: tags, valid bits, PL-cache lock
 * bits, per-line owner domains, and the attached replacement policy.
 */

#ifndef AUTOCAT_CACHE_CACHE_SET_HPP
#define AUTOCAT_CACHE_CACHE_SET_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/events.hpp"
#include "cache/replacement.hpp"

namespace autocat {

/** A single cache set with lockable lines. */
class CacheSet
{
  public:
    /**
     * @param ways   associativity
     * @param policy which replacement algorithm
     * @param rng    PRNG for the random policy (may be null otherwise)
     */
    CacheSet(unsigned ways, ReplPolicy policy, Rng *rng);

    /** Associativity. */
    unsigned numWays() const { return ways_; }

    /**
     * Look up and (on miss) install @p addr.
     *
     * Replacement metadata is updated on both hits and fills — including
     * accesses to locked lines, which is exactly the leak the PL-cache
     * attack in Section V-D exploits.
     */
    AccessResult access(std::uint64_t addr, Domain domain);

    /** Invalidate @p addr if present; true when a line was dropped. */
    bool invalidate(std::uint64_t addr);

    /** True when @p addr is currently cached in this set. */
    bool contains(std::uint64_t addr) const;

    /**
     * PL cache: lock @p addr, installing it first if absent.
     * @return false when installation failed (all other ways locked).
     */
    bool lockLine(std::uint64_t addr, Domain domain);

    /** PL cache: clear the lock bit of @p addr; true if it was present. */
    bool unlockLine(std::uint64_t addr);

    /** True when @p addr is present and locked. */
    bool isLocked(std::uint64_t addr) const;

    /** Drop all lines, locks, and replacement metadata. */
    void reset();

    /** Valid-line addresses in way order (invalid ways skipped). */
    std::vector<std::uint64_t> residentAddrs() const;

    /** Owner domain of @p addr; only meaningful when contains(addr). */
    Domain ownerOf(std::uint64_t addr) const;

    /** Replacement-policy metadata snapshot (see policy docs). */
    std::vector<unsigned> policyState() const;

  private:
    int findWay(std::uint64_t addr) const;
    int findInvalidWay() const;

    unsigned ways_;
    std::vector<std::uint64_t> tags_;
    std::vector<bool> valid_;
    std::vector<bool> locked_;
    std::vector<Domain> owner_;
    std::unique_ptr<SetReplacementPolicy> policy_;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_CACHE_SET_HPP
