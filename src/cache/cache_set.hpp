/**
 * @file
 * One set of a set-associative cache: tags, valid bits, PL-cache lock
 * bits, and per-line owner domains.
 *
 * Replacement metadata is NOT stored here: the owning Cache keeps one
 * flat ReplacementState for all its sets (contiguous, no per-set heap
 * objects) and passes it into the mutating operations together with
 * this set's index.
 */

#ifndef AUTOCAT_CACHE_CACHE_SET_HPP
#define AUTOCAT_CACHE_CACHE_SET_HPP

#include <cstdint>
#include <vector>

#include "cache/events.hpp"
#include "cache/replacement.hpp"

namespace autocat {

/** A single cache set with lockable lines. */
class CacheSet
{
  public:
    /**
     * @param ways     associativity
     * @param setIndex index of this set inside the owning cache (keys
     *                 this set's slice of the ReplacementState)
     */
    CacheSet(unsigned ways, std::uint64_t setIndex);

    /** Associativity. */
    unsigned numWays() const { return ways_; }

    /**
     * Look up and (on miss) install @p addr.
     *
     * Replacement metadata is updated on both hits and fills — including
     * accesses to locked lines, which is exactly the leak the PL-cache
     * attack in Section V-D exploits.
     */
    AccessResult access(ReplacementState &repl, std::uint64_t addr,
                        Domain domain);

    /**
     * access() returning only the hit flag: identical state
     * transitions, but no AccessResult is materialized (a PL-cache
     * uncached serve returns false, matching the miss latency class).
     */
    bool accessFast(ReplacementState &repl, std::uint64_t addr,
                    Domain domain);

    /** Invalidate @p addr if present; true when a line was dropped. */
    bool invalidate(ReplacementState &repl, std::uint64_t addr);

    /** True when @p addr is currently cached in this set. */
    bool contains(std::uint64_t addr) const;

    /**
     * PL cache: lock @p addr, installing it first if absent.
     * @param fill receives the install's AccessResult when non-null
     *             (hierarchies must see the eviction it may cause)
     * @return false when installation failed (all other ways locked).
     */
    bool lockLine(ReplacementState &repl, std::uint64_t addr,
                  Domain domain, AccessResult *fill = nullptr);

    /** PL cache: clear the lock bit of @p addr; true if it was present. */
    bool unlockLine(std::uint64_t addr);

    /** True when @p addr is present and locked. */
    bool isLocked(std::uint64_t addr) const;

    /** Drop all lines, locks, and replacement metadata. */
    void reset(ReplacementState &repl);

    /** Valid-line addresses in way order (invalid ways skipped). */
    std::vector<std::uint64_t> residentAddrs() const;

    /** Owner domain of @p addr; only meaningful when contains(addr). */
    Domain ownerOf(std::uint64_t addr) const;

  private:
    int findWay(std::uint64_t addr) const;
    int findInvalidWay() const;

    unsigned ways_;
    std::uint64_t index_;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> locked_;
    std::vector<Domain> owner_;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_CACHE_SET_HPP
