#include "cache/cache.hpp"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace autocat {

namespace {

const CacheConfig &
validated(const CacheConfig &config)
{
    if (config.numSets == 0 || config.numWays == 0)
        throw std::invalid_argument("cache: sets and ways must be > 0");
    return config;
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(validated(config)),
      rng_(config_.seed),
      repl_(config_.policy, config_.numSets, config_.numWays, &rng_)
{
    sets_.reserve(config_.numSets);
    for (unsigned s = 0; s < config_.numSets; ++s)
        sets_.emplace_back(config_.numWays, s);

    if (config_.randomSetMapping) {
        // Balanced random permutation: every set index appears the same
        // number of times over the address space (up to rounding), so no
        // set is starved.
        const std::uint64_t space = config_.addressSpaceSize;
        setMap_.resize(space);
        for (std::uint64_t a = 0; a < space; ++a)
            setMap_[a] = a % config_.numSets;
        Rng map_rng(config_.seed ^ 0xa0c47u);
        map_rng.shuffle(setMap_);
    }

    prefetcher_ = makePrefetcher(config_.prefetcher,
                                 config_.addressSpaceSize);

    if ((config_.numSets & (config_.numSets - 1)) == 0)
        set_mask_ = config_.numSets - 1;
}

std::uint64_t
Cache::setIndexOf(std::uint64_t addr) const
{
    if (!setMap_.empty())
        return setMap_[addr % setMap_.size()];
    if (set_mask_ != ~std::uint64_t{0})
        return addr & set_mask_;
    return addr % config_.numSets;
}

const CacheSet &
Cache::set(std::uint64_t index) const
{
    assert(index < sets_.size());
    return sets_[index];
}

std::vector<unsigned>
Cache::policyState(std::uint64_t setIndex) const
{
    assert(setIndex < sets_.size());
    return repl_.stateSnapshot(setIndex);
}

void
Cache::emit(const CacheEvent &ev)
{
    if (listener_)
        listener_(ev);
}

AccessResult
Cache::accessInternal(std::uint64_t addr, Domain domain, CacheOp op)
{
    const std::uint64_t idx = setIndexOf(addr);
    const AccessResult res = sets_[idx].access(repl_, addr, domain);

    // Constructing the event is wasted work on the listener-free hot
    // path (the batch env engine steps detector-free streams by the
    // million), so gate it rather than relying on emit()'s check.
    if (listener_) {
        CacheEvent ev;
        ev.op = op;
        ev.domain = domain;
        ev.addr = addr;
        ev.setIndex = idx;
        ev.hit = res.hit;
        ev.evicted = res.evicted;
        ev.evictedAddr = res.evictedAddr;
        ev.evictedOwner = res.evictedOwner;
        ev.servedUncached = res.servedUncached;
        emit(ev);
    }

    return res;
}

AccessResult
Cache::access(std::uint64_t addr, Domain domain)
{
    const AccessResult res =
        accessInternal(addr, domain, CacheOp::DemandAccess);

    if (prefetcher_) {
        for (std::uint64_t pf : prefetcher_->onDemandAccess(addr, res.hit)) {
            if (pf != addr)
                accessInternal(pf, domain, CacheOp::Prefetch);
        }
    }
    return res;
}

bool
Cache::accessFast(std::uint64_t addr, Domain domain)
{
    // Listeners and prefetchers need the full result/event machinery;
    // the lean path is for the detector-free, prefetcher-free hot loop.
    if (listener_ || prefetcher_)
        return access(addr, domain).hit;
    return sets_[setIndexOf(addr)].accessFast(repl_, addr, domain);
}

AccessResult
Cache::install(std::uint64_t addr, Domain domain)
{
    return accessInternal(addr, domain, CacheOp::VictimFill);
}

AccessResult
Cache::prefetchInstall(std::uint64_t addr, Domain domain)
{
    return accessInternal(addr, domain, CacheOp::Prefetch);
}

bool
Cache::flush(std::uint64_t addr, Domain domain)
{
    const std::uint64_t idx = setIndexOf(addr);
    const bool dropped = sets_[idx].invalidate(repl_, addr);

    if (listener_) {
        CacheEvent ev;
        ev.op = CacheOp::Flush;
        ev.domain = domain;
        ev.addr = addr;
        ev.setIndex = idx;
        ev.hit = dropped;
        emit(ev);
    }

    return dropped;
}

bool
Cache::contains(std::uint64_t addr) const
{
    return sets_[setIndexOf(addr)].contains(addr);
}

bool
Cache::lockLine(std::uint64_t addr, Domain domain, AccessResult *fill)
{
    return sets_[setIndexOf(addr)].lockLine(repl_, addr, domain, fill);
}

bool
Cache::unlockLine(std::uint64_t addr)
{
    return sets_[setIndexOf(addr)].unlockLine(addr);
}

bool
Cache::isLocked(std::uint64_t addr) const
{
    return sets_[setIndexOf(addr)].isLocked(addr);
}

bool
Cache::backInvalidate(std::uint64_t addr)
{
    return sets_[setIndexOf(addr)].invalidate(repl_, addr);
}

void
Cache::reset()
{
    for (auto &set : sets_)
        set.reset(repl_);
    if (prefetcher_)
        prefetcher_->reset();
}

void
Cache::setEventListener(CacheEventListener listener)
{
    listener_ = std::move(listener);
}

void
Cache::reseed(std::uint64_t seed)
{
    rng_.reseed(seed);
}

} // namespace autocat
