#include "cache/prefetcher.hpp"

#include <stdexcept>

namespace autocat {

PrefetcherKind
prefetcherFromString(const std::string &name)
{
    if (name == "none")
        return PrefetcherKind::None;
    if (name == "nextline")
        return PrefetcherKind::NextLine;
    if (name == "stream")
        return PrefetcherKind::Stream;
    throw std::invalid_argument("unknown prefetcher: " + name);
}

const char *
prefetcherName(PrefetcherKind k)
{
    switch (k) {
      case PrefetcherKind::None: return "none";
      case PrefetcherKind::NextLine: return "nextline";
      case PrefetcherKind::Stream: return "stream";
    }
    return "?";
}

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, std::uint64_t addressSpaceSize)
{
    switch (kind) {
      case PrefetcherKind::None:
        return nullptr;
      case PrefetcherKind::NextLine:
        return std::make_unique<NextLinePrefetcher>(addressSpaceSize);
      case PrefetcherKind::Stream:
        return std::make_unique<StreamPrefetcher>(addressSpaceSize);
    }
    return nullptr;
}

NextLinePrefetcher::NextLinePrefetcher(std::uint64_t addressSpaceSize)
    : space_(addressSpaceSize)
{
    if (space_ == 0)
        throw std::invalid_argument("address space must be > 0");
}

std::vector<std::uint64_t>
NextLinePrefetcher::onDemandAccess(std::uint64_t addr, bool hit)
{
    (void)hit;
    return {(addr + 1) % space_};
}

void
NextLinePrefetcher::reset()
{
}

StreamPrefetcher::StreamPrefetcher(std::uint64_t addressSpaceSize)
    : space_(addressSpaceSize)
{
    if (space_ == 0)
        throw std::invalid_argument("address space must be > 0");
}

std::vector<std::uint64_t>
StreamPrefetcher::onDemandAccess(std::uint64_t addr, bool hit)
{
    (void)hit;
    std::vector<std::uint64_t> out;
    if (have_prev_) {
        const auto s = static_cast<std::int64_t>(addr) -
                       static_cast<std::int64_t>(prev_);
        if (have_stride_ && s == stride_ && s != 0) {
            // Stream confirmed: prefetch one line ahead.
            const auto next = static_cast<std::int64_t>(addr) + s;
            const auto wrapped = ((next % static_cast<std::int64_t>(space_)) +
                                  static_cast<std::int64_t>(space_)) %
                                 static_cast<std::int64_t>(space_);
            out.push_back(static_cast<std::uint64_t>(wrapped));
        }
        stride_ = s;
        have_stride_ = true;
    }
    prev_ = addr;
    have_prev_ = true;
    return out;
}

void
StreamPrefetcher::reset()
{
    have_prev_ = false;
    have_stride_ = false;
    prev_ = 0;
    stride_ = 0;
}

} // namespace autocat
