/**
 * @file
 * Per-set cache replacement policies.
 *
 * The paper explores four policies (Section V-C): true LRU, tree-based
 * pseudo-LRU, SRRIP (2-bit re-reference interval prediction), and random.
 * Each policy tracks metadata for one cache set; the Cache owns one policy
 * instance per set. Lock bits (PL cache) constrain victim selection: a
 * locked way is never chosen for eviction.
 */

#ifndef AUTOCAT_CACHE_REPLACEMENT_HPP
#define AUTOCAT_CACHE_REPLACEMENT_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace autocat {

/** Replacement policy selector used in cache configuration. */
enum class ReplPolicy : std::uint8_t { Lru, TreePlru, Rrip, Random };

/** Parse "lru" / "plru" / "rrip" / "random" (throws on unknown). */
ReplPolicy replPolicyFromString(const std::string &name);

/** Canonical lowercase name of a policy. */
const char *replPolicyName(ReplPolicy p);

/**
 * Replacement metadata for one cache set.
 *
 * The owning set reports hits, fills, and invalidations; the policy
 * answers victim-way queries. Implementations must respect @p locked in
 * victimWay(): a locked way must never be returned. When every valid way
 * is locked, victimWay() returns -1 and the access is served uncached
 * (PL-cache semantics from Wang & Lee, ISCA'07).
 */
class SetReplacementPolicy
{
  public:
    virtual ~SetReplacementPolicy() = default;

    /** Number of ways this policy instance manages. */
    virtual unsigned numWays() const = 0;

    /** A cached line at @p way was re-referenced. */
    virtual void onHit(unsigned way) = 0;

    /** A new line was installed at @p way. */
    virtual void onFill(unsigned way) = 0;

    /** The line at @p way was invalidated (flush or back-invalidation). */
    virtual void onInvalidate(unsigned way) = 0;

    /**
     * Choose the way to evict.
     *
     * @param valid  per-way validity (invalid ways are filled before any
     *               eviction happens, so all entries are normally true)
     * @param locked per-way PL-cache lock bits
     * @return way index, or -1 when no unlocked valid way exists
     */
    virtual int victimWay(const std::vector<bool> &valid,
                          const std::vector<bool> &locked) = 0;

    /** Reset all metadata to the power-on state. */
    virtual void reset() = 0;

    /**
     * Opaque snapshot of the metadata (for tests and the Fig. 4 cache
     * state visualization); semantics are policy specific.
     */
    virtual std::vector<unsigned> stateSnapshot() const = 0;
};

/**
 * Create a policy instance.
 *
 * @param policy  which algorithm
 * @param ways    associativity of the set
 * @param rng     PRNG used by the random policy (ignored by others);
 *                must outlive the returned object
 */
std::unique_ptr<SetReplacementPolicy>
makeReplacementPolicy(ReplPolicy policy, unsigned ways, Rng *rng);

/** True LRU: exact age ordering, evicts the oldest way. */
class LruReplacement : public SetReplacementPolicy
{
  public:
    explicit LruReplacement(unsigned ways);

    unsigned numWays() const override { return ways_; }
    void onHit(unsigned way) override;
    void onFill(unsigned way) override;
    void onInvalidate(unsigned way) override;
    int victimWay(const std::vector<bool> &valid,
                  const std::vector<bool> &locked) override;
    void reset() override;
    std::vector<unsigned> stateSnapshot() const override;

  private:
    void touch(unsigned way);

    unsigned ways_;
    std::vector<unsigned> age_;  ///< 0 = most recently used
};

/**
 * Tree-based pseudo-LRU.
 *
 * Maintains ways-1 direction bits arranged as a complete binary tree;
 * an access flips the bits on its root-to-leaf path to point away from
 * the accessed way, and the victim is found by following the bits.
 * Associativity must be a power of two.
 */
class TreePlruReplacement : public SetReplacementPolicy
{
  public:
    explicit TreePlruReplacement(unsigned ways);

    unsigned numWays() const override { return ways_; }
    void onHit(unsigned way) override;
    void onFill(unsigned way) override;
    void onInvalidate(unsigned way) override;
    int victimWay(const std::vector<bool> &valid,
                  const std::vector<bool> &locked) override;
    void reset() override;
    std::vector<unsigned> stateSnapshot() const override;

  private:
    void touch(unsigned way);

    unsigned ways_;
    unsigned levels_;
    std::vector<bool> bits_;  ///< heap-ordered tree, bits_[0] unused
};

/**
 * SRRIP with 2-bit re-reference prediction values.
 *
 * Fills install at RRPV = 2 (long re-reference), hits promote to RRPV = 0,
 * and the victim is a way with RRPV = 3, aging all ways until one exists
 * (Jaleel et al., ISCA'10; matches the paper's Section V-C description).
 */
class RripReplacement : public SetReplacementPolicy
{
  public:
    explicit RripReplacement(unsigned ways);

    unsigned numWays() const override { return ways_; }
    void onHit(unsigned way) override;
    void onFill(unsigned way) override;
    void onInvalidate(unsigned way) override;
    int victimWay(const std::vector<bool> &valid,
                  const std::vector<bool> &locked) override;
    void reset() override;
    std::vector<unsigned> stateSnapshot() const override;

    /** RRPV assigned on fill. */
    static constexpr unsigned insertRrpv = 2;

    /** Maximum RRPV (2-bit). */
    static constexpr unsigned maxRrpv = 3;

  private:
    unsigned ways_;
    std::vector<unsigned> rrpv_;
};

/** Uniform-random victim selection among unlocked valid ways. */
class RandomReplacement : public SetReplacementPolicy
{
  public:
    RandomReplacement(unsigned ways, Rng *rng);

    unsigned numWays() const override { return ways_; }
    void onHit(unsigned way) override;
    void onFill(unsigned way) override;
    void onInvalidate(unsigned way) override;
    int victimWay(const std::vector<bool> &valid,
                  const std::vector<bool> &locked) override;
    void reset() override;
    std::vector<unsigned> stateSnapshot() const override;

  private:
    unsigned ways_;
    Rng *rng_;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_REPLACEMENT_HPP
