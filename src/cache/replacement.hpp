/**
 * @file
 * Cache replacement policies over flattened per-cache metadata.
 *
 * The paper explores four policies (Section V-C): true LRU, tree-based
 * pseudo-LRU, SRRIP (2-bit re-reference interval prediction), and random.
 * A single ReplacementState owns the metadata of every set of one cache
 * in one contiguous array — the policy is chosen once per cache and
 * dispatched by a branch, not through per-set virtual objects, so the
 * access/reset hot paths touch no scattered heap allocations. Lock bits
 * (PL cache) constrain victim selection: a locked way is never chosen
 * for eviction.
 */

#ifndef AUTOCAT_CACHE_REPLACEMENT_HPP
#define AUTOCAT_CACHE_REPLACEMENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace autocat {

/** Replacement policy selector used in cache configuration. */
enum class ReplPolicy : std::uint8_t { Lru, TreePlru, Rrip, Random };

/** Parse "lru" / "plru" / "rrip" / "random" (throws on unknown). */
ReplPolicy replPolicyFromString(const std::string &name);

/** Canonical lowercase name of a policy. */
const char *replPolicyName(ReplPolicy p);

/**
 * Replacement metadata for every set of one cache, stored as one
 * preallocated contiguous array (stride entries per set):
 *
 *  - LRU:   one age per way; 0 = most recently used
 *  - PLRU:  ways-1 tree direction bits (heap order, entry 0 unused)
 *  - SRRIP: one 2-bit re-reference prediction value per way
 *  - random: no metadata
 *
 * The owning cache reports hits, fills, and invalidations; the state
 * answers victim-way queries. victimWay() respects @p locked: a locked
 * way is never returned. When every valid way is locked it returns -1
 * and the access is served uncached (PL-cache semantics from
 * Wang & Lee, ISCA'07).
 */
class ReplacementState
{
  public:
    /**
     * @param policy  which algorithm (applies to every set)
     * @param numSets number of sets metadata is kept for
     * @param ways    associativity (max 255 — metadata entries are 8-bit)
     * @param rng     PRNG used by the random policy (ignored by others);
     *                must outlive this object
     */
    ReplacementState(ReplPolicy policy, std::uint64_t numSets,
                     unsigned ways, Rng *rng);

    /** The policy every set runs. */
    ReplPolicy policy() const { return policy_; }

    /** Associativity this state manages. */
    unsigned numWays() const { return ways_; }

    /** A cached line at (@p set, @p way) was re-referenced. */
    void
    onHit(std::uint64_t set, unsigned way)
    {
        switch (policy_) {
          case ReplPolicy::Lru: lruTouch(set, way); break;
          case ReplPolicy::TreePlru: plruPoint(set, way, /*away=*/true); break;
          case ReplPolicy::Rrip: meta_[set * stride_ + way] = 0; break;
          case ReplPolicy::Random: break;
        }
    }

    /** A new line was installed at (@p set, @p way). */
    void
    onFill(std::uint64_t set, unsigned way)
    {
        switch (policy_) {
          case ReplPolicy::Lru: lruTouch(set, way); break;
          case ReplPolicy::TreePlru: plruPoint(set, way, /*away=*/true); break;
          case ReplPolicy::Rrip:
            meta_[set * stride_ + way] = rripInsert;
            break;
          case ReplPolicy::Random: break;
        }
    }

    /** The line at (@p set, @p way) was invalidated (flush/back-inval). */
    void onInvalidate(std::uint64_t set, unsigned way);

    /**
     * Choose the way to evict in @p set.
     *
     * @param valid  per-way validity, @p ways entries (invalid ways are
     *               filled before any eviction happens, so all entries
     *               are normally non-zero)
     * @param locked per-way PL-cache lock bits, @p ways entries
     * @return way index, or -1 when no unlocked valid way exists
     */
    int victimWay(std::uint64_t set, const std::uint8_t *valid,
                  const std::uint8_t *locked);

    /** Reset every set's metadata to the power-on state. */
    void reset();

    /** Reset one set's metadata to the power-on state. */
    void resetSet(std::uint64_t set);

    /**
     * Opaque snapshot of one set's metadata (for tests and the Fig. 4
     * cache state visualization); semantics are policy specific (LRU
     * ages / PLRU tree bits / RRPVs; empty for random).
     */
    std::vector<unsigned> stateSnapshot(std::uint64_t set) const;

    /** RRPV assigned on fill. */
    static constexpr std::uint8_t rripInsert = 2;

    /** Maximum RRPV (2-bit). */
    static constexpr std::uint8_t rripMax = 3;

  private:
    void lruTouch(std::uint64_t set, unsigned way);
    void plruPoint(std::uint64_t set, unsigned way, bool away);

    ReplPolicy policy_;
    unsigned ways_;
    unsigned levels_ = 0;  ///< PLRU tree depth (log2 ways)
    unsigned stride_;      ///< metadata entries per set
    std::vector<std::uint8_t> meta_;
    Rng *rng_;
};

} // namespace autocat

#endif // AUTOCAT_CACHE_REPLACEMENT_HPP
