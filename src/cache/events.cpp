#include "cache/events.hpp"

namespace autocat {

const char *
domainName(Domain d)
{
    return d == Domain::Attacker ? "attacker" : "victim";
}

} // namespace autocat
