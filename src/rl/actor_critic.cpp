#include "rl/actor_critic.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace autocat {

ActorCritic::ActorCritic(std::size_t obs_dim, std::size_t num_actions,
                         std::size_t hidden, std::size_t layers, Rng &rng)
    : obs_dim_(obs_dim),
      num_actions_(num_actions),
      torso_([&] {
          std::vector<std::size_t> sizes{obs_dim};
          for (std::size_t i = 0; i < std::max<std::size_t>(1, layers); ++i)
              sizes.push_back(hidden);
          return Mlp(sizes, rng, /*activate_last=*/true);
      }()),
      // Small-gain policy head keeps the initial policy near uniform,
      // which matters for exploration in the guessing game.
      pi_head_(hidden, num_actions, rng, 0.01f),
      v_head_(hidden, 1, rng, 1.0f)
{
}

AcOutput
ActorCritic::forward(const Matrix &obs)
{
    assert(obs.cols() == obs_dim_);
    const Matrix &torso = torso_.forwardCached(obs);
    torso_out_ = &torso;
    AcOutput out;
    pi_head_.forwardInto(out.logits, torso, /*fuse_relu=*/false);
    v_head_.forwardInto(values_col_, torso, /*fuse_relu=*/false);
    out.values.resize(obs.rows());
    for (std::size_t r = 0; r < obs.rows(); ++r)
        out.values[r] = values_col_(r, 0);
    return out;
}

void
ActorCritic::forwardNoGrad(const Matrix &obs, AcOutput &out)
{
    assert(obs.cols() == obs_dim_);
    const Matrix &torso = torso_.forwardInto(obs, infer_scratch_);
    pi_head_.forwardInto(out.logits, torso, /*fuse_relu=*/false);
    v_head_.forwardInto(infer_values_col_, torso, /*fuse_relu=*/false);
    out.values.resize(obs.rows());
    for (std::size_t r = 0; r < obs.rows(); ++r)
        out.values[r] = infer_values_col_(r, 0);
}

void
ActorCritic::backward(const Matrix &dlogits,
                      const std::vector<float> &dvalues)
{
    assert(torso_out_ != nullptr);
    assert(dlogits.rows() == torso_out_->rows());
    assert(dvalues.size() == torso_out_->rows());

    const Matrix d_torso_pi = pi_head_.backward(dlogits, *torso_out_);

    Matrix dv(dvalues.size(), 1);
    for (std::size_t r = 0; r < dvalues.size(); ++r)
        dv(r, 0) = dvalues[r];
    const Matrix d_torso_v = v_head_.backward(dv, *torso_out_);

    Matrix d_torso = d_torso_pi;
    for (std::size_t i = 0; i < d_torso.size(); ++i)
        d_torso.data()[i] += d_torso_v.data()[i];

    torso_.backward(d_torso);
}

const AcOutput &
ActorCritic::forwardOne(const std::vector<float> &obs)
{
    one_obs_.resizeUninit(1, obs.size());
    std::copy(obs.begin(), obs.end(), one_obs_.data());
    forwardNoGrad(one_obs_, one_out_);
    return one_out_;
}

void
ActorCritic::zeroGrad()
{
    torso_.zeroGrad();
    pi_head_.zeroGrad();
    v_head_.zeroGrad();
}

std::vector<ParamBlock>
ActorCritic::paramBlocks()
{
    std::vector<ParamBlock> blocks = torso_.paramBlocks();
    for (auto &b : pi_head_.paramBlocks())
        blocks.push_back(b);
    for (auto &b : v_head_.paramBlocks())
        blocks.push_back(b);
    return blocks;
}

std::vector<double>
ActorCritic::softmaxRow(const Matrix &logits, std::size_t r)
{
    const std::size_t n = logits.cols();
    std::vector<double> p(n);
    double maxv = -1e30;
    for (std::size_t c = 0; c < n; ++c)
        maxv = std::max(maxv, static_cast<double>(logits(r, c)));
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        p[c] = std::exp(static_cast<double>(logits(r, c)) - maxv);
        sum += p[c];
    }
    for (auto &v : p)
        v /= sum;
    return p;
}

std::size_t
ActorCritic::sample(const Matrix &logits, std::size_t r, Rng &rng) const
{
    const std::vector<double> p = softmaxRow(logits, r);
    double x = rng.uniformDouble();
    for (std::size_t c = 0; c < p.size(); ++c) {
        x -= p[c];
        if (x < 0.0)
            return c;
    }
    return p.size() - 1;
}

std::size_t
ActorCritic::sampleMasked(const Matrix &logits, std::size_t r,
                          const std::uint8_t *mask, Rng &rng) const
{
    assert(mask != nullptr);
    const std::size_t n = logits.cols();
    // Masked softmax in the exact sequential order of softmaxRow(), so
    // an all-1 mask reproduces sample() bit for bit (adding the masked
    // entries' 0.0 to the running sum is the identity).
    double maxv = -1e30;
    std::size_t valid = 0;
    for (std::size_t c = 0; c < n; ++c) {
        if (mask[c]) {
            maxv = std::max(maxv, static_cast<double>(logits(r, c)));
            ++valid;
        }
    }
    assert(valid > 0 && "sampleMasked: row masks out every action");
    std::vector<double> p(n);
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        p[c] = mask[c]
                   ? std::exp(static_cast<double>(logits(r, c)) - maxv)
                   : 0.0;
        sum += p[c];
    }
    double x = rng.uniformDouble();
    std::size_t last_valid = 0;
    for (std::size_t c = 0; c < n; ++c) {
        if (!mask[c])
            continue;
        last_valid = c;
        x -= p[c] / sum;
        if (x < 0.0)
            return c;
    }
    // Rounding left a sliver of probability unassigned: fall back to
    // the last *valid* index, mirroring sample()'s final-index return.
    return last_valid;
}

std::size_t
ActorCritic::argmax(const Matrix &logits, std::size_t r) const
{
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
        if (logits(r, c) > logits(r, best))
            best = c;
    }
    return best;
}

std::size_t
ActorCritic::argmaxMasked(const Matrix &logits, std::size_t r,
                          const std::uint8_t *mask) const
{
    assert(mask != nullptr);
    const std::size_t n = logits.cols();
    std::size_t best = n;  // sentinel: no valid entry seen yet
    for (std::size_t c = 0; c < n; ++c) {
        if (!mask[c])
            continue;
        // Strict > breaks ties toward the lowest valid index, matching
        // the unmasked argmax()'s deterministic tie rule.
        if (best == n || logits(r, c) > logits(r, best))
            best = c;
    }
    assert(best < n && "argmaxMasked: row masks out every action");
    return best;
}

double
ActorCritic::logProb(const Matrix &logits, std::size_t r,
                     std::size_t action)
{
    double maxv = -1e30;
    for (std::size_t c = 0; c < logits.cols(); ++c)
        maxv = std::max(maxv, static_cast<double>(logits(r, c)));
    double sum = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c)
        sum += std::exp(static_cast<double>(logits(r, c)) - maxv);
    return static_cast<double>(logits(r, action)) - maxv - std::log(sum);
}

double
ActorCritic::logProbMasked(const Matrix &logits, std::size_t r,
                           std::size_t action, const std::uint8_t *mask)
{
    assert(mask != nullptr);
    assert(mask[action] && "logProbMasked: action is masked out");
    double maxv = -1e30;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
        if (mask[c])
            maxv = std::max(maxv, static_cast<double>(logits(r, c)));
    }
    double sum = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
        if (mask[c])
            sum += std::exp(static_cast<double>(logits(r, c)) - maxv);
    }
    return static_cast<double>(logits(r, action)) - maxv - std::log(sum);
}

double
ActorCritic::entropy(const Matrix &logits, std::size_t r)
{
    const std::vector<double> p = softmaxRow(logits, r);
    double h = 0.0;
    for (double v : p) {
        if (v > 1e-12)
            h -= v * std::log(v);
    }
    return h;
}

} // namespace autocat
