/**
 * @file
 * Proximal Policy Optimization (Schulman et al., 2017).
 *
 * Synchronous PPO with the clipped surrogate objective, GAE
 * advantages, entropy bonus, and value regression — the algorithm the
 * paper trains AutoCAT with (Section IV-C; the paper uses the
 * non-distributed synchronous variant for real-hardware experiments,
 * which is what we implement).
 *
 * Collection is vectorized: the trainer consumes a VecEnv of N
 * streams, runs one batched policy forward pass per timestep (a single
 * N x obs_dim matmul instead of N vector passes), and tracks episode
 * boundaries per stream for GAE. N = 1 over a single environment
 * reproduces the classic single-worker loop exactly.
 *
 * With PpoConfig::doubleBuffered set, collection is additionally
 * pipelined: the N streams are split into two contiguous groups, and
 * while one group's environments advance on a background worker
 * (VecEnv::stepRange), the policy forward + action sampling for the
 * other group runs on the calling thread — env stepping and inference
 * overlap instead of alternating. Because the inference GEMM is
 * row-pure (rl/mat.hpp) and the groups preserve the serial sampling
 * order, the pipelined schedule produces *bitwise-identical* rollouts,
 * weights, and metrics to the serial one for a fixed seed; the toggle
 * trades nothing but the worker thread.
 *
 * One "epoch" is paper-aligned: 3000 environment steps of collection
 * (across all streams) followed by minibatch updates (Table V
 * footnote: "One epoch is 3000 training steps").
 */

#ifndef AUTOCAT_RL_PPO_HPP
#define AUTOCAT_RL_PPO_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rl/actor_critic.hpp"
#include "rl/adam.hpp"
#include "rl/env_interface.hpp"
#include "rl/rollout.hpp"
#include "rl/vec_env.hpp"
#include "util/rng.hpp"

namespace autocat {

/** Hyper-parameters of the PPO trainer. */
struct PpoConfig
{
    int stepsPerEpoch = 3000;   ///< paper: one epoch = 3000 steps,
                                ///< summed across all streams
    int updatePasses = 6;       ///< optimization passes per epoch
    int minibatchSize = 500;
    double gamma = 0.99;
    double lambda = 0.95;
    double clip = 0.2;
    double lr = 7e-4;
    double entropyCoef = 0.03;

    /**
     * Multiplicative per-epoch decay of the entropy coefficient;
     * keeps exploration high early and lets the policy sharpen once
     * the attack structure is found.
     */
    double entropyDecay = 0.94;
    double entropyMin = 5e-4;
    double valueCoef = 0.5;
    double maxGradNorm = 0.5;
    std::size_t hidden = 128;
    std::size_t layers = 2;
    std::uint64_t seed = 1;

    /**
     * Overlap env stepping with policy inference during collection
     * (config-file key: double_buffered). Requires >= 2 streams to
     * have an effect; rollouts are bitwise-identical either way (see
     * the file comment).
     */
    bool doubleBuffered = false;
};

/** Aggregate metrics from a batch of evaluation episodes. */
struct EvalStats
{
    double meanReturn = 0.0;
    double meanEpisodeLength = 0.0;
    double guessAccuracy = 0.0;  ///< correct guesses / guesses
    double bitRate = 0.0;        ///< guesses / steps
    double detectionRate = 0.0;  ///< episodes flagged / episodes
    std::size_t episodes = 0;
    std::size_t guesses = 0;
};

/** Per-epoch training telemetry. */
struct EpochStats
{
    int epoch = 0;
    double meanReturn = 0.0;
    double meanEpisodeLength = 0.0;
    double policyLoss = 0.0;
    double valueLoss = 0.0;
    double entropy = 0.0;
    EvalStats eval;
};

/** PPO trainer bound to a vectorized environment. */
class PpoTrainer
{
  public:
    /** Observer invoked after every epoch (may be empty). */
    using EpochCallback = std::function<void(const EpochStats &)>;

    /** Train through @p envs (N streams, batched forward passes). */
    PpoTrainer(VecEnv &envs, const PpoConfig &config);

    /**
     * Single-environment shorthand: wraps @p env in an internal
     * 1-stream SyncVecEnv. @p env must outlive the trainer.
     */
    PpoTrainer(Environment &env, const PpoConfig &config);

    ~PpoTrainer();

    /** Collect stepsPerEpoch transitions and run the PPO update. */
    EpochStats runEpoch();

    /**
     * Train until the greedy policy reaches @p target_accuracy (with at
     * least one guess per episode on average) or @p max_epochs elapse.
     *
     * @return the 1-based epoch at which convergence was first observed,
     *         or -1 if training did not converge
     */
    int trainUntil(double target_accuracy, int max_epochs,
                   int eval_episodes = 100,
                   const EpochCallback &callback = {});

    /**
     * Evaluate the current policy over @p episodes fresh episodes,
     * distributed round-robin across the streams.
     */
    EvalStats evaluate(int episodes, bool greedy = true);

    /** The policy network (for replay / extraction). */
    ActorCritic &policy() { return *net_; }

    /** Total environment steps taken during training so far. */
    long long totalEnvSteps() const { return total_env_steps_; }

    /** Epochs completed so far (runEpoch() calls). */
    int epochsCompleted() const { return epoch_; }

    /** Live hyper-parameters (entropyCoef reflects the decay). */
    const PpoConfig &config() const { return config_; }

    /**
     * Drop the persistent cross-epoch collection state so the next
     * collect() starts from fresh environment resets. Campaign
     * checkpoint boundaries call this (paired with deterministic env
     * reseeds) to make trainer + environment state a pure function of
     * the checkpoint.
     */
    void restartCollection() { collection_active_ = false; }

    /** Stream count the trainer collects with. */
    std::size_t numStreams() const { return envs_->numEnvs(); }

    /**
     * Rebind the trainer to another vectorized environment with
     * identical observation and action dimensions (curriculum
     * training: e.g. single-secret episodes first, then the
     * multi-secret channel). The stream count may change.
     */
    void setVecEnv(VecEnv &envs);

    /** Single-environment shorthand for setVecEnv(). */
    void setEnvironment(Environment &env);

  private:
    /** Serialization backdoor (rl/checkpoint.cpp only). */
    friend struct PpoCheckpointAccess;

    /** Background env-stepping worker for double-buffered collection. */
    struct Pipeline;

    void collect();
    void collectSerial();
    void collectBatchInPlace(BatchStepSurface &surface);
    void collectPipelined();
    void recordEpisodeStats(const std::vector<double> &rewards,
                            const std::vector<std::uint8_t> &dones);
    void update(EpochStats &stats);
    void init();
    void rebuildBuffer();

    std::unique_ptr<SyncVecEnv> owned_env_;  ///< single-env shorthand
    VecEnv *envs_;
    PpoConfig config_;
    Rng rng_;
    std::unique_ptr<ActorCritic> net_;
    std::unique_ptr<Adam> adam_;
    std::unique_ptr<RolloutBuffer> buffer_;
    std::unique_ptr<Pipeline> pipeline_;  ///< lazily started worker
    AcOutput fwd_out_;                    ///< reusable inference output

    // Minibatch-update workspaces (softmaxEntropyRowsInto); reused
    // across minibatches so the update loop allocates no per-row
    // buffers.
    std::vector<double> probs_ws_;
    std::vector<double> entropy_ws_;

    // Action-mask plumbing. masking_ is detected from the environment
    // streams at (re)bind time; when set, sampling/log-probs/greedy
    // run on the masked variants and the rollout stores the acting
    // masks for the update phase. All of it sits behind if (masking_),
    // so mask-off training is bitwise identical to the legacy path.
    bool masking_ = false;
    std::vector<std::uint8_t> mask_ws_;     ///< collection N x A staging
    std::vector<std::uint8_t> mask_mb_ws_;  ///< minibatch mask gather

    // Persistent per-stream episode state so collection can span epoch
    // boundaries.
    Matrix current_obs_;               ///< N x obs_dim
    bool collection_active_ = false;
    std::vector<std::uint8_t> last_dones_;  ///< final-step done flags
    std::vector<double> running_return_;
    std::vector<double> running_len_;

    // Collection-phase episode telemetry.
    double collect_return_sum_ = 0.0;
    double collect_len_sum_ = 0.0;
    std::size_t collect_episodes_ = 0;

    long long total_env_steps_ = 0;
    int epoch_ = 0;
};

} // namespace autocat

#endif // AUTOCAT_RL_PPO_HPP
