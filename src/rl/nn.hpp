/**
 * @file
 * Neural-network building blocks with manual backpropagation.
 *
 * A Linear layer caches its input during forward() so backward() can
 * compute weight gradients; an Mlp stacks Linear+ReLU. Parameters and
 * gradients are exposed as flat blocks for the Adam optimizer.
 */

#ifndef AUTOCAT_RL_NN_HPP
#define AUTOCAT_RL_NN_HPP

#include <cstddef>
#include <vector>

#include "rl/mat.hpp"
#include "util/rng.hpp"

namespace autocat {

/** A contiguous span of parameters and their gradients. */
struct ParamBlock
{
    float *params = nullptr;
    float *grads = nullptr;
    std::size_t size = 0;
};

/** Fully-connected layer y = x W^T + b with cached-input backward. */
class Linear
{
  public:
    /**
     * @param in    input feature count
     * @param out   output feature count
     * @param rng   initializer randomness
     * @param gain  scale on the Xavier-uniform init (use a small gain,
     *              e.g. 0.01, for policy heads so the initial policy is
     *              near uniform)
     */
    Linear(std::size_t in, std::size_t out, Rng &rng, float gain = 1.0f);

    /** Batch forward; caches @p x for backward. x: B x in → B x out. */
    Matrix forward(const Matrix &x);

    /**
     * Backward pass: accumulates weight/bias gradients from
     * @p grad_out (B x out) and returns the input gradient (B x in).
     */
    Matrix backward(const Matrix &grad_out);

    /** Zero accumulated gradients. */
    void zeroGrad();

    /** Parameter/gradient blocks (weights then bias). */
    std::vector<ParamBlock> paramBlocks();

    std::size_t inFeatures() const { return in_; }
    std::size_t outFeatures() const { return out_; }

    /** Direct weight access (tests / serialization). */
    Matrix &weights() { return w_; }
    std::vector<float> &bias() { return b_; }

  private:
    std::size_t in_;
    std::size_t out_;
    Matrix w_;   ///< out x in
    std::vector<float> b_;
    Matrix gw_;
    std::vector<float> gb_;
    Matrix input_;  ///< cached forward input
};

/** Multi-layer perceptron with ReLU between hidden layers. */
class Mlp
{
  public:
    /**
     * @param sizes layer widths, e.g. {obs, 128, 128}; the last entry is
     *              the torso output width (no activation after it when
     *              @p activate_last is false)
     */
    Mlp(const std::vector<std::size_t> &sizes, Rng &rng,
        bool activate_last = true);

    /** Batch forward with activation caching. */
    Matrix forward(const Matrix &x);

    /** Backward through the whole stack; returns input gradient. */
    Matrix backward(const Matrix &grad_out);

    void zeroGrad();
    std::vector<ParamBlock> paramBlocks();

    std::size_t inFeatures() const;
    std::size_t outFeatures() const;

  private:
    std::vector<Linear> layers_;
    std::vector<Matrix> preact_;  ///< cached pre-activation outputs
    bool activate_last_;
};

/** In-place ReLU. */
void reluInPlace(Matrix &m);

/** Zero grad entries where the cached pre-activation was <= 0. */
void reluBackwardInPlace(Matrix &grad, const Matrix &preact);

/** Global L2 norm over blocks; used for gradient clipping. */
double gradNorm(const std::vector<ParamBlock> &blocks);

/** Scale all gradients so the global norm is at most @p max_norm. */
void clipGradNorm(std::vector<ParamBlock> &blocks, double max_norm);

} // namespace autocat

#endif // AUTOCAT_RL_NN_HPP
