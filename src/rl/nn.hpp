/**
 * @file
 * Neural-network building blocks with manual backpropagation.
 *
 * A Linear layer is y = x W^T + b. Two forward entry points exist:
 * the training path caches what backward() needs, while forwardInto()
 * is an allocation-free inference path that fuses bias and ReLU into
 * the GEMM (rl/mat.hpp) and caches nothing. An Mlp stacks Linear+ReLU
 * and keeps the per-layer activations from its last training forward
 * so backward() can run without per-layer input copies. Parameters and
 * gradients are exposed as flat blocks for the Adam optimizer.
 */

#ifndef AUTOCAT_RL_NN_HPP
#define AUTOCAT_RL_NN_HPP

#include <cstddef>
#include <vector>

#include "rl/mat.hpp"
#include "util/rng.hpp"

namespace autocat {

/** A contiguous span of parameters and their gradients. */
struct ParamBlock
{
    float *params = nullptr;
    float *grads = nullptr;
    std::size_t size = 0;
};

/** Fully-connected layer y = x W^T + b with explicit-input backward. */
class Linear
{
  public:
    /**
     * @param in    input feature count
     * @param out   output feature count
     * @param rng   initializer randomness
     * @param gain  scale on the Xavier-uniform init (use a small gain,
     *              e.g. 0.01, for policy heads so the initial policy is
     *              near uniform)
     */
    Linear(std::size_t in, std::size_t out, Rng &rng, float gain = 1.0f);

    /** Allocating convenience forward. x: B x in → B x out. */
    Matrix forward(const Matrix &x) const;

    /**
     * Forward into a caller-owned destination: one fused GEMM pass
     * (bias and, optionally, ReLU applied in-kernel), no allocation
     * once @p y has capacity.
     *
     *  Pre:  x.cols() == inFeatures(); y must not alias x.
     *  Post: y is x.rows() x outFeatures(), fully overwritten.
     */
    void forwardInto(Matrix &y, const Matrix &x, bool fuse_relu) const;

    /**
     * Backward pass: accumulates weight/bias gradients from
     * @p grad_out (B x out) against the explicitly supplied forward
     * @p input (the exact matrix the producing forward consumed;
     * B x in) and returns the input gradient (B x in). Callers store
     * activations themselves (see Mlp::acts_) — the layer caches
     * nothing.
     */
    Matrix backward(const Matrix &grad_out, const Matrix &input);

    /** Zero accumulated gradients. */
    void zeroGrad();

    /** Parameter/gradient blocks (weights then bias). */
    std::vector<ParamBlock> paramBlocks();

    std::size_t inFeatures() const { return in_; }
    std::size_t outFeatures() const { return out_; }

    /** Direct weight access (tests / serialization). */
    Matrix &weights() { return w_; }
    std::vector<float> &bias() { return b_; }

  private:
    std::size_t in_;
    std::size_t out_;
    Matrix w_;   ///< out x in
    std::vector<float> b_;
    Matrix gw_;
    std::vector<float> gb_;
    Matrix gw_scratch_;  ///< reusable dW workspace
};

/** Multi-layer perceptron with ReLU between hidden layers. */
class Mlp
{
  public:
    /**
     * @param sizes layer widths, e.g. {obs, 128, 128}; the last entry is
     *              the torso output width (no activation after it when
     *              @p activate_last is false)
     */
    Mlp(const std::vector<std::size_t> &sizes, Rng &rng,
        bool activate_last = true);

    /** Batch forward with activation caching (training path). */
    Matrix forward(const Matrix &x);

    /**
     * Training forward returning a reference to the internally stored
     * output activation (valid until the next forward). Same caching
     * semantics as forward() without the final copy.
     */
    const Matrix &forwardCached(const Matrix &x);

    /**
     * Allocation-free inference forward: activations are written into
     * @p scratch (resized to one matrix per layer; reuse across calls
     * makes this steady-state allocation-free) and the result is
     * scratch.back(). Caches nothing; safe to interleave with training
     * forward/backward pairs.
     */
    const Matrix &forwardInto(const Matrix &x,
                              std::vector<Matrix> &scratch) const;

    /** Backward through the whole stack; returns input gradient. */
    Matrix backward(const Matrix &grad_out);

    void zeroGrad();
    std::vector<ParamBlock> paramBlocks();

    std::size_t inFeatures() const;
    std::size_t outFeatures() const;

  private:
    std::vector<Linear> layers_;
    /**
     * acts_[0] is the forward input, acts_[i + 1] layer i's output
     * (post-activation where one applies). For activated layers the
     * ReLU mask is recovered from the activation itself (act == 0 ⇔
     * pre-activation <= 0), so pre-activations need not be stored.
     */
    std::vector<Matrix> acts_;
    bool activate_last_;
};

/** In-place ReLU. */
void reluInPlace(Matrix &m);

/** Zero grad entries where the cached pre-activation was <= 0. */
void reluBackwardInPlace(Matrix &grad, const Matrix &preact);

/** Global L2 norm over blocks; used for gradient clipping. */
double gradNorm(const std::vector<ParamBlock> &blocks);

/** Scale all gradients so the global norm is at most @p max_norm. */
void clipGradNorm(std::vector<ParamBlock> &blocks, double max_norm);

} // namespace autocat

#endif // AUTOCAT_RL_NN_HPP
