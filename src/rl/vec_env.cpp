#include "rl/vec_env.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace autocat {

namespace {

/** Check non-null streams with identical dimensions. */
void
validateStreams(const std::vector<Environment *> &envs)
{
    if (envs.empty())
        throw std::invalid_argument("VecEnv: need at least one stream");
    for (const Environment *e : envs) {
        if (!e)
            throw std::invalid_argument("VecEnv: null environment");
        if (e->observationSize() != envs.front()->observationSize() ||
            e->numActions() != envs.front()->numActions()) {
            throw std::invalid_argument(
                "VecEnv: streams must share observation/action dimensions");
        }
    }
}

/** Step one stream with auto-reset; write outputs at index @p i. */
void
stepStream(Environment &env, std::size_t action, std::size_t i,
           Matrix &obs_out, std::vector<double> &rewards,
           std::vector<std::uint8_t> &dones, std::vector<StepInfo> &infos)
{
    StepResult sr = env.step(action);
    rewards[i] = sr.reward;
    dones[i] = sr.done ? 1 : 0;
    infos[i] = sr.info;
    const std::vector<float> obs = sr.done ? env.reset() : std::move(sr.obs);
    assert(obs.size() == obs_out.cols());
    std::memcpy(obs_out.rowPtr(i), obs.data(), obs.size() * sizeof(float));
}

} // namespace

void
VecEnv::stepRange(std::size_t begin, std::size_t end,
                  const std::vector<std::size_t> &actions,
                  VecStepResult &out)
{
    assert(begin <= end && end <= numEnvs());
    assert(actions.size() == numEnvs());
    assert(out.obs.rows() == numEnvs() &&
           out.obs.cols() == observationSize());
    assert(out.rewards.size() == numEnvs() &&
           out.dones.size() == numEnvs() && out.infos.size() == numEnvs());
    for (std::size_t i = begin; i < end; ++i)
        stepStream(env(i), actions[i], i, out.obs, out.rewards, out.dones,
                   out.infos);
}

// ------------------------------------------------------------ SyncVecEnv

SyncVecEnv::SyncVecEnv(std::vector<std::unique_ptr<Environment>> envs)
    : owned_(std::move(envs))
{
    envs_.reserve(owned_.size());
    for (auto &e : owned_)
        envs_.push_back(e.get());
    validateStreams(envs_);
}

SyncVecEnv::SyncVecEnv(const std::vector<Environment *> &envs) : envs_(envs)
{
    validateStreams(envs_);
}

SyncVecEnv::SyncVecEnv(Environment &env) : envs_{&env} {}

std::size_t
SyncVecEnv::observationSize() const
{
    return envs_.front()->observationSize();
}

std::size_t
SyncVecEnv::numActions() const
{
    return envs_.front()->numActions();
}

Matrix
SyncVecEnv::resetAll()
{
    Matrix obs(envs_.size(), observationSize());
    for (std::size_t i = 0; i < envs_.size(); ++i) {
        const std::vector<float> row = envs_[i]->reset();
        std::memcpy(obs.rowPtr(i), row.data(), row.size() * sizeof(float));
    }
    return obs;
}

VecStepResult
SyncVecEnv::stepAll(const std::vector<std::size_t> &actions)
{
    assert(actions.size() == envs_.size());
    VecStepResult r;
    r.obs.resize(envs_.size(), observationSize());
    r.rewards.resize(envs_.size());
    r.dones.resize(envs_.size());
    r.infos.resize(envs_.size());
    for (std::size_t i = 0; i < envs_.size(); ++i)
        stepStream(*envs_[i], actions[i], i, r.obs, r.rewards, r.dones,
                   r.infos);
    return r;
}

// -------------------------------------------------------- ThreadedVecEnv

ThreadedVecEnv::ThreadedVecEnv(
    std::vector<std::unique_ptr<Environment>> envs, std::size_t num_threads)
    : envs_(std::move(envs)),
      pool_(num_threads, /*max_useful=*/envs_.size())
{
    std::vector<Environment *> raw;
    raw.reserve(envs_.size());
    for (auto &e : envs_)
        raw.push_back(e.get());
    validateStreams(raw);
    obs_dim_ = envs_.front()->observationSize();
    num_actions_ = envs_.front()->numActions();
}

Matrix
ThreadedVecEnv::resetAll()
{
    Matrix obs;
    obs.resizeUninit(envs_.size(), obs_dim_);
    pool_.parallelFor(0, envs_.size(), [&](std::size_t i) {
        const std::vector<float> row = envs_[i]->reset();
        std::memcpy(obs.rowPtr(i), row.data(), row.size() * sizeof(float));
    });
    return obs;
}

VecStepResult
ThreadedVecEnv::stepAll(const std::vector<std::size_t> &actions)
{
    VecStepResult r;
    r.obs.resizeUninit(envs_.size(), obs_dim_);
    r.rewards.resize(envs_.size());
    r.dones.resize(envs_.size());
    r.infos.resize(envs_.size());
    stepRange(0, envs_.size(), actions, r);
    return r;
}

void
ThreadedVecEnv::stepRange(std::size_t begin, std::size_t end,
                          const std::vector<std::size_t> &actions,
                          VecStepResult &out)
{
    assert(begin <= end && end <= envs_.size());
    assert(actions.size() == envs_.size());
    assert(out.obs.rows() == envs_.size() && out.obs.cols() == obs_dim_);
    assert(out.rewards.size() == envs_.size() &&
           out.dones.size() == envs_.size() &&
           out.infos.size() == envs_.size());
    pool_.parallelFor(begin, end, [&](std::size_t i) {
        stepStream(*envs_[i], actions[i], i, out.obs, out.rewards,
                   out.dones, out.infos);
    });
}

} // namespace autocat
