#include "rl/ppo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace autocat {

/**
 * Persistent background worker that advances a stream range of a
 * VecEnv while the caller keeps the policy busy. One job may be in
 * flight at a time: launch() publishes it, wait() blocks until the
 * step finishes and rethrows any environment exception on the calling
 * thread.
 */
struct PpoTrainer::Pipeline
{
    Pipeline() : worker_([this] { loop(); }) {}

    ~Pipeline()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            quit_ = true;
            pending_ = true;
        }
        work_cv_.notify_all();
        worker_.join();
    }

    void
    launch(VecEnv &envs, std::size_t begin, std::size_t end,
           const std::vector<std::size_t> &actions, VecStepResult &out)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            envs_ = &envs;
            begin_ = begin;
            end_ = end;
            actions_ = &actions;
            out_ = &out;
            pending_ = true;
            done_ = false;
        }
        work_cv_.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return done_; });
        if (error_) {
            std::exception_ptr e = std::move(error_);
            error_ = nullptr;
            std::rethrow_exception(e);
        }
    }

    /**
     * Wait for any in-flight job without rethrowing its error. Run
     * before the job's target storage goes out of scope — in
     * particular while unwinding, when the worker may still be
     * writing into the caller's stack.
     */
    void
    drain() noexcept
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return done_; });
        error_ = nullptr;
    }

  private:
    void
    loop()
    {
        for (;;) {
            VecEnv *envs;
            std::size_t begin, end;
            const std::vector<std::size_t> *actions;
            VecStepResult *out;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                work_cv_.wait(lock, [&] { return pending_; });
                pending_ = false;
                if (quit_)
                    return;
                envs = envs_;
                begin = begin_;
                end = end_;
                actions = actions_;
                out = out_;
            }
            try {
                envs->stepRange(begin, end, *actions, *out);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                error_ = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                done_ = true;
            }
            done_cv_.notify_all();
        }
    }

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    bool pending_ = false;
    bool done_ = true;
    bool quit_ = false;
    VecEnv *envs_ = nullptr;
    std::size_t begin_ = 0;
    std::size_t end_ = 0;
    const std::vector<std::size_t> *actions_ = nullptr;
    VecStepResult *out_ = nullptr;
    std::exception_ptr error_;
    std::thread worker_;
};

PpoTrainer::~PpoTrainer() = default;

PpoTrainer::PpoTrainer(VecEnv &envs, const PpoConfig &config)
    : envs_(&envs), config_(config), rng_(config.seed)
{
    init();
}

PpoTrainer::PpoTrainer(Environment &env, const PpoConfig &config)
    : owned_env_(std::make_unique<SyncVecEnv>(env)),
      envs_(owned_env_.get()),
      config_(config),
      rng_(config.seed)
{
    init();
}

void
PpoTrainer::init()
{
    Rng init_rng(config_.seed ^ 0x5eedf00dull);
    net_ = std::make_unique<ActorCritic>(envs_->observationSize(),
                                         envs_->numActions(),
                                         config_.hidden, config_.layers,
                                         init_rng);
    auto blocks = net_->paramBlocks();
    adam_ = std::make_unique<Adam>(blocks, config_.lr);
    rebuildBuffer();
}

void
PpoTrainer::rebuildBuffer()
{
    const std::size_t n = envs_->numEnvs();
    const std::size_t steps_per_stream =
        (static_cast<std::size_t>(config_.stepsPerEpoch) + n - 1) / n;
    buffer_ = std::make_unique<RolloutBuffer>(steps_per_stream, n,
                                              envs_->observationSize());
    // Streams either all mask or none do (BatchEnvPool enforces this;
    // config-built SyncVecEnv streams share one EnvConfig), so stream 0
    // answers for the batch.
    masking_ = envs_->env(0).actionMask() != nullptr;
    if (masking_)
        buffer_->enableMasks(envs_->numActions());
    running_return_.assign(n, 0.0);
    running_len_.assign(n, 0.0);
    collection_active_ = false;
}

void
PpoTrainer::recordEpisodeStats(const std::vector<double> &rewards,
                               const std::vector<std::uint8_t> &dones)
{
    for (std::size_t s = 0; s < rewards.size(); ++s) {
        running_return_[s] += rewards[s];
        running_len_[s] += 1.0;
        if (dones[s]) {
            collect_return_sum_ += running_return_[s];
            collect_len_sum_ += running_len_[s];
            ++collect_episodes_;
            running_return_[s] = 0.0;
            running_len_[s] = 0.0;
        }
    }
}

void
PpoTrainer::collect()
{
    const std::size_t n = envs_->numEnvs();
    buffer_->clear();
    collect_return_sum_ = 0.0;
    collect_len_sum_ = 0.0;
    collect_episodes_ = 0;

    if (!collection_active_) {
        current_obs_ = envs_->resetAll();
        collection_active_ = true;
        running_return_.assign(n, 0.0);
        running_len_.assign(n, 0.0);
    }
    last_dones_.assign(n, 0);

    // Double buffering needs two stream groups to alternate between.
    BatchStepSurface *surface = envs_->batchSurface();
    if (config_.doubleBuffered && n >= 2)
        collectPipelined();
    else if (surface)
        collectBatchInPlace(*surface);
    else
        collectSerial();

    // Bootstrap the value of the state each stream stopped in; streams
    // whose final transition ended an episode bootstrap from 0 (their
    // current observation is already the next episode's start).
    std::vector<double> last_values(n, 0.0);
    net_->forwardNoGrad(current_obs_, fwd_out_);
    for (std::size_t s = 0; s < n; ++s) {
        if (!last_dones_[s])
            last_values[s] = fwd_out_.values[s];
    }

    buffer_->computeAdvantages(config_.gamma, config_.lambda, last_values);
    buffer_->normalizeAdvantages();
}

void
PpoTrainer::collectSerial()
{
    const std::size_t n = envs_->numEnvs();
    const std::size_t na = envs_->numActions();
    std::vector<std::size_t> actions(n);
    std::vector<double> values(n), log_probs(n);
    if (masking_)
        mask_ws_.resize(n * na);

    while (!buffer_->full()) {
        // One batched forward over the N current observations.
        net_->forwardNoGrad(current_obs_, fwd_out_);
        if (masking_) {
            // Snapshot the acting masks before the step mutates them;
            // the snapshot doubles as the rollout's stored masks.
            for (std::size_t s = 0; s < n; ++s)
                std::memcpy(mask_ws_.data() + s * na,
                            envs_->env(s).actionMask(), na);
            for (std::size_t s = 0; s < n; ++s) {
                const std::uint8_t *m = mask_ws_.data() + s * na;
                actions[s] =
                    net_->sampleMasked(fwd_out_.logits, s, m, rng_);
                log_probs[s] = ActorCritic::logProbMasked(
                    fwd_out_.logits, s, actions[s], m);
                values[s] = fwd_out_.values[s];
            }
            buffer_->stageMasks(mask_ws_.data());
        } else {
            for (std::size_t s = 0; s < n; ++s) {
                actions[s] = net_->sample(fwd_out_.logits, s, rng_);
                log_probs[s] =
                    ActorCritic::logProb(fwd_out_.logits, s, actions[s]);
                values[s] = fwd_out_.values[s];
            }
        }

        VecStepResult vr = envs_->stepAll(actions);
        total_env_steps_ += static_cast<long long>(n);
        recordEpisodeStats(vr.rewards, vr.dones);

        buffer_->addStep(std::move(current_obs_), actions, vr.rewards,
                         vr.dones, values, log_probs);
        last_dones_ = vr.dones;
        current_obs_ = std::move(vr.obs);
    }
}

/*
 * In-place collection over a BatchStepSurface: the policy GEMM reads
 * the engine's persistent observation matrix directly and the
 * environments rewrite its rows as they step, so the per-step Matrix
 * allocation and row copies of collectSerial() disappear. The acting
 * observations are staged into the rollout *before* the step
 * overwrites them (RolloutBuffer::stageObs) — the same single copy the
 * serial path performs inside stepAll(), just without the allocation.
 * Forward, sampling, stepping, and bookkeeping run in the serial order
 * on identical values, so the rollout is bitwise-identical to
 * collectSerial() over SyncVecEnv with the same seeds.
 */
void
PpoTrainer::collectBatchInPlace(BatchStepSurface &surface)
{
    const std::size_t n = envs_->numEnvs();
    std::vector<std::size_t> actions(n);
    std::vector<double> values(n), log_probs(n);
    std::vector<double> rewards(n);
    std::vector<std::uint8_t> dones(n);
    std::vector<StepInfo> infos(n);

    const Matrix &obs = surface.obsMatrix();
    const std::uint8_t *mm = surface.maskMatrix();
    const std::size_t na = envs_->numActions();
    assert(!masking_ || mm != nullptr);
    while (!buffer_->full()) {
        net_->forwardNoGrad(obs, fwd_out_);
        if (masking_) {
            // The engine maintains the mask matrix in place like the
            // observation rows: stage the acting snapshot before the
            // step rewrites it, sample straight from the live rows.
            buffer_->stageMasks(mm);
            for (std::size_t s = 0; s < n; ++s) {
                const std::uint8_t *m = mm + s * na;
                actions[s] =
                    net_->sampleMasked(fwd_out_.logits, s, m, rng_);
                log_probs[s] = ActorCritic::logProbMasked(
                    fwd_out_.logits, s, actions[s], m);
                values[s] = fwd_out_.values[s];
            }
        } else {
            for (std::size_t s = 0; s < n; ++s) {
                actions[s] = net_->sample(fwd_out_.logits, s, rng_);
                log_probs[s] =
                    ActorCritic::logProb(fwd_out_.logits, s, actions[s]);
                values[s] = fwd_out_.values[s];
            }
        }

        buffer_->stageObs(obs);
        surface.stepBatchInPlace(actions.data(), rewards.data(),
                                 dones.data(), infos.data());
        total_env_steps_ += static_cast<long long>(n);
        recordEpisodeStats(rewards, dones);
        buffer_->commitStep(actions, rewards, dones, values, log_probs);
        last_dones_ = dones;
    }

    // Refresh the cross-epoch mirror the shared bootstrap code (and a
    // possible later non-batch path) reads.
    current_obs_ = obs;
}

/*
 * Pipelined collection: streams are split into contiguous groups
 * A = [0, h) and B = [h, n). While the background worker advances one
 * group's environments, the calling thread runs the policy forward and
 * samples actions for the other:
 *
 *      main:    fwd A0 | fwd B0 | fwd A1 | fwd B1 | ...
 *      worker:         | step A0 | step B0 | step A1 | ...
 *
 * Sampling still consumes the trainer RNG in the serial order (all of
 * A's rows at step t, then all of B's), and the inference GEMM is
 * row-pure, so the collected rollout is bitwise identical to
 * collectSerial()'s.
 */
void
PpoTrainer::collectPipelined()
{
    const std::size_t n = envs_->numEnvs();
    const std::size_t d = envs_->observationSize();
    const std::size_t h = n / 2;  // group A = [0, h), B = [h, n)
    const std::size_t steps = buffer_->capacitySteps();
    if (!pipeline_)
        pipeline_ = std::make_unique<Pipeline>();

    // The worker writes into stack-local staging below; if anything on
    // this thread throws mid-flight, the in-flight job must finish
    // before those locals unwind.
    struct DrainGuard
    {
        Pipeline *p;
        ~DrainGuard() { p->drain(); }
    } drain_guard{pipeline_.get()};

    // Per-group observation staging (what each group acts from).
    Matrix obs_a(h, d), obs_b(n - h, d);
    for (std::size_t r = 0; r < h; ++r)
        std::memcpy(obs_a.rowPtr(r), current_obs_.rowPtr(r),
                    d * sizeof(float));
    for (std::size_t r = 0; r < n - h; ++r)
        std::memcpy(obs_b.rowPtr(r), current_obs_.rowPtr(h + r),
                    d * sizeof(float));

    // Shared step output; the worker writes only its group's rows.
    VecStepResult step_out;
    step_out.obs.resizeUninit(n, d);
    step_out.rewards.resize(n);
    step_out.dones.resize(n);
    step_out.infos.resize(n);

    // Two timesteps are in flight at once (group A runs one ahead), so
    // the sampled transition data is double-buffered too.
    const std::size_t na = envs_->numActions();
    struct Stage
    {
        Matrix obs;  ///< full N x d acting observations
        std::vector<std::size_t> actions;
        std::vector<double> values;
        std::vector<double> log_probs;
        std::vector<std::uint8_t> masks;  ///< N x A acting masks
    };
    Stage cur, next;
    for (Stage *st : {&cur, &next}) {
        st->obs.resizeUninit(n, d);
        st->actions.resize(n);
        st->values.resize(n);
        st->log_probs.resize(n);
        if (masking_)
            st->masks.resize(n * na);
    }

    // Forward + sample one group's rows into a stage buffer. While
    // this runs, the worker only ever steps the *other* group, so this
    // group's observation rows and mask rows are idle — the mask
    // snapshot below reads stable memory.
    const auto forwardSample = [&](const Matrix &obs_g, std::size_t begin,
                                   std::size_t end, Stage &st) {
        for (std::size_t r = 0; r < end - begin; ++r)
            std::memcpy(st.obs.rowPtr(begin + r), obs_g.rowPtr(r),
                        d * sizeof(float));
        net_->forwardNoGrad(obs_g, fwd_out_);
        if (masking_) {
            for (std::size_t s = begin; s < end; ++s)
                std::memcpy(st.masks.data() + s * na,
                            envs_->env(s).actionMask(), na);
            for (std::size_t s = begin; s < end; ++s) {
                const std::size_t r = s - begin;
                const std::uint8_t *m = st.masks.data() + s * na;
                st.actions[s] =
                    net_->sampleMasked(fwd_out_.logits, r, m, rng_);
                st.log_probs[s] = ActorCritic::logProbMasked(
                    fwd_out_.logits, r, st.actions[s], m);
                st.values[s] = fwd_out_.values[r];
            }
        } else {
            for (std::size_t s = begin; s < end; ++s) {
                const std::size_t r = s - begin;
                st.actions[s] = net_->sample(fwd_out_.logits, r, rng_);
                st.log_probs[s] = ActorCritic::logProb(fwd_out_.logits,
                                                       r, st.actions[s]);
                st.values[s] = fwd_out_.values[r];
            }
        }
    };

    // Copy a group's freshly stepped rows out of the shared staging.
    const auto harvest = [&](Matrix &obs_g, std::size_t begin,
                             std::size_t end) {
        for (std::size_t r = 0; r < end - begin; ++r)
            std::memcpy(obs_g.rowPtr(r), step_out.obs.rowPtr(begin + r),
                        d * sizeof(float));
    };

    forwardSample(obs_a, 0, h, cur);
    pipeline_->launch(*envs_, 0, h, cur.actions, step_out);

    for (std::size_t t = 0; t < steps; ++t) {
        const bool more = t + 1 < steps;

        forwardSample(obs_b, h, n, cur);  // overlaps A's env step
        pipeline_->wait();                // A rows of step_out valid
        pipeline_->launch(*envs_, h, n, cur.actions, step_out);

        harvest(obs_a, 0, h);
        if (more)
            forwardSample(obs_a, 0, h, next);  // overlaps B's env step
        pipeline_->wait();                     // B rows valid
        harvest(obs_b, h, n);

        recordEpisodeStats(step_out.rewards, step_out.dones);
        total_env_steps_ += static_cast<long long>(n);
        last_dones_ = step_out.dones;
        if (masking_)
            buffer_->stageMasks(cur.masks.data());
        buffer_->addStep(std::move(cur.obs), cur.actions, step_out.rewards,
                         step_out.dones, cur.values, cur.log_probs);

        if (more) {
            std::swap(cur, next);
            // cur.obs was moved into the buffer and swapped into next;
            // restore its shape for the following timestep.
            next.obs.resizeUninit(n, d);
            pipeline_->launch(*envs_, 0, h, cur.actions, step_out);
        }
    }

    // Reassemble the persistent cross-epoch observation state.
    current_obs_.resizeUninit(n, d);
    for (std::size_t r = 0; r < h; ++r)
        std::memcpy(current_obs_.rowPtr(r), obs_a.rowPtr(r),
                    d * sizeof(float));
    for (std::size_t r = 0; r < n - h; ++r)
        std::memcpy(current_obs_.rowPtr(h + r), obs_b.rowPtr(r),
                    d * sizeof(float));
}

void
PpoTrainer::update(EpochStats &stats)
{
    const std::size_t n = buffer_->size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);

    double pi_loss_sum = 0.0, v_loss_sum = 0.0, ent_sum = 0.0;
    long batches = 0;

    for (int pass = 0; pass < config_.updatePasses; ++pass) {
        rng_.shuffle(order);
        for (std::size_t start = 0; start < n;
             start += static_cast<std::size_t>(config_.minibatchSize)) {
            const std::size_t end = std::min(
                n, start + static_cast<std::size_t>(config_.minibatchSize));
            const std::vector<std::size_t> idx(order.begin() + start,
                                               order.begin() + end);
            const std::size_t bsz = idx.size();

            const Matrix obs = buffer_->gatherObs(idx);
            AcOutput out = net_->forward(obs);

            // Batch softmax + entropy in one fused pass over reusable
            // workspaces (rl/mat.hpp): bitwise-identical per-row math
            // to the old softmaxRow()/inline-entropy loops, without
            // the per-row vector allocations and second traversal.
            const std::size_t na = net_->numActions();
            if (masking_) {
                // Replay the acting masks: the surrogate ratio and the
                // entropy bonus are computed on the same restricted
                // support the policy sampled from. Masked entries get
                // probability exactly 0, which zeroes their gradient
                // terms below without any extra branching.
                buffer_->gatherMasksInto(mask_mb_ws_, idx);
                softmaxEntropyRowsMaskedInto(probs_ws_, entropy_ws_,
                                             out.logits,
                                             mask_mb_ws_.data());
            } else {
                softmaxEntropyRowsInto(probs_ws_, entropy_ws_,
                                       out.logits);
            }

            Matrix dlogits(bsz, na);
            std::vector<float> dvalues(bsz, 0.0f);
            const double inv_b = 1.0 / static_cast<double>(bsz);

            for (std::size_t r = 0; r < bsz; ++r) {
                const std::size_t i = idx[r];
                const std::size_t act = buffer_->actions()[i];
                const double adv = buffer_->advantages()[i];
                const double old_logp = buffer_->logProbs()[i];
                const double ret = buffer_->returns()[i];

                const double *p = probs_ws_.data() + r * na;
                const double ent = entropy_ws_[r];
                const double logp =
                    std::log(std::max(p[act], 1e-12));
                const double ratio = std::exp(logp - old_logp);

                // Clipped surrogate: gradient flows only through the
                // unclipped branch when it is the active minimum.
                const bool clipped =
                    (adv >= 0.0 && ratio > 1.0 + config_.clip) ||
                    (adv < 0.0 && ratio < 1.0 - config_.clip);
                const double dl_dlogp = clipped ? 0.0 : -adv * ratio;

                // Entropy bonus gradient: d(-H)/dlogit_k =
                // p_k * (log p_k + H).
                for (std::size_t k = 0; k < na; ++k) {
                    const double ind = (k == act) ? 1.0 : 0.0;
                    double g = dl_dlogp * (ind - p[k]);
                    g += config_.entropyCoef * p[k] *
                         (std::log(std::max(p[k], 1e-12)) + ent);
                    dlogits(r, k) = static_cast<float>(g * inv_b);
                }

                const double verr =
                    static_cast<double>(out.values[r]) - ret;
                dvalues[r] = static_cast<float>(
                    2.0 * config_.valueCoef * verr * inv_b);

                pi_loss_sum += -std::min(
                    ratio * adv,
                    std::clamp(ratio, 1.0 - config_.clip,
                               1.0 + config_.clip) * adv);
                v_loss_sum += verr * verr;
                ent_sum += ent;
            }

            net_->zeroGrad();
            net_->backward(dlogits, dvalues);
            auto blocks = net_->paramBlocks();
            clipGradNorm(blocks, config_.maxGradNorm);
            adam_->step(blocks);
            ++batches;
        }
    }

    const double steps = static_cast<double>(n) * config_.updatePasses;
    stats.policyLoss = pi_loss_sum / steps;
    stats.valueLoss = v_loss_sum / steps;
    stats.entropy = ent_sum / steps;
}

EpochStats
PpoTrainer::runEpoch()
{
    EpochStats stats;
    stats.epoch = ++epoch_;
    if (epoch_ > 1) {
        config_.entropyCoef = std::max(
            config_.entropyMin, config_.entropyCoef * config_.entropyDecay);
    }
    collect();
    if (collect_episodes_ > 0) {
        stats.meanReturn =
            collect_return_sum_ / static_cast<double>(collect_episodes_);
        stats.meanEpisodeLength =
            collect_len_sum_ / static_cast<double>(collect_episodes_);
    }
    update(stats);
    return stats;
}

EvalStats
PpoTrainer::evaluate(int episodes, bool greedy)
{
    EvalStats stats;
    stats.episodes = static_cast<std::size_t>(episodes);

    std::size_t correct = 0, guesses = 0;
    long long steps = 0;
    double return_sum = 0.0;
    std::size_t detected_episodes = 0;
    const std::size_t n = envs_->numEnvs();

    for (int e = 0; e < episodes; ++e) {
        Environment &env = envs_->env(static_cast<std::size_t>(e) % n);
        std::vector<float> obs = env.reset();
        bool done = false;
        bool detected = false;
        double ep_return = 0.0;
        long ep_steps = 0;
        while (!done) {
            const AcOutput &out = net_->forwardOne(obs);
            // The greedy policy honors the mask too: a masked action is
            // never played, and ties break to the lowest valid index in
            // both variants, so evaluation is deterministic.
            const std::uint8_t *m = masking_ ? env.actionMask() : nullptr;
            const std::size_t action =
                greedy ? (m ? net_->argmaxMasked(out.logits, 0, m)
                            : net_->argmax(out.logits, 0))
                       : (m ? net_->sampleMasked(out.logits, 0, m, rng_)
                            : net_->sample(out.logits, 0, rng_));
            StepResult sr = env.step(action);
            ep_return += sr.reward;
            ++ep_steps;
            if (sr.info.guessMade) {
                ++guesses;
                if (sr.info.guessCorrect)
                    ++correct;
            }
            if (sr.info.detected)
                detected = true;
            done = sr.done;
            obs = std::move(sr.obs);
        }
        return_sum += ep_return;
        steps += ep_steps;
        if (detected)
            ++detected_episodes;
    }

    // The trainer's persistent episode state is stale after evaluation.
    collection_active_ = false;

    stats.meanReturn = return_sum / std::max(1, episodes);
    stats.meanEpisodeLength =
        static_cast<double>(steps) / std::max(1, episodes);
    stats.guessAccuracy =
        guesses ? static_cast<double>(correct) /
                      static_cast<double>(guesses)
                : 0.0;
    stats.bitRate = steps ? static_cast<double>(guesses) /
                                static_cast<double>(steps)
                          : 0.0;
    stats.detectionRate =
        episodes ? static_cast<double>(detected_episodes) /
                       static_cast<double>(episodes)
                 : 0.0;
    stats.guesses = guesses;
    return stats;
}

int
PpoTrainer::trainUntil(double target_accuracy, int max_epochs,
                       int eval_episodes, const EpochCallback &callback)
{
    for (int e = 1; e <= max_epochs; ++e) {
        EpochStats stats = runEpoch();
        stats.eval = evaluate(eval_episodes, /*greedy=*/true);
        if (callback)
            callback(stats);
        const bool guessing =
            stats.eval.guesses >= stats.eval.episodes;
        if (guessing && stats.eval.guessAccuracy >= target_accuracy)
            return e;
    }
    return -1;
}

void
PpoTrainer::setVecEnv(VecEnv &envs)
{
    if (envs.observationSize() != envs_->observationSize() ||
        envs.numActions() != envs_->numActions()) {
        throw std::invalid_argument(
            "setVecEnv: observation/action dimensions must match");
    }
    envs_ = &envs;
    owned_env_.reset();
    rebuildBuffer();
}

void
PpoTrainer::setEnvironment(Environment &env)
{
    if (env.observationSize() != envs_->observationSize() ||
        env.numActions() != envs_->numActions()) {
        throw std::invalid_argument(
            "setEnvironment: observation/action dimensions must match");
    }
    owned_env_ = std::make_unique<SyncVecEnv>(env);
    envs_ = owned_env_.get();
    rebuildBuffer();
}

} // namespace autocat
