/**
 * @file
 * Vectorized environment abstraction.
 *
 * A VecEnv steps N homogeneous environments ("streams") in lock-step
 * behind a batched interface: resetAll() yields an N x obs_dim
 * observation matrix and stepAll() advances every stream by one action.
 * Streams auto-reset: when a stream's episode ends, its row in the
 * returned observation batch is already the first observation of the
 * next episode (the done flag and step info still describe the step
 * that ended the episode).
 *
 * Two adapters are provided: SyncVecEnv steps the streams sequentially
 * on the calling thread (zero overhead, deterministic), ThreadedVecEnv
 * fans the per-stream work out to a persistent worker pool (same
 * semantics, higher env-steps/sec once per-step work dominates dispatch
 * cost). Both produce bitwise-identical trajectories because each
 * stream owns its state and RNG; thread scheduling cannot reorder
 * anything observable.
 *
 * Besides the full-batch stepAll(), stepRange() advances a contiguous
 * sub-batch of streams into caller-owned storage — the primitive the
 * PPO trainer's double-buffered collection pipelines on (rl/ppo.hpp).
 */

#ifndef AUTOCAT_RL_VEC_ENV_HPP
#define AUTOCAT_RL_VEC_ENV_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "rl/env_interface.hpp"
#include "rl/mat.hpp"
#include "util/task_pool.hpp"

namespace autocat {

/** Result of stepping every stream once. */
struct VecStepResult
{
    /**
     * N x obs_dim next observations. For a stream whose episode ended
     * this step, the row is the fresh observation after auto-reset.
     */
    Matrix obs;
    std::vector<double> rewards;        ///< per-stream step reward
    std::vector<std::uint8_t> dones;    ///< 1 where the episode ended
    std::vector<StepInfo> infos;        ///< per-stream step metadata
};

/**
 * Optional in-place batch-stepping capability. An adapter that keeps a
 * persistent N x obs_dim observation matrix — each stream's row is
 * rewritten in place as the stream advances, with auto-reset semantics
 * identical to VecEnv::stepAll() — exposes this surface so the PPO
 * trainer can run the policy GEMM directly on the engine's matrix and
 * skip the per-step Matrix allocation + row copies of the generic
 * stepAll() path. Implemented by BatchVecEnv (env/batch_env_pool.hpp).
 */
class BatchStepSurface
{
  public:
    virtual ~BatchStepSurface() = default;

    /** The persistent observation matrix (valid after resetAllInPlace
     *  or VecEnv::resetAll on the same adapter). */
    virtual const Matrix &obsMatrix() const = 0;

    /**
     * Advance every stream one step, rewriting obsMatrix() rows in
     * place. @p actions, @p rewards, @p dones, @p infos all have one
     * slot per stream.
     */
    virtual void stepBatchInPlace(const std::size_t *actions,
                                  double *rewards, std::uint8_t *dones,
                                  StepInfo *infos) = 0;

    /** Reset every stream, refreshing obsMatrix() rows in place. */
    virtual void resetAllInPlace() = 0;

    /**
     * Row-major numEnvs x numActions action-validity mask matrix kept
     * current alongside obsMatrix() (each stream's row is rewritten in
     * place as the stream steps/resets), or nullptr when the streams do
     * not mask actions. Same zero-copy contract as the observation
     * matrix: the trainer reads rows straight out of the engine.
     */
    virtual const std::uint8_t *maskMatrix() const { return nullptr; }
};

/** Batched Gym-like interface over N environment streams. */
class VecEnv
{
  public:
    virtual ~VecEnv() = default;

    /**
     * The adapter's in-place batch-stepping surface, or nullptr when
     * it does not maintain a persistent observation matrix (the
     * generic adapters below).
     */
    virtual BatchStepSurface *batchSurface() { return nullptr; }

    /** Number of streams. */
    virtual std::size_t numEnvs() const = 0;

    /** Dimension of the flat observation vector (shared by streams). */
    virtual std::size_t observationSize() const = 0;

    /** Size of the discrete action space (shared by streams). */
    virtual std::size_t numActions() const = 0;

    /** Reset every stream; returns the N x obs_dim initial batch. */
    virtual Matrix resetAll() = 0;

    /**
     * Step every stream with its action (size numEnvs()). Streams whose
     * episodes end are reset automatically; see VecStepResult::obs.
     */
    virtual VecStepResult stepAll(const std::vector<std::size_t> &actions) = 0;

    /**
     * Step only the streams in [begin, end) into caller-owned storage
     * — the sub-batch primitive behind double-buffered collection
     * (rl/ppo.hpp), where one group of streams steps while the policy
     * forward for the other group runs.
     *
     *  Pre:  begin <= end <= numEnvs(); @p actions has size numEnvs()
     *        (entries outside the range are ignored); @p out is
     *        pre-sized — obs numEnvs() x observationSize(), vectors
     *        numEnvs().
     *  Post: rows/slots [begin, end) of @p out hold the step results
     *        (auto-reset semantics identical to stepAll()); slots
     *        outside the range are untouched.
     *
     * The base implementation steps sequentially on the calling
     * thread; adapters may parallelize. Must not be called
     * concurrently with itself on an overlapping range, or with
     * resetAll()/stepAll().
     */
    virtual void stepRange(std::size_t begin, std::size_t end,
                           const std::vector<std::size_t> &actions,
                           VecStepResult &out);

    /**
     * Direct access to stream @p i — for decoration (detectors),
     * inspection, and sequential evaluation. Must not be used
     * concurrently with resetAll()/stepAll().
     */
    virtual Environment &env(std::size_t i) = 0;
};

/** Sequential adapter: steps the streams one by one on the caller. */
class SyncVecEnv : public VecEnv
{
  public:
    /** Own the given environments (all non-null, same dimensions). */
    explicit SyncVecEnv(std::vector<std::unique_ptr<Environment>> envs);

    /** Borrow externally-owned environments (must outlive the adapter). */
    explicit SyncVecEnv(const std::vector<Environment *> &envs);

    /** Borrow a single environment (1-stream shorthand). */
    explicit SyncVecEnv(Environment &env);

    std::size_t numEnvs() const override { return envs_.size(); }
    std::size_t observationSize() const override;
    std::size_t numActions() const override;
    Matrix resetAll() override;
    VecStepResult stepAll(const std::vector<std::size_t> &actions) override;
    Environment &env(std::size_t i) override { return *envs_[i]; }

  private:
    std::vector<std::unique_ptr<Environment>> owned_;
    std::vector<Environment *> envs_;
};

/**
 * Worker-pool adapter: stepAll()/resetAll() dispatch each stream to a
 * persistent TaskPool (util/task_pool.hpp) and block until the batch
 * is complete. Trajectories are bitwise-identical to SyncVecEnv over
 * the same environments: each stream owns its state and writes only
 * its own output row, so the pool's claiming order is unobservable.
 */
class ThreadedVecEnv : public VecEnv
{
  public:
    /**
     * @param envs        owned streams (all non-null, same dimensions)
     * @param num_threads worker count; 0 selects
     *                    min(numEnvs, hardware_concurrency)
     */
    explicit ThreadedVecEnv(std::vector<std::unique_ptr<Environment>> envs,
                            std::size_t num_threads = 0);

    ThreadedVecEnv(const ThreadedVecEnv &) = delete;
    ThreadedVecEnv &operator=(const ThreadedVecEnv &) = delete;

    std::size_t numEnvs() const override { return envs_.size(); }
    std::size_t observationSize() const override { return obs_dim_; }
    std::size_t numActions() const override { return num_actions_; }
    Matrix resetAll() override;
    VecStepResult stepAll(const std::vector<std::size_t> &actions) override;
    /** Parallel sub-batch step over [begin, end) on the pool. */
    void stepRange(std::size_t begin, std::size_t end,
                   const std::vector<std::size_t> &actions,
                   VecStepResult &out) override;
    Environment &env(std::size_t i) override { return *envs_[i]; }

    /** Worker threads actually running. */
    std::size_t numThreads() const { return pool_.numThreads(); }

  private:
    std::vector<std::unique_ptr<Environment>> envs_;
    std::size_t obs_dim_ = 0;
    std::size_t num_actions_ = 0;
    TaskPool pool_;
};

} // namespace autocat

#endif // AUTOCAT_RL_VEC_ENV_HPP
