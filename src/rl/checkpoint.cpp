#include "rl/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/binio.hpp"

namespace autocat {

/** Private access to the trainer internals the checkpoint covers. */
struct PpoCheckpointAccess
{
    static ActorCritic &net(PpoTrainer &t) { return *t.net_; }
    static Adam &adam(PpoTrainer &t) { return *t.adam_; }
    static Rng &rng(PpoTrainer &t) { return t.rng_; }
    static PpoConfig &config(PpoTrainer &t) { return t.config_; }
    static int &epoch(PpoTrainer &t) { return t.epoch_; }
    static long long &envSteps(PpoTrainer &t)
    {
        return t.total_env_steps_;
    }
};

namespace {

constexpr char kMagic[8] = {'A', 'C', 'P', 'P', 'O', 'C', 'K', 'P'};

std::string
buildPayload(PpoTrainer &trainer)
{
    std::string p;

    ActorCritic &net = PpoCheckpointAccess::net(trainer);
    const PpoConfig &cfg = PpoCheckpointAccess::config(trainer);
    binPut(p, static_cast<std::uint64_t>(net.obsDim()));
    binPut(p, static_cast<std::uint64_t>(net.numActions()));
    binPut(p, static_cast<std::uint64_t>(cfg.hidden));
    binPut(p, static_cast<std::uint64_t>(cfg.layers));

    const auto blocks = net.paramBlocks();
    binPut(p, static_cast<std::uint32_t>(blocks.size()));
    for (const ParamBlock &b : blocks) {
        binPut(p, static_cast<std::uint64_t>(b.size));
        binPutFloats(p, b.params, b.size);
    }

    const Adam::State adam = PpoCheckpointAccess::adam(trainer).state();
    binPut(p, static_cast<std::int64_t>(adam.t));
    for (std::size_t k = 0; k < adam.m.size(); ++k)
        binPutFloats(p, adam.m[k].data(), adam.m[k].size());
    for (std::size_t k = 0; k < adam.v.size(); ++k)
        binPutFloats(p, adam.v[k].data(), adam.v[k].size());

    const Rng::State rng = PpoCheckpointAccess::rng(trainer).state();
    for (int i = 0; i < 4; ++i)
        binPut(p, rng.s[i]);
    binPut(p, static_cast<std::uint8_t>(rng.hasSpare ? 1 : 0));
    binPut(p, rng.spare);

    binPut(p,
           static_cast<std::int32_t>(PpoCheckpointAccess::epoch(trainer)));
    binPut(p, static_cast<std::int64_t>(
                  PpoCheckpointAccess::envSteps(trainer)));
    binPut(p, cfg.entropyCoef);
    return p;
}

void
applyPayload(const std::string &payload, PpoTrainer &trainer)
{
    ByteCursor c(payload, "checkpoint");

    ActorCritic &net = PpoCheckpointAccess::net(trainer);
    PpoConfig &cfg = PpoCheckpointAccess::config(trainer);
    const auto obs_dim = c.get<std::uint64_t>();
    const auto num_actions = c.get<std::uint64_t>();
    const auto hidden = c.get<std::uint64_t>();
    const auto layers = c.get<std::uint64_t>();
    if (obs_dim != net.obsDim() || num_actions != net.numActions() ||
        hidden != cfg.hidden || layers != cfg.layers) {
        throw std::runtime_error(
            "checkpoint: network shape mismatch (checkpoint " +
            std::to_string(obs_dim) + "x" + std::to_string(num_actions) +
            " hidden " + std::to_string(hidden) + "x" +
            std::to_string(layers) + ", trainer " +
            std::to_string(net.obsDim()) + "x" +
            std::to_string(net.numActions()) + " hidden " +
            std::to_string(cfg.hidden) + "x" +
            std::to_string(cfg.layers) + ")");
    }

    auto blocks = net.paramBlocks();
    const auto num_blocks = c.get<std::uint32_t>();
    if (num_blocks != blocks.size())
        throw std::runtime_error(
            "checkpoint: parameter block count mismatch");
    // Stage everything before touching the trainer so a truncated file
    // cannot leave it half-restored.
    std::vector<std::vector<float>> params(blocks.size());
    for (std::size_t k = 0; k < blocks.size(); ++k) {
        const auto size = c.get<std::uint64_t>();
        if (size != blocks[k].size)
            throw std::runtime_error(
                "checkpoint: parameter block size mismatch");
        params[k].resize(size);
        c.getFloats(params[k].data(), size);
    }

    Adam::State adam;
    adam.t = static_cast<long>(c.get<std::int64_t>());
    adam.m.resize(blocks.size());
    adam.v.resize(blocks.size());
    for (std::size_t k = 0; k < blocks.size(); ++k) {
        adam.m[k].resize(blocks[k].size);
        c.getFloats(adam.m[k].data(), blocks[k].size);
    }
    for (std::size_t k = 0; k < blocks.size(); ++k) {
        adam.v[k].resize(blocks[k].size);
        c.getFloats(adam.v[k].data(), blocks[k].size);
    }

    Rng::State rng;
    for (int i = 0; i < 4; ++i)
        rng.s[i] = c.get<std::uint64_t>();
    rng.hasSpare = c.get<std::uint8_t>() != 0;
    rng.spare = c.get<double>();

    const auto epoch = c.get<std::int32_t>();
    const auto env_steps = c.get<std::int64_t>();
    const auto entropy_coef = c.get<double>();
    c.expectExhausted();

    for (std::size_t k = 0; k < blocks.size(); ++k)
        std::memcpy(blocks[k].params, params[k].data(),
                    blocks[k].size * sizeof(float));
    PpoCheckpointAccess::adam(trainer).setState(adam);
    PpoCheckpointAccess::rng(trainer).setState(rng);
    PpoCheckpointAccess::epoch(trainer) = epoch;
    PpoCheckpointAccess::envSteps(trainer) = env_steps;
    cfg.entropyCoef = entropy_coef;
    trainer.restartCollection();
}

} // namespace

void
writePpoCheckpoint(std::ostream &os, PpoTrainer &trainer)
{
    writeBinarySection(os, kMagic, kPpoCheckpointVersion,
                       buildPayload(trainer), "checkpoint");
}

void
readPpoCheckpoint(std::istream &is, PpoTrainer &trainer)
{
    const std::string payload =
        readBinarySection(is, kMagic, kPpoCheckpointVersion, "checkpoint");
    applyPayload(payload, trainer);
}

void
savePpoCheckpoint(const std::string &path, PpoTrainer &trainer)
{
    // Crash-safe: serialize to memory, then temp file + fsync + atomic
    // rename, so a process killed mid-save never leaves a truncated
    // checkpoint under the final name (which would block resume).
    std::ostringstream oss(std::ios::binary);
    writePpoCheckpoint(oss, trainer);
    atomicWriteFile(path, oss.str(), "checkpoint");
}

void
loadPpoCheckpoint(const std::string &path, PpoTrainer &trainer)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("checkpoint: cannot open " + path);
    readPpoCheckpoint(in, trainer);
}

} // namespace autocat
