/**
 * @file
 * Adam optimizer over flat parameter blocks (Kingma & Ba, 2015).
 */

#ifndef AUTOCAT_RL_ADAM_HPP
#define AUTOCAT_RL_ADAM_HPP

#include <cstddef>
#include <vector>

#include "rl/nn.hpp"

namespace autocat {

/** Adam with bias correction; state is keyed by block order. */
class Adam
{
  public:
    /**
     * @param blocks parameter blocks to optimize; the same blocks (in
     *               the same order) must be passed to every step()
     * @param lr     learning rate
     */
    Adam(const std::vector<ParamBlock> &blocks, double lr,
         double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

    /** Apply one update from the gradients currently in @p blocks. */
    void step(std::vector<ParamBlock> &blocks);

    /** Change the learning rate (for schedules). */
    void setLearningRate(double lr) { lr_ = lr; }

    double learningRate() const { return lr_; }

    /**
     * Optimizer state for serialization (rl/checkpoint.hpp): the step
     * counter driving bias correction and both moment estimates, block
     * order matching the constructor's blocks.
     */
    struct State
    {
        long t = 0;
        std::vector<std::vector<float>> m;
        std::vector<std::vector<float>> v;
    };

    State state() const { return {t_, m_, v_}; }

    /**
     * Restore a previously captured state.
     *
     * @throws std::invalid_argument when the block structure does not
     *         match this optimizer's
     */
    void setState(const State &state);

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    long t_ = 0;
    std::vector<std::vector<float>> m_;
    std::vector<std::vector<float>> v_;
};

} // namespace autocat

#endif // AUTOCAT_RL_ADAM_HPP
