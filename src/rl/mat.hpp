/**
 * @file
 * Minimal dense matrix used by the neural-network substrate.
 *
 * Row-major float storage with exactly the operations PPO needs:
 * matmul (plain and transposed variants), elementwise ops, and row/col
 * reductions. Deliberately not a general linear-algebra library.
 */

#ifndef AUTOCAT_RL_MAT_HPP
#define AUTOCAT_RL_MAT_HPP

#include <cassert>
#include <cstddef>
#include <vector>

namespace autocat {

/** Row-major dense float matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &operator()(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float operator()(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float *rowPtr(std::size_t r) { return data_.data() + r * cols_; }
    const float *rowPtr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** Set every element to zero. */
    void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

    /** Resize (contents become zero). */
    void
    resize(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, 0.0f);
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** C = A * B. A: m x k, B: k x n. */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A * B^T. A: m x k, B: n x k. */
Matrix matmulTransB(const Matrix &a, const Matrix &b);

/** C = A^T * B. A: k x m, B: k x n. */
Matrix matmulTransA(const Matrix &a, const Matrix &b);

/** Add row vector @p bias (length cols) to every row of @p m in place. */
void addRowVector(Matrix &m, const std::vector<float> &bias);

/** Column sums of @p m (length cols). */
std::vector<float> colSum(const Matrix &m);

} // namespace autocat

#endif // AUTOCAT_RL_MAT_HPP
