/**
 * @file
 * Minimal dense matrix used by the neural-network substrate.
 *
 * Row-major float storage with exactly the operations PPO needs:
 * matmul (plain and transposed variants), a fused affine map for
 * inference, elementwise ops, and row/col reductions. Deliberately not
 * a general linear-algebra library.
 *
 * The matmul entry points dispatch at runtime between a blocked,
 * register-tiled AVX2+FMA kernel and a portable scalar fallback (see
 * matmulBackend()). Two properties every backend upholds:
 *
 *  - **Determinism**: for a fixed backend, results are a pure function
 *    of the operands — no threading, no runtime-dependent blocking.
 *  - **Row purity** (matmulTransBInto / linearForwardInto only): each
 *    output row is computed with an accumulation order that depends
 *    only on that row of A and on B — never on the number of other
 *    rows in the batch. Forwarding a batch in two halves is therefore
 *    bitwise identical to forwarding it whole, which is what lets the
 *    double-buffered PPO collector split a stream batch into groups
 *    without perturbing trajectories (see rl/ppo.hpp).
 *
 * Set AUTOCAT_MAT_PORTABLE=1 in the environment (before first use) to
 * force the portable backend, e.g. when A/B-measuring the SIMD path.
 */

#ifndef AUTOCAT_RL_MAT_HPP
#define AUTOCAT_RL_MAT_HPP

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace autocat {

/** Row-major dense float matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &operator()(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float operator()(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float *rowPtr(std::size_t r) { return data_.data() + r * cols_; }
    const float *rowPtr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** Set every element to zero. */
    void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

    /** Resize (contents become zero). */
    void
    resize(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, 0.0f);
    }

    /**
     * Resize without initializing: contents are unspecified (stale
     * values when shrinking/reusing, zeros for newly grown storage).
     * For destination matrices of the *Into kernels, which overwrite
     * every element; a same-size call is free, which makes reusable
     * workspaces cheap.
     */
    void
    resizeUninit(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * Name of the matmul backend selected at startup: "avx2+fma" or
 * "portable". Useful in logs and for verifying a forced fallback.
 */
const char *matmulBackend();

/*
 * Destination-passing matmuls. Shared pre/postconditions:
 *
 *  Pre:  @p c must not alias @p a or @p b (asserted); operand shapes
 *        must agree as documented per function (asserted). Operands
 *        need no particular alignment — kernels use unaligned loads.
 *  Post: @p c is resized to the product shape and every element is
 *        overwritten (no accumulate-into semantics).
 *
 * The value-returning wrappers below allocate a fresh destination and
 * forward to these.
 */

/** C = A * B. A: m x k, B: k x n. */
void matmulInto(Matrix &c, const Matrix &a, const Matrix &b);

/**
 * C = A * B^T. A: m x k, B: n x k. Row-pure: row i of C depends only
 * on row i of A (see the file comment), so batch splitting is exact.
 */
void matmulTransBInto(Matrix &c, const Matrix &a, const Matrix &b);

/** C = A^T * B. A: k x m, B: k x n. */
void matmulTransAInto(Matrix &c, const Matrix &a, const Matrix &b);

/**
 * Fused inference map y = x * w^T + bias, optionally ReLU-clamped —
 * one pass, no intermediate logits/bias/activation temporaries.
 *
 *  Pre:  x: B x in, w: out x in, bias.size() == out; @p y must alias
 *        neither @p x nor @p w (asserted).
 *  Post: y is B x out, fully overwritten. Row-pure like
 *        matmulTransBInto.
 */
void linearForwardInto(Matrix &y, const Matrix &x, const Matrix &w,
                       const std::vector<float> &bias, bool relu);

/** C = A * B. A: m x k, B: k x n. */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A * B^T. A: m x k, B: n x k. */
Matrix matmulTransB(const Matrix &a, const Matrix &b);

/** C = A^T * B. A: k x m, B: k x n. */
Matrix matmulTransA(const Matrix &a, const Matrix &b);

/**
 * Fused row-wise softmax + entropy over a logits matrix: for each row
 * r, probs[r * cols + c] receives softmax(row r)[c] (double precision,
 * max-subtracted) and entropies[r] receives -sum p log p, in one pass
 * over reusable flat buffers — no per-row allocations, no second
 * traversal. The per-row arithmetic and accumulation order are exactly
 * those of ActorCritic::softmaxRow()/entropy(), so results are bitwise
 * identical to the per-row helpers; this is the PPO minibatch update's
 * batch kernel (rl/ppo.cpp).
 *
 *  Pre:  logits is B x A with A >= 1.
 *  Post: probs.size() == B * A, entropies.size() == B, fully
 *        overwritten.
 */
void softmaxEntropyRowsInto(std::vector<double> &probs,
                            std::vector<double> &entropies,
                            const Matrix &logits);

/**
 * Masked variant of softmaxEntropyRowsInto: entries whose mask byte is
 * 0 are treated as logit -inf — they receive probability exactly 0.0
 * and contribute nothing to the max, the exp-sum, or the entropy, so
 * the distribution and its entropy live on the valid support only.
 * NaN-free by construction: the max is taken over the valid entries
 * (every exp argument is <= 0, so nothing overflows) and masked
 * entries never enter a 0 * log(0).
 *
 *  Pre:  logits is B x A with A >= 1; @p masks is row-major B x A
 *        (1 = valid). Must not be null — callers with no mask use the
 *        unmasked kernel, whose output this matches bitwise on all-1
 *        masks.
 *  Post: probs.size() == B * A, entropies.size() == B, fully
 *        overwritten.
 *
 * @throws std::domain_error when a row masks out every action — a
 *         rollout buffer fed from such a row would train on NaN, so an
 *         all-invalid row fails loudly at the kernel boundary.
 */
void softmaxEntropyRowsMaskedInto(std::vector<double> &probs,
                                  std::vector<double> &entropies,
                                  const Matrix &logits,
                                  const std::uint8_t *masks);

/** Add row vector @p bias (length cols) to every row of @p m in place. */
void addRowVector(Matrix &m, const std::vector<float> &bias);

/** Column sums of @p m (length cols). */
std::vector<float> colSum(const Matrix &m);

} // namespace autocat

#endif // AUTOCAT_RL_MAT_HPP
