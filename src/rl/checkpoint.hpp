/**
 * @file
 * Versioned binary checkpoints of a PpoTrainer.
 *
 * A checkpoint captures everything the trainer owns that training
 * consumes: the actor-critic parameters, the Adam moment estimates and
 * step counter, the sampling RNG (including the Box-Muller spare), the
 * epoch counter, the cumulative env-step counter, and the *decayed*
 * entropy coefficient. It deliberately does NOT capture environment
 * state — campaign checkpoint boundaries (core/campaign.hpp) reseed
 * every stream deterministically and restart collection instead, which
 * is what makes "resume from checkpoint" bit-identical to "never
 * stopped" without serializing cache simulators.
 *
 * Format: a fixed magic + format version, a little-endian payload, and
 * a trailing FNV-1a checksum over the payload. Readers reject wrong
 * magic, unknown versions, truncated files, and checksum mismatches
 * with distinct error messages; loading into a trainer whose network
 * shape (obs/action/hidden/layers) differs fails before any state is
 * touched. save → load → save is a byte-level fixed point.
 */

#ifndef AUTOCAT_RL_CHECKPOINT_HPP
#define AUTOCAT_RL_CHECKPOINT_HPP

#include <iosfwd>
#include <string>

#include "rl/ppo.hpp"

namespace autocat {

/** Current checkpoint format version. */
constexpr std::uint32_t kPpoCheckpointVersion = 1;

/**
 * Serialize @p trainer's training state to @p os.
 *
 * @throws std::runtime_error on stream write failure
 */
void writePpoCheckpoint(std::ostream &os, PpoTrainer &trainer);

/**
 * Restore @p trainer from a checkpoint previously written by
 * writePpoCheckpoint. The trainer must have been constructed with the
 * same network shape (observation size, action count, hidden width,
 * layer count); its collection state is restarted.
 *
 * @throws std::runtime_error for bad magic, unsupported version,
 *         truncation, checksum mismatch, or shape mismatch
 */
void readPpoCheckpoint(std::istream &is, PpoTrainer &trainer);

/** File-path convenience wrappers (binary mode). */
void savePpoCheckpoint(const std::string &path, PpoTrainer &trainer);
void loadPpoCheckpoint(const std::string &path, PpoTrainer &trainer);

} // namespace autocat

#endif // AUTOCAT_RL_CHECKPOINT_HPP
