/**
 * @file
 * Non-learning search baselines for Section VI-A.
 *
 * The paper contrasts RL against brute-force enumeration of attack
 * sequences, deriving M ~ e^{2N} candidate sequences per successful
 * prime+probe on an N-way set. These searchers enumerate (or sample)
 * fixed action sequences and ask an oracle whether a candidate is a
 * *distinguishing* sequence — one whose observable latency pattern
 * differs for every pair of victim secrets, i.e. a working attack.
 */

#ifndef AUTOCAT_RL_SEARCH_HPP
#define AUTOCAT_RL_SEARCH_HPP

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace autocat {

/** Judges candidate attack sequences (implemented by the env module). */
class SequenceOracle
{
  public:
    virtual ~SequenceOracle() = default;

    /** Number of primitive (non-guess) actions a sequence may use. */
    virtual std::size_t numPrimitives() const = 0;

    /** True when @p seq fully distinguishes all secrets. */
    virtual bool isDistinguishing(const std::vector<std::size_t> &seq) = 0;

    /** Simulation steps one evaluation of @p seq costs. */
    virtual long long
    stepsPerTrial(const std::vector<std::size_t> &seq) const
    {
        return static_cast<long long>(seq.size());
    }
};

/** Outcome of a search run. */
struct SearchResult
{
    bool found = false;
    std::vector<std::size_t> sequence;
    long long sequencesTried = 0;
    long long stepsTaken = 0;
};

/**
 * Uniform random search over sequences of exactly @p length primitives.
 * Stops at the first distinguishing sequence or after @p max_trials.
 */
SearchResult randomSearch(SequenceOracle &oracle, std::size_t length,
                          long long max_trials, Rng &rng);

/**
 * Exhaustive lexicographic enumeration of sequences of exactly
 * @p length primitives (bounded by @p max_trials candidates).
 */
SearchResult exhaustiveSearch(SequenceOracle &oracle, std::size_t length,
                              long long max_trials);

/**
 * Closed-form expected number of candidate sequences per prime+probe hit
 * on an N-way set, M = 2 (N+1)^{2N+1} / (N!)^2 (paper, Section VI-A).
 */
double primeProbeSearchSpace(unsigned ways);

} // namespace autocat

#endif // AUTOCAT_RL_SEARCH_HPP
