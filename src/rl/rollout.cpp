#include "rl/rollout.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace autocat {

RolloutBuffer::RolloutBuffer(std::size_t capacity, std::size_t obs_dim)
    : RolloutBuffer(capacity, 1, obs_dim)
{
}

RolloutBuffer::RolloutBuffer(std::size_t steps, std::size_t streams,
                             std::size_t obs_dim)
    : steps_(steps), streams_(streams), obs_dim_(obs_dim)
{
    assert(streams_ > 0);
    const std::size_t capacity = steps_ * streams_;
    obs_steps_.reserve(steps_);
    actions_.reserve(capacity);
    rewards_.reserve(capacity);
    dones_.reserve(capacity);
    values_.reserve(capacity);
    log_probs_.reserve(capacity);
}

void
RolloutBuffer::add(const std::vector<float> &obs, std::size_t action,
                   double reward, bool done, double value, double log_prob)
{
    assert(streams_ == 1);
    assert(obs.size() == obs_dim_);
    Matrix row(1, obs_dim_);
    std::memcpy(row.data(), obs.data(), obs_dim_ * sizeof(float));
    addStep(std::move(row), {action}, {reward},
            {static_cast<std::uint8_t>(done ? 1 : 0)}, {value}, {log_prob});
}

void
RolloutBuffer::addStep(Matrix &&obs, const std::vector<std::size_t> &actions,
                       const std::vector<double> &rewards,
                       const std::vector<std::uint8_t> &dones,
                       const std::vector<double> &values,
                       const std::vector<double> &log_probs)
{
    assert(steps_added_ < steps_ && !staged_);
    assert(obs.rows() == streams_ && obs.cols() == obs_dim_);
    obs_steps_.push_back(std::move(obs));
    staged_ = true;
    commitStep(actions, rewards, dones, values, log_probs);
}

void
RolloutBuffer::stageObs(const Matrix &obs)
{
    assert(steps_added_ < steps_ && !staged_);
    assert(obs.rows() == streams_ && obs.cols() == obs_dim_);
    obs_steps_.push_back(obs);
    staged_ = true;
}

void
RolloutBuffer::enableMasks(std::size_t num_actions)
{
    assert(steps_added_ == 0 && !staged_ &&
           "enableMasks: buffer already holds transitions");
    assert(num_actions > 0);
    num_actions_ = num_actions;
    masks_.reserve(steps_ * streams_ * num_actions_);
}

void
RolloutBuffer::stageMasks(const std::uint8_t *masks)
{
    assert(num_actions_ > 0 && "stageMasks: enableMasks() not called");
    assert(steps_added_ < steps_ && !mask_staged_);
    assert(masks != nullptr);
    masks_.insert(masks_.end(), masks,
                  masks + streams_ * num_actions_);
    mask_staged_ = true;
}

void
RolloutBuffer::gatherMasksInto(std::vector<std::uint8_t> &out,
                               const std::vector<std::size_t> &indices) const
{
    assert(num_actions_ > 0);
    out.resize(indices.size() * num_actions_);
    for (std::size_t r = 0; r < indices.size(); ++r) {
        assert(indices[r] < size());
        std::memcpy(out.data() + r * num_actions_,
                    masks_.data() + indices[r] * num_actions_,
                    num_actions_);
    }
}

void
RolloutBuffer::commitStep(const std::vector<std::size_t> &actions,
                          const std::vector<double> &rewards,
                          const std::vector<std::uint8_t> &dones,
                          const std::vector<double> &values,
                          const std::vector<double> &log_probs)
{
    assert(staged_);
    assert((num_actions_ == 0 || mask_staged_) &&
           "commitStep: masked buffer committed without stageMasks()");
    assert(actions.size() == streams_ && rewards.size() == streams_ &&
           dones.size() == streams_ && values.size() == streams_ &&
           log_probs.size() == streams_);
    actions_.insert(actions_.end(), actions.begin(), actions.end());
    rewards_.insert(rewards_.end(), rewards.begin(), rewards.end());
    dones_.insert(dones_.end(), dones.begin(), dones.end());
    values_.insert(values_.end(), values.begin(), values.end());
    log_probs_.insert(log_probs_.end(), log_probs.begin(), log_probs.end());
    ++steps_added_;
    staged_ = false;
    mask_staged_ = false;
}

void
RolloutBuffer::clear()
{
    steps_added_ = 0;
    staged_ = false;
    mask_staged_ = false;
    masks_.clear();
    obs_steps_.clear();
    actions_.clear();
    rewards_.clear();
    dones_.clear();
    values_.clear();
    log_probs_.clear();
    advantages_.clear();
    returns_.clear();
}

void
RolloutBuffer::computeAdvantages(double gamma, double lambda,
                                 const std::vector<double> &last_values)
{
    if (last_values.size() != streams_)
        throw std::invalid_argument(
            "computeAdvantages: one bootstrap value per stream required");

    const std::size_t n = size();
    advantages_.assign(n, 0.0);
    returns_.assign(n, 0.0);

    for (std::size_t s = 0; s < streams_; ++s) {
        double adv = 0.0;
        double next_value = last_values[s];
        for (std::size_t t = steps_added_; t-- > 0;) {
            const std::size_t i = t * streams_ + s;
            const double not_done = dones_[i] ? 0.0 : 1.0;
            const double delta =
                rewards_[i] + gamma * next_value * not_done - values_[i];
            adv = delta + gamma * lambda * not_done * adv;
            advantages_[i] = adv;
            returns_[i] = adv + values_[i];
            next_value = values_[i];
        }
    }
}

void
RolloutBuffer::computeAdvantages(double gamma, double lambda,
                                 double last_value)
{
    computeAdvantages(gamma, lambda,
                      std::vector<double>(streams_, last_value));
}

void
RolloutBuffer::normalizeAdvantages()
{
    const std::size_t n = size();
    if (n < 2)
        return;
    double mean = 0.0;
    for (double a : advantages_)
        mean += a;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double a : advantages_)
        var += (a - mean) * (a - mean);
    var /= static_cast<double>(n);
    const double sd = std::sqrt(var) + 1e-8;
    for (double &a : advantages_)
        a = (a - mean) / sd;
}

Matrix
RolloutBuffer::gatherObs(const std::vector<std::size_t> &indices) const
{
    Matrix m(indices.size(), obs_dim_);
    for (std::size_t r = 0; r < indices.size(); ++r) {
        assert(indices[r] < size());
        const std::size_t t = indices[r] / streams_;
        const std::size_t s = indices[r] % streams_;
        std::memcpy(m.rowPtr(r), obs_steps_[t].rowPtr(s),
                    obs_dim_ * sizeof(float));
    }
    return m;
}

} // namespace autocat
