#include "rl/rollout.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

namespace autocat {

RolloutBuffer::RolloutBuffer(std::size_t capacity, std::size_t obs_dim)
    : capacity_(capacity), obs_dim_(obs_dim)
{
    obs_.resize(capacity * obs_dim);
    actions_.reserve(capacity);
    rewards_.reserve(capacity);
    dones_.reserve(capacity);
    values_.reserve(capacity);
    log_probs_.reserve(capacity);
}

void
RolloutBuffer::add(const std::vector<float> &obs, std::size_t action,
                   double reward, bool done, double value, double log_prob)
{
    assert(size_ < capacity_);
    assert(obs.size() == obs_dim_);
    std::memcpy(obs_.data() + size_ * obs_dim_, obs.data(),
                obs_dim_ * sizeof(float));
    actions_.push_back(action);
    rewards_.push_back(reward);
    dones_.push_back(done);
    values_.push_back(value);
    log_probs_.push_back(log_prob);
    ++size_;
}

void
RolloutBuffer::clear()
{
    size_ = 0;
    actions_.clear();
    rewards_.clear();
    dones_.clear();
    values_.clear();
    log_probs_.clear();
    advantages_.clear();
    returns_.clear();
}

void
RolloutBuffer::computeAdvantages(double gamma, double lambda,
                                 double last_value)
{
    advantages_.assign(size_, 0.0);
    returns_.assign(size_, 0.0);

    double adv = 0.0;
    double next_value = last_value;
    for (std::size_t i = size_; i-- > 0;) {
        const double not_done = dones_[i] ? 0.0 : 1.0;
        const double delta =
            rewards_[i] + gamma * next_value * not_done - values_[i];
        adv = delta + gamma * lambda * not_done * adv;
        advantages_[i] = adv;
        returns_[i] = adv + values_[i];
        next_value = values_[i];
    }
}

void
RolloutBuffer::normalizeAdvantages()
{
    if (size_ < 2)
        return;
    double mean = 0.0;
    for (double a : advantages_)
        mean += a;
    mean /= static_cast<double>(size_);
    double var = 0.0;
    for (double a : advantages_)
        var += (a - mean) * (a - mean);
    var /= static_cast<double>(size_);
    const double sd = std::sqrt(var) + 1e-8;
    for (double &a : advantages_)
        a = (a - mean) / sd;
}

Matrix
RolloutBuffer::gatherObs(const std::vector<std::size_t> &indices) const
{
    Matrix m(indices.size(), obs_dim_);
    for (std::size_t r = 0; r < indices.size(); ++r) {
        assert(indices[r] < size_);
        std::memcpy(m.rowPtr(r), obs_.data() + indices[r] * obs_dim_,
                    obs_dim_ * sizeof(float));
    }
    return m;
}

} // namespace autocat
