/**
 * @file
 * Actor-critic network: shared MLP torso with a categorical policy head
 * and a scalar value head, plus the categorical-distribution math PPO
 * needs (sampling, log-probabilities, entropy) computed from logits.
 *
 * Two forward paths:
 *  - forward(): the training path — caches torso activations so
 *    backward() can accumulate gradients.
 *  - forwardNoGrad() / forwardOne(): allocation-free inference through
 *    a reusable internal workspace (fused bias+ReLU GEMM, no caching).
 *    This is what rollout collection and evaluation run, and the
 *    kernel's row purity (rl/mat.hpp) makes its outputs bitwise
 *    independent of how a batch is split across calls.
 */

#ifndef AUTOCAT_RL_ACTOR_CRITIC_HPP
#define AUTOCAT_RL_ACTOR_CRITIC_HPP

#include <cstddef>
#include <vector>

#include "rl/adam.hpp"
#include "rl/mat.hpp"
#include "rl/nn.hpp"
#include "util/rng.hpp"

namespace autocat {

/** Batch forward output of the actor-critic. */
struct AcOutput
{
    Matrix logits;              ///< B x numActions
    std::vector<float> values;  ///< B
};

/** Policy/value network with manual backward pass. */
class ActorCritic
{
  public:
    /**
     * @param obs_dim     observation vector length
     * @param num_actions discrete action count
     * @param hidden      hidden width of the torso
     * @param layers      number of hidden layers (>= 1)
     * @param rng         weight init randomness
     */
    ActorCritic(std::size_t obs_dim, std::size_t num_actions,
                std::size_t hidden, std::size_t layers, Rng &rng);

    /** Batch forward; caches intermediates for backward(). */
    AcOutput forward(const Matrix &obs);

    /**
     * Inference-only batch forward into caller-owned output storage.
     * Reuses @p out's matrices/vectors and an internal scratch, so a
     * steady-state collection loop performs no allocations. Does not
     * disturb the training cache: it is safe to interleave with
     * forward()/backward() pairs.
     *
     *  Pre:  obs is B x obsDim().
     *  Post: out.logits is B x numActions(), out.values has size B.
     */
    void forwardNoGrad(const Matrix &obs, AcOutput &out);

    /**
     * Backward from loss gradients w.r.t. logits and values of the last
     * forward() batch. Accumulates parameter gradients.
     */
    void backward(const Matrix &dlogits, const std::vector<float> &dvalues);

    /**
     * Single-observation forward through the inference workspace. The
     * returned reference is valid until the next forwardOne() or
     * forwardNoGrad() call on this network.
     */
    const AcOutput &forwardOne(const std::vector<float> &obs);

    void zeroGrad();
    std::vector<ParamBlock> paramBlocks();

    std::size_t obsDim() const { return obs_dim_; }
    std::size_t numActions() const { return num_actions_; }

    /** Sample an action index from softmax(logits row @p r). */
    std::size_t sample(const Matrix &logits, std::size_t r, Rng &rng) const;

    /**
     * Sample from softmax(logits row @p r) restricted to the valid
     * support: entries with mask byte 0 get probability exactly 0 and
     * are never returned. @p mask points at numActions() bytes for this
     * row (1 = selectable, at least one entry must be 1 — asserted).
     * Consumes one rng draw like sample(); on an all-1 mask the
     * arithmetic — and therefore the returned index — matches sample()
     * exactly.
     */
    std::size_t sampleMasked(const Matrix &logits, std::size_t r,
                             const std::uint8_t *mask, Rng &rng) const;

    /** Greedy action (argmax of logits row @p r). Ties break toward
     *  the lowest index. */
    std::size_t argmax(const Matrix &logits, std::size_t r) const;

    /**
     * Greedy action over the valid support only: the highest-logit
     * entry whose mask byte is 1, ties broken toward the lowest index.
     * A masked entry is never returned, whatever its logit. @p mask
     * points at numActions() bytes for this row; at least one entry
     * must be 1 (asserted).
     */
    std::size_t argmaxMasked(const Matrix &logits, std::size_t r,
                             const std::uint8_t *mask) const;

    /** log softmax(logits)[action] for row @p r. */
    static double logProb(const Matrix &logits, std::size_t r,
                          std::size_t action);

    /**
     * log of the masked softmax probability of @p action for row @p r:
     * max and exp-sum run over the valid support only, so the result is
     * the log-probability under the same distribution sampleMasked()
     * draws from. @p action must itself be valid (asserted) — a masked
     * action has probability 0 and no finite log-prob. Matches
     * logProb() bitwise on an all-1 mask.
     */
    static double logProbMasked(const Matrix &logits, std::size_t r,
                                std::size_t action,
                                const std::uint8_t *mask);

    /** Entropy of softmax(logits row @p r). */
    static double entropy(const Matrix &logits, std::size_t r);

    /** softmax of row @p r. */
    static std::vector<double> softmaxRow(const Matrix &logits,
                                          std::size_t r);

  private:
    std::size_t obs_dim_;
    std::size_t num_actions_;
    Mlp torso_;
    Linear pi_head_;
    Linear v_head_;
    const Matrix *torso_out_ = nullptr;  ///< training torso activation
                                         ///< (owned by torso_)
    Matrix values_col_;                  ///< B x 1 value-head staging

    // Inference workspace (forwardNoGrad / forwardOne).
    std::vector<Matrix> infer_scratch_;
    Matrix infer_values_col_;
    Matrix one_obs_;       ///< 1 x obs_dim staging for forwardOne
    AcOutput one_out_;     ///< forwardOne result storage
};

} // namespace autocat

#endif // AUTOCAT_RL_ACTOR_CRITIC_HPP
