/**
 * @file
 * Actor-critic network: shared MLP torso with a categorical policy head
 * and a scalar value head, plus the categorical-distribution math PPO
 * needs (sampling, log-probabilities, entropy) computed from logits.
 */

#ifndef AUTOCAT_RL_ACTOR_CRITIC_HPP
#define AUTOCAT_RL_ACTOR_CRITIC_HPP

#include <cstddef>
#include <vector>

#include "rl/adam.hpp"
#include "rl/mat.hpp"
#include "rl/nn.hpp"
#include "util/rng.hpp"

namespace autocat {

/** Batch forward output of the actor-critic. */
struct AcOutput
{
    Matrix logits;              ///< B x numActions
    std::vector<float> values;  ///< B
};

/** Policy/value network with manual backward pass. */
class ActorCritic
{
  public:
    /**
     * @param obs_dim     observation vector length
     * @param num_actions discrete action count
     * @param hidden      hidden width of the torso
     * @param layers      number of hidden layers (>= 1)
     * @param rng         weight init randomness
     */
    ActorCritic(std::size_t obs_dim, std::size_t num_actions,
                std::size_t hidden, std::size_t layers, Rng &rng);

    /** Batch forward; caches intermediates for backward(). */
    AcOutput forward(const Matrix &obs);

    /**
     * Backward from loss gradients w.r.t. logits and values of the last
     * forward() batch. Accumulates parameter gradients.
     */
    void backward(const Matrix &dlogits, const std::vector<float> &dvalues);

    /** Single-observation forward (no grad caching needed by callers). */
    AcOutput forwardOne(const std::vector<float> &obs);

    void zeroGrad();
    std::vector<ParamBlock> paramBlocks();

    std::size_t obsDim() const { return obs_dim_; }
    std::size_t numActions() const { return num_actions_; }

    /** Sample an action index from softmax(logits row @p r). */
    std::size_t sample(const Matrix &logits, std::size_t r, Rng &rng) const;

    /** Greedy action (argmax of logits row @p r). */
    std::size_t argmax(const Matrix &logits, std::size_t r) const;

    /** log softmax(logits)[action] for row @p r. */
    static double logProb(const Matrix &logits, std::size_t r,
                          std::size_t action);

    /** Entropy of softmax(logits row @p r). */
    static double entropy(const Matrix &logits, std::size_t r);

    /** softmax of row @p r. */
    static std::vector<double> softmaxRow(const Matrix &logits,
                                          std::size_t r);

  private:
    std::size_t obs_dim_;
    std::size_t num_actions_;
    Mlp torso_;
    Linear pi_head_;
    Linear v_head_;
    Matrix torso_out_;  ///< cached torso output for backward
};

} // namespace autocat

#endif // AUTOCAT_RL_ACTOR_CRITIC_HPP
