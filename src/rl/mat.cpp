#include "rl/mat.hpp"

namespace autocat {

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    assert(a.cols() == b.rows());
    Matrix c(a.rows(), b.cols());
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    for (std::size_t i = 0; i < m; ++i) {
        float *crow = c.rowPtr(i);
        const float *arow = a.rowPtr(i);
        for (std::size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f)
                continue;
            const float *brow = b.rowPtr(p);
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Matrix
matmulTransB(const Matrix &a, const Matrix &b)
{
    assert(a.cols() == b.cols());
    Matrix c(a.rows(), b.rows());
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a.rowPtr(i);
        float *crow = c.rowPtr(i);
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = b.rowPtr(j);
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] = acc;
        }
    }
    return c;
}

Matrix
matmulTransA(const Matrix &a, const Matrix &b)
{
    assert(a.rows() == b.rows());
    Matrix c(a.cols(), b.cols());
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    for (std::size_t p = 0; p < k; ++p) {
        const float *arow = a.rowPtr(p);
        const float *brow = b.rowPtr(p);
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c.rowPtr(i);
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

void
addRowVector(Matrix &m, const std::vector<float> &bias)
{
    assert(bias.size() == m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        float *row = m.rowPtr(r);
        for (std::size_t c = 0; c < m.cols(); ++c)
            row[c] += bias[c];
    }
}

std::vector<float>
colSum(const Matrix &m)
{
    std::vector<float> out(m.cols(), 0.0f);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const float *row = m.rowPtr(r);
        for (std::size_t c = 0; c < m.cols(); ++c)
            out[c] += row[c];
    }
    return out;
}

} // namespace autocat
