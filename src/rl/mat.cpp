#include "rl/mat.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define AUTOCAT_MAT_X86 1
#include <immintrin.h>
#endif

namespace autocat {

namespace {

/*
 * Portable scalar kernels. These are the reference semantics for the
 * SIMD path and the fallback on non-x86 hosts (or when
 * AUTOCAT_MAT_PORTABLE=1).
 */

void
matmulPortable(float *c, const float *a, const float *b, std::size_t m,
               std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        float *crow = c + i * n;
        const float *arow = a + i * k;
        for (std::size_t j = 0; j < n; ++j)
            crow[j] = 0.0f;
        for (std::size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            // ReLU activations make A sparse in practice; skipping
            // zero rows of the broadcast is a real win here.
            if (av == 0.0f)
                continue;
            const float *brow = b + p * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
matmulTransAPortable(float *c, const float *a, const float *b,
                     std::size_t k, std::size_t m, std::size_t n)
{
    for (std::size_t i = 0; i < m * n; ++i)
        c[i] = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
        const float *arow = a + p * m;
        const float *brow = b + p * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

/** Row-pure scalar dot-product GEMM with optional fused bias/ReLU. */
void
dotGemmPortable(float *c, const float *a, const float *b, std::size_t m,
                std::size_t n, std::size_t k, const float *bias,
                bool relu)
{
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = b + j * k;
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            if (bias)
                acc += bias[j];
            if (relu && acc < 0.0f)
                acc = 0.0f;
            crow[j] = acc;
        }
    }
}

#if AUTOCAT_MAT_X86

/*
 * AVX2+FMA kernels. Compiled for every x86-64 build via the function
 * target attribute and selected at runtime (useAvx2() below), so the
 * translation unit itself needs no -mavx2 flag and the binary still
 * runs on pre-AVX2 hardware.
 *
 * Row purity contract: every c(i,j) produced by the dot-product
 * kernels goes through dot8() — two 8-lane FMA accumulators walked in
 * 16-float steps, one fixed horizontal reduction, then a scalar tail.
 * The register tiling over j only interleaves *independent* (i,j)
 * accumulations; it never changes the order of operations within one,
 * so results are bitwise independent of the tile path taken and of the
 * batch size m.
 */

__attribute__((target("avx2,fma"))) inline float
hsum8(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    __m128 sh = _mm_movehl_ps(lo, lo);
    lo = _mm_add_ps(lo, sh);
    sh = _mm_shuffle_ps(lo, lo, 0x1);
    lo = _mm_add_ss(lo, sh);
    return _mm_cvtss_f32(lo);
}

/** Canonical dot(a, b, k): the one accumulation order (see above). */
__attribute__((target("avx2,fma"))) inline float
dot8(const float *a, const float *b, std::size_t k)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t p = 0;
    for (; p + 16 <= k; p += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p),
                               _mm256_loadu_ps(b + p), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p + 8),
                               _mm256_loadu_ps(b + p + 8), acc1);
    }
    if (p + 8 <= k) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p),
                               _mm256_loadu_ps(b + p), acc0);
        p += 8;
    }
    float s = hsum8(_mm256_add_ps(acc0, acc1));
    for (; p < k; ++p)
        s += a[p] * b[p];
    return s;
}

/**
 * Four interleaved dot8() accumulations against consecutive rows of B
 * — identical per-output arithmetic, 8 independent FMA chains for ILP.
 */
__attribute__((target("avx2,fma"))) inline void
dot8x4(const float *a, const float *b0, const float *b1, const float *b2,
       const float *b3, std::size_t k, float out[4])
{
    __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
    __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
    __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
    __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
    std::size_t p = 0;
    for (; p + 16 <= k; p += 16) {
        const __m256 av0 = _mm256_loadu_ps(a + p);
        const __m256 av1 = _mm256_loadu_ps(a + p + 8);
        a00 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(b0 + p), a00);
        a01 = _mm256_fmadd_ps(av1, _mm256_loadu_ps(b0 + p + 8), a01);
        a10 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(b1 + p), a10);
        a11 = _mm256_fmadd_ps(av1, _mm256_loadu_ps(b1 + p + 8), a11);
        a20 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(b2 + p), a20);
        a21 = _mm256_fmadd_ps(av1, _mm256_loadu_ps(b2 + p + 8), a21);
        a30 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(b3 + p), a30);
        a31 = _mm256_fmadd_ps(av1, _mm256_loadu_ps(b3 + p + 8), a31);
    }
    if (p + 8 <= k) {
        const __m256 av0 = _mm256_loadu_ps(a + p);
        a00 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(b0 + p), a00);
        a10 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(b1 + p), a10);
        a20 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(b2 + p), a20);
        a30 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(b3 + p), a30);
        p += 8;
    }
    out[0] = hsum8(_mm256_add_ps(a00, a01));
    out[1] = hsum8(_mm256_add_ps(a10, a11));
    out[2] = hsum8(_mm256_add_ps(a20, a21));
    out[3] = hsum8(_mm256_add_ps(a30, a31));
    for (; p < k; ++p) {
        out[0] += a[p] * b0[p];
        out[1] += a[p] * b1[p];
        out[2] += a[p] * b2[p];
        out[3] += a[p] * b3[p];
    }
}

__attribute__((target("avx2,fma"))) void
dotGemmAvx2(float *c, const float *a, const float *b, std::size_t m,
            std::size_t n, std::size_t k, const float *bias, bool relu)
{
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            float out[4];
            dot8x4(arow, b + j * k, b + (j + 1) * k, b + (j + 2) * k,
                   b + (j + 3) * k, k, out);
            for (int t = 0; t < 4; ++t) {
                float v = bias ? out[t] + bias[j + t] : out[t];
                if (relu && v < 0.0f)
                    v = 0.0f;
                crow[j + t] = v;
            }
        }
        for (; j < n; ++j) {
            float v = dot8(arow, b + j * k, k);
            if (bias)
                v += bias[j];
            if (relu && v < 0.0f)
                v = 0.0f;
            crow[j] = v;
        }
    }
}

/**
 * Broadcast-FMA tile for C = A * B: an MR x 16 block of C lives in
 * registers while the shared dimension streams by.
 */
template <int MR>
__attribute__((target("avx2,fma"))) inline void
mmTileAvx2(float *c, const float *a, const float *b, std::size_t i0,
           std::size_t j0, std::size_t k, std::size_t n)
{
    __m256 acc[MR][2];
    for (int r = 0; r < MR; ++r)
        acc[r][0] = acc[r][1] = _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
        const float *brow = b + p * n + j0;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        for (int r = 0; r < MR; ++r) {
            const __m256 av =
                _mm256_set1_ps(a[(i0 + static_cast<std::size_t>(r)) * k +
                                 p]);
            acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
            acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
    }
    for (int r = 0; r < MR; ++r) {
        float *crow = c + (i0 + static_cast<std::size_t>(r)) * n + j0;
        _mm256_storeu_ps(crow, acc[r][0]);
        _mm256_storeu_ps(crow + 8, acc[r][1]);
    }
}

__attribute__((target("avx2,fma"))) void
matmulAvx2(float *c, const float *a, const float *b, std::size_t m,
           std::size_t k, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
        std::size_t j = 0;
        for (; j + 16 <= n; j += 16)
            mmTileAvx2<4>(c, a, b, i, j, k, n);
        for (; j < n; ++j) {
            for (int r = 0; r < 4; ++r) {
                const float *arow = a + (i + static_cast<std::size_t>(r)) * k;
                float s = 0.0f;
                for (std::size_t p = 0; p < k; ++p)
                    s += arow[p] * b[p * n + j];
                c[(i + static_cast<std::size_t>(r)) * n + j] = s;
            }
        }
    }
    for (; i < m; ++i) {
        std::size_t j = 0;
        for (; j + 16 <= n; j += 16)
            mmTileAvx2<1>(c, a, b, i, j, k, n);
        for (; j < n; ++j) {
            const float *arow = a + i * k;
            float s = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                s += arow[p] * b[p * n + j];
            c[i * n + j] = s;
        }
    }
}

/**
 * Broadcast-FMA tile for C = A^T * B (A: k x m): same register block,
 * A walked column-wise.
 */
template <int MR>
__attribute__((target("avx2,fma"))) inline void
mmTransATileAvx2(float *c, const float *a, const float *b, std::size_t i0,
                 std::size_t j0, std::size_t k, std::size_t m,
                 std::size_t n)
{
    __m256 acc[MR][2];
    for (int r = 0; r < MR; ++r)
        acc[r][0] = acc[r][1] = _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
        const float *brow = b + p * n + j0;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const float *acol = a + p * m + i0;
        for (int r = 0; r < MR; ++r) {
            const __m256 av = _mm256_set1_ps(acol[r]);
            acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
            acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
    }
    for (int r = 0; r < MR; ++r) {
        float *crow = c + (i0 + static_cast<std::size_t>(r)) * n + j0;
        _mm256_storeu_ps(crow, acc[r][0]);
        _mm256_storeu_ps(crow + 8, acc[r][1]);
    }
}

__attribute__((target("avx2,fma"))) void
matmulTransAAvx2(float *c, const float *a, const float *b, std::size_t k,
                 std::size_t m, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
        std::size_t j = 0;
        for (; j + 16 <= n; j += 16)
            mmTransATileAvx2<4>(c, a, b, i, j, k, m, n);
        for (; j < n; ++j) {
            for (int r = 0; r < 4; ++r) {
                float s = 0.0f;
                for (std::size_t p = 0; p < k; ++p)
                    s += a[p * m + i + static_cast<std::size_t>(r)] *
                         b[p * n + j];
                c[(i + static_cast<std::size_t>(r)) * n + j] = s;
            }
        }
    }
    for (; i < m; ++i) {
        std::size_t j = 0;
        for (; j + 16 <= n; j += 16)
            mmTransATileAvx2<1>(c, a, b, i, j, k, m, n);
        for (; j < n; ++j) {
            float s = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                s += a[p * m + i] * b[p * n + j];
            c[i * n + j] = s;
        }
    }
}

#endif // AUTOCAT_MAT_X86

/** One-time backend choice: AVX2+FMA when the CPU has both. */
bool
useAvx2()
{
#if AUTOCAT_MAT_X86
    static const bool use = [] {
        const char *force = std::getenv("AUTOCAT_MAT_PORTABLE");
        if (force && force[0] == '1')
            return false;
        __builtin_cpu_init();
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma") != 0;
    }();
    return use;
#else
    return false;
#endif
}

} // namespace

const char *
matmulBackend()
{
    return useAvx2() ? "avx2+fma" : "portable";
}

void
matmulInto(Matrix &c, const Matrix &a, const Matrix &b)
{
    assert(a.cols() == b.rows());
    assert(&c != &a && &c != &b);
    c.resizeUninit(a.rows(), b.cols());
#if AUTOCAT_MAT_X86
    if (useAvx2()) {
        matmulAvx2(c.data(), a.data(), b.data(), a.rows(), a.cols(),
                   b.cols());
        return;
    }
#endif
    matmulPortable(c.data(), a.data(), b.data(), a.rows(), a.cols(),
                   b.cols());
}

void
matmulTransBInto(Matrix &c, const Matrix &a, const Matrix &b)
{
    assert(a.cols() == b.cols());
    assert(&c != &a && &c != &b);
    c.resizeUninit(a.rows(), b.rows());
#if AUTOCAT_MAT_X86
    if (useAvx2()) {
        dotGemmAvx2(c.data(), a.data(), b.data(), a.rows(), b.rows(),
                    a.cols(), nullptr, false);
        return;
    }
#endif
    dotGemmPortable(c.data(), a.data(), b.data(), a.rows(), b.rows(),
                    a.cols(), nullptr, false);
}

void
matmulTransAInto(Matrix &c, const Matrix &a, const Matrix &b)
{
    assert(a.rows() == b.rows());
    assert(&c != &a && &c != &b);
    c.resizeUninit(a.cols(), b.cols());
#if AUTOCAT_MAT_X86
    if (useAvx2()) {
        matmulTransAAvx2(c.data(), a.data(), b.data(), a.rows(), a.cols(),
                         b.cols());
        return;
    }
#endif
    matmulTransAPortable(c.data(), a.data(), b.data(), a.rows(), a.cols(),
                         b.cols());
}

void
linearForwardInto(Matrix &y, const Matrix &x, const Matrix &w,
                  const std::vector<float> &bias, bool relu)
{
    assert(x.cols() == w.cols());
    assert(bias.size() == w.rows());
    assert(&y != &x && &y != &w);
    y.resizeUninit(x.rows(), w.rows());
#if AUTOCAT_MAT_X86
    if (useAvx2()) {
        dotGemmAvx2(y.data(), x.data(), w.data(), x.rows(), w.rows(),
                    x.cols(), bias.data(), relu);
        return;
    }
#endif
    dotGemmPortable(y.data(), x.data(), w.data(), x.rows(), w.rows(),
                    x.cols(), bias.data(), relu);
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    Matrix c;
    matmulInto(c, a, b);
    return c;
}

Matrix
matmulTransB(const Matrix &a, const Matrix &b)
{
    Matrix c;
    matmulTransBInto(c, a, b);
    return c;
}

Matrix
matmulTransA(const Matrix &a, const Matrix &b)
{
    Matrix c;
    matmulTransAInto(c, a, b);
    return c;
}

void
softmaxEntropyRowsInto(std::vector<double> &probs,
                       std::vector<double> &entropies,
                       const Matrix &logits)
{
    const std::size_t rows = logits.rows();
    const std::size_t cols = logits.cols();
    assert(cols >= 1);
    probs.resize(rows * cols);
    entropies.resize(rows);

    for (std::size_t r = 0; r < rows; ++r) {
        const float *in = logits.rowPtr(r);
        double *p = probs.data() + r * cols;

        // Identical per-row math (and order) to
        // ActorCritic::softmaxRow: sequential max, sequential exp-sum,
        // then normalization — bitwise-equal results, zero allocations.
        double maxv = -1e30;
        for (std::size_t c = 0; c < cols; ++c)
            maxv = std::max(maxv, static_cast<double>(in[c]));
        double sum = 0.0;
        for (std::size_t c = 0; c < cols; ++c) {
            p[c] = std::exp(static_cast<double>(in[c]) - maxv);
            sum += p[c];
        }
        double ent = 0.0;
        for (std::size_t c = 0; c < cols; ++c) {
            p[c] /= sum;
            if (p[c] > 1e-12)
                ent -= p[c] * std::log(p[c]);
        }
        entropies[r] = ent;
    }
}

void
softmaxEntropyRowsMaskedInto(std::vector<double> &probs,
                             std::vector<double> &entropies,
                             const Matrix &logits,
                             const std::uint8_t *masks)
{
    assert(masks != nullptr);
    const std::size_t rows = logits.rows();
    const std::size_t cols = logits.cols();
    assert(cols >= 1);
    probs.resize(rows * cols);
    entropies.resize(rows);

    for (std::size_t r = 0; r < rows; ++r) {
        const float *in = logits.rowPtr(r);
        const std::uint8_t *m = masks + r * cols;
        double *p = probs.data() + r * cols;

        // Same sequential max / exp-sum / normalize order as the
        // unmasked kernel, restricted to the valid support; an all-1
        // mask row reproduces the unmasked arithmetic bit for bit.
        // The max over the valid entries keeps every exp argument
        // <= max(0, in[c] + 1e30), so nothing overflows.
        double maxv = -1e30;
        std::size_t valid = 0;
        for (std::size_t c = 0; c < cols; ++c) {
            if (m[c]) {
                maxv = std::max(maxv, static_cast<double>(in[c]));
                ++valid;
            }
        }
        if (valid == 0) {
            throw std::domain_error(
                "softmaxEntropyRowsMaskedInto: row " +
                std::to_string(r) + " masks out every action");
        }
        double sum = 0.0;
        for (std::size_t c = 0; c < cols; ++c) {
            p[c] = m[c] ? std::exp(static_cast<double>(in[c]) - maxv)
                        : 0.0;
            sum += p[c];
        }
        double ent = 0.0;
        for (std::size_t c = 0; c < cols; ++c) {
            p[c] /= sum;
            // Masked entries are exactly 0 / sum == 0.0 here, so they
            // fail this guard and never reach a 0 * log(0).
            if (p[c] > 1e-12)
                ent -= p[c] * std::log(p[c]);
        }
        entropies[r] = ent;
    }
}

void
addRowVector(Matrix &m, const std::vector<float> &bias)
{
    assert(bias.size() == m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        float *row = m.rowPtr(r);
        for (std::size_t c = 0; c < m.cols(); ++c)
            row[c] += bias[c];
    }
}

std::vector<float>
colSum(const Matrix &m)
{
    std::vector<float> out(m.cols(), 0.0f);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const float *row = m.rowPtr(r);
        for (std::size_t c = 0; c < m.cols(); ++c)
            out[c] += row[c];
    }
    return out;
}

} // namespace autocat
