#include "rl/search.hpp"

#include <cmath>

namespace autocat {

SearchResult
randomSearch(SequenceOracle &oracle, std::size_t length,
             long long max_trials, Rng &rng)
{
    SearchResult result;
    const std::size_t n = oracle.numPrimitives();
    std::vector<std::size_t> seq(length);

    for (long long trial = 0; trial < max_trials; ++trial) {
        for (auto &a : seq)
            a = rng.uniformInt(n);
        ++result.sequencesTried;
        result.stepsTaken += oracle.stepsPerTrial(seq);
        if (oracle.isDistinguishing(seq)) {
            result.found = true;
            result.sequence = seq;
            return result;
        }
    }
    return result;
}

SearchResult
exhaustiveSearch(SequenceOracle &oracle, std::size_t length,
                 long long max_trials)
{
    SearchResult result;
    const std::size_t n = oracle.numPrimitives();
    std::vector<std::size_t> seq(length, 0);

    for (long long trial = 0; trial < max_trials; ++trial) {
        ++result.sequencesTried;
        result.stepsTaken += oracle.stepsPerTrial(seq);
        if (oracle.isDistinguishing(seq)) {
            result.found = true;
            result.sequence = seq;
            return result;
        }
        // Lexicographic increment.
        std::size_t pos = 0;
        while (pos < length) {
            if (++seq[pos] < n)
                break;
            seq[pos] = 0;
            ++pos;
        }
        if (pos == length)
            break;  // exhausted the space
    }
    return result;
}

double
primeProbeSearchSpace(unsigned ways)
{
    // M = 2 (N+1)^{2N+1} / (N!)^2, computed in log space for stability.
    const double n = static_cast<double>(ways);
    double log_m = std::log(2.0) + (2.0 * n + 1.0) * std::log(n + 1.0) -
                   2.0 * std::lgamma(n + 1.0);
    return std::exp(log_m);
}

} // namespace autocat
