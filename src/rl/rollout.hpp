/**
 * @file
 * Rollout storage and generalized advantage estimation (GAE).
 */

#ifndef AUTOCAT_RL_ROLLOUT_HPP
#define AUTOCAT_RL_ROLLOUT_HPP

#include <cstddef>
#include <vector>

#include "rl/mat.hpp"

namespace autocat {

/** Flat storage for one PPO collection phase. */
class RolloutBuffer
{
  public:
    /** @param capacity steps per epoch, @param obs_dim observation size */
    RolloutBuffer(std::size_t capacity, std::size_t obs_dim);

    /** Append one transition. */
    void add(const std::vector<float> &obs, std::size_t action,
             double reward, bool done, double value, double log_prob);

    /** Number of stored transitions. */
    std::size_t size() const { return size_; }

    /** True when at capacity. */
    bool full() const { return size_ == capacity_; }

    /** Clear for the next epoch. */
    void clear();

    /**
     * Compute GAE advantages and returns.
     *
     * @param gamma      discount factor
     * @param lambda     GAE mixing factor
     * @param last_value bootstrap value of the state following the final
     *                   stored transition (0 when that transition ended
     *                   an episode)
     */
    void computeAdvantages(double gamma, double lambda, double last_value);

    /** Normalize advantages to zero mean / unit variance. */
    void normalizeAdvantages();

    /** Observation matrix restricted to @p indices. */
    Matrix gatherObs(const std::vector<std::size_t> &indices) const;

    const std::vector<std::size_t> &actions() const { return actions_; }
    const std::vector<double> &rewards() const { return rewards_; }
    const std::vector<double> &logProbs() const { return log_probs_; }
    const std::vector<double> &values() const { return values_; }
    const std::vector<double> &advantages() const { return advantages_; }
    const std::vector<double> &returns() const { return returns_; }

  private:
    std::size_t capacity_;
    std::size_t obs_dim_;
    std::size_t size_ = 0;
    std::vector<float> obs_;  ///< capacity x obs_dim, row major
    std::vector<std::size_t> actions_;
    std::vector<double> rewards_;
    std::vector<bool> dones_;
    std::vector<double> values_;
    std::vector<double> log_probs_;
    std::vector<double> advantages_;
    std::vector<double> returns_;
};

} // namespace autocat

#endif // AUTOCAT_RL_ROLLOUT_HPP
