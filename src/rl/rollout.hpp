/**
 * @file
 * Rollout storage and generalized advantage estimation (GAE) for
 * vectorized collection.
 *
 * Transitions are stored time-major across N streams: flat index
 * t * numStreams + s addresses the step the trainer took at time t in
 * stream s. GAE runs independently per stream, so episode boundaries
 * in one stream never leak into another; each stream bootstraps from
 * its own final value.
 */

#ifndef AUTOCAT_RL_ROLLOUT_HPP
#define AUTOCAT_RL_ROLLOUT_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rl/mat.hpp"

namespace autocat {

/** Flat storage for one PPO collection phase. */
class RolloutBuffer
{
  public:
    /**
     * Single-stream buffer.
     * @param capacity steps per epoch, @param obs_dim observation size
     */
    RolloutBuffer(std::size_t capacity, std::size_t obs_dim);

    /**
     * Multi-stream buffer.
     * @param steps   timesteps per stream per epoch
     * @param streams stream count N
     * @param obs_dim observation size
     */
    RolloutBuffer(std::size_t steps, std::size_t streams,
                  std::size_t obs_dim);

    /** Append one transition (single-stream buffers only). */
    void add(const std::vector<float> &obs, std::size_t action,
             double reward, bool done, double value, double log_prob);

    /**
     * Append one timestep across all streams. Row s of @p obs is the
     * observation stream s acted from; the matrix is moved into the
     * buffer, not copied.
     */
    void addStep(Matrix &&obs, const std::vector<std::size_t> &actions,
                 const std::vector<double> &rewards,
                 const std::vector<std::uint8_t> &dones,
                 const std::vector<double> &values,
                 const std::vector<double> &log_probs);

    /**
     * Two-phase variant for in-place collection (BatchStepSurface):
     * stageObs() copies the acting observations into the pending step
     * *before* the environments overwrite them, commitStep() records
     * the step's outcomes afterwards. addStep() == stage(move)+commit.
     */
    void stageObs(const Matrix &obs);
    void commitStep(const std::vector<std::size_t> &actions,
                    const std::vector<double> &rewards,
                    const std::vector<std::uint8_t> &dones,
                    const std::vector<double> &values,
                    const std::vector<double> &log_probs);

    /**
     * Turn on per-step action-mask storage (masked-policy training).
     * Must be called before the first transition is stored; once
     * enabled, every step must stage its N x @p num_actions mask
     * snapshot via stageMasks() before commitStep() (asserted), so the
     * update phase can replay exactly the masks the policy acted under.
     * Mask storage survives clear() — only the contents are dropped.
     */
    void enableMasks(std::size_t num_actions);

    /** True when enableMasks() was called. */
    bool masksEnabled() const { return num_actions_ > 0; }

    /**
     * Stage the acting masks for the pending step: @p masks is the
     * row-major N x numActions snapshot *before* the environments
     * advance (the masks the policy sampled under). May be called
     * before or after stageObs()/the addStep() move, but must precede
     * the step's commit; masks must be enabled.
     */
    void stageMasks(const std::uint8_t *masks);

    /**
     * Masks restricted to flat @p indices, written row-major into
     * @p out (resized to indices.size() x numActions) — the mask
     * companion of gatherObs() for minibatch updates, destination-
     * passing so the update loop reuses one workspace.
     */
    void gatherMasksInto(std::vector<std::uint8_t> &out,
                         const std::vector<std::size_t> &indices) const;

    /** Flat time-major mask bytes (size() x numActions). */
    const std::vector<std::uint8_t> &masks() const { return masks_; }

    /** Number of stored transitions (timesteps x streams). */
    std::size_t size() const { return steps_added_ * streams_; }

    /** Stream count N. */
    std::size_t numStreams() const { return streams_; }

    /** Timesteps per stream the buffer holds when full. */
    std::size_t capacitySteps() const { return steps_; }

    /** True when at capacity. */
    bool full() const { return steps_added_ == steps_; }

    /** Clear for the next epoch. */
    void clear();

    /**
     * Compute GAE advantages and returns, independently per stream.
     *
     * @param gamma       discount factor
     * @param lambda      GAE mixing factor
     * @param last_values per-stream bootstrap value of the state
     *                    following the final stored transition (0 for
     *                    streams whose final transition ended an
     *                    episode); size numStreams()
     */
    void computeAdvantages(double gamma, double lambda,
                           const std::vector<double> &last_values);

    /** Single-stream shorthand for computeAdvantages(). */
    void computeAdvantages(double gamma, double lambda, double last_value);

    /** Normalize advantages to zero mean / unit variance. */
    void normalizeAdvantages();

    /** Observation matrix restricted to flat @p indices. */
    Matrix gatherObs(const std::vector<std::size_t> &indices) const;

    const std::vector<std::size_t> &actions() const { return actions_; }
    const std::vector<double> &rewards() const { return rewards_; }
    const std::vector<double> &logProbs() const { return log_probs_; }
    const std::vector<double> &values() const { return values_; }
    const std::vector<std::uint8_t> &dones() const { return dones_; }
    const std::vector<double> &advantages() const { return advantages_; }
    const std::vector<double> &returns() const { return returns_; }

  private:
    std::size_t steps_;        ///< timesteps per stream
    std::size_t streams_;      ///< stream count N
    std::size_t obs_dim_;
    std::size_t num_actions_ = 0;  ///< mask width; 0 = masks disabled
    std::size_t steps_added_ = 0;
    bool staged_ = false;       ///< stageObs() awaiting its commitStep()
    bool mask_staged_ = false;  ///< stageMasks() seen for pending step
    std::vector<Matrix> obs_steps_;  ///< one N x obs_dim matrix per step
    std::vector<std::uint8_t> masks_;  ///< flat time-major N x A rows
    std::vector<std::size_t> actions_;
    std::vector<double> rewards_;
    std::vector<std::uint8_t> dones_;  ///< plain bytes: no bit-packed
                                       ///< proxy churn in the GAE loop
    std::vector<double> values_;
    std::vector<double> log_probs_;
    std::vector<double> advantages_;
    std::vector<double> returns_;
};

} // namespace autocat

#endif // AUTOCAT_RL_ROLLOUT_HPP
