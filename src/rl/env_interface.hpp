/**
 * @file
 * Environment abstraction the RL engine trains against.
 *
 * Matches the OpenAI-Gym-style loop the paper uses (Section V): reset()
 * starts an episode, step() advances it. StepInfo carries the
 * guessing-game bookkeeping (guesses made, correctness, detection) that
 * convergence checks and the bit-rate/accuracy metrics are computed from;
 * environments that are not guessing games simply leave those at zero.
 */

#ifndef AUTOCAT_RL_ENV_INTERFACE_HPP
#define AUTOCAT_RL_ENV_INTERFACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace autocat {

/** Per-step metadata beyond the reward signal. */
struct StepInfo
{
    bool guessMade = false;     ///< this step was a guess action
    bool guessCorrect = false;  ///< ... and it matched the secret
    bool detected = false;      ///< a detector flagged the sequence
    bool lengthViolation = false;  ///< episode hit the length limit

    /**
     * Latency class the agent observed this step: 0 = hit, 1 = miss,
     * 2 = not applicable / masked. Lets scripted agents decode timing
     * without parsing the observation vector.
     */
    int observedLatency = 2;
};

/** Result of one environment step. */
struct StepResult
{
    std::vector<float> obs;  ///< next observation
    double reward = 0.0;
    bool done = false;
    StepInfo info;
};

/** Gym-like environment interface. */
class Environment
{
  public:
    virtual ~Environment() = default;

    /** Dimension of the flat observation vector. */
    virtual std::size_t observationSize() const = 0;

    /** Size of the discrete action space. */
    virtual std::size_t numActions() const = 0;

    /** Begin a new episode and return the initial observation. */
    virtual std::vector<float> reset() = 0;

    /** Take @p action; must not be called after done without reset. */
    virtual StepResult step(std::size_t action) = 0;

    /**
     * Re-seed the environment's RNG so the next reset() starts a
     * deterministic fresh episode sequence. Campaign checkpoint
     * boundaries (core/campaign.hpp) reseed every stream with a seed
     * derived from the boundary's epoch, which is what makes a resumed
     * run bit-identical to an uninterrupted one without serializing
     * environment state. Environments without internal randomness may
     * keep the default no-op.
     */
    virtual void reseed(std::uint64_t seed) { (void)seed; }

    /**
     * Per-action validity mask for the *next* step: numActions() bytes,
     * 1 = selectable, 0 = masked out of the policy distribution — or
     * nullptr when this environment does not mask actions (the
     * default). A non-null mask is kept current across reset()/step()
     * and always has at least one selectable entry; the trainer applies
     * it before softmax (rl/mat.hpp, softmaxEntropyRowsInto).
     */
    virtual const std::uint8_t *actionMask() const { return nullptr; }
};

} // namespace autocat

#endif // AUTOCAT_RL_ENV_INTERFACE_HPP
