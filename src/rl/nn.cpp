#include "rl/nn.hpp"

#include <cassert>
#include <cmath>

namespace autocat {

Linear::Linear(std::size_t in, std::size_t out, Rng &rng, float gain)
    : in_(in), out_(out), w_(out, in), b_(out, 0.0f), gw_(out, in),
      gb_(out, 0.0f)
{
    // Xavier-uniform initialization scaled by gain.
    const float limit =
        gain * std::sqrt(6.0f / static_cast<float>(in + out));
    for (std::size_t i = 0; i < w_.size(); ++i) {
        w_.data()[i] =
            limit * (2.0f * static_cast<float>(rng.uniformDouble()) - 1.0f);
    }
}

Matrix
Linear::forward(const Matrix &x) const
{
    Matrix y;
    forwardInto(y, x, /*fuse_relu=*/false);
    return y;
}

void
Linear::forwardInto(Matrix &y, const Matrix &x, bool fuse_relu) const
{
    assert(x.cols() == in_);
    linearForwardInto(y, x, w_, b_, fuse_relu);
}

Matrix
Linear::backward(const Matrix &grad_out, const Matrix &input)
{
    assert(grad_out.cols() == out_);
    assert(grad_out.rows() == input.rows());
    assert(input.cols() == in_);

    // dW += grad_out^T * x ; db += colsum(grad_out) ; dx = grad_out * W
    matmulTransAInto(gw_scratch_, grad_out, input);
    for (std::size_t i = 0; i < gw_.size(); ++i)
        gw_.data()[i] += gw_scratch_.data()[i];
    const std::vector<float> gb = colSum(grad_out);
    for (std::size_t i = 0; i < gb_.size(); ++i)
        gb_[i] += gb[i];

    return matmul(grad_out, w_);
}

void
Linear::zeroGrad()
{
    gw_.zero();
    std::fill(gb_.begin(), gb_.end(), 0.0f);
}

std::vector<ParamBlock>
Linear::paramBlocks()
{
    return {
        {w_.data(), gw_.data(), w_.size()},
        {b_.data(), gb_.data(), b_.size()},
    };
}

Mlp::Mlp(const std::vector<std::size_t> &sizes, Rng &rng, bool activate_last)
    : activate_last_(activate_last)
{
    assert(sizes.size() >= 2);
    layers_.reserve(sizes.size() - 1);
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i)
        layers_.emplace_back(sizes[i], sizes[i + 1], rng);
    acts_.resize(layers_.size() + 1);
}

const Matrix &
Mlp::forwardCached(const Matrix &x)
{
    acts_[0] = x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const bool activate = i + 1 < layers_.size() || activate_last_;
        layers_[i].forwardInto(acts_[i + 1], acts_[i], activate);
    }
    return acts_.back();
}

Matrix
Mlp::forward(const Matrix &x)
{
    return forwardCached(x);
}

const Matrix &
Mlp::forwardInto(const Matrix &x, std::vector<Matrix> &scratch) const
{
    scratch.resize(layers_.size());
    const Matrix *in = &x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const bool activate = i + 1 < layers_.size() || activate_last_;
        layers_[i].forwardInto(scratch[i], *in, activate);
        in = &scratch[i];
    }
    return scratch.back();
}

Matrix
Mlp::backward(const Matrix &grad_out)
{
    Matrix g = grad_out;
    for (std::size_t i = layers_.size(); i-- > 0;) {
        const bool activated = i + 1 < layers_.size() || activate_last_;
        // Post-activation mask: ReLU output is 0 exactly where the
        // pre-activation was <= 0, so acts_ doubles as the mask.
        if (activated)
            reluBackwardInPlace(g, acts_[i + 1]);
        g = layers_[i].backward(g, acts_[i]);
    }
    return g;
}

void
Mlp::zeroGrad()
{
    for (auto &layer : layers_)
        layer.zeroGrad();
}

std::vector<ParamBlock>
Mlp::paramBlocks()
{
    std::vector<ParamBlock> blocks;
    for (auto &layer : layers_) {
        for (auto &b : layer.paramBlocks())
            blocks.push_back(b);
    }
    return blocks;
}

std::size_t
Mlp::inFeatures() const
{
    return layers_.front().inFeatures();
}

std::size_t
Mlp::outFeatures() const
{
    return layers_.back().outFeatures();
}

void
reluInPlace(Matrix &m)
{
    for (std::size_t i = 0; i < m.size(); ++i) {
        if (m.data()[i] < 0.0f)
            m.data()[i] = 0.0f;
    }
}

void
reluBackwardInPlace(Matrix &grad, const Matrix &preact)
{
    assert(grad.size() == preact.size());
    for (std::size_t i = 0; i < grad.size(); ++i) {
        if (preact.data()[i] <= 0.0f)
            grad.data()[i] = 0.0f;
    }
}

double
gradNorm(const std::vector<ParamBlock> &blocks)
{
    double total = 0.0;
    for (const auto &b : blocks) {
        for (std::size_t i = 0; i < b.size; ++i) {
            const double g = b.grads[i];
            total += g * g;
        }
    }
    return std::sqrt(total);
}

void
clipGradNorm(std::vector<ParamBlock> &blocks, double max_norm)
{
    const double norm = gradNorm(blocks);
    if (norm <= max_norm || norm <= 0.0)
        return;
    const float scale = static_cast<float>(max_norm / norm);
    for (auto &b : blocks) {
        for (std::size_t i = 0; i < b.size; ++i)
            b.grads[i] *= scale;
    }
}

} // namespace autocat
