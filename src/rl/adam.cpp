#include "rl/adam.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace autocat {

Adam::Adam(const std::vector<ParamBlock> &blocks, double lr, double beta1,
           double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
{
    m_.reserve(blocks.size());
    v_.reserve(blocks.size());
    for (const auto &b : blocks) {
        m_.emplace_back(b.size, 0.0f);
        v_.emplace_back(b.size, 0.0f);
    }
}

void
Adam::step(std::vector<ParamBlock> &blocks)
{
    assert(blocks.size() == m_.size());
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, t_);
    const double bc2 = 1.0 - std::pow(beta2_, t_);
    const double alpha = lr_ * std::sqrt(bc2) / bc1;

    for (std::size_t k = 0; k < blocks.size(); ++k) {
        auto &b = blocks[k];
        auto &m = m_[k];
        auto &v = v_[k];
        assert(b.size == m.size());
        for (std::size_t i = 0; i < b.size; ++i) {
            const float g = b.grads[i];
            m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g);
            v[i] = static_cast<float>(beta2_ * v[i] +
                                      (1.0 - beta2_) * g * g);
            b.params[i] -= static_cast<float>(
                alpha * m[i] / (std::sqrt(static_cast<double>(v[i])) +
                                eps_));
        }
    }
}

void
Adam::setState(const State &state)
{
    if (state.m.size() != m_.size() || state.v.size() != v_.size())
        throw std::invalid_argument("Adam::setState: block count mismatch");
    for (std::size_t k = 0; k < m_.size(); ++k) {
        if (state.m[k].size() != m_[k].size() ||
            state.v[k].size() != v_[k].size()) {
            throw std::invalid_argument(
                "Adam::setState: block size mismatch");
        }
    }
    t_ = state.t;
    m_ = state.m;
    v_ = state.v;
}

} // namespace autocat
