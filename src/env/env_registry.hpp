/**
 * @file
 * Scenario registry: construct environments by name.
 *
 * Benches, examples, and the exploration pipeline build their training
 * environments through this registry instead of naming a concrete
 * Environment subclass, so new cache scenarios (different simulators,
 * hardware targets, future workloads) plug in without touching any
 * call site. A scenario is a factory from an EnvConfig (plus an
 * optional externally-built MemorySystem) to an Environment.
 *
 * Built-in scenarios:
 *  - "guessing_game": the paper's cache guessing game over the memory
 *    system the EnvConfig describes (single cache, or an explicit
 *    hierarchy when EnvConfig::hierarchy is set)
 *  - "l1l2_private": private per-core L1s + shared inclusive L2
 *  - "l1l2_shared":  shared L1 + shared inclusive L2 (SMT-style)
 *  - "l2_exclusive": private L1s + shared exclusive (victim) L2
 *  - "three_level":  private L1 + private L2 + shared inclusive L3
 * The hierarchy scenarios synthesize their levels from EnvConfig::cache
 * (the attacked outermost level) unless EnvConfig::hierarchy already
 * lists explicit levels.
 */

#ifndef AUTOCAT_ENV_ENV_REGISTRY_HPP
#define AUTOCAT_ENV_ENV_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/memory_system.hpp"
#include "env/env_config.hpp"
#include "rl/env_interface.hpp"
#include "rl/vec_env.hpp"

namespace autocat {

/**
 * Scenario factory. @p memory may be null, in which case the factory
 * builds the memory system the EnvConfig describes (if it needs one).
 */
using EnvFactory = std::function<std::unique_ptr<Environment>(
    const EnvConfig &, std::unique_ptr<MemorySystem> memory)>;

/**
 * Register a scenario under @p name, replacing any previous factory
 * with that name.
 *
 * @return true if the name was new, false if it replaced an entry
 */
bool registerScenario(const std::string &name, EnvFactory factory);

/** True if a scenario named @p name is registered. */
bool hasScenario(const std::string &name);

/** Sorted names of all registered scenarios. */
std::vector<std::string> scenarioNames();

/**
 * Build one environment from the scenario registry.
 *
 * @throws std::out_of_range for an unknown scenario name
 */
std::unique_ptr<Environment>
makeEnv(const std::string &name, const EnvConfig &config,
        std::unique_ptr<MemorySystem> memory = nullptr);

/**
 * Build an N-stream vectorized environment from the registry. Stream i
 * is constructed with `config.seed + i` so runs are reproducible and
 * streams are decorrelated; a SyncVecEnv over the same seeds produces
 * bitwise-identical trajectories to N sequential single-env runs.
 *
 * @param name        scenario name
 * @param config      shared configuration (seed becomes the base seed)
 * @param num_streams N >= 1
 * @param threaded    step streams on a worker pool (ThreadedVecEnv)
 *                    instead of sequentially (SyncVecEnv)
 * @param decorate    optional per-stream hook (detectors, forced state)
 *                    run on each environment right after construction
 */
std::unique_ptr<VecEnv>
makeVecEnv(const std::string &name, const EnvConfig &config,
           std::size_t num_streams, bool threaded = false,
           const std::function<void(Environment &)> &decorate = {});

} // namespace autocat

#endif // AUTOCAT_ENV_ENV_REGISTRY_HPP
