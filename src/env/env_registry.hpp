/**
 * @file
 * Scenario registry: construct environments by name.
 *
 * Benches, examples, and the exploration pipeline build their training
 * environments through this registry instead of naming a concrete
 * Environment subclass, so new cache scenarios (different simulators,
 * hardware targets, detector-in-the-loop workloads) plug in without
 * touching any call site. A scenario is a factory from a
 * ScenarioContext — the EnvConfig plus declarative detector
 * attachments — (and an optional externally-built MemorySystem) to an
 * Environment.
 *
 * Built-in scenarios:
 *  - "guessing_game": the paper's cache guessing game over the memory
 *    system the EnvConfig describes (single cache, or an explicit
 *    hierarchy when EnvConfig::hierarchy is set)
 *  - "l1l2_private": private per-core L1s + shared inclusive L2
 *  - "l1l2_shared":  shared L1 + shared inclusive L2 (SMT-style)
 *  - "l2_exclusive": private L1s + shared exclusive (victim) L2
 *  - "three_level":  private L1 + private L2 + shared inclusive L3
 * The hierarchy scenarios synthesize their levels from EnvConfig::cache
 * (the attacked outermost level) unless EnvConfig::hierarchy already
 * lists explicit levels.
 *
 * Channel scenarios (non-cache attacked resources, see
 * env/channel_model.hpp):
 *  - "tlb_evict": prime+probe over TLB sets; the TLB geometry and walk
 *    parameters come from EnvConfig::channel.tlb (config keys tlb.*).
 *  - "prefetch_probe": the stream prefetcher as the leak — the
 *    victim's secret selects its burst stride, and the prefetch the
 *    stride triggers perturbs cache state the attacker probes (burst
 *    shape from EnvConfig::channel, config keys channel.*).
 *
 * Detector-in-the-loop scenarios (Section V-D case studies; Tables
 * VIII/IX rows run these by name through campaigns and sweeps):
 *  - "miss_detect_terminate": guessing game with the miss-count
 *    detector in Terminate mode (detectionEnable forced on): any
 *    victim demand miss ends the episode with detectionReward.
 *  - "cchunter_bypass": guessing game with the CC-Hunter-style
 *    autocorrelation detector in Penalize mode (L2 episode penalty).
 *  - "cyclone_bypass": guessing game with the Cyclone-style SVM
 *    detector in Penalize mode (per-interval step penalty); the SVM is
 *    the deterministic cached model from detect/detector_factory.hpp.
 * Each attaches its default detector only when the context carries no
 * explicit DetectorSpec list; explicit specs replace the default.
 */

#ifndef AUTOCAT_ENV_ENV_REGISTRY_HPP
#define AUTOCAT_ENV_ENV_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/memory_system.hpp"
#include "detect/detector_factory.hpp"
#include "env/env_config.hpp"
#include "rl/env_interface.hpp"
#include "rl/vec_env.hpp"

namespace autocat {

/**
 * Everything a scenario factory constructs from: the environment
 * description plus declarative detector attachments. Campaign phases
 * (core/campaign.hpp) populate `detectors` to attach detectors by name
 * at phase start; an empty list lets detector scenarios fall back to
 * their built-in default attachment.
 */
struct ScenarioContext
{
    EnvConfig env;
    std::vector<DetectorSpec> detectors;

    ScenarioContext() = default;
    /*implicit*/ ScenarioContext(const EnvConfig &config) : env(config) {}

    /** The attacked (outermost) cache level's configuration. */
    const CacheConfig &
    attackedCache() const
    {
        return env.hierarchy.levels.empty()
                   ? env.cache
                   : env.hierarchy.levels.back().cache;
    }
};

/**
 * Scenario factory. @p memory may be null, in which case the factory
 * builds the memory system the context's EnvConfig describes (if it
 * needs one). Detector attachments in the context are applied by
 * makeEnv() after construction; factories only attach their own
 * scenario-default detectors (and only when ctx.detectors is empty).
 */
using EnvFactory = std::function<std::unique_ptr<Environment>(
    const ScenarioContext &, std::unique_ptr<MemorySystem> memory)>;

/**
 * Register a scenario under @p name, replacing any previous factory
 * with that name.
 *
 * @return true if the name was new, false if it replaced an entry
 */
bool registerScenario(const std::string &name, EnvFactory factory);

/** True if a scenario named @p name is registered. */
bool hasScenario(const std::string &name);

/** Sorted names of all registered scenarios. */
std::vector<std::string> scenarioNames();

/**
 * Build one environment from the scenario registry and apply the
 * context's detector attachments.
 *
 * @throws std::out_of_range for an unknown scenario name
 * @throws std::invalid_argument when ctx.detectors is non-empty but
 *         the scenario did not produce a CacheGuessingGame (detectors
 *         cannot be attached silently nowhere)
 */
std::unique_ptr<Environment>
makeEnv(const std::string &name, const ScenarioContext &ctx,
        std::unique_ptr<MemorySystem> memory = nullptr);

/** EnvConfig shorthand (no detector attachments). */
std::unique_ptr<Environment>
makeEnv(const std::string &name, const EnvConfig &config,
        std::unique_ptr<MemorySystem> memory = nullptr);

/** Which VecEnv adapter makeVecEnv wraps the streams in. */
enum class VecEnvKind
{
    Sync,      ///< SyncVecEnv: sequential on the caller
    Threaded,  ///< ThreadedVecEnv: per-stream worker pool
    Batch,     ///< BatchVecEnv: SoA pool, in-place observation rows
};

/**
 * Build an N-stream vectorized environment from the registry. Stream i
 * is constructed with `ctx.env.seed + i` so runs are reproducible and
 * streams are decorrelated; every adapter kind produces
 * bitwise-identical trajectories to N sequential single-env runs.
 * Detector attachments in the context apply to every stream (each
 * stream gets its own detector instances).
 *
 * @param name        scenario name
 * @param ctx         shared context (env.seed becomes the base seed)
 * @param num_streams N >= 1
 * @param kind        adapter the streams are wrapped in
 * @param decorate    optional per-stream hook (extra detectors, forced
 *                    state) run on each environment right after
 *                    construction and context attachment
 */
std::unique_ptr<VecEnv>
makeVecEnv(const std::string &name, const ScenarioContext &ctx,
           std::size_t num_streams, VecEnvKind kind,
           const std::function<void(Environment &)> &decorate = {});

/** Bool shorthand kept for existing call sites: threaded/sync. */
std::unique_ptr<VecEnv>
makeVecEnv(const std::string &name, const ScenarioContext &ctx,
           std::size_t num_streams, bool threaded = false,
           const std::function<void(Environment &)> &decorate = {});

/** EnvConfig shorthands (no detector attachments). */
std::unique_ptr<VecEnv>
makeVecEnv(const std::string &name, const EnvConfig &config,
           std::size_t num_streams, VecEnvKind kind,
           const std::function<void(Environment &)> &decorate = {});

std::unique_ptr<VecEnv>
makeVecEnv(const std::string &name, const EnvConfig &config,
           std::size_t num_streams, bool threaded = false,
           const std::function<void(Environment &)> &decorate = {});

} // namespace autocat

#endif // AUTOCAT_ENV_ENV_REGISTRY_HPP
