/**
 * @file
 * Guessing-game environment configuration — the exact knob set of
 * Table II in the paper (cache configs, attack & victim program
 * configuration, and RL/reward configuration), plus the episode-mode
 * switches used by the Section V case studies.
 */

#ifndef AUTOCAT_ENV_ENV_CONFIG_HPP
#define AUTOCAT_ENV_ENV_CONFIG_HPP

#include <cstdint>

#include "cache/cache_config.hpp"
#include "cache/tlb.hpp"

namespace autocat {

/**
 * Configuration of the non-cache attack channels (env/channel_model.hpp).
 * Only the scenario that attacks the corresponding resource reads its
 * block: `tlb_evict` builds its TLB from `tlb` (config keys tlb.*),
 * `prefetch_probe` shapes the victim's burst from the prefetch knobs
 * (config keys channel.*). Cache scenarios ignore this struct entirely.
 */
struct ChannelConfig
{
    /** TLB geometry / walk parameters for the tlb_evict scenario. */
    TlbConfig tlb;

    /** Accesses per victim burst in the prefetch_probe scenario; the
     *  stream prefetcher needs 3 to lock onto a stride. */
    unsigned prefetchBurstLen = 3;

    /** First address of every victim burst. */
    std::uint64_t prefetchBurstBase = 0;
};

/** Full configuration of a CacheGuessingGame. */
struct EnvConfig
{
    // ----- cache configs (Table II: "Cache configs in cache simulator")
    /**
     * Single-level cache configuration, used when hierarchy.levels is
     * empty. Hierarchy scenarios that synthesize their own levels treat
     * this as the outermost (attacked) level's description.
     */
    CacheConfig cache;

    /**
     * Multi-level hierarchy description. Leave levels empty for the
     * classic single cache; a non-empty list builds a CacheHierarchy
     * (innermost level first — see cache/cache_config.hpp).
     */
    HierarchyConfig hierarchy;

    /** Non-cache channel parameters (tlb_evict / prefetch_probe). */
    ChannelConfig channel;

    // ----- attack & victim program configuration (Table II)
    /** Attack program address range, inclusive. */
    std::uint64_t attackAddrS = 0;
    std::uint64_t attackAddrE = 3;

    /** Victim program address range, inclusive. */
    std::uint64_t victimAddrS = 0;
    std::uint64_t victimAddrE = 3;

    /** Allow clflush actions for the attack program. */
    bool flushEnable = false;

    /**
     * Victim may make no access when triggered; adds the "no access"
     * secret value and the corresponding guess action (paper's 0/E
     * victim configuration).
     */
    bool victimNoAccessEnable = false;

    /** Terminate the episode when a Terminate-mode detector fires. */
    bool detectionEnable = false;

    /**
     * A guess made before the victim program has been triggered is
     * always scored as wrong (the official AutoCAT environment's
     * behavior): a guess only counts against an actual transmission,
     * which removes the degenerate guess-immediately policy.
     */
    bool requireTriggerBeforeGuess = true;

    // ----- episode structure
    /**
     * Observation-history window W (paper: empirically 4-8x
     * num_blocks); 0 selects 6 * num_blocks automatically.
     */
    unsigned windowSize = 0;

    /**
     * Maximum steps per single-secret episode before the length
     * violation fires; 0 selects windowSize.
     */
    unsigned episodeLengthLimit = 0;

    /**
     * Multi-secret mode (Tables VIII/IX): episodes last exactly
     * multiSecretEpisodeSteps steps, each guess scores and re-samples
     * the secret instead of ending the episode.
     */
    bool multiSecret = false;
    unsigned multiSecretEpisodeSteps = 160;

    /**
     * Real-hardware batched mode (Section IV-C): latencies are masked
     * (observed as N.A.) until the first guess action, which reveals
     * the latency history instead of scoring; the following guess is
     * evaluated normally.
     */
    bool revealOnGuess = false;

    /**
     * Initialize the cache by accessing addresses randomly sampled
     * from the attack and victim ranges (Section VI-B); when false the
     * episode starts from an empty cache.
     */
    bool randomInit = true;

    /** Number of warm-up accesses; 0 selects num_blocks. */
    unsigned initAccesses = 0;

    /**
     * PL cache defense (Section V-D): pre-install and lock every
     * victim-range line at episode start.
     */
    bool plCacheLockVictim = false;

    // ----- RL / reward configuration (Table II)
    double correctGuessReward = 1.0;
    double wrongGuessReward = -1.0;
    double stepReward = -0.01;
    double lengthViolationReward = -1.0;
    double detectionReward = -1.0;

    /** Multi-secret: penalty when an episode contains no guess. */
    double noGuessReward = -1.0;

    // ----- sample-efficiency layer (arXiv 2506.07200-style shaping)
    /**
     * Mask *invalid* actions out of the policy head: guesses are
     * removed from the action distribution while they could only score
     * as wrong (before the victim has been triggered, under
     * requireTriggerBeforeGuess). The environment maintains a per-step
     * validity mask the trainer applies before softmax; with the mask
     * off (the default) training is bitwise identical to the unmasked
     * legacy behavior.
     */
    bool maskActions = false;

    /**
     * Additionally mask *useless* actions: an immediate repeat of the
     * previous non-guess action is a guaranteed no-op observation
     * (re-access of the MRU line, re-flush of an absent line, re-run
     * of an already-observed victim) and is pruned from the
     * distribution for one step.
     */
    bool maskUselessActions = false;

    /**
     * Reward shaping: subtract this penalty (>= 0) whenever the agent
     * *takes* a useless action (the immediate-repeat rule above). At 0
     * (the default) the reward path is untouched; combining the
     * penalty with maskUselessActions is redundant but harmless.
     */
    double uselessActionPenalty = 0.0;

    /** Master seed (secret sampling, init accesses). */
    std::uint64_t seed = 1;

    /** Number of attacker-accessible addresses. */
    std::uint64_t
    numAttackAddrs() const
    {
        return attackAddrE - attackAddrS + 1;
    }

    /** Number of victim-accessible addresses (without "no access"). */
    std::uint64_t
    numVictimAddrs() const
    {
        return victimAddrE - victimAddrS + 1;
    }

    /** Number of distinct secret values. */
    std::uint64_t
    numSecrets() const
    {
        return numVictimAddrs() + (victimNoAccessEnable ? 1 : 0);
    }

    /** Blocks in the (attacked level of the) cache. */
    unsigned
    numBlocks() const
    {
        return hierarchy.levels.empty()
                   ? cache.numBlocks()
                   : hierarchy.levels.back().cache.numBlocks();
    }

    /** Resolved window size. */
    unsigned
    resolvedWindowSize() const
    {
        if (windowSize > 0)
            return windowSize;
        return 6 * numBlocks();
    }

    /** Resolved episode length limit (single-secret mode). */
    unsigned
    resolvedLengthLimit() const
    {
        if (episodeLengthLimit > 0)
            return episodeLengthLimit;
        return resolvedWindowSize();
    }

    /** Resolved warm-up access count. */
    unsigned
    resolvedInitAccesses() const
    {
        if (!randomInit)
            return 0;
        if (initAccesses > 0)
            return initAccesses;
        // Two passes worth of random draws leave the cache almost
        // fully populated, which both matches the paper's warm-start
        // setting and keeps the learning signal smooth (each extra
        // eviction access has a visible marginal effect).
        return 2 * numBlocks();
    }
};

} // namespace autocat

#endif // AUTOCAT_ENV_ENV_CONFIG_HPP
