/**
 * @file
 * Discrete action space of the guessing game (Section IV-C).
 *
 * Layout (indices in order):
 *   [0, Na)            access attackAddrS + i            (aX)
 *   [Na, 2Na)          flush attackAddrS + i (if enabled) (afX)
 *   next 1             trigger the victim                 (av)
 *   next Nv            guess victimAddrS + j              (agY)
 *   next 1             guess "no access" (if enabled)     (agE)
 */

#ifndef AUTOCAT_ENV_ACTION_SPACE_HPP
#define AUTOCAT_ENV_ACTION_SPACE_HPP

#include <cassert>
#include <cstdint>
#include <string>

#include "env/env_config.hpp"

namespace autocat {

/** Kinds of primitive actions the agent can take. */
enum class ActionKind : std::uint8_t {
    Access,         ///< attacker memory access
    Flush,          ///< attacker clflush
    TriggerVictim,  ///< let the victim run its secret access
    Guess,          ///< guess a victim address
    GuessNoAccess,  ///< guess that the victim made no access
};

/** A decoded action. */
struct Action
{
    ActionKind kind = ActionKind::Access;
    std::uint64_t addr = 0;  ///< meaningful for Access / Flush / Guess

    bool
    isGuess() const
    {
        return kind == ActionKind::Guess ||
               kind == ActionKind::GuessNoAccess;
    }
};

/** Bijection between action indices and Action records. */
class ActionSpace
{
  public:
    explicit ActionSpace(const EnvConfig &config);

    /** Total number of discrete actions. */
    std::size_t size() const { return size_; }

    /** Decode an index into an Action. Inline: this runs once per
     *  environment step on the batch engine's hot path. */
    Action
    decode(std::size_t index) const
    {
        assert(index < size_);
        Action a;
        if (index < flush_base_) {
            a.kind = ActionKind::Access;
            a.addr = attack_s_ + index;
        } else if (index < trigger_base_) {
            a.kind = ActionKind::Flush;
            a.addr = attack_s_ + (index - flush_base_);
        } else if (index == trigger_base_) {
            a.kind = ActionKind::TriggerVictim;
        } else if (index < guess_base_ + num_guess_) {
            a.kind = ActionKind::Guess;
            a.addr = victim_s_ + (index - guess_base_);
        } else {
            assert(guess_empty_);
            a.kind = ActionKind::GuessNoAccess;
        }
        return a;
    }

    /** Encode an Action into its index. */
    std::size_t encode(const Action &action) const;

    /** Index of "access @p addr". */
    std::size_t accessIndex(std::uint64_t addr) const;

    /** Index of "flush @p addr" (flush must be enabled). */
    std::size_t flushIndex(std::uint64_t addr) const;

    /** Index of "trigger victim". */
    std::size_t triggerIndex() const { return trigger_base_; }

    /** Index of "guess @p addr". */
    std::size_t guessIndex(std::uint64_t addr) const;

    /** Index of "guess no access" (must be enabled). */
    std::size_t guessNoAccessIndex() const;

    /** True when @p index is a guess action. */
    bool isGuess(std::size_t index) const;

    /** Number of primitive (non-guess) actions. */
    std::size_t numPrimitives() const { return trigger_base_ + 1; }

    /** First guess index; [guessBase(), size()) are the guesses. */
    std::size_t guessBase() const { return guess_base_; }

    /**
     * Render the per-step validity/usefulness mask into @p mask
     * (size() bytes, 1 = selectable). With @p guesses_valid false the
     * guess block [guessBase(), size()) is masked; a non-negative
     * @p masked_repeat < guessBase() masks that single primitive
     * (the immediate-repeat uselessness rule — guess indices are never
     * repeat-masked). The result always keeps >= 1 selectable entry:
     * there are >= 2 primitives (>= 1 access plus the trigger) and the
     * repeat rule masks at most one of them.
     */
    void writeMask(std::uint8_t *mask, bool guesses_valid,
                   std::ptrdiff_t masked_repeat) const;

    /** Paper-style rendering, e.g. "3", "f3", "v", "g0", "gE". */
    std::string toString(std::size_t index) const;

  private:
    std::uint64_t attack_s_;
    std::uint64_t victim_s_;
    std::size_t num_access_;
    std::size_t num_flush_;
    std::size_t num_guess_;
    bool guess_empty_;
    std::size_t flush_base_;
    std::size_t trigger_base_;
    std::size_t guess_base_;
    std::size_t size_;
};

} // namespace autocat

#endif // AUTOCAT_ENV_ACTION_SPACE_HPP
