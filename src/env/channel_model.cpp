#include "env/channel_model.hpp"

#include <cassert>
#include <utility>

namespace autocat {

// ------------------------------------------------------ MemoryChannel

MemoryChannel::MemoryChannel(std::unique_ptr<MemorySystem> memory)
    : memory_(std::move(memory))
{
    assert(memory_);
    if (auto *flat = dynamic_cast<SingleLevelMemory *>(memory_.get()))
        flat_ = &flat->cache();
}

bool
MemoryChannel::attackerAccess(std::uint64_t addr)
{
    return memory_->access(addr, Domain::Attacker).hit;
}

void
MemoryChannel::attackerFlush(std::uint64_t addr)
{
    memory_->flush(addr, Domain::Attacker);
}

void
MemoryChannel::victimTransmit(std::uint64_t secret)
{
    memory_->access(secret, Domain::Victim);
}

void
MemoryChannel::warmupAccess(std::uint64_t addr, Domain domain)
{
    memory_->access(addr, domain);
}

void
MemoryChannel::reset()
{
    memory_->reset();
}

bool
MemoryChannel::lockLine(std::uint64_t addr, Domain domain)
{
    return memory_->lockLine(addr, domain);
}

void
MemoryChannel::setEventListener(CacheEventListener listener)
{
    memory_->setEventListener(std::move(listener));
}

unsigned
MemoryChannel::numBlocks() const
{
    return memory_->numBlocks();
}

Cache *
MemoryChannel::fastAttackerCache()
{
    return flat_;
}

Cache *
MemoryChannel::fastVictimCache()
{
    return flat_;
}

// --------------------------------------------------------- TlbChannel

TlbChannel::TlbChannel(const TlbConfig &config) : tlb_(config) {}

bool
TlbChannel::attackerAccess(std::uint64_t addr)
{
    return tlb_.lookup(addr, Domain::Attacker).hit;
}

void
TlbChannel::attackerFlush(std::uint64_t addr)
{
    tlb_.flushPage(addr, Domain::Attacker);
}

void
TlbChannel::victimTransmit(std::uint64_t secret)
{
    tlb_.lookup(secret, Domain::Victim);
}

void
TlbChannel::warmupAccess(std::uint64_t addr, Domain domain)
{
    tlb_.lookup(addr, domain);
}

void
TlbChannel::reset()
{
    tlb_.reset();
}

void
TlbChannel::setEventListener(CacheEventListener listener)
{
    tlb_.setEventListener(std::move(listener));
}

unsigned
TlbChannel::numBlocks() const
{
    return tlb_.numEntries();
}

// ----------------------------------------------- PrefetchProbeChannel

namespace {

CacheConfig
stripPrefetcher(CacheConfig cache)
{
    // The channel models the prefetcher itself (victim-side stride
    // detection); an internal one would also train on attacker probes.
    cache.prefetcher = PrefetcherKind::None;
    return cache;
}

} // namespace

PrefetchProbeChannel::PrefetchProbeChannel(CacheConfig cache,
                                           std::uint64_t victimAddrS,
                                           unsigned burstLen,
                                           std::uint64_t burstBase)
    : cache_(stripPrefetcher(cache)),
      prefetcher_(cache_.config().addressSpaceSize),
      victim_addr_s_(victimAddrS),
      burst_len_(burstLen == 0 ? 1 : burstLen),
      burst_base_(burstBase),
      space_(cache_.config().addressSpaceSize)
{
}

bool
PrefetchProbeChannel::attackerAccess(std::uint64_t addr)
{
    // accessFast bails to the full access() path by itself whenever a
    // listener is attached, so detector events still flow.
    return cache_.accessFast(addr, Domain::Attacker);
}

void
PrefetchProbeChannel::attackerFlush(std::uint64_t addr)
{
    cache_.flush(addr, Domain::Attacker);
}

void
PrefetchProbeChannel::victimTransmit(std::uint64_t secret)
{
    // Every secret is a distinct non-zero stride, so the prefetch the
    // burst triggers lands on a secret-dependent address.
    const std::uint64_t stride = secret - victim_addr_s_ + 1;

    // Each transmission is an independent stream: the detector state
    // never straddles triggers.
    prefetcher_.reset();

    std::uint64_t addr = burst_base_ % space_;
    for (unsigned i = 0; i < burst_len_; ++i) {
        const bool hit = cache_.accessFast(addr, Domain::Victim);
        for (std::uint64_t pf : prefetcher_.onDemandAccess(addr, hit)) {
            if (pf != addr)
                cache_.prefetchInstall(pf, Domain::Victim);
        }
        addr = (addr + stride) % space_;
    }
}

void
PrefetchProbeChannel::warmupAccess(std::uint64_t addr, Domain domain)
{
    // Warm-up traffic fills the cache but never trains the victim's
    // stride detector.
    cache_.accessFast(addr, domain);
}

void
PrefetchProbeChannel::reset()
{
    cache_.reset();
    prefetcher_.reset();
}

void
PrefetchProbeChannel::setEventListener(CacheEventListener listener)
{
    cache_.setEventListener(std::move(listener));
}

unsigned
PrefetchProbeChannel::numBlocks() const
{
    return cache_.numBlocks();
}

} // namespace autocat
