#include "env/batch_env_pool.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace autocat {

BatchEnvPool::BatchEnvPool(std::vector<std::unique_ptr<Environment>> envs)
    : envs_(std::move(envs))
{
    if (envs_.empty())
        throw std::invalid_argument(
            "BatchEnvPool: need at least one stream");
    for (const auto &e : envs_) {
        if (!e)
            throw std::invalid_argument("BatchEnvPool: null environment");
        if (e->observationSize() != envs_.front()->observationSize() ||
            e->numActions() != envs_.front()->numActions()) {
            throw std::invalid_argument(
                "BatchEnvPool: streams must share observation/action "
                "dimensions");
        }
    }
    obs_dim_ = envs_.front()->observationSize();
    num_actions_ = envs_.front()->numActions();
    obs_.resize(envs_.size(), obs_dim_);

    fast_.reserve(envs_.size());
    for (std::size_t i = 0; i < envs_.size(); ++i) {
        auto *game = dynamic_cast<CacheGuessingGame *>(envs_[i].get());
        fast_.push_back(game);
        if (game)
            game->bindObservationRow(obs_.rowPtr(i));
    }

    // Mask matrix, allocated only when the streams mask actions. Like
    // the observation rows, each game's mask row is re-homed inside the
    // batch matrix so mask maintenance writes straight into it. Mixing
    // masked and unmasked streams would hand the trainer a matrix with
    // stale rows — reject it.
    std::size_t masked = 0;
    for (std::size_t i = 0; i < envs_.size(); ++i)
        masked += envs_[i]->actionMask() != nullptr;
    if (masked > 0 && masked != envs_.size()) {
        throw std::invalid_argument(
            "BatchEnvPool: streams must agree on action masking");
    }
    if (masked == envs_.size()) {
        masks_.assign(envs_.size() * num_actions_, std::uint8_t{1});
        for (std::size_t i = 0; i < envs_.size(); ++i) {
            if (fast_[i])
                fast_[i]->bindMaskRow(masks_.data() + i * num_actions_);
        }
    }
}

void
BatchEnvPool::resetAll()
{
    for (std::size_t i = 0; i < envs_.size(); ++i) {
        if (CacheGuessingGame *game = fast_[i]) {
            game->resetRow();
        } else {
            const std::vector<float> row = envs_[i]->reset();
            std::memcpy(obs_.rowPtr(i), row.data(),
                        obs_dim_ * sizeof(float));
            if (!masks_.empty())
                std::memcpy(masks_.data() + i * num_actions_,
                            envs_[i]->actionMask(), num_actions_);
        }
    }
}

void
BatchEnvPool::stepOne(std::size_t i, std::size_t action, double *rewards,
                      std::uint8_t *dones, StepInfo *infos)
{
    if (CacheGuessingGame *game = fast_[i]) {
        const CacheGuessingGame::FastStep fs = game->stepFast(action);
        rewards[i] = fs.reward;
        dones[i] = fs.done ? 1 : 0;
        infos[i] = fs.info;
        if (fs.done)
            game->resetRow();  // row becomes the next episode's start
    } else {
        Environment &e = *envs_[i];
        StepResult sr = e.step(action);
        rewards[i] = sr.reward;
        dones[i] = sr.done ? 1 : 0;
        infos[i] = sr.info;
        const std::vector<float> obs =
            sr.done ? e.reset() : std::move(sr.obs);
        assert(obs.size() == obs_dim_);
        std::memcpy(obs_.rowPtr(i), obs.data(), obs_dim_ * sizeof(float));
        // Games keep their bound mask row current; generic streams
        // copy theirs out like the observation row.
        if (!masks_.empty())
            std::memcpy(masks_.data() + i * num_actions_, e.actionMask(),
                        num_actions_);
    }
}

void
BatchEnvPool::stepBatch(const std::size_t *actions, float *obs_matrix,
                        double *rewards, std::uint8_t *dones,
                        StepInfo *infos)
{
    const std::size_t n = envs_.size();
    for (std::size_t i = 0; i < n; ++i)
        stepOne(i, actions[i], rewards, dones, infos);
    if (obs_matrix && obs_matrix != obs_.data())
        std::memcpy(obs_matrix, obs_.data(),
                    n * obs_dim_ * sizeof(float));
}

void
BatchEnvPool::stepRange(std::size_t begin, std::size_t end,
                        const std::size_t *actions, float *obs_matrix,
                        double *rewards, std::uint8_t *dones,
                        StepInfo *infos)
{
    assert(begin <= end && end <= envs_.size());
    for (std::size_t i = begin; i < end; ++i)
        stepOne(i, actions[i], rewards, dones, infos);
    if (obs_matrix && obs_matrix != obs_.data()) {
        std::memcpy(obs_matrix + begin * obs_dim_, obs_.rowPtr(begin),
                    (end - begin) * obs_dim_ * sizeof(float));
    }
}

// ------------------------------------------------------------ BatchVecEnv

BatchVecEnv::BatchVecEnv(std::vector<std::unique_ptr<Environment>> envs)
    : pool_(std::move(envs))
{
}

Matrix
BatchVecEnv::resetAll()
{
    pool_.resetAll();
    return pool_.obs();  // copy: the interface hands out a snapshot
}

VecStepResult
BatchVecEnv::stepAll(const std::vector<std::size_t> &actions)
{
    assert(actions.size() == pool_.numStreams());
    const std::size_t n = pool_.numStreams();
    VecStepResult r;
    r.obs.resizeUninit(n, pool_.observationSize());
    r.rewards.resize(n);
    r.dones.resize(n);
    r.infos.resize(n);
    pool_.stepBatch(actions.data(), r.obs.data(), r.rewards.data(),
                    r.dones.data(), r.infos.data());
    return r;
}

void
BatchVecEnv::stepRange(std::size_t begin, std::size_t end,
                       const std::vector<std::size_t> &actions,
                       VecStepResult &out)
{
    assert(begin <= end && end <= numEnvs());
    assert(actions.size() == numEnvs());
    assert(out.obs.rows() == numEnvs() &&
           out.obs.cols() == observationSize());
    assert(out.rewards.size() == numEnvs() &&
           out.dones.size() == numEnvs() && out.infos.size() == numEnvs());
    pool_.stepRange(begin, end, actions.data(), out.obs.data(),
                    out.rewards.data(), out.dones.data(),
                    out.infos.data());
}

} // namespace autocat
