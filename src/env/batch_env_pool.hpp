/**
 * @file
 * Structure-of-arrays batch environment engine.
 *
 * BatchEnvPool owns N environment streams and a persistent N x obs_dim
 * observation matrix. Guessing-game streams have their observation row
 * bound *inside* that matrix (CacheGuessingGame::bindObservationRow),
 * so stepping a stream updates its row incrementally in place — no
 * per-env std::vector allocation, no copy into the batch. stepBatch()
 * advances every stream with one flat loop over devirtualized stream
 * pointers; an optional destination pointer copies the rows out in one
 * bulk memcpy when the caller's matrix is not the pool's own.
 *
 * Non-guessing-game Environment subclasses (custom registry scenarios,
 * scripted test envs) fall back to the generic step()/reset() calls
 * with a row memcpy, so the pool is a universal adapter; only the fast
 * path changes, never the semantics.
 *
 * BatchVecEnv wraps a pool behind the VecEnv interface (stepAll /
 * stepRange / env(i) with auto-reset), producing bitwise-identical
 * trajectories to SyncVecEnv over the same streams, and additionally
 * exposes the in-place BatchStepSurface the PPO trainer fast-paths on.
 */

#ifndef AUTOCAT_ENV_BATCH_ENV_POOL_HPP
#define AUTOCAT_ENV_BATCH_ENV_POOL_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "env/guessing_game.hpp"
#include "rl/env_interface.hpp"
#include "rl/mat.hpp"
#include "rl/vec_env.hpp"

namespace autocat {

/** SoA pool of N streams stepping into one observation matrix. */
class BatchEnvPool
{
  public:
    /** Own the given streams (all non-null, same dimensions). */
    explicit BatchEnvPool(std::vector<std::unique_ptr<Environment>> envs);

    // The bound observation rows point into obs_; moving the pool
    // would not dangle (Matrix storage is heap-backed), but copying
    // cannot clone the non-copyable environments anyway.
    BatchEnvPool(const BatchEnvPool &) = delete;
    BatchEnvPool &operator=(const BatchEnvPool &) = delete;

    std::size_t numStreams() const { return envs_.size(); }
    std::size_t observationSize() const { return obs_dim_; }
    std::size_t numActions() const { return num_actions_; }

    /** The persistent observation matrix (row i = stream i). */
    Matrix &obs() { return obs_; }
    const Matrix &obs() const { return obs_; }

    /**
     * Row-major N x numActions validity-mask matrix, maintained in
     * place by the streams (CacheGuessingGame::bindMaskRow) exactly
     * like the observation rows — or nullptr when the streams do not
     * mask actions, in which case no mask storage exists at all.
     */
    const std::uint8_t *masks() const
    {
        return masks_.empty() ? nullptr : masks_.data();
    }

    /** Reset every stream, rebuilding its observation row in place. */
    void resetAll();

    /**
     * Advance every stream one step (auto-reset: a finished stream's
     * row is already the next episode's first observation, while
     * rewards/dones/infos describe the step that ended it).
     *
     * @param actions    one action per stream
     * @param obs_matrix optional row-major N x obs_dim destination the
     *                   observation rows are copied into; pass nullptr
     *                   (or the pool's own obs().data()) for the pure
     *                   in-place mode with zero copies
     * @param rewards    per-stream step reward (size N)
     * @param dones      per-stream episode-end flags (size N)
     * @param infos      per-stream step metadata (size N)
     */
    void stepBatch(const std::size_t *actions, float *obs_matrix,
                   double *rewards, std::uint8_t *dones, StepInfo *infos);

    /**
     * stepBatch restricted to streams [begin, end): the sub-batch
     * primitive behind double-buffered collection. Slots and rows
     * outside the range are untouched.
     */
    void stepRange(std::size_t begin, std::size_t end,
                   const std::size_t *actions, float *obs_matrix,
                   double *rewards, std::uint8_t *dones, StepInfo *infos);

    /** Direct access to stream @p i (decoration, evaluation). Row i
     *  stays coherent: the game maintains it through every path. */
    Environment &env(std::size_t i) { return *envs_[i]; }

  private:
    void stepOne(std::size_t i, std::size_t action, double *rewards,
                 std::uint8_t *dones, StepInfo *infos);

    std::vector<std::unique_ptr<Environment>> envs_;
    /** Devirtualized fast-path pointers; null where stream i is not a
     *  CacheGuessingGame and steps through the generic interface. */
    std::vector<CacheGuessingGame *> fast_;
    Matrix obs_;
    /** N x numActions mask rows; empty when no stream masks actions. */
    std::vector<std::uint8_t> masks_;
    std::size_t obs_dim_ = 0;
    std::size_t num_actions_ = 0;
};

/**
 * VecEnv adapter over a BatchEnvPool. Bitwise-identical trajectories
 * to SyncVecEnv over the same streams; also implements
 * BatchStepSurface for the trainer's zero-copy collection path.
 */
class BatchVecEnv : public VecEnv, public BatchStepSurface
{
  public:
    /** Own the given environments (all non-null, same dimensions). */
    explicit BatchVecEnv(std::vector<std::unique_ptr<Environment>> envs);

    // VecEnv ----------------------------------------------------------
    std::size_t numEnvs() const override { return pool_.numStreams(); }
    std::size_t observationSize() const override
    {
        return pool_.observationSize();
    }
    std::size_t numActions() const override { return pool_.numActions(); }
    Matrix resetAll() override;
    VecStepResult stepAll(const std::vector<std::size_t> &actions) override;
    void stepRange(std::size_t begin, std::size_t end,
                   const std::vector<std::size_t> &actions,
                   VecStepResult &out) override;
    Environment &env(std::size_t i) override { return pool_.env(i); }
    BatchStepSurface *batchSurface() override { return this; }

    // BatchStepSurface ------------------------------------------------
    const Matrix &obsMatrix() const override { return pool_.obs(); }
    void stepBatchInPlace(const std::size_t *actions, double *rewards,
                          std::uint8_t *dones, StepInfo *infos) override
    {
        pool_.stepBatch(actions, nullptr, rewards, dones, infos);
    }
    void resetAllInPlace() override { pool_.resetAll(); }
    const std::uint8_t *maskMatrix() const override
    {
        return pool_.masks();
    }

    /** The underlying pool (benches, tests). */
    BatchEnvPool &pool() { return pool_; }

  private:
    BatchEnvPool pool_;
};

} // namespace autocat

#endif // AUTOCAT_ENV_BATCH_ENV_POOL_HPP
