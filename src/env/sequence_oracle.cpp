#include "env/sequence_oracle.hpp"

#include <stdexcept>

#include "cache/memory_system.hpp"
#include "env/env_registry.hpp"
#include "env/guessing_game.hpp"

namespace autocat {

DistinguishingOracle::DistinguishingOracle(const EnvConfig &config)
    : config_(config), actions_(config)
{
    config_.randomInit = false;
}

std::size_t
DistinguishingOracle::numPrimitives() const
{
    return actions_.numPrimitives();
}

std::vector<int>
DistinguishingOracle::latencyPattern(
    const std::vector<std::size_t> &seq,
    std::optional<std::uint64_t> secret) const
{
    auto memory = makeMemorySystem(config_);
    std::vector<int> pattern;
    pattern.reserve(seq.size());

    for (std::size_t idx : seq) {
        const Action a = actions_.decode(idx);
        switch (a.kind) {
          case ActionKind::Access: {
            const MemoryAccessResult res =
                memory->access(a.addr, Domain::Attacker);
            pattern.push_back(res.hit ? LatHit : LatMiss);
            break;
          }
          case ActionKind::Flush:
            memory->flush(a.addr, Domain::Attacker);
            break;
          case ActionKind::TriggerVictim:
            if (secret)
                memory->access(*secret, Domain::Victim);
            break;
          default:
            break;  // guesses carry no observation
        }
    }
    return pattern;
}

bool
DistinguishingOracle::isDistinguishing(const std::vector<std::size_t> &seq)
{
    // The victim must actually run for the pattern to depend on the
    // secret; skip pattern evaluation otherwise.
    bool has_trigger = false;
    for (std::size_t idx : seq) {
        if (actions_.decode(idx).kind == ActionKind::TriggerVictim) {
            has_trigger = true;
            break;
        }
    }
    if (!has_trigger)
        return false;

    CacheGuessingGame probe(config_);
    const auto secrets = probe.secretSpace();

    std::vector<std::vector<int>> patterns;
    patterns.reserve(secrets.size());
    for (const auto &secret : secrets) {
        std::vector<int> p = latencyPattern(seq, secret);
        for (const auto &prev : patterns) {
            if (prev == p)
                return false;
        }
        patterns.push_back(std::move(p));
    }
    return true;
}

long long
DistinguishingOracle::stepsPerTrial(
    const std::vector<std::size_t> &seq) const
{
    // Each candidate is replayed once per secret value.
    return static_cast<long long>(seq.size()) *
           static_cast<long long>(config_.numSecrets());
}

// --------------------------------------------------------- ScenarioOracle

ScenarioOracle::ScenarioOracle(const std::string &scenario,
                               const EnvConfig &config)
{
    EnvConfig cfg = config;
    cfg.randomInit = false;  // deterministic empty-channel replays
    env_ = makeEnv(scenario, cfg);
    game_ = dynamic_cast<CacheGuessingGame *>(env_.get());
    if (!game_) {
        throw std::invalid_argument(
            "ScenarioOracle: scenario \"" + scenario +
            "\" does not build a guessing game; sequences cannot be "
            "replayed against its secret space");
    }
    secrets_ = game_->secretSpace();
}

ScenarioOracle::~ScenarioOracle() = default;

std::size_t
ScenarioOracle::numPrimitives() const
{
    return game_->actionSpace().numPrimitives();
}

const ActionSpace &
ScenarioOracle::actionSpace() const
{
    return game_->actionSpace();
}

bool
ScenarioOracle::replayPattern(const std::vector<std::size_t> &seq,
                              std::optional<std::uint64_t> secret,
                              std::vector<int> &pattern)
{
    pattern.clear();
    game_->resetRow();
    game_->forceSecret(secret);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const Action a = game_->actionSpace().decode(seq[i]);
        const CacheGuessingGame::FastStep fs = game_->stepFast(seq[i]);
        if (a.kind == ActionKind::Access)
            pattern.push_back(fs.info.observedLatency);
        if (fs.done)
            return i + 1 == seq.size();
    }
    return true;
}

bool
ScenarioOracle::isDistinguishing(const std::vector<std::size_t> &seq)
{
    // The victim must actually run for the pattern to depend on the
    // secret; skip replay evaluation otherwise.
    const ActionSpace &actions = game_->actionSpace();
    bool has_trigger = false;
    for (std::size_t idx : seq) {
        if (actions.decode(idx).kind == ActionKind::TriggerVictim) {
            has_trigger = true;
            break;
        }
    }
    if (!has_trigger)
        return false;

    std::vector<std::vector<int>> patterns;
    patterns.reserve(secrets_.size());
    std::vector<int> p;
    for (const auto &secret : secrets_) {
        if (!replayPattern(seq, secret, p))
            return false;  // truncated replay: no full decode possible
        for (const auto &prev : patterns) {
            if (prev == p)
                return false;
        }
        patterns.push_back(p);
    }
    return true;
}

long long
ScenarioOracle::stepsPerTrial(const std::vector<std::size_t> &seq) const
{
    // Each candidate is replayed once per secret value.
    return static_cast<long long>(seq.size()) *
           static_cast<long long>(secrets_.size());
}

} // namespace autocat
