#include "env/sequence_oracle.hpp"

#include "cache/memory_system.hpp"
#include "env/guessing_game.hpp"

namespace autocat {

DistinguishingOracle::DistinguishingOracle(const EnvConfig &config)
    : config_(config), actions_(config)
{
    config_.randomInit = false;
}

std::size_t
DistinguishingOracle::numPrimitives() const
{
    return actions_.numPrimitives();
}

std::vector<int>
DistinguishingOracle::latencyPattern(
    const std::vector<std::size_t> &seq,
    std::optional<std::uint64_t> secret) const
{
    auto memory = makeMemorySystem(config_);
    std::vector<int> pattern;
    pattern.reserve(seq.size());

    for (std::size_t idx : seq) {
        const Action a = actions_.decode(idx);
        switch (a.kind) {
          case ActionKind::Access: {
            const MemoryAccessResult res =
                memory->access(a.addr, Domain::Attacker);
            pattern.push_back(res.hit ? LatHit : LatMiss);
            break;
          }
          case ActionKind::Flush:
            memory->flush(a.addr, Domain::Attacker);
            break;
          case ActionKind::TriggerVictim:
            if (secret)
                memory->access(*secret, Domain::Victim);
            break;
          default:
            break;  // guesses carry no observation
        }
    }
    return pattern;
}

bool
DistinguishingOracle::isDistinguishing(const std::vector<std::size_t> &seq)
{
    // The victim must actually run for the pattern to depend on the
    // secret; skip pattern evaluation otherwise.
    bool has_trigger = false;
    for (std::size_t idx : seq) {
        if (actions_.decode(idx).kind == ActionKind::TriggerVictim) {
            has_trigger = true;
            break;
        }
    }
    if (!has_trigger)
        return false;

    CacheGuessingGame probe(config_);
    const auto secrets = probe.secretSpace();

    std::vector<std::vector<int>> patterns;
    patterns.reserve(secrets.size());
    for (const auto &secret : secrets) {
        std::vector<int> p = latencyPattern(seq, secret);
        for (const auto &prev : patterns) {
            if (prev == p)
                return false;
        }
        patterns.push_back(std::move(p));
    }
    return true;
}

long long
DistinguishingOracle::stepsPerTrial(
    const std::vector<std::size_t> &seq) const
{
    // Each candidate is replayed once per secret value.
    return static_cast<long long>(seq.size()) *
           static_cast<long long>(config_.numSecrets());
}

} // namespace autocat
