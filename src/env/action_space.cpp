#include "env/action_space.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace autocat {

ActionSpace::ActionSpace(const EnvConfig &config)
    : attack_s_(config.attackAddrS),
      victim_s_(config.victimAddrS),
      num_access_(static_cast<std::size_t>(config.numAttackAddrs())),
      num_flush_(config.flushEnable
                     ? static_cast<std::size_t>(config.numAttackAddrs())
                     : 0),
      num_guess_(static_cast<std::size_t>(config.numVictimAddrs())),
      guess_empty_(config.victimNoAccessEnable)
{
    flush_base_ = num_access_;
    trigger_base_ = flush_base_ + num_flush_;
    guess_base_ = trigger_base_ + 1;
    size_ = guess_base_ + num_guess_ + (guess_empty_ ? 1 : 0);
}

std::size_t
ActionSpace::encode(const Action &action) const
{
    switch (action.kind) {
      case ActionKind::Access:
        return accessIndex(action.addr);
      case ActionKind::Flush:
        return flushIndex(action.addr);
      case ActionKind::TriggerVictim:
        return trigger_base_;
      case ActionKind::Guess:
        return guessIndex(action.addr);
      case ActionKind::GuessNoAccess:
        return guessNoAccessIndex();
    }
    throw std::invalid_argument("bad action kind");
}

std::size_t
ActionSpace::accessIndex(std::uint64_t addr) const
{
    const std::uint64_t off = addr - attack_s_;
    if (off >= num_access_)
        throw std::out_of_range("access addr outside attacker range");
    return static_cast<std::size_t>(off);
}

std::size_t
ActionSpace::flushIndex(std::uint64_t addr) const
{
    if (num_flush_ == 0)
        throw std::logic_error("flush actions are disabled");
    const std::uint64_t off = addr - attack_s_;
    if (off >= num_flush_)
        throw std::out_of_range("flush addr outside attacker range");
    return flush_base_ + static_cast<std::size_t>(off);
}

std::size_t
ActionSpace::guessIndex(std::uint64_t addr) const
{
    const std::uint64_t off = addr - victim_s_;
    if (off >= num_guess_)
        throw std::out_of_range("guess addr outside victim range");
    return guess_base_ + static_cast<std::size_t>(off);
}

std::size_t
ActionSpace::guessNoAccessIndex() const
{
    if (!guess_empty_)
        throw std::logic_error("guess-no-access is disabled");
    return guess_base_ + num_guess_;
}

void
ActionSpace::writeMask(std::uint8_t *mask, bool guesses_valid,
                       std::ptrdiff_t masked_repeat) const
{
    std::fill(mask, mask + size_, std::uint8_t{1});
    if (!guesses_valid)
        std::fill(mask + guess_base_, mask + size_, std::uint8_t{0});
    if (masked_repeat >= 0 &&
        static_cast<std::size_t>(masked_repeat) < guess_base_) {
        mask[masked_repeat] = 0;
    }
}

bool
ActionSpace::isGuess(std::size_t index) const
{
    assert(index < size_);
    return index >= guess_base_;
}

std::string
ActionSpace::toString(std::size_t index) const
{
    const Action a = decode(index);
    switch (a.kind) {
      case ActionKind::Access:
        return std::to_string(a.addr);
      case ActionKind::Flush: {
        std::string s = "f";
        s += std::to_string(a.addr);
        return s;
      }
      case ActionKind::TriggerVictim:
        return "v";
      case ActionKind::Guess: {
        std::string s = "g";
        s += std::to_string(a.addr);
        return s;
      }
      case ActionKind::GuessNoAccess:
        return "gE";
    }
    return "?";
}

} // namespace autocat
