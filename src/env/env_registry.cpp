#include "env/env_registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "env/batch_env_pool.hpp"
#include "env/channel_model.hpp"
#include "env/guessing_game.hpp"

namespace autocat {

namespace {

struct Registry
{
    std::mutex mutex;
    std::map<std::string, EnvFactory> factories;
};

/**
 * Describes one built-in hierarchy scenario: how deep the synthesized
 * hierarchy is and how its levels relate (see resolveHierarchy).
 */
struct HierarchyShape
{
    unsigned depth;
    InclusionPolicy outerInclusion;
    bool sharedL1;
};

/**
 * Fill in cfg.hierarchy for a hierarchy scenario. A config that already
 * carries explicit levels (e.g. from hierarchy.levels[N].* config keys)
 * is trusted as-is; otherwise the levels are synthesized from
 * cfg.cache, which describes the outermost (attacked) level:
 *
 *  - L1: same sets as cfg.cache, direct mapped, no prefetcher/mapping
 *    tricks (those stay on the attacked level, as in Table IV 16/17)
 *  - mid level (three_level only): half of cfg.cache's ways, private
 *  - outermost: cfg.cache itself, shared
 */
EnvConfig
resolveHierarchy(EnvConfig cfg, const HierarchyShape &shape)
{
    if (!cfg.hierarchy.levels.empty())
        return cfg;

    CacheConfig inner = cfg.cache;
    inner.numWays = 1;
    inner.prefetcher = PrefetcherKind::None;
    inner.randomSetMapping = false;

    cfg.hierarchy.numCores = 2;
    cfg.hierarchy.levels.push_back(
        {inner, InclusionPolicy::Inclusive, shape.sharedL1});
    if (shape.depth >= 3) {
        CacheConfig mid = inner;
        mid.numWays = std::max(1u, cfg.cache.numWays / 2);
        cfg.hierarchy.levels.push_back(
            {mid, InclusionPolicy::Inclusive, /*shared=*/false});
    }
    cfg.hierarchy.levels.push_back(
        {cfg.cache, shape.outerInclusion, /*shared=*/true});
    return cfg;
}

EnvFactory
hierarchyFactory(const HierarchyShape &shape)
{
    return [shape](const ScenarioContext &ctx,
                   std::unique_ptr<MemorySystem> memory)
               -> std::unique_ptr<Environment> {
        const EnvConfig resolved = resolveHierarchy(ctx.env, shape);
        if (!memory)
            memory = makeMemorySystem(resolved);
        return std::make_unique<CacheGuessingGame>(resolved,
                                                   std::move(memory));
    };
}

/**
 * Detector-in-the-loop scenario: the guessing game with a default
 * DetectorSpec attached — unless the context carries explicit specs,
 * which replace the default (makeEnv applies them afterwards).
 * @p force_detection_enable turns on Terminate-mode episode ending for
 * the miss-based case study.
 */
EnvFactory
detectorScenarioFactory(const DetectorSpec &default_spec,
                        bool force_detection_enable)
{
    return [default_spec, force_detection_enable](
               const ScenarioContext &ctx,
               std::unique_ptr<MemorySystem> memory)
               -> std::unique_ptr<Environment> {
        EnvConfig cfg = ctx.env;
        if (force_detection_enable)
            cfg.detectionEnable = true;
        if (!memory)
            memory = makeMemorySystem(cfg);
        auto game =
            std::make_unique<CacheGuessingGame>(cfg, std::move(memory));
        if (ctx.detectors.empty()) {
            game->attachDetector(
                makeDetector(default_spec, ctx.attackedCache()),
                default_spec.mode);
        }
        return game;
    };
}

/**
 * tlb_evict: the guessing game over a TLB channel. The TLB geometry
 * comes from EnvConfig::channel.tlb (config keys tlb.*); the episode
 * knobs that default from "blocks in the attacked cache" are resolved
 * here against the TLB's entry count instead, and the page address
 * space is widened to cover the configured attack/victim ranges (the
 * same guarantee the config parser gives the cache address space).
 */
std::unique_ptr<Environment>
makeTlbEvictEnv(const ScenarioContext &ctx,
                std::unique_ptr<MemorySystem> memory)
{
    if (memory) {
        throw std::invalid_argument(
            "tlb_evict: an external MemorySystem cannot back the TLB "
            "channel");
    }
    EnvConfig cfg = ctx.env;
    TlbConfig tlb = cfg.channel.tlb;
    const std::uint64_t needed =
        std::max(cfg.attackAddrE, cfg.victimAddrE) + 2;
    if (tlb.addressSpaceSize < needed)
        tlb.addressSpaceSize = needed;

    const unsigned blocks = tlb.numEntries();
    if (cfg.windowSize == 0)
        cfg.windowSize = 6 * blocks;
    if (cfg.randomInit && cfg.initAccesses == 0)
        cfg.initAccesses = 2 * blocks;

    return std::make_unique<CacheGuessingGame>(
        cfg, std::make_unique<TlbChannel>(tlb));
}

/**
 * prefetch_probe: the guessing game with the stream prefetcher as the
 * attacked resource. The probed cache reuses EnvConfig::cache (its
 * internal prefetcher stripped — the channel owns the modeled one);
 * the victim's burst shape comes from EnvConfig::channel. The address
 * space is widened so every secret's prefetch target (burst_base +
 * burst_len * stride) is a distinct address rather than a wraparound
 * alias.
 */
std::unique_ptr<Environment>
makePrefetchProbeEnv(const ScenarioContext &ctx,
                     std::unique_ptr<MemorySystem> memory)
{
    if (memory) {
        throw std::invalid_argument(
            "prefetch_probe: an external MemorySystem cannot back the "
            "prefetcher channel");
    }
    EnvConfig cfg = ctx.env;
    CacheConfig cache = cfg.cache;
    const std::uint64_t max_stride =
        cfg.victimAddrE - cfg.victimAddrS + 1;
    const std::uint64_t needed = std::max(
        std::max(cfg.attackAddrE, cfg.victimAddrE) + 2,
        cfg.channel.prefetchBurstBase +
            cfg.channel.prefetchBurstLen * max_stride + 1);
    if (cache.addressSpaceSize < needed)
        cache.addressSpaceSize = needed;

    return std::make_unique<CacheGuessingGame>(
        cfg, std::make_unique<PrefetchProbeChannel>(
                 cache, cfg.victimAddrS, cfg.channel.prefetchBurstLen,
                 cfg.channel.prefetchBurstBase));
}

/**
 * The registry singleton. Built-ins are installed on first access so
 * static-library linking cannot drop the registrations.
 */
Registry &
registry()
{
    static Registry *r = [] {
        auto *init = new Registry;
        init->factories["guessing_game"] =
            [](const ScenarioContext &ctx,
               std::unique_ptr<MemorySystem> memory)
            -> std::unique_ptr<Environment> {
            if (!memory)
                memory = makeMemorySystem(ctx.env);
            return std::make_unique<CacheGuessingGame>(ctx.env,
                                                       std::move(memory));
        };
        // Hierarchy scenarios: the guessing game over a CacheHierarchy
        // (Table IV configs 16/17 and the shapes the ROADMAP calls for).
        init->factories["l1l2_private"] = hierarchyFactory(
            {2, InclusionPolicy::Inclusive, /*sharedL1=*/false});
        init->factories["l1l2_shared"] = hierarchyFactory(
            {2, InclusionPolicy::Inclusive, /*sharedL1=*/true});
        init->factories["l2_exclusive"] = hierarchyFactory(
            {2, InclusionPolicy::Exclusive, /*sharedL1=*/false});
        init->factories["three_level"] = hierarchyFactory(
            {3, InclusionPolicy::Inclusive, /*sharedL1=*/false});
        // Channel scenarios: the same game over non-cache resources
        // (env/channel_model.hpp).
        init->factories["tlb_evict"] = makeTlbEvictEnv;
        init->factories["prefetch_probe"] = makePrefetchProbeEnv;
        // Detector-in-the-loop scenarios (Section V-D / Tables VIII-IX).
        {
            DetectorSpec miss;
            miss.kind = "miss";
            miss.mode = DetectorMode::Terminate;
            init->factories["miss_detect_terminate"] =
                detectorScenarioFactory(miss,
                                        /*force_detection_enable=*/true);
        }
        {
            DetectorSpec cchunter;
            cchunter.kind = "cchunter";
            cchunter.mode = DetectorMode::Penalize;
            cchunter.penalty = -2.0;
            init->factories["cchunter_bypass"] = detectorScenarioFactory(
                cchunter, /*force_detection_enable=*/false);
        }
        {
            DetectorSpec cyclone;
            cyclone.kind = "cyclone";
            cyclone.mode = DetectorMode::Penalize;
            cyclone.penalty = -2.0;
            init->factories["cyclone_bypass"] = detectorScenarioFactory(
                cyclone, /*force_detection_enable=*/false);
        }
        return init;
    }();
    return *r;
}

/** Attach the context's declarative detector specs to a built env. */
void
applyContextDetectors(Environment &env, const ScenarioContext &ctx,
                      const std::string &scenario)
{
    if (ctx.detectors.empty())
        return;
    auto *game = dynamic_cast<CacheGuessingGame *>(&env);
    if (!game) {
        throw std::invalid_argument(
            "makeEnv: scenario \"" + scenario +
            "\" did not produce a CacheGuessingGame; detector "
            "attachments cannot apply");
    }
    for (const DetectorSpec &spec : ctx.detectors)
        game->attachDetector(makeDetector(spec, ctx.attackedCache()),
                             spec.mode);
}

} // namespace

bool
registerScenario(const std::string &name, EnvFactory factory)
{
    if (!factory)
        throw std::invalid_argument("registerScenario: empty factory");
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.factories.insert_or_assign(name, std::move(factory)).second;
}

bool
hasScenario(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.factories.count(name) != 0;
}

std::vector<std::string>
scenarioNames()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.factories.size());
    for (const auto &entry : r.factories)
        names.push_back(entry.first);
    return names;
}

std::unique_ptr<Environment>
makeEnv(const std::string &name, const ScenarioContext &ctx,
        std::unique_ptr<MemorySystem> memory)
{
    EnvFactory factory;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        auto it = r.factories.find(name);
        if (it == r.factories.end())
            throw std::out_of_range("makeEnv: unknown scenario \"" + name +
                                    "\"");
        factory = it->second;
    }
    std::unique_ptr<Environment> env = factory(ctx, std::move(memory));
    applyContextDetectors(*env, ctx, name);
    return env;
}

std::unique_ptr<Environment>
makeEnv(const std::string &name, const EnvConfig &config,
        std::unique_ptr<MemorySystem> memory)
{
    return makeEnv(name, ScenarioContext(config), std::move(memory));
}

std::unique_ptr<VecEnv>
makeVecEnv(const std::string &name, const ScenarioContext &ctx,
           std::size_t num_streams, VecEnvKind kind,
           const std::function<void(Environment &)> &decorate)
{
    if (num_streams == 0)
        throw std::invalid_argument("makeVecEnv: need at least one stream");
    std::vector<std::unique_ptr<Environment>> envs;
    envs.reserve(num_streams);
    for (std::size_t i = 0; i < num_streams; ++i) {
        ScenarioContext stream_ctx = ctx;
        stream_ctx.env.seed = ctx.env.seed + i;
        envs.push_back(makeEnv(name, stream_ctx));
        if (decorate)
            decorate(*envs.back());
    }
    switch (kind) {
      case VecEnvKind::Threaded:
        return std::make_unique<ThreadedVecEnv>(std::move(envs));
      case VecEnvKind::Batch:
        return std::make_unique<BatchVecEnv>(std::move(envs));
      case VecEnvKind::Sync:
        break;
    }
    return std::make_unique<SyncVecEnv>(std::move(envs));
}

std::unique_ptr<VecEnv>
makeVecEnv(const std::string &name, const ScenarioContext &ctx,
           std::size_t num_streams, bool threaded,
           const std::function<void(Environment &)> &decorate)
{
    return makeVecEnv(name, ctx, num_streams,
                      threaded ? VecEnvKind::Threaded : VecEnvKind::Sync,
                      decorate);
}

std::unique_ptr<VecEnv>
makeVecEnv(const std::string &name, const EnvConfig &config,
           std::size_t num_streams, VecEnvKind kind,
           const std::function<void(Environment &)> &decorate)
{
    return makeVecEnv(name, ScenarioContext(config), num_streams, kind,
                      decorate);
}

std::unique_ptr<VecEnv>
makeVecEnv(const std::string &name, const EnvConfig &config,
           std::size_t num_streams, bool threaded,
           const std::function<void(Environment &)> &decorate)
{
    return makeVecEnv(name, ScenarioContext(config), num_streams, threaded,
                      decorate);
}

} // namespace autocat
