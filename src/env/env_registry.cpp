#include "env/env_registry.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "env/guessing_game.hpp"

namespace autocat {

namespace {

struct Registry
{
    std::mutex mutex;
    std::map<std::string, EnvFactory> factories;
};

/**
 * The registry singleton. Built-ins are installed on first access so
 * static-library linking cannot drop the registrations.
 */
Registry &
registry()
{
    static Registry *r = [] {
        auto *init = new Registry;
        init->factories["guessing_game"] =
            [](const EnvConfig &cfg, std::unique_ptr<MemorySystem> memory)
            -> std::unique_ptr<Environment> {
            if (!memory)
                memory = makeMemorySystem(cfg);
            return std::make_unique<CacheGuessingGame>(cfg,
                                                       std::move(memory));
        };
        return init;
    }();
    return *r;
}

} // namespace

bool
registerScenario(const std::string &name, EnvFactory factory)
{
    if (!factory)
        throw std::invalid_argument("registerScenario: empty factory");
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.factories.insert_or_assign(name, std::move(factory)).second;
}

bool
hasScenario(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.factories.count(name) != 0;
}

std::vector<std::string>
scenarioNames()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.factories.size());
    for (const auto &entry : r.factories)
        names.push_back(entry.first);
    return names;
}

std::unique_ptr<Environment>
makeEnv(const std::string &name, const EnvConfig &config,
        std::unique_ptr<MemorySystem> memory)
{
    EnvFactory factory;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        auto it = r.factories.find(name);
        if (it == r.factories.end())
            throw std::out_of_range("makeEnv: unknown scenario \"" + name +
                                    "\"");
        factory = it->second;
    }
    return factory(config, std::move(memory));
}

std::unique_ptr<VecEnv>
makeVecEnv(const std::string &name, const EnvConfig &config,
           std::size_t num_streams, bool threaded,
           const std::function<void(Environment &)> &decorate)
{
    if (num_streams == 0)
        throw std::invalid_argument("makeVecEnv: need at least one stream");
    std::vector<std::unique_ptr<Environment>> envs;
    envs.reserve(num_streams);
    for (std::size_t i = 0; i < num_streams; ++i) {
        EnvConfig stream_cfg = config;
        stream_cfg.seed = config.seed + i;
        envs.push_back(makeEnv(name, stream_cfg));
        if (decorate)
            decorate(*envs.back());
    }
    if (threaded)
        return std::make_unique<ThreadedVecEnv>(std::move(envs));
    return std::make_unique<SyncVecEnv>(std::move(envs));
}

} // namespace autocat
