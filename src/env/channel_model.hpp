/**
 * @file
 * Attacked-resource abstraction behind the guessing game.
 *
 * AutoCAT's observe/prime/probe/guess loop is not cache-specific: any
 * microarchitectural resource where the attacker's own operation
 * latency depends on prior victim activity supports the same game. A
 * ChannelModel is that resource: it answers the attacker's accesses
 * and flushes with a hit/miss bit, interprets the victim's secret as
 * channel-specific activity when the victim is triggered, and exposes
 * the reset/warm-up/event hooks the episode machinery needs.
 *
 * Concrete channels:
 *  - MemoryChannel:        the classic cache channel over any
 *                          MemorySystem (single level or hierarchy);
 *                          bitwise-identical to the pre-channel game.
 *  - TlbChannel:           prime+probe over TLB sets (cache/tlb.hpp);
 *                          the victim's secret is the page it touches.
 *  - PrefetchProbeChannel: the stream prefetcher as the leak: the
 *                          victim's secret selects the stride of its
 *                          access burst, and the prefetch the stride
 *                          triggers perturbs cache state the attacker
 *                          can probe.
 *
 * The game keeps its devirtualized hot path: a channel that is backed
 * by a plain Cache exposes it through fastAttackerCache() /
 * fastVictimCache(), and CacheGuessingGame routes attacker accesses
 * (and, when allowed, the victim's single access) straight to
 * Cache::accessFast — the PR 7 batch-engine fast path, unchanged for
 * cache scenarios.
 */

#ifndef AUTOCAT_ENV_CHANNEL_MODEL_HPP
#define AUTOCAT_ENV_CHANNEL_MODEL_HPP

#include <cstdint>
#include <memory>

#include "cache/memory_system.hpp"
#include "cache/prefetcher.hpp"
#include "cache/tlb.hpp"

namespace autocat {

/** An attacked microarchitectural resource. */
class ChannelModel
{
  public:
    virtual ~ChannelModel() = default;

    /** Attacker access to @p addr; returns the hit flag (the latency
     *  class the agent observes). */
    virtual bool attackerAccess(std::uint64_t addr) = 0;

    /** Attacker flush (clflush / invlpg analog) of @p addr. */
    virtual void attackerFlush(std::uint64_t addr) = 0;

    /**
     * The victim was triggered with @p secret: perform the channel's
     * secret-dependent activity (a single access for cache/TLB
     * channels, a strided burst for the prefetcher channel).
     */
    virtual void victimTransmit(std::uint64_t secret) = 0;

    /** One warm-up access from @p domain (Section VI-B init scheme). */
    virtual void warmupAccess(std::uint64_t addr, Domain domain) = 0;

    /** Drop all channel state (episode reset). */
    virtual void reset() = 0;

    /** PL-cache-style lock of @p addr; default: unsupported. */
    virtual bool
    lockLine(std::uint64_t addr, Domain domain)
    {
        (void)addr;
        (void)domain;
        return false;
    }

    /** Register the (single) event listener feeding the detectors. */
    virtual void setEventListener(CacheEventListener listener) = 0;

    /** Resource entries visible to the attack (window-size heuristic). */
    virtual unsigned numBlocks() const = 0;

    /** Cache that attacker accesses / warm-ups may hit directly via
     *  Cache::accessFast (devirtualized hot path); null keeps the
     *  virtual path. */
    virtual Cache *fastAttackerCache() { return nullptr; }

    /** Cache the victim's transmit is a single plain access to; null
     *  means victimTransmit() must run (channel-specific activity). */
    virtual Cache *fastVictimCache() { return nullptr; }

    /** Backing MemorySystem, when the channel is the cache channel
     *  (tests, state dumps); null for non-memory channels. */
    virtual MemorySystem *memorySystem() { return nullptr; }
};

/** The classic cache channel: a thin adapter over a MemorySystem. */
class MemoryChannel : public ChannelModel
{
  public:
    explicit MemoryChannel(std::unique_ptr<MemorySystem> memory);

    bool attackerAccess(std::uint64_t addr) override;
    void attackerFlush(std::uint64_t addr) override;
    void victimTransmit(std::uint64_t secret) override;
    void warmupAccess(std::uint64_t addr, Domain domain) override;
    void reset() override;
    bool lockLine(std::uint64_t addr, Domain domain) override;
    void setEventListener(CacheEventListener listener) override;
    unsigned numBlocks() const override;
    Cache *fastAttackerCache() override;
    Cache *fastVictimCache() override;
    MemorySystem *memorySystem() override { return memory_.get(); }

  private:
    std::unique_ptr<MemorySystem> memory_;
    Cache *flat_ = nullptr;  ///< set when memory_ is a SingleLevelMemory
};

/** Prime+probe over TLB sets; the secret is the victim's page. */
class TlbChannel : public ChannelModel
{
  public:
    explicit TlbChannel(const TlbConfig &config);

    bool attackerAccess(std::uint64_t addr) override;
    void attackerFlush(std::uint64_t addr) override;
    void victimTransmit(std::uint64_t secret) override;
    void warmupAccess(std::uint64_t addr, Domain domain) override;
    void reset() override;
    void setEventListener(CacheEventListener listener) override;
    unsigned numBlocks() const override;

    /** The underlying TLB (tests, state dumps). */
    Tlb &tlb() { return tlb_; }

  private:
    Tlb tlb_;
};

/**
 * The stream prefetcher as the attacked resource. The victim's secret
 * selects the stride of its access burst (stride = secret -
 * victimAddrS + 1, so every secret is a distinct non-zero stride); the
 * channel feeds the burst through its own victim-side stride detector
 * and installs the prefetches it issues into the cache. The attacker
 * probes the cache normally — prefetch-induced (dis)placements are the
 * leak. Attacker accesses and warm-up traffic never train the victim's
 * stride detector, and the detector restarts at every trigger so
 * consecutive transmissions stay independent.
 */
class PrefetchProbeChannel : public ChannelModel
{
  public:
    /**
     * @param cache      geometry of the probed cache; any internal
     *                   prefetcher is stripped (the channel owns the
     *                   modeled prefetcher)
     * @param victimAddrS start of the victim range (stride base)
     * @param burstLen   accesses per victim burst (>= 1)
     * @param burstBase  first address of every burst
     */
    PrefetchProbeChannel(CacheConfig cache, std::uint64_t victimAddrS,
                         unsigned burstLen, std::uint64_t burstBase);

    bool attackerAccess(std::uint64_t addr) override;
    void attackerFlush(std::uint64_t addr) override;
    void victimTransmit(std::uint64_t secret) override;
    void warmupAccess(std::uint64_t addr, Domain domain) override;
    void reset() override;
    void setEventListener(CacheEventListener listener) override;
    unsigned numBlocks() const override;
    Cache *fastAttackerCache() override { return &cache_; }

    /** The probed cache (tests, state dumps). */
    Cache &cache() { return cache_; }

  private:
    Cache cache_;
    StreamPrefetcher prefetcher_;
    std::uint64_t victim_addr_s_;
    unsigned burst_len_;
    std::uint64_t burst_base_;
    std::uint64_t space_;
};

} // namespace autocat

#endif // AUTOCAT_ENV_CHANNEL_MODEL_HPP
