/**
 * @file
 * The cache guessing game (Sections III-B and IV of the paper).
 *
 * An RL agent controls the attack program: it accesses / flushes its
 * own addresses, decides when the victim runs, and finally guesses the
 * victim's secret address. The environment owns the memory system, the
 * secret, the guess evaluator, the reward shaping, and optional
 * detector hooks (Section V-D case studies).
 */

#ifndef AUTOCAT_ENV_GUESSING_GAME_HPP
#define AUTOCAT_ENV_GUESSING_GAME_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cache/memory_system.hpp"
#include "detect/detector.hpp"
#include "env/action_space.hpp"
#include "env/env_config.hpp"
#include "rl/env_interface.hpp"
#include "util/rng.hpp"

namespace autocat {

/** Latency classes visible to the agent. */
enum LatencyClass : int { LatHit = 0, LatMiss = 1, LatNa = 2 };

/** Build the memory system an EnvConfig describes. */
std::unique_ptr<MemorySystem> makeMemorySystem(const EnvConfig &config);

/** Gym-style guessing-game environment. */
class CacheGuessingGame : public Environment
{
  public:
    /**
     * Construct with an internally-built memory system.
     */
    explicit CacheGuessingGame(const EnvConfig &config);

    /**
     * Construct around an externally-provided memory system (e.g. the
     * simulated real-hardware target in src/hw). The environment takes
     * ownership.
     */
    CacheGuessingGame(const EnvConfig &config,
                      std::unique_ptr<MemorySystem> memory);

    // The memory system's event listener captures `this`; copying or
    // moving would leave it dangling.
    CacheGuessingGame(const CacheGuessingGame &) = delete;
    CacheGuessingGame &operator=(const CacheGuessingGame &) = delete;

    // Environment interface ------------------------------------------
    std::size_t observationSize() const override;
    std::size_t numActions() const override;
    std::vector<float> reset() override;
    StepResult step(std::size_t action) override;

    // Introspection ---------------------------------------------------
    /** The action-space layout. */
    const ActionSpace &actionSpace() const { return actions_; }

    /** The configuration. */
    const EnvConfig &config() const { return config_; }

    /** Current secret; nullopt encodes "victim makes no access". */
    std::optional<std::uint64_t> secret() const { return secret_; }

    /** All possible secret values (victim addresses, then no-access). */
    std::vector<std::optional<std::uint64_t>> secretSpace() const;

    /**
     * Override the current episode's secret (deterministic replay,
     * sequence evaluation, tests). Call immediately after reset().
     */
    void forceSecret(std::optional<std::uint64_t> secret);

    /** The underlying memory system (tests, state dumps). */
    MemorySystem &memory() { return *memory_; }

    /**
     * Attach a detector. Terminate-mode detectors end the episode with
     * detectionReward when they fire (requires detectionEnable);
     * Penalize-mode detectors contribute step and episode-end reward
     * penalties without terminating.
     */
    void attachDetector(std::shared_ptr<Detector> detector,
                        DetectorMode mode);

    /** Steps taken in the current episode. */
    unsigned stepsTaken() const { return step_count_; }

    /** Reseed the environment RNG (independent evaluation streams,
     *  campaign checkpoint boundaries). */
    void reseed(std::uint64_t seed) override { rng_.reseed(seed); }

  private:
    struct HistorySlot
    {
        int visibleLat = LatNa;  ///< latency class shown to the agent
        int actualLat = LatNa;   ///< true latency (reveal mode)
        std::size_t action = 0;
        unsigned step = 0;
        bool victimTriggered = false;
    };

    /** Per-attacker-address summary states (see buildObservation). */
    enum AddrLat : int {
        AddrHit = 0,
        AddrMiss = 1,
        AddrMasked = 2,
        AddrNever = 3,
    };

    void installListener();
    void initializeEpisodeState();
    void pushHistory(std::size_t action, int actual_lat);
    std::vector<float> buildObservation() const;
    std::optional<std::uint64_t> sampleSecret();

    EnvConfig config_;
    ActionSpace actions_;
    std::unique_ptr<MemorySystem> memory_;
    Rng rng_;

    struct DetectorEntry
    {
        std::shared_ptr<Detector> detector;
        DetectorMode mode;
    };
    std::vector<DetectorEntry> detectors_;

    unsigned window_;
    unsigned length_limit_;
    std::size_t slot_dim_;

    // Episode state.
    std::optional<std::uint64_t> secret_;
    bool victim_triggered_ = false;
    bool revealed_ = false;
    bool done_ = true;
    unsigned step_count_ = 0;
    unsigned guesses_this_episode_ = 0;
    std::deque<HistorySlot> history_;

    /**
     * Summary feature state: the latency class last observed for each
     * attacker address (actual, and the masked view shown before a
     * reveal in batched mode). This is a re-encoding of information
     * already present in the observation window — it gives the MLP
     * policy fixed-position access to the per-address timing the
     * paper's Transformer extracts by pooling over the window.
     */
    std::vector<int> addr_lat_actual_;
    std::vector<int> addr_lat_visible_;

    /** Same summary restricted to accesses after the last trigger. */
    std::vector<int> addr_lat_post_actual_;
    std::vector<int> addr_lat_post_visible_;
};

} // namespace autocat

#endif // AUTOCAT_ENV_GUESSING_GAME_HPP
