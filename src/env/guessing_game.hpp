/**
 * @file
 * The cache guessing game (Sections III-B and IV of the paper).
 *
 * An RL agent controls the attack program: it accesses / flushes its
 * own addresses, decides when the victim runs, and finally guesses the
 * victim's secret address. The environment owns the attacked channel
 * (a ChannelModel — the classic cache channel, the TLB, or the
 * prefetcher side channel), the secret, the guess evaluator, the
 * reward shaping, and optional detector hooks (Section V-D case
 * studies).
 */

#ifndef AUTOCAT_ENV_GUESSING_GAME_HPP
#define AUTOCAT_ENV_GUESSING_GAME_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/memory_system.hpp"
#include "detect/detector.hpp"
#include "env/action_space.hpp"
#include "env/channel_model.hpp"
#include "env/env_config.hpp"
#include "rl/env_interface.hpp"
#include "util/rng.hpp"

namespace autocat {

/** Latency classes visible to the agent. */
enum LatencyClass : int { LatHit = 0, LatMiss = 1, LatNa = 2 };

/** Build the memory system an EnvConfig describes. */
std::unique_ptr<MemorySystem> makeMemorySystem(const EnvConfig &config);

/** Gym-style guessing-game environment. */
class CacheGuessingGame : public Environment
{
  public:
    /**
     * Construct with an internally-built memory system.
     */
    explicit CacheGuessingGame(const EnvConfig &config);

    /**
     * Construct around an externally-provided memory system (e.g. the
     * simulated real-hardware target in src/hw). The environment takes
     * ownership (wrapping it in a MemoryChannel).
     */
    CacheGuessingGame(const EnvConfig &config,
                      std::unique_ptr<MemorySystem> memory);

    /**
     * Construct over an arbitrary attacked channel (TLB, prefetcher
     * side channel, ...). The environment takes ownership. The config's
     * window/episode knobs must already be resolved against the
     * channel's geometry (the registry factories do this).
     */
    CacheGuessingGame(const EnvConfig &config,
                      std::unique_ptr<ChannelModel> channel);

    // The channel's event listener captures `this`; copying or
    // moving would leave it dangling.
    CacheGuessingGame(const CacheGuessingGame &) = delete;
    CacheGuessingGame &operator=(const CacheGuessingGame &) = delete;

    // Environment interface ------------------------------------------
    std::size_t observationSize() const override;
    std::size_t numActions() const override;
    std::vector<float> reset() override;
    StepResult step(std::size_t action) override;

    // Batch-stepping fast path ---------------------------------------
    /**
     * step() without materializing the observation vector. The
     * persistent observation row (see bindObservationRow) is kept up
     * to date incrementally; step() is a thin wrapper that copies it
     * into the returned StepResult.
     */
    struct FastStep
    {
        double reward = 0.0;
        bool done = false;
        StepInfo info;
    };
    FastStep stepFast(std::size_t action);

    /** reset() without materializing the observation vector; the
     *  bound observation row is rebuilt in place. */
    void resetRow();

    /**
     * Re-home the persistent observation row at @p row (size
     * observationSize()), which the environment keeps current across
     * reset()/step()/stepFast(). BatchEnvPool binds each stream's row
     * into the batch matrix the policy GEMM consumes, so stepping
     * writes observations straight into it — no per-env allocation,
     * no copy. Pass nullptr to rebind the internal storage. The
     * current row contents move to the new location.
     */
    void bindObservationRow(float *row);

    /** The persistent observation row (valid after reset()). */
    const float *observationRow() const { return row_; }

    // Action masking (sample-efficiency layer) ------------------------
    /**
     * The per-step validity/usefulness mask (numActions() bytes,
     * 1 = selectable), kept current across reset()/step()/stepFast()
     * like the observation row — or nullptr when neither maskActions
     * nor maskUselessActions is set, so unmasked configs pay nothing
     * and the trainer's legacy path is taken bit-for-bit.
     */
    const std::uint8_t *actionMask() const override
    {
        return mask_enabled_ ? mask_ : nullptr;
    }

    /**
     * Re-home the persistent mask row at @p row (numActions() bytes),
     * the uint8 analogue of bindObservationRow: BatchEnvPool binds each
     * stream's mask row into its batch mask matrix so mask maintenance
     * writes straight into it. Pass nullptr to rebind internal storage.
     */
    void bindMaskRow(std::uint8_t *row);

    /**
     * Encode the full observation from scratch. This is the oracle the
     * incrementally-maintained row is tested against; hot paths never
     * call it outside reset/reveal/multi-secret boundaries.
     */
    std::vector<float> rebuildObservation() const;

    // Introspection ---------------------------------------------------
    /** The action-space layout. */
    const ActionSpace &actionSpace() const { return actions_; }

    /** The configuration. */
    const EnvConfig &config() const { return config_; }

    /** Current secret; nullopt encodes "victim makes no access". */
    std::optional<std::uint64_t> secret() const { return secret_; }

    /** All possible secret values (victim addresses, then no-access). */
    std::vector<std::optional<std::uint64_t>> secretSpace() const;

    /**
     * Override the current episode's secret (deterministic replay,
     * sequence evaluation, tests). Call immediately after reset().
     */
    void forceSecret(std::optional<std::uint64_t> secret);

    /** The attacked channel (tests, state dumps). */
    ChannelModel &channel() { return *channel_; }

    /**
     * The underlying memory system (tests, state dumps). Only valid
     * for cache-channel games — i.e. whenever the environment was
     * built from an EnvConfig or a MemorySystem; throws for TLB /
     * prefetcher channels, which have no MemorySystem behind them.
     */
    MemorySystem &memory();

    /**
     * Attach a detector. Terminate-mode detectors end the episode with
     * detectionReward when they fire (requires detectionEnable);
     * Penalize-mode detectors contribute step and episode-end reward
     * penalties without terminating.
     */
    void attachDetector(std::shared_ptr<Detector> detector,
                        DetectorMode mode);

    /** Steps taken in the current episode. */
    unsigned stepsTaken() const { return step_count_; }

    /** Reseed the environment RNG (independent evaluation streams,
     *  campaign checkpoint boundaries). */
    void reseed(std::uint64_t seed) override { rng_.reseed(seed); }

  private:
    struct HistorySlot
    {
        int visibleLat = LatNa;  ///< latency class shown to the agent
        int actualLat = LatNa;   ///< true latency (reveal mode)
        std::size_t action = 0;
        unsigned step = 0;
        bool victimTriggered = false;
    };

    /** Per-attacker-address summary states (see buildObservation). */
    enum AddrLat : int {
        AddrHit = 0,
        AddrMiss = 1,
        AddrMasked = 2,
        AddrNever = 3,
    };

    void installListener();
    void initializeEpisodeState();
    void pushHistory(std::size_t action, int actual_lat);
    void buildObservationInto(float *out) const;
    std::optional<std::uint64_t> sampleSecret();

    /** The @p i-th oldest live history slot (i < hist_count_). */
    HistorySlot &
    histSlot(std::size_t i)
    {
        std::size_t idx = hist_head_ + i;
        if (idx >= window_)
            idx -= window_;
        return history_[idx];
    }
    const HistorySlot &
    histSlot(std::size_t i) const
    {
        std::size_t idx = hist_head_ + i;
        if (idx >= window_)
            idx -= window_;
        return history_[idx];
    }

    // Incremental maintenance of the persistent observation row.
    void advanceRowWindow();
    void refreshSummaryCells(std::size_t off);
    void refreshPostRegion();
    void writeRowGlobals();

    /** Re-render mask_ from the current episode state (mask_enabled_). */
    void refreshMask();

    EnvConfig config_;
    ActionSpace actions_;
    std::unique_ptr<ChannelModel> channel_;

    /**
     * Devirtualized access path when the channel is backed by a plain
     * Cache (the common scenario): attacker demand accesses go
     * straight to Cache::accessFast, skipping the virtual channel
     * dispatch. Null for hierarchies, the TLB channel, and custom
     * channels, which keep the interface path. victim_flat_cache_ is
     * the same shortcut for the victim's transmit, null whenever the
     * channel's transmit is more than a single access.
     */
    Cache *flat_cache_ = nullptr;
    Cache *victim_flat_cache_ = nullptr;

    Rng rng_;

    struct DetectorEntry
    {
        std::shared_ptr<Detector> detector;
        DetectorMode mode;
    };
    std::vector<DetectorEntry> detectors_;

    unsigned window_;
    unsigned length_limit_;
    std::size_t slot_dim_;

    // Episode state.
    std::optional<std::uint64_t> secret_;
    bool victim_triggered_ = false;
    bool revealed_ = false;
    bool done_ = true;
    unsigned step_count_ = 0;
    unsigned guesses_this_episode_ = 0;

    // Action-masking / reward-shaping state (sample-efficiency layer).
    bool mask_enabled_ = false;    ///< maskActions || maskUselessActions
    bool shaping_enabled_ = false; ///< uselessActionPenalty != 0
    bool track_last_ = false;      ///< mask_enabled_ || shaping_enabled_
    std::ptrdiff_t last_action_ = -1;  ///< previous step's action index
    std::vector<std::uint8_t> mask_storage_;
    std::uint8_t *mask_ = nullptr;

    /**
     * Fixed-capacity ring of the last window_ steps (oldest at
     * hist_head_). A deque here would pay an allocation check and a
     * size test on every push of the hottest path.
     */
    std::vector<HistorySlot> history_;
    std::size_t hist_head_ = 0;   ///< index of the oldest live slot
    std::size_t hist_count_ = 0;  ///< live slots (<= window_)

    /**
     * Summary feature state: the latency class last observed for each
     * attacker address (actual, and the masked view shown before a
     * reveal in batched mode). This is a re-encoding of information
     * already present in the observation window — it gives the MLP
     * policy fixed-position access to the per-address timing the
     * paper's Transformer extracts by pooling over the window.
     */
    std::vector<int> addr_lat_actual_;
    std::vector<int> addr_lat_visible_;

    /** Same summary restricted to accesses after the last trigger. */
    std::vector<int> addr_lat_post_actual_;
    std::vector<int> addr_lat_post_visible_;

    /**
     * Persistent observation row. Defaults to internal storage; the
     * batch engine re-homes it inside its SoA observation matrix
     * (bindObservationRow). Invariant after reset()/step()/stepFast():
     * row_[0..observationSize()) == rebuildObservation().
     */
    std::vector<float> row_storage_;
    float *row_ = nullptr;

    /**
     * Normalized step fractions, precomputed so the per-step row
     * encode performs table lookups instead of float divisions. The
     * entries are the exact divisions the observation contract
     * specifies (slot: t / max(1, length_limit); globals: t over the
     * mode's episode length), done once at construction — the encoded
     * floats are bitwise-unchanged.
     */
    std::vector<float> slot_norm_;
    std::vector<float> prog_norm_;

    /**
     * A fresh episode's observation row is a pure function of the
     * layout (empty window, all-AddrNever summaries, zero globals), so
     * reset memcpys this template instead of re-encoding it.
     */
    std::vector<float> fresh_row_;

    /** Warm-up address pool (Section VI-B), built once: the union of
     *  the attack and victim ranges with their access domains. */
    struct WarmupAddr
    {
        std::uint64_t addr;
        Domain domain;
    };
    std::vector<WarmupAddr> warm_pool_;
};

} // namespace autocat

#endif // AUTOCAT_ENV_GUESSING_GAME_HPP
