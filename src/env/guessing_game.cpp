#include "env/guessing_game.hpp"

#include <cassert>
#include <stdexcept>

namespace autocat {

std::unique_ptr<MemorySystem>
makeMemorySystem(const EnvConfig &config)
{
    if (!config.hierarchy.levels.empty())
        return std::make_unique<CacheHierarchy>(config.hierarchy);
    return std::make_unique<SingleLevelMemory>(config.cache);
}

CacheGuessingGame::CacheGuessingGame(const EnvConfig &config)
    : CacheGuessingGame(config, makeMemorySystem(config))
{
}

CacheGuessingGame::CacheGuessingGame(const EnvConfig &config,
                                     std::unique_ptr<MemorySystem> memory)
    : config_(config),
      actions_(config),
      memory_(std::move(memory)),
      rng_(config.seed),
      window_(config.resolvedWindowSize()),
      length_limit_(config.resolvedLengthLimit())
{
    if (config_.attackAddrE < config_.attackAddrS ||
        config_.victimAddrE < config_.victimAddrS) {
        throw std::invalid_argument("env: empty address range");
    }
    // Per-slot features: latency one-hot (3) + action one-hot (A) +
    // normalized step (1) + victim-triggered flag (1).
    slot_dim_ = 3 + actions_.size() + 2;
    installListener();
}

void
CacheGuessingGame::installListener()
{
    memory_->setEventListener([this](const CacheEvent &ev) {
        for (auto &entry : detectors_)
            entry.detector->onEvent(ev);
    });
}

void
CacheGuessingGame::attachDetector(std::shared_ptr<Detector> detector,
                                  DetectorMode mode)
{
    assert(detector);
    // A detector attached after reset() would otherwise carry whatever
    // per-episode state it accumulated elsewhere until the *next*
    // episode delivers onEpisodeReset() — campaign phases attach
    // detectors mid-session, so clear it now.
    detector->onEpisodeReset();
    detectors_.push_back({std::move(detector), mode});
}

std::size_t
CacheGuessingGame::observationSize() const
{
    // Window slots, plus two 4-state latency summaries per attacker
    // address (whole episode, and since the last victim trigger), plus
    // three global features: reveal-phase flag, victim-triggered flag,
    // and normalized episode progress.
    return static_cast<std::size_t>(window_) * slot_dim_ +
           8 * static_cast<std::size_t>(config_.numAttackAddrs()) + 3;
}

std::size_t
CacheGuessingGame::numActions() const
{
    return actions_.size();
}

std::vector<std::optional<std::uint64_t>>
CacheGuessingGame::secretSpace() const
{
    std::vector<std::optional<std::uint64_t>> secrets;
    for (std::uint64_t a = config_.victimAddrS; a <= config_.victimAddrE;
         ++a) {
        secrets.emplace_back(a);
    }
    if (config_.victimNoAccessEnable)
        secrets.emplace_back(std::nullopt);
    return secrets;
}

std::optional<std::uint64_t>
CacheGuessingGame::sampleSecret()
{
    const std::uint64_t n = config_.numSecrets();
    const std::uint64_t pick = rng_.uniformInt(n);
    if (pick < config_.numVictimAddrs())
        return config_.victimAddrS + pick;
    return std::nullopt;  // victim makes no access
}

void
CacheGuessingGame::initializeEpisodeState()
{
    memory_->reset();

    if (config_.plCacheLockVictim) {
        for (std::uint64_t a = config_.victimAddrS;
             a <= config_.victimAddrE; ++a) {
            memory_->lockLine(a, Domain::Victim);
        }
    }

    // Warm the cache with accesses sampled uniformly over the union of
    // the attack and victim address ranges (Section VI-B initialization
    // scheme). Locked lines survive.
    const unsigned warmups = config_.resolvedInitAccesses();
    if (warmups > 0) {
        std::vector<std::uint64_t> pool;
        for (std::uint64_t a = config_.attackAddrS;
             a <= config_.attackAddrE; ++a) {
            pool.push_back(a);
        }
        for (std::uint64_t a = config_.victimAddrS;
             a <= config_.victimAddrE; ++a) {
            if (a < config_.attackAddrS || a > config_.attackAddrE)
                pool.push_back(a);
        }
        for (unsigned i = 0; i < warmups; ++i) {
            const std::uint64_t a = pool[rng_.uniformInt(pool.size())];
            const bool attacker_addr =
                a >= config_.attackAddrS && a <= config_.attackAddrE;
            memory_->access(a, attacker_addr ? Domain::Attacker
                                             : Domain::Victim);
        }
    }

    // Detectors must not see the warm-up traffic.
    for (auto &entry : detectors_)
        entry.detector->onEpisodeReset();
}

std::vector<float>
CacheGuessingGame::reset()
{
    initializeEpisodeState();
    secret_ = sampleSecret();
    victim_triggered_ = false;
    revealed_ = false;
    done_ = false;
    step_count_ = 0;
    guesses_this_episode_ = 0;
    history_.clear();
    addr_lat_actual_.assign(
        static_cast<std::size_t>(config_.numAttackAddrs()), AddrNever);
    addr_lat_visible_ = addr_lat_actual_;
    addr_lat_post_actual_ = addr_lat_actual_;
    addr_lat_post_visible_ = addr_lat_actual_;
    return buildObservation();
}

void
CacheGuessingGame::forceSecret(std::optional<std::uint64_t> secret)
{
    if (secret && (*secret < config_.victimAddrS ||
                   *secret > config_.victimAddrE)) {
        throw std::out_of_range("forced secret outside victim range");
    }
    if (!secret && !config_.victimNoAccessEnable)
        throw std::logic_error("no-access secret is disabled");
    secret_ = secret;
}

void
CacheGuessingGame::pushHistory(std::size_t action, int actual_lat)
{
    HistorySlot slot;
    slot.actualLat = actual_lat;
    // In reveal mode latencies stay masked until the reveal point.
    slot.visibleLat =
        (config_.revealOnGuess && !revealed_) ? LatNa : actual_lat;
    slot.action = action;
    slot.step = step_count_;
    slot.victimTriggered = victim_triggered_;
    history_.push_back(slot);
    while (history_.size() > window_)
        history_.pop_front();
}

std::vector<float>
CacheGuessingGame::buildObservation() const
{
    std::vector<float> obs(observationSize(), 0.0f);
    // Newest slot occupies the last window position so the most recent
    // context always lives at a fixed offset.
    const std::size_t count = history_.size();
    for (std::size_t i = 0; i < count; ++i) {
        const HistorySlot &slot = history_[i];
        const std::size_t pos = window_ - count + i;
        float *base = obs.data() + pos * slot_dim_;
        base[slot.visibleLat] = 1.0f;
        base[3 + slot.action] = 1.0f;
        base[3 + actions_.size()] =
            static_cast<float>(slot.step) /
            static_cast<float>(std::max(1u, length_limit_));
        base[3 + actions_.size() + 1] = slot.victimTriggered ? 1.0f : 0.0f;
    }
    // Per-address latency summaries (fixed positions).
    std::size_t offset = window_ * slot_dim_;
    for (std::size_t a = 0; a < addr_lat_visible_.size(); ++a)
        obs[offset + 4 * a + addr_lat_visible_[a]] = 1.0f;
    offset += 4 * addr_lat_visible_.size();
    for (std::size_t a = 0; a < addr_lat_post_visible_.size(); ++a)
        obs[offset + 4 * a + addr_lat_post_visible_[a]] = 1.0f;
    offset += 4 * addr_lat_post_visible_.size();

    obs[offset] = revealed_ ? 1.0f : 0.0f;
    obs[offset + 1] = victim_triggered_ ? 1.0f : 0.0f;
    const unsigned denom = config_.multiSecret
                               ? config_.multiSecretEpisodeSteps
                               : length_limit_;
    obs[offset + 2] = static_cast<float>(step_count_) /
                      static_cast<float>(std::max(1u, denom));
    return obs;
}

StepResult
CacheGuessingGame::step(std::size_t action_index)
{
    if (done_)
        throw std::logic_error("step() after episode end; call reset()");
    assert(action_index < actions_.size());

    StepResult result;
    const Action action = actions_.decode(action_index);
    ++step_count_;

    int lat = LatNa;
    double reward = 0.0;

    switch (action.kind) {
      case ActionKind::Access: {
        const MemoryAccessResult res =
            memory_->access(action.addr, Domain::Attacker);
        lat = res.hit ? LatHit : LatMiss;
        reward += config_.stepReward;
        const std::size_t off =
            static_cast<std::size_t>(action.addr - config_.attackAddrS);
        const int cls = res.hit ? AddrHit : AddrMiss;
        const bool masked = config_.revealOnGuess && !revealed_;
        addr_lat_actual_[off] = cls;
        addr_lat_visible_[off] = masked ? AddrMasked : cls;
        if (victim_triggered_) {
            addr_lat_post_actual_[off] = cls;
            addr_lat_post_visible_[off] = masked ? AddrMasked : cls;
        }
        break;
      }
      case ActionKind::Flush: {
        memory_->flush(action.addr, Domain::Attacker);
        reward += config_.stepReward;
        break;
      }
      case ActionKind::TriggerVictim: {
        if (secret_)
            memory_->access(*secret_, Domain::Victim);
        victim_triggered_ = true;
        reward += config_.stepReward;
        // The post-trigger summary restarts at each trigger.
        addr_lat_post_actual_.assign(addr_lat_post_actual_.size(),
                                     AddrNever);
        addr_lat_post_visible_ = addr_lat_post_actual_;
        break;
      }
      case ActionKind::Guess:
      case ActionKind::GuessNoAccess: {
        if (config_.revealOnGuess && !revealed_) {
            // Real-hardware batched mode: the first guess action ends
            // the blind phase. The latency history becomes visible and
            // the agent guesses again with full information.
            revealed_ = true;
            for (auto &slot : history_)
                slot.visibleLat = slot.actualLat;
            addr_lat_visible_ = addr_lat_actual_;
            addr_lat_post_visible_ = addr_lat_post_actual_;
            reward += config_.stepReward;
            break;
        }
        const bool match =
            action.kind == ActionKind::GuessNoAccess
                ? !secret_.has_value()
                : (secret_.has_value() && action.addr == *secret_);
        const bool correct =
            match && (victim_triggered_ ||
                      !config_.requireTriggerBeforeGuess);
        reward += correct ? config_.correctGuessReward
                          : config_.wrongGuessReward;
        result.info.guessMade = true;
        result.info.guessCorrect = correct;
        ++guesses_this_episode_;

        if (config_.multiSecret) {
            // The guess transmits one symbol; the victim's next secret
            // is drawn fresh and the episode continues.
            secret_ = sampleSecret();
            victim_triggered_ = false;
            revealed_ = false;
            addr_lat_actual_.assign(addr_lat_actual_.size(), AddrNever);
            addr_lat_visible_ = addr_lat_actual_;
            addr_lat_post_actual_ = addr_lat_actual_;
            addr_lat_post_visible_ = addr_lat_actual_;
        } else {
            done_ = true;
        }
        break;
      }
    }

    // Detector handling.
    for (auto &entry : detectors_) {
        reward += entry.detector->consumeStepPenalty();
        if (entry.mode == DetectorMode::Terminate &&
            config_.detectionEnable && entry.detector->flagged() &&
            !done_) {
            reward += config_.detectionReward;
            result.info.detected = true;
            done_ = true;
        }
    }

    // Episode length handling.
    if (!done_) {
        if (config_.multiSecret) {
            if (step_count_ >= config_.multiSecretEpisodeSteps) {
                done_ = true;
                if (guesses_this_episode_ == 0)
                    reward += config_.noGuessReward;
            }
        } else if (step_count_ >= length_limit_) {
            done_ = true;
            reward += config_.lengthViolationReward;
            result.info.lengthViolation = true;
        }
    }

    // Episode-end detector outcomes (penalties and detection flags).
    if (done_) {
        for (auto &entry : detectors_) {
            if (entry.mode == DetectorMode::Penalize) {
                reward += entry.detector->episodePenalty();
                if (entry.detector->flagged())
                    result.info.detected = true;
            }
        }
    }

    pushHistory(action_index, lat);

    result.reward = reward;
    result.done = done_;
    result.info.observedLatency =
        (config_.revealOnGuess && !revealed_) ? LatNa : lat;
    result.obs = buildObservation();
    return result;
}

} // namespace autocat
