#include "env/guessing_game.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace autocat {

std::unique_ptr<MemorySystem>
makeMemorySystem(const EnvConfig &config)
{
    if (!config.hierarchy.levels.empty())
        return std::make_unique<CacheHierarchy>(config.hierarchy);
    return std::make_unique<SingleLevelMemory>(config.cache);
}

CacheGuessingGame::CacheGuessingGame(const EnvConfig &config)
    : CacheGuessingGame(config, makeMemorySystem(config))
{
}

CacheGuessingGame::CacheGuessingGame(const EnvConfig &config,
                                     std::unique_ptr<MemorySystem> memory)
    : CacheGuessingGame(
          config, std::make_unique<MemoryChannel>(std::move(memory)))
{
}

CacheGuessingGame::CacheGuessingGame(const EnvConfig &config,
                                     std::unique_ptr<ChannelModel> channel)
    : config_(config),
      actions_(config),
      channel_(std::move(channel)),
      rng_(config.seed),
      window_(config.resolvedWindowSize()),
      length_limit_(config.resolvedLengthLimit())
{
    if (config_.attackAddrE < config_.attackAddrS ||
        config_.victimAddrE < config_.victimAddrS) {
        throw std::invalid_argument("env: empty address range");
    }
    // Per-slot features: latency one-hot (3) + action one-hot (A) +
    // normalized step (1) + victim-triggered flag (1).
    slot_dim_ = 3 + actions_.size() + 2;
    row_storage_.assign(observationSize(), 0.0f);
    row_ = row_storage_.data();

    flat_cache_ = channel_->fastAttackerCache();
    victim_flat_cache_ = channel_->fastVictimCache();

    history_.resize(window_);

    // Step counts never exceed the mode's episode length (stepFast
    // raises done_ at the boundary), so these tables cover every value
    // the encode can see.
    const unsigned max_steps =
        std::max(length_limit_, config_.multiSecret
                                    ? config_.multiSecretEpisodeSteps
                                    : 0u);
    const float slot_denom =
        static_cast<float>(std::max(1u, length_limit_));
    const float prog_denom = static_cast<float>(
        std::max(1u, config_.multiSecret ? config_.multiSecretEpisodeSteps
                                         : length_limit_));
    slot_norm_.resize(static_cast<std::size_t>(max_steps) + 1);
    prog_norm_.resize(static_cast<std::size_t>(max_steps) + 1);
    for (unsigned t = 0; t <= max_steps; ++t) {
        slot_norm_[t] = static_cast<float>(t) / slot_denom;
        prog_norm_[t] = static_cast<float>(t) / prog_denom;
    }

    for (std::uint64_t a = config_.attackAddrS; a <= config_.attackAddrE;
         ++a) {
        warm_pool_.push_back({a, Domain::Attacker});
    }
    for (std::uint64_t a = config_.victimAddrS; a <= config_.victimAddrE;
         ++a) {
        if (a < config_.attackAddrS || a > config_.attackAddrE)
            warm_pool_.push_back({a, Domain::Victim});
    }

    // Size the summary state so the fresh-episode template can be
    // rendered now; resetRow() re-assigns the same values each episode.
    addr_lat_actual_.assign(
        static_cast<std::size_t>(config_.numAttackAddrs()), AddrNever);
    addr_lat_visible_ = addr_lat_actual_;
    addr_lat_post_actual_ = addr_lat_actual_;
    addr_lat_post_visible_ = addr_lat_actual_;
    fresh_row_.resize(observationSize());
    buildObservationInto(fresh_row_.data());

    mask_enabled_ = config_.maskActions || config_.maskUselessActions;
    shaping_enabled_ = config_.uselessActionPenalty != 0.0;
    if (config_.uselessActionPenalty < 0.0) {
        throw std::invalid_argument(
            "env: useless_action_penalty must be >= 0");
    }
    track_last_ = mask_enabled_ || shaping_enabled_;
    mask_storage_.assign(actions_.size(), std::uint8_t{1});
    mask_ = mask_storage_.data();
}

MemorySystem &
CacheGuessingGame::memory()
{
    MemorySystem *mem = channel_->memorySystem();
    if (!mem) {
        throw std::logic_error(
            "CacheGuessingGame::memory(): channel has no MemorySystem");
    }
    return *mem;
}

void
CacheGuessingGame::installListener()
{
    channel_->setEventListener([this](const CacheEvent &ev) {
        for (auto &entry : detectors_)
            entry.detector->onEvent(ev);
    });
}

void
CacheGuessingGame::attachDetector(std::shared_ptr<Detector> detector,
                                  DetectorMode mode)
{
    assert(detector);
    // The event listener is installed lazily on the first attachment:
    // a detector-free environment pays no per-event std::function
    // dispatch in the cache model's access path.
    if (detectors_.empty())
        installListener();
    // A detector attached after reset() would otherwise carry whatever
    // per-episode state it accumulated elsewhere until the *next*
    // episode delivers onEpisodeReset() — campaign phases attach
    // detectors mid-session, so clear it now.
    detector->onEpisodeReset();
    detectors_.push_back({std::move(detector), mode});
}

std::size_t
CacheGuessingGame::observationSize() const
{
    // Window slots, plus two 4-state latency summaries per attacker
    // address (whole episode, and since the last victim trigger), plus
    // three global features: reveal-phase flag, victim-triggered flag,
    // and normalized episode progress.
    return static_cast<std::size_t>(window_) * slot_dim_ +
           8 * static_cast<std::size_t>(config_.numAttackAddrs()) + 3;
}

std::size_t
CacheGuessingGame::numActions() const
{
    return actions_.size();
}

std::vector<std::optional<std::uint64_t>>
CacheGuessingGame::secretSpace() const
{
    std::vector<std::optional<std::uint64_t>> secrets;
    for (std::uint64_t a = config_.victimAddrS; a <= config_.victimAddrE;
         ++a) {
        secrets.emplace_back(a);
    }
    if (config_.victimNoAccessEnable)
        secrets.emplace_back(std::nullopt);
    return secrets;
}

std::optional<std::uint64_t>
CacheGuessingGame::sampleSecret()
{
    const std::uint64_t n = config_.numSecrets();
    const std::uint64_t pick = rng_.uniformInt(n);
    if (pick < config_.numVictimAddrs())
        return config_.victimAddrS + pick;
    return std::nullopt;  // victim makes no access
}

void
CacheGuessingGame::initializeEpisodeState()
{
    channel_->reset();

    if (config_.plCacheLockVictim) {
        for (std::uint64_t a = config_.victimAddrS;
             a <= config_.victimAddrE; ++a) {
            channel_->lockLine(a, Domain::Victim);
        }
    }

    // Warm the channel with accesses sampled uniformly over the union
    // of the attack and victim address ranges (Section VI-B
    // initialization scheme). Locked lines survive.
    const unsigned warmups = config_.resolvedInitAccesses();
    for (unsigned i = 0; i < warmups; ++i) {
        const WarmupAddr &w = warm_pool_[rng_.uniformInt(warm_pool_.size())];
        if (flat_cache_)
            flat_cache_->accessFast(w.addr, w.domain);
        else
            channel_->warmupAccess(w.addr, w.domain);
    }

    // Detectors must not see the warm-up traffic.
    for (auto &entry : detectors_)
        entry.detector->onEpisodeReset();
}

std::vector<float>
CacheGuessingGame::reset()
{
    resetRow();
    return std::vector<float>(row_, row_ + observationSize());
}

void
CacheGuessingGame::resetRow()
{
    initializeEpisodeState();
    secret_ = sampleSecret();
    victim_triggered_ = false;
    revealed_ = false;
    done_ = false;
    step_count_ = 0;
    guesses_this_episode_ = 0;
    hist_head_ = 0;
    hist_count_ = 0;
    std::fill(addr_lat_actual_.begin(), addr_lat_actual_.end(),
              static_cast<int>(AddrNever));
    addr_lat_visible_ = addr_lat_actual_;
    addr_lat_post_actual_ = addr_lat_actual_;
    addr_lat_post_visible_ = addr_lat_actual_;
    // The fresh row is episode-independent; copy the template instead
    // of re-encoding it.
    std::memcpy(row_, fresh_row_.data(),
                observationSize() * sizeof(float));
    if (track_last_) {
        last_action_ = -1;
        if (mask_enabled_)
            refreshMask();
    }
}

void
CacheGuessingGame::bindMaskRow(std::uint8_t *row)
{
    std::uint8_t *target = row ? row : mask_storage_.data();
    if (target == mask_)
        return;
    std::memcpy(target, mask_, actions_.size() * sizeof(std::uint8_t));
    mask_ = target;
}

void
CacheGuessingGame::refreshMask()
{
    // Guesses are selectable whenever a guess could score as correct —
    // or when the next guess is the reveal action of the batched
    // real-hardware mode, which is always useful.
    const bool guesses_valid =
        !config_.maskActions || victim_triggered_ ||
        !config_.requireTriggerBeforeGuess ||
        (config_.revealOnGuess && !revealed_);
    actions_.writeMask(mask_, guesses_valid,
                       config_.maskUselessActions ? last_action_ : -1);
}

void
CacheGuessingGame::bindObservationRow(float *row)
{
    float *target = row ? row : row_storage_.data();
    if (target == row_)
        return;
    std::memcpy(target, row_, observationSize() * sizeof(float));
    row_ = target;
}

void
CacheGuessingGame::forceSecret(std::optional<std::uint64_t> secret)
{
    if (secret && (*secret < config_.victimAddrS ||
                   *secret > config_.victimAddrE)) {
        throw std::out_of_range("forced secret outside victim range");
    }
    if (!secret && !config_.victimNoAccessEnable)
        throw std::logic_error("no-access secret is disabled");
    secret_ = secret;
}

void
CacheGuessingGame::pushHistory(std::size_t action, int actual_lat)
{
    HistorySlot &slot = hist_count_ < window_
                            ? histSlot(hist_count_)
                            : histSlot(0);
    slot.actualLat = actual_lat;
    // In reveal mode latencies stay masked until the reveal point.
    slot.visibleLat =
        (config_.revealOnGuess && !revealed_) ? LatNa : actual_lat;
    slot.action = action;
    slot.step = step_count_;
    slot.victimTriggered = victim_triggered_;
    if (hist_count_ < window_) {
        ++hist_count_;
    } else {
        // Full ring: the oldest slot was just overwritten in place.
        ++hist_head_;
        if (hist_head_ >= window_)
            hist_head_ = 0;
    }
}

std::vector<float>
CacheGuessingGame::rebuildObservation() const
{
    std::vector<float> obs(observationSize());
    buildObservationInto(obs.data());
    return obs;
}

void
CacheGuessingGame::buildObservationInto(float *out) const
{
    std::fill(out, out + observationSize(), 0.0f);
    // Newest slot occupies the last window position so the most recent
    // context always lives at a fixed offset.
    const std::size_t count = hist_count_;
    for (std::size_t i = 0; i < count; ++i) {
        const HistorySlot &slot = histSlot(i);
        const std::size_t pos = window_ - count + i;
        float *base = out + pos * slot_dim_;
        base[slot.visibleLat] = 1.0f;
        base[3 + slot.action] = 1.0f;
        base[3 + actions_.size()] = slot_norm_[slot.step];
        base[3 + actions_.size() + 1] = slot.victimTriggered ? 1.0f : 0.0f;
    }
    // Per-address latency summaries (fixed positions).
    std::size_t offset = window_ * slot_dim_;
    for (std::size_t a = 0; a < addr_lat_visible_.size(); ++a)
        out[offset + 4 * a + addr_lat_visible_[a]] = 1.0f;
    offset += 4 * addr_lat_visible_.size();
    for (std::size_t a = 0; a < addr_lat_post_visible_.size(); ++a)
        out[offset + 4 * a + addr_lat_post_visible_[a]] = 1.0f;
    offset += 4 * addr_lat_post_visible_.size();

    out[offset] = revealed_ ? 1.0f : 0.0f;
    out[offset + 1] = victim_triggered_ ? 1.0f : 0.0f;
    out[offset + 2] = prog_norm_[step_count_];
}

/*
 * Incremental row maintenance. A normal step changes the observation
 * in three small, disjoint places: the window shifts left by one slot
 * and the newest history entry is encoded at the end; at most one
 * attacker address changes its summary one-hots (or the post-trigger
 * region resets); and the three global features are rewritten. The
 * rare structural events — reset, the reveal transition, a
 * multi-secret symbol boundary — rewrite state across the whole window
 * and fall back to buildObservationInto().
 */

void
CacheGuessingGame::advanceRowWindow()
{
    float *w = row_;
    std::memmove(w, w + slot_dim_,
                 (static_cast<std::size_t>(window_) - 1) * slot_dim_ *
                     sizeof(float));
    float *slot = w + (static_cast<std::size_t>(window_) - 1) * slot_dim_;
    std::fill(slot, slot + slot_dim_, 0.0f);
    const HistorySlot &hs = histSlot(hist_count_ - 1);
    slot[hs.visibleLat] = 1.0f;
    slot[3 + hs.action] = 1.0f;
    slot[3 + actions_.size()] = slot_norm_[hs.step];
    slot[3 + actions_.size() + 1] = hs.victimTriggered ? 1.0f : 0.0f;
}

void
CacheGuessingGame::refreshSummaryCells(std::size_t off)
{
    const std::size_t num_addrs = addr_lat_visible_.size();
    float *episode =
        row_ + static_cast<std::size_t>(window_) * slot_dim_ + 4 * off;
    episode[0] = episode[1] = episode[2] = episode[3] = 0.0f;
    episode[addr_lat_visible_[off]] = 1.0f;
    float *post = episode + 4 * num_addrs;
    post[0] = post[1] = post[2] = post[3] = 0.0f;
    post[addr_lat_post_visible_[off]] = 1.0f;
}

void
CacheGuessingGame::refreshPostRegion()
{
    const std::size_t num_addrs = addr_lat_post_visible_.size();
    float *post = row_ + static_cast<std::size_t>(window_) * slot_dim_ +
                  4 * num_addrs;
    std::fill(post, post + 4 * num_addrs, 0.0f);
    for (std::size_t a = 0; a < num_addrs; ++a)
        post[4 * a + addr_lat_post_visible_[a]] = 1.0f;
}

void
CacheGuessingGame::writeRowGlobals()
{
    float *g = row_ + static_cast<std::size_t>(window_) * slot_dim_ +
               8 * addr_lat_visible_.size();
    g[0] = revealed_ ? 1.0f : 0.0f;
    g[1] = victim_triggered_ ? 1.0f : 0.0f;
    g[2] = prog_norm_[step_count_];
}

StepResult
CacheGuessingGame::step(std::size_t action_index)
{
    const FastStep fs = stepFast(action_index);
    StepResult result;
    result.reward = fs.reward;
    result.done = fs.done;
    result.info = fs.info;
    result.obs.assign(row_, row_ + observationSize());
    return result;
}

CacheGuessingGame::FastStep
CacheGuessingGame::stepFast(std::size_t action_index)
{
    if (done_)
        throw std::logic_error("step() after episode end; call reset()");
    assert(action_index < actions_.size());

    FastStep result;
    const Action action = actions_.decode(action_index);
    ++step_count_;

    // How the observation row must be refreshed after this step:
    // full rebuild on structural events, otherwise the summary cells
    // of at most one touched address (or a post-region reset).
    bool rebuild = false;
    bool post_reset = false;
    std::ptrdiff_t touched_addr = -1;

    int lat = LatNa;
    double reward = 0.0;

    switch (action.kind) {
      case ActionKind::Access: {
        const bool hit =
            flat_cache_
                ? flat_cache_->accessFast(action.addr, Domain::Attacker)
                : channel_->attackerAccess(action.addr);
        lat = hit ? LatHit : LatMiss;
        reward += config_.stepReward;
        const std::size_t off =
            static_cast<std::size_t>(action.addr - config_.attackAddrS);
        const int cls = hit ? AddrHit : AddrMiss;
        const bool masked = config_.revealOnGuess && !revealed_;
        addr_lat_actual_[off] = cls;
        addr_lat_visible_[off] = masked ? AddrMasked : cls;
        if (victim_triggered_) {
            addr_lat_post_actual_[off] = cls;
            addr_lat_post_visible_[off] = masked ? AddrMasked : cls;
        }
        touched_addr = static_cast<std::ptrdiff_t>(off);
        break;
      }
      case ActionKind::Flush: {
        channel_->attackerFlush(action.addr);
        reward += config_.stepReward;
        break;
      }
      case ActionKind::TriggerVictim: {
        if (secret_) {
            if (victim_flat_cache_)
                victim_flat_cache_->accessFast(*secret_, Domain::Victim);
            else
                channel_->victimTransmit(*secret_);
        }
        victim_triggered_ = true;
        reward += config_.stepReward;
        // The post-trigger summary restarts at each trigger.
        addr_lat_post_actual_.assign(addr_lat_post_actual_.size(),
                                     AddrNever);
        addr_lat_post_visible_ = addr_lat_post_actual_;
        post_reset = true;
        break;
      }
      case ActionKind::Guess:
      case ActionKind::GuessNoAccess: {
        if (config_.revealOnGuess && !revealed_) {
            // Real-hardware batched mode: the first guess action ends
            // the blind phase. The latency history becomes visible and
            // the agent guesses again with full information.
            revealed_ = true;
            for (std::size_t i = 0; i < hist_count_; ++i) {
                HistorySlot &slot = histSlot(i);
                slot.visibleLat = slot.actualLat;
            }
            addr_lat_visible_ = addr_lat_actual_;
            addr_lat_post_visible_ = addr_lat_post_actual_;
            reward += config_.stepReward;
            rebuild = true;  // every window slot's latency unmasked
            break;
        }
        const bool match =
            action.kind == ActionKind::GuessNoAccess
                ? !secret_.has_value()
                : (secret_.has_value() && action.addr == *secret_);
        const bool correct =
            match && (victim_triggered_ ||
                      !config_.requireTriggerBeforeGuess);
        reward += correct ? config_.correctGuessReward
                          : config_.wrongGuessReward;
        result.info.guessMade = true;
        result.info.guessCorrect = correct;
        ++guesses_this_episode_;

        if (config_.multiSecret) {
            // The guess transmits one symbol; the victim's next secret
            // is drawn fresh and the episode continues.
            secret_ = sampleSecret();
            victim_triggered_ = false;
            revealed_ = false;
            addr_lat_actual_.assign(addr_lat_actual_.size(), AddrNever);
            addr_lat_visible_ = addr_lat_actual_;
            addr_lat_post_actual_ = addr_lat_actual_;
            addr_lat_post_visible_ = addr_lat_actual_;
            rebuild = true;  // both summary regions restart
        } else {
            done_ = true;
        }
        break;
      }
    }

    // Useless-action shaping: an immediate repeat of the previous
    // non-guess action re-observes already-known state (re-access of
    // the MRU line, re-flush of an absent line, re-run of the victim)
    // and costs the configured penalty on top of the step reward.
    // Guarded so unshaped configs run the exact legacy arithmetic.
    if (shaping_enabled_ && !action.isGuess() &&
        last_action_ == static_cast<std::ptrdiff_t>(action_index)) {
        reward -= config_.uselessActionPenalty;
    }

    // Detector handling.
    for (auto &entry : detectors_) {
        reward += entry.detector->consumeStepPenalty();
        if (entry.mode == DetectorMode::Terminate &&
            config_.detectionEnable && entry.detector->flagged() &&
            !done_) {
            reward += config_.detectionReward;
            result.info.detected = true;
            done_ = true;
        }
    }

    // Episode length handling.
    if (!done_) {
        if (config_.multiSecret) {
            if (step_count_ >= config_.multiSecretEpisodeSteps) {
                done_ = true;
                if (guesses_this_episode_ == 0)
                    reward += config_.noGuessReward;
            }
        } else if (step_count_ >= length_limit_) {
            done_ = true;
            reward += config_.lengthViolationReward;
            result.info.lengthViolation = true;
        }
    }

    // Episode-end detector outcomes (penalties and detection flags).
    if (done_) {
        for (auto &entry : detectors_) {
            if (entry.mode == DetectorMode::Penalize) {
                reward += entry.detector->episodePenalty();
                if (entry.detector->flagged())
                    result.info.detected = true;
            }
        }
    }

    pushHistory(action_index, lat);

    if (rebuild) {
        buildObservationInto(row_);
    } else {
        advanceRowWindow();
        if (touched_addr >= 0)
            refreshSummaryCells(static_cast<std::size_t>(touched_addr));
        else if (post_reset)
            refreshPostRegion();
        writeRowGlobals();
    }

    if (track_last_) {
        last_action_ = static_cast<std::ptrdiff_t>(action_index);
        if (mask_enabled_)
            refreshMask();
    }

    result.reward = reward;
    result.done = done_;
    result.info.observedLatency =
        (config_.revealOnGuess && !revealed_) ? LatNa : lat;
    return result;
}

} // namespace autocat
