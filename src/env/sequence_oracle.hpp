/**
 * @file
 * Distinguishing-sequence oracle over an EnvConfig.
 *
 * A fixed primitive-action sequence (accesses, flushes, victim
 * triggers) is a working attack exactly when the latency pattern it
 * produces differs for every pair of secrets — then a final guess can
 * decode the secret from the observations. The search baselines of
 * Section VI-A use this oracle to score candidates.
 */

#ifndef AUTOCAT_ENV_SEQUENCE_ORACLE_HPP
#define AUTOCAT_ENV_SEQUENCE_ORACLE_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "env/action_space.hpp"
#include "env/env_config.hpp"
#include "rl/env_interface.hpp"
#include "rl/search.hpp"

namespace autocat {

class CacheGuessingGame;

/** Oracle that replays sequences against every secret. */
class DistinguishingOracle : public SequenceOracle
{
  public:
    /**
     * @param config environment description (randomInit is ignored:
     *               candidates run from a deterministic empty cache so
     *               distinguishability is well defined)
     */
    explicit DistinguishingOracle(const EnvConfig &config);

    std::size_t numPrimitives() const override;
    bool isDistinguishing(const std::vector<std::size_t> &seq) override;
    long long
    stepsPerTrial(const std::vector<std::size_t> &seq) const override;

    /**
     * Latency pattern of @p seq under @p secret (one entry per access
     * action; flushes and triggers contribute no observation).
     */
    std::vector<int>
    latencyPattern(const std::vector<std::size_t> &seq,
                   std::optional<std::uint64_t> secret) const;

    /** The action space used for index decoding. */
    const ActionSpace &actionSpace() const { return actions_; }

  private:
    EnvConfig config_;
    ActionSpace actions_;
};

/**
 * Registry-aware oracle: candidates are replayed through the actual
 * scenario environment (env/env_registry.hpp) instead of a bare memory
 * system, so search baselines score sequences against exactly the
 * channel the RL agent trains on — hierarchy scenarios, the TLB, the
 * prefetcher side channel, detector-in-the-loop variants — which
 * DistinguishingOracle's flat-cache replay cannot represent. The
 * latency pattern is the per-access StepInfo::observedLatency stream.
 *
 * Replays force randomInit off (candidates run from the deterministic
 * empty channel, so distinguishability is well defined) and pin the
 * secret per trial via forceSecret(). A candidate whose replay ends
 * the episode early (length limit, a terminating detector) under any
 * secret is scored non-distinguishing: its observations are truncated,
 * so it cannot carry a full decode.
 */
class ScenarioOracle : public SequenceOracle
{
  public:
    /**
     * @param scenario registry scenario name the cells train on
     * @param config   environment description (randomInit forced off)
     *
     * @throws std::out_of_range for an unknown scenario
     * @throws std::invalid_argument when the scenario does not build a
     *         CacheGuessingGame (no forceSecret/secretSpace to replay
     *         against)
     */
    ScenarioOracle(const std::string &scenario, const EnvConfig &config);
    ~ScenarioOracle();

    std::size_t numPrimitives() const override;
    bool isDistinguishing(const std::vector<std::size_t> &seq) override;
    long long
    stepsPerTrial(const std::vector<std::size_t> &seq) const override;

    /** The replayed game's action space (index decoding, rendering). */
    const ActionSpace &actionSpace() const;

  private:
    /** Replay @p seq under @p secret; false when the episode ended
     *  before the sequence completed. */
    bool replayPattern(const std::vector<std::size_t> &seq,
                       std::optional<std::uint64_t> secret,
                       std::vector<int> &pattern);

    std::unique_ptr<Environment> env_;
    CacheGuessingGame *game_ = nullptr;  ///< env_ downcast (non-owning)
    std::vector<std::optional<std::uint64_t>> secrets_;
};

} // namespace autocat

#endif // AUTOCAT_ENV_SEQUENCE_ORACLE_HPP
