/**
 * @file
 * Distinguishing-sequence oracle over an EnvConfig.
 *
 * A fixed primitive-action sequence (accesses, flushes, victim
 * triggers) is a working attack exactly when the latency pattern it
 * produces differs for every pair of secrets — then a final guess can
 * decode the secret from the observations. The search baselines of
 * Section VI-A use this oracle to score candidates.
 */

#ifndef AUTOCAT_ENV_SEQUENCE_ORACLE_HPP
#define AUTOCAT_ENV_SEQUENCE_ORACLE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "env/action_space.hpp"
#include "env/env_config.hpp"
#include "rl/search.hpp"

namespace autocat {

/** Oracle that replays sequences against every secret. */
class DistinguishingOracle : public SequenceOracle
{
  public:
    /**
     * @param config environment description (randomInit is ignored:
     *               candidates run from a deterministic empty cache so
     *               distinguishability is well defined)
     */
    explicit DistinguishingOracle(const EnvConfig &config);

    std::size_t numPrimitives() const override;
    bool isDistinguishing(const std::vector<std::size_t> &seq) override;
    long long
    stepsPerTrial(const std::vector<std::size_t> &seq) const override;

    /**
     * Latency pattern of @p seq under @p secret (one entry per access
     * action; flushes and triggers contribute no observation).
     */
    std::vector<int>
    latencyPattern(const std::vector<std::size_t> &seq,
                   std::optional<std::uint64_t> secret) const;

    /** The action space used for index decoding. */
    const ActionSpace &actionSpace() const { return actions_; }

  private:
    EnvConfig config_;
    ActionSpace actions_;
};

} // namespace autocat

#endif // AUTOCAT_ENV_SEQUENCE_ORACLE_HPP
