/**
 * @file
 * Machine-readable and human-readable renderings of a SweepReport.
 *
 * JSON and CSV writers for plotting/diffing pipelines, and a
 * util/table summary for the terminal. The JSON writer is
 * byte-deterministic: fixed key order, fixed float formatting, and —
 * unless timing is explicitly requested — no wall-clock fields, so
 * two runs of the same sweep at the same seeds produce bit-identical
 * reports (the reproducibility contract sweeps are built for).
 */

#ifndef AUTOCAT_EVAL_REPORT_HPP
#define AUTOCAT_EVAL_REPORT_HPP

#include <ostream>
#include <string>

#include "eval/sweep.hpp"
#include "util/table.hpp"

namespace autocat {

/** Report rendering options. */
struct ReportOptions
{
    /** Emit wall-time fields (makes the JSON run-dependent). */
    bool includeTiming = false;
};

/** Write the report as JSON (schema in docs/EVALUATION.md). */
void writeSweepReportJson(std::ostream &os, const SweepReport &report,
                          const ReportOptions &options = {});

/** Render the report as a JSON string. */
std::string sweepReportJson(const SweepReport &report,
                            const ReportOptions &options = {});

/** Write the report as CSV, one row per cell (header row first). */
void writeSweepReportCsv(std::ostream &os, const SweepReport &report,
                         const ReportOptions &options = {});

/** Terminal summary table (one row per cell). */
TextTable sweepSummaryTable(const SweepReport &report);

} // namespace autocat

#endif // AUTOCAT_EVAL_REPORT_HPP
