#include "eval/report.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "attacks/classifier.hpp"

namespace autocat {

namespace {

/** Deterministic double rendering. std::to_chars is locale-independent
 *  by specification, unlike snprintf("%g"), whose decimal point follows
 *  LC_NUMERIC — a host program calling setlocale() must not be able to
 *  break the byte-determinism contract (or JSON validity). */
std::string
jsonNumber(double v)
{
    char buf[40];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                   std::chars_format::general, 9);
    return std::string(buf, res.ptr);
}

/** JSON string escaping (control chars, quotes, backslash). */
std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

/** CSV field quoting (always quoted; doubled inner quotes). */
std::string
csvField(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

std::string
sequenceString(const SweepCellResult &cell)
{
    if (!cell.completed)
        return "";
    std::string seq = cell.result.sequence.toString(false);
    if (!cell.result.finalGuess.empty())
        seq += (seq.empty() ? "" : " ") + ("-> " + cell.result.finalGuess);
    return seq;
}

} // namespace

void
writeSweepReportJson(std::ostream &os, const SweepReport &report,
                     const ReportOptions &options)
{
    os << "{\n"
       << "  \"name\": " << jsonString(report.name) << ",\n"
       << "  \"schema_version\": 2,\n"
       << "  \"cells\": [";
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const SweepCellResult &c = report.cells[i];
        const ExplorationResult &r = c.result;
        os << (i ? ",\n" : "\n") << "    {\n"
           << "      \"index\": " << c.cell.index << ",\n"
           << "      \"label\": " << jsonString(c.cell.label) << ",\n"
           << "      \"scenario\": " << jsonString(c.cell.scenario)
           << ",\n"
           << "      \"hierarchy\": " << jsonString(c.cell.hierarchy)
           << ",\n"
           << "      \"policy\": " << jsonString(c.cell.policy) << ",\n"
           << "      \"agent\": " << jsonString(c.cell.agent) << ",\n"
           << "      \"seed\": " << c.cell.seed << ",\n"
           << "      \"completed\": " << (c.completed ? "true" : "false")
           << ",\n"
           << "      \"error\": " << jsonString(c.error) << ",\n"
           << "      \"converged\": "
           << (c.completed && r.converged ? "true" : "false") << ",\n"
           << "      \"epochs_to_converge\": " << r.epochsToConverge
           << ",\n"
           << "      \"env_steps\": " << r.envSteps << ",\n"
           << "      \"steps_to_discovery\": " << r.stepsToDiscovery
           << ",\n"
           << "      \"accuracy\": " << jsonNumber(r.finalAccuracy)
           << ",\n"
           << "      \"episode_length\": "
           << jsonNumber(r.finalEpisodeLength) << ",\n"
           << "      \"bit_rate\": " << jsonNumber(r.bitRate) << ",\n"
           << "      \"detection_rate\": " << jsonNumber(r.detectionRate)
           << ",\n"
           << "      \"sequence\": " << jsonString(sequenceString(c))
           << ",\n"
           << "      \"category\": "
           << jsonString(c.completed ? categoryLabel(r.category) : "");
        if (options.includeTiming) {
            // attempts travels with the timing block: like wall time it
            // depends on how the run went (worker deaths, retries), not
            // on what the cells computed, and must stay out of the
            // byte-deterministic default report.
            os << ",\n      \"wall_s\": " << jsonNumber(c.wallSeconds)
               << ",\n      \"attempts\": " << c.attempts;
        }
        os << "\n    }";
    }
    os << "\n  ]";
    if (options.includeTiming)
        os << ",\n  \"total_wall_s\": " << jsonNumber(report.wallSeconds);
    os << "\n}\n";
}

std::string
sweepReportJson(const SweepReport &report, const ReportOptions &options)
{
    std::ostringstream oss;
    writeSweepReportJson(oss, report, options);
    return oss.str();
}

void
writeSweepReportCsv(std::ostream &os, const SweepReport &report,
                    const ReportOptions &options)
{
    os << "index,label,scenario,hierarchy,policy,agent,seed,completed,"
          "error,converged,epochs_to_converge,env_steps,"
          "steps_to_discovery,accuracy,episode_length,bit_rate,"
          "detection_rate,sequence,category";
    if (options.includeTiming)
        os << ",wall_s,attempts";
    os << "\n";
    for (const SweepCellResult &c : report.cells) {
        const ExplorationResult &r = c.result;
        os << c.cell.index << ',' << csvField(c.cell.label) << ','
           << csvField(c.cell.scenario) << ','
           << csvField(c.cell.hierarchy) << ',' << csvField(c.cell.policy)
           << ',' << csvField(c.cell.agent) << ',' << c.cell.seed << ','
           << (c.completed ? 1 : 0) << ',' << csvField(c.error) << ','
           << (c.completed && r.converged ? 1 : 0) << ','
           << r.epochsToConverge << ',' << r.envSteps << ','
           << r.stepsToDiscovery << ','
           << jsonNumber(r.finalAccuracy) << ','
           << jsonNumber(r.finalEpisodeLength) << ','
           << jsonNumber(r.bitRate) << ','
           << jsonNumber(r.detectionRate) << ','
           << csvField(sequenceString(c)) << ','
           << csvField(c.completed ? categoryLabel(r.category) : "");
        if (options.includeTiming)
            os << ',' << jsonNumber(c.wallSeconds) << ',' << c.attempts;
        os << "\n";
    }
}

TextTable
sweepSummaryTable(const SweepReport &report)
{
    TextTable table(report.name,
                    {"No.", "Cell", "Policy", "Seed", "Conv", "Epochs",
                     "Steps", "Acc", "Len", "Wall(s)", "Attack found"});
    for (const SweepCellResult &c : report.cells) {
        const ExplorationResult &r = c.result;
        std::string status;
        if (!c.completed)
            status = "FAILED: " + c.error;
        else if (r.converged)
            status = categoryLabel(r.category);
        else
            status = "(timeout) " + sequenceString(c);
        std::string cell_name =
            c.cell.scenario +
            (c.cell.hierarchy == "-" ? "" : " [" + c.cell.hierarchy + "]");
        if (c.cell.agent != "ppo")
            cell_name += " (" + c.cell.agent + ")";
        table.addRow(
            {TextTable::fmt(static_cast<long>(c.cell.index)), cell_name,
             c.cell.policy, std::to_string(c.cell.seed),
             c.completed && r.converged ? "yes" : "no",
             c.completed && r.converged && r.epochsToConverge >= 0
                 ? TextTable::fmt(static_cast<long>(r.epochsToConverge))
                 : "-",
             c.completed && r.stepsToDiscovery >= 0
                 ? TextTable::fmt(static_cast<long>(r.stepsToDiscovery))
                 : "-",
             c.completed ? TextTable::fmt(r.finalAccuracy, 2) : "-",
             c.completed ? TextTable::fmt(r.finalEpisodeLength, 1) : "-",
             TextTable::fmt(c.wallSeconds, 1),
             c.completed && r.converged ? sequenceString(c) : status});
    }
    return table;
}

} // namespace autocat
