#include "eval/sweep_config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/campaign_config.hpp"
#include "core/config_parser.hpp"
#include "util/socket.hpp"

namespace autocat {

namespace {

/** Split a comma-separated list; empty items — including the one a
 *  trailing comma leaves behind — are malformed. */
std::vector<std::string>
parseList(const std::string &value, const std::string &key)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    for (;;) {
        const std::size_t comma = value.find(',', start);
        const std::string item = trimConfigToken(
            comma == std::string::npos
                ? value.substr(start)
                : value.substr(start, comma - start));
        if (item.empty()) {
            throw std::invalid_argument("config: empty item in list for " +
                                        key);
        }
        items.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return items;
}

/** Apply one `sweep.*` key; throws for unknown fields / bad values. */
void
applySweepKey(SweepConfig &cfg, const std::string &key,
              const std::string &value)
{
    if (key == "sweep.name") {
        cfg.name = value;
    } else if (key == "sweep.scenarios") {
        cfg.grid.scenarios = parseList(value, key);
    } else if (key == "sweep.policies") {
        cfg.grid.policies.clear();
        for (const std::string &p : parseList(value, key))
            cfg.grid.policies.push_back(replPolicyFromString(p));
    } else if (key == "sweep.seeds") {
        cfg.grid.seeds.clear();
        for (const std::string &s : parseList(value, key))
            cfg.grid.seeds.push_back(parseConfigUint(s, key));
    } else if (key == "sweep.hardware_targets") {
        cfg.grid.hardwareTargets = parseConfigBool(value, key);
    } else if (key == "sweep.workers") {
        const std::uint64_t workers = parseConfigUint(value, key);
        if (workers < 1 || workers > 4096)
            throw std::invalid_argument("config: " + key +
                                        " must be in [1, 4096]");
        cfg.workers = static_cast<int>(workers);
    } else if (key == "sweep.include_timing") {
        cfg.includeTiming = parseConfigBool(value, key);
    } else if (key == "sweep.report_json") {
        cfg.reportJsonPath = value;
    } else if (key == "sweep.report_csv") {
        cfg.reportCsvPath = value;
    } else if (key == "sweep.checkpoint_dir") {
        cfg.checkpointDir = value;
    } else if (key == "sweep.checkpoint_interval") {
        const std::uint64_t every = parseConfigUint(value, key);
        if (every > 1000000)
            throw std::invalid_argument("config: " + key +
                                        " must be in [0, 1000000]");
        cfg.checkpointInterval = static_cast<int>(every);
    } else if (key == "sweep.dist_processes") {
        const std::uint64_t n = parseConfigUint(value, key);
        if (n > 1024)
            throw std::invalid_argument("config: " + key +
                                        " must be in [0, 1024]");
        cfg.distProcesses = static_cast<int>(n);
    } else if (key == "sweep.dist_retries") {
        const std::uint64_t n = parseConfigUint(value, key);
        if (n > 100)
            throw std::invalid_argument("config: " + key +
                                        " must be in [0, 100]");
        cfg.distRetries = static_cast<int>(n);
    } else if (key == "sweep.heartbeat_timeout_s") {
        const double t = parseConfigDouble(value, key);
        if (t < 0)
            throw std::invalid_argument("config: " + key +
                                        " must be >= 0");
        cfg.heartbeatTimeoutS = t;
    } else if (key == "sweep.dist_work_dir") {
        cfg.distWorkDir = value;
    } else if (key == "sweep.dist_endpoints") {
        cfg.distEndpoints = parseList(value, key);
        for (const std::string &endpoint : cfg.distEndpoints) {
            try {
                parseTcpEndpoint(endpoint); // validate at parse time
            } catch (const std::exception &e) {
                throw std::invalid_argument("config: " + key + ": " +
                                            e.what());
            }
        }
    } else if (key == "sweep.manifest_dir") {
        cfg.manifestDir = value;
    } else if (key == "sweep.manifest_reset") {
        cfg.manifestReset = parseConfigBool(value, key);
    } else if (key == "gateway.tenant") {
        cfg.gatewayTenant = value;
    } else if (key == "gateway.priority") {
        const std::uint64_t p = parseConfigUint(value, key);
        if (p > 1000000)
            throw std::invalid_argument("config: " + key +
                                        " must be in [0, 1000000]");
        cfg.gatewayPriority = static_cast<int>(p);
    } else if (key == "sweep.bakeoff_agents") {
        cfg.bakeoffAgents = parseList(value, key);
    } else if (key == "sweep.bakeoff_scenarios") {
        cfg.bakeoffScenarios = parseList(value, key);
    } else if (key == "sweep.masked_penalty") {
        const double p = parseConfigDouble(value, key);
        if (p < 0)
            throw std::invalid_argument("config: " + key +
                                        " must be >= 0");
        cfg.maskedPenalty = p;
    } else {
        throw std::invalid_argument("config: unknown sweep option '" +
                                    key + "'");
    }
}

} // namespace

SweepConfig
parseSweepConfig(std::istream &in)
{
    SweepConfig cfg;
    cfg.base = parseExplorationConfig(
        in, [&cfg](const std::string &key, const std::string &value) {
            // Campaign cells: sweeps carry the same phase[N].* family
            // campaign configs use (core/campaign_config.hpp).
            if (applyPhaseKey(cfg.phases, key, value))
                return true;
            if (key.compare(0, 6, "sweep.") != 0 &&
                key.compare(0, 8, "gateway.") != 0)
                return false;
            applySweepKey(cfg, key, value);
            return true;
        });
    validateConfigPhases(cfg.phases);
    return cfg;
}

SweepConfig
parseSweepConfig(const std::string &text)
{
    std::istringstream iss(text);
    return parseSweepConfig(iss);
}

SweepConfig
loadSweepConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("config: cannot open " + path);
    return parseSweepConfig(in);
}

std::string
renderSweepConfig(const SweepConfig &cfg)
{
    // '#' starts a comment anywhere in a config line, '\n' would split
    // the value into an injected config line, and values are
    // whitespace-trimmed on parse — a value containing any of these
    // cannot be represented: it would silently re-parse changed,
    // breaking the render -> parse fixed point. List items
    // additionally cannot contain the ',' separator.
    const auto reject = [](const std::string &value, const char *bad) {
        if (value.find_first_of(bad) != std::string::npos ||
            value != trimConfigToken(value)) {
            throw std::invalid_argument(
                "renderSweepConfig: value is not representable in the "
                "config format: '" + value + "'");
        }
    };
    reject(cfg.name, "#\n");
    reject(cfg.reportJsonPath, "#\n");
    reject(cfg.reportCsvPath, "#\n");
    reject(cfg.checkpointDir, "#\n");
    reject(cfg.distWorkDir, "#\n");
    reject(cfg.manifestDir, "#\n");
    reject(cfg.gatewayTenant, "#\n");
    for (const std::string &endpoint : cfg.distEndpoints)
        reject(endpoint, "#,\n");
    for (const std::string &scenario : cfg.grid.scenarios)
        reject(scenario, "#,\n");
    for (const std::string &agent : cfg.bakeoffAgents)
        reject(agent, "#,\n");
    for (const std::string &scenario : cfg.bakeoffScenarios)
        reject(scenario, "#,\n");

    std::ostringstream out;
    out << renderExplorationConfig(cfg.base);
    out << "sweep.name = " << cfg.name << "\n";
    const auto join = [](const std::vector<std::string> &items) {
        std::string s;
        for (const std::string &item : items)
            s += (s.empty() ? "" : ", ") + item;
        return s;
    };
    if (!cfg.grid.scenarios.empty())
        out << "sweep.scenarios = " << join(cfg.grid.scenarios) << "\n";
    if (!cfg.grid.policies.empty()) {
        std::vector<std::string> names;
        for (ReplPolicy p : cfg.grid.policies)
            names.push_back(replPolicyName(p));
        out << "sweep.policies = " << join(names) << "\n";
    }
    if (!cfg.grid.seeds.empty()) {
        std::vector<std::string> seeds;
        for (std::uint64_t s : cfg.grid.seeds)
            seeds.push_back(std::to_string(s));
        out << "sweep.seeds = " << join(seeds) << "\n";
    }
    out << "sweep.hardware_targets = "
        << (cfg.grid.hardwareTargets ? "true" : "false") << "\n"
        << "sweep.workers = " << cfg.workers << "\n"
        << "sweep.include_timing = "
        << (cfg.includeTiming ? "true" : "false") << "\n";
    if (!cfg.reportJsonPath.empty())
        out << "sweep.report_json = " << cfg.reportJsonPath << "\n";
    if (!cfg.reportCsvPath.empty())
        out << "sweep.report_csv = " << cfg.reportCsvPath << "\n";
    if (!cfg.checkpointDir.empty())
        out << "sweep.checkpoint_dir = " << cfg.checkpointDir << "\n";
    out << "sweep.checkpoint_interval = " << cfg.checkpointInterval
        << "\n"
        << "sweep.dist_processes = " << cfg.distProcesses << "\n"
        << "sweep.dist_retries = " << cfg.distRetries << "\n"
        << "sweep.heartbeat_timeout_s = "
        << renderConfigDouble(cfg.heartbeatTimeoutS) << "\n";
    if (!cfg.distWorkDir.empty())
        out << "sweep.dist_work_dir = " << cfg.distWorkDir << "\n";
    if (!cfg.distEndpoints.empty())
        out << "sweep.dist_endpoints = " << join(cfg.distEndpoints)
            << "\n";
    if (!cfg.manifestDir.empty())
        out << "sweep.manifest_dir = " << cfg.manifestDir << "\n";
    out << "sweep.manifest_reset = "
        << (cfg.manifestReset ? "true" : "false") << "\n";
    if (!cfg.gatewayTenant.empty())
        out << "gateway.tenant = " << cfg.gatewayTenant << "\n";
    out << "gateway.priority = " << cfg.gatewayPriority << "\n";
    if (!cfg.bakeoffAgents.empty())
        out << "sweep.bakeoff_agents = " << join(cfg.bakeoffAgents)
            << "\n";
    if (!cfg.bakeoffScenarios.empty())
        out << "sweep.bakeoff_scenarios = " << join(cfg.bakeoffScenarios)
            << "\n";
    out << "sweep.masked_penalty = "
        << renderConfigDouble(cfg.maskedPenalty) << "\n";
    out << renderPhaseKeys(cfg.phases);
    return out.str();
}

} // namespace autocat
