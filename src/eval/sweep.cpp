#include "eval/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <stdexcept>

#include "env/env_registry.hpp"
#include "hw/machines.hpp"
#include "serve/cell_exec.hpp"
#include "serve/dist_scheduler.hpp"
#include "util/task_pool.hpp"

namespace autocat {

namespace {

/** Derive the cell's PPO seed from the base and the grid seed. The
 *  multiplier decorrelates neighboring grid seeds without making the
 *  derivation opaque in reports. */
std::uint64_t
derivePpoSeed(std::uint64_t base_ppo_seed, std::uint64_t grid_seed)
{
    return base_ppo_seed + 1000003ull * grid_seed;
}

/** Apply one grid policy to the attacked level of @p env. The TLB
 *  channel config mirrors it so the policy dimension also varies
 *  tlb_evict cells (cache scenarios never read channel.tlb). */
void
applyPolicy(EnvConfig &env, ReplPolicy policy)
{
    env.cache.policy = policy;
    if (!env.hierarchy.levels.empty())
        env.hierarchy.levels.back().cache.policy = policy;
    env.channel.tlb.policy = policy;
}

/** Table III hardware-target cell: guessing_game over the preset's
 *  hierarchy description (hidden policy, single exposed set). */
SweepCell
hardwareTargetCell(const ExplorationConfig &base,
                   const HardwareTargetPreset &preset,
                   std::uint64_t grid_seed)
{
    SweepCell cell;
    cell.scenario = "guessing_game";
    // The ways count distinguishes presets sharing a CPU/level (the
    // CAT-partitioned KabyLake L3 rows differ only in ways).
    cell.hierarchy = preset.cpu + " " + preset.level + " " +
                     std::to_string(preset.ways) + "w";
    cell.policy = preset.documented ? replPolicyName(preset.policy)
                                    : "n.o.d.";
    cell.seed = grid_seed;
    cell.label = cell.hierarchy + "/s" + std::to_string(grid_seed);

    ExplorationConfig cfg = base;
    cfg.scenario = cell.scenario;
    cfg.env.hierarchy = preset.hierarchy(grid_seed);
    // Mirror the Table III bench environment: the attacker sweeps the
    // exposed set, the victim accesses address 0 or nothing.
    cfg.env.cache = cfg.env.hierarchy.levels.back().cache;
    cfg.env.attackAddrS = 0;
    cfg.env.attackAddrE = preset.attackAddrE;
    cfg.env.victimAddrS = 0;
    cfg.env.victimAddrE = 0;
    cfg.env.victimNoAccessEnable = true;
    cfg.env.windowSize = preset.ways * 3 + 4;
    cfg.env.seed = grid_seed;
    cfg.ppo.seed = derivePpoSeed(base.ppo.seed, grid_seed);
    cell.config = std::move(cfg);
    return cell;
}

} // namespace

std::size_t
SweepReport::numConverged() const
{
    std::size_t n = 0;
    for (const auto &c : cells)
        n += c.completed && c.result.converged;
    return n;
}

std::size_t
SweepReport::numFailed() const
{
    std::size_t n = 0;
    for (const auto &c : cells)
        n += !c.completed;
    return n;
}

std::vector<SweepCell>
expandSweepGrid(const SweepConfig &config)
{
    const std::vector<std::string> scenarios =
        config.grid.scenarios.empty()
            ? std::vector<std::string>{config.base.scenario}
            : config.grid.scenarios;
    const std::vector<std::uint64_t> seeds =
        config.grid.seeds.empty()
            ? std::vector<std::uint64_t>{config.base.env.seed}
            : config.grid.seeds;

    for (const std::string &s : scenarios) {
        if (hasScenario(s))
            continue;
        std::string known;
        for (const std::string &name : scenarioNames())
            known += (known.empty() ? "" : ", ") + name;
        throw std::invalid_argument("sweep: unknown scenario \"" + s +
                                    "\" (registered: " + known + ")");
    }

    // Explicit hierarchy.levels[*] in the base override every built-in
    // scenario's level synthesis (env_registry resolveHierarchy), so a
    // multi-scenario grid over one would train bit-identical cells
    // under different labels. Fail loudly instead of wasting the
    // campaign.
    if (scenarios.size() > 1 && !config.base.env.hierarchy.levels.empty()) {
        throw std::invalid_argument(
            "sweep: explicit hierarchy.levels[*] in the base config "
            "would make every scenario cell identical; drop the "
            "explicit levels or sweep a single scenario");
    }

    // Without a policy grid, the label reflects the attacked (outermost)
    // level's actual policy, which an explicit base hierarchy may set
    // independently of the top-level rep_policy key.
    const ReplPolicy base_policy =
        config.base.env.hierarchy.levels.empty()
            ? config.base.env.cache.policy
            : config.base.env.hierarchy.levels.back().cache.policy;

    std::vector<SweepCell> cells;
    for (const std::string &scenario : scenarios) {
        // An empty policy dimension keeps the base policy per cell.
        const std::size_t num_policies =
            config.grid.policies.empty() ? 1 : config.grid.policies.size();
        for (std::size_t p = 0; p < num_policies; ++p) {
            for (std::uint64_t seed : seeds) {
                SweepCell cell;
                cell.scenario = scenario;
                cell.seed = seed;
                cell.config = config.base;
                cell.phases = config.phases;
                cell.config.scenario = scenario;
                cell.config.env.seed = seed;
                cell.config.ppo.seed =
                    derivePpoSeed(config.base.ppo.seed, seed);
                if (!config.grid.policies.empty())
                    applyPolicy(cell.config.env, config.grid.policies[p]);
                cell.policy = replPolicyName(
                    config.grid.policies.empty()
                        ? base_policy
                        : config.grid.policies[p]);
                cell.label = scenario + "/" + cell.policy + "/s" +
                             std::to_string(seed);
                cells.push_back(std::move(cell));
            }
        }
    }

    if (config.grid.hardwareTargets) {
        for (const HardwareTargetPreset &preset : tableIIITargets()) {
            for (std::uint64_t seed : seeds)
                cells.push_back(
                    hardwareTargetCell(config.base, preset, seed));
        }
    }

    // Sec. VI-A sample-efficiency bakeoff: appended rows (one per
    // agent x scenario x seed), never crossed with the main grid —
    // same mechanism as the hardware-target rows.
    if (!config.bakeoffAgents.empty()) {
        const std::vector<std::string> bakeoff_scenarios =
            config.bakeoffScenarios.empty()
                ? std::vector<std::string>{config.base.scenario}
                : config.bakeoffScenarios;
        for (const std::string &s : bakeoff_scenarios) {
            if (!hasScenario(s)) {
                throw std::invalid_argument(
                    "sweep: unknown bakeoff scenario \"" + s + "\"");
            }
        }
        for (const std::string &agent : config.bakeoffAgents) {
            if (agent != "ppo" && agent != "ppo_masked" &&
                agent != "random_search") {
                throw std::invalid_argument(
                    "sweep: unknown bakeoff agent \"" + agent +
                    "\" (known: ppo, ppo_masked, random_search)");
            }
            for (const std::string &scenario : bakeoff_scenarios) {
                for (std::uint64_t seed : seeds) {
                    SweepCell cell;
                    cell.agent = agent;
                    cell.scenario = scenario;
                    cell.seed = seed;
                    cell.config = config.base;
                    cell.config.scenario = scenario;
                    cell.config.env.seed = seed;
                    cell.config.ppo.seed =
                        derivePpoSeed(config.base.ppo.seed, seed);
                    cell.policy = replPolicyName(base_policy);
                    if (agent == "ppo_masked") {
                        cell.config.env.maskActions = true;
                        cell.config.env.maskUselessActions = true;
                        cell.config.env.uselessActionPenalty =
                            config.maskedPenalty;
                    }
                    if (agent != "random_search")
                        cell.phases = config.phases;
                    cell.label = scenario + "/" + cell.policy + "/s" +
                                 std::to_string(seed) + "/" + agent;
                    cells.push_back(std::move(cell));
                }
            }
        }
    }

    if (cells.empty())
        throw std::invalid_argument("sweep: the grid expands to no cells");
    for (std::size_t i = 0; i < cells.size(); ++i)
        cells[i].index = i;
    return cells;
}

SweepReport
runSweepCells(const std::string &name, std::vector<SweepCell> cells,
              int workers, const SweepProgress &progress,
              const std::string &checkpoint_dir, int checkpoint_every)
{
    using Clock = std::chrono::steady_clock;

    if (!checkpoint_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(checkpoint_dir, ec);
        if (ec || !std::filesystem::is_directory(checkpoint_dir)) {
            throw std::invalid_argument(
                "sweep: cannot create checkpoint directory \"" +
                checkpoint_dir + "\"" + (ec ? ": " + ec.message() : ""));
        }
    }

    SweepReport report;
    report.name = name;
    report.cells.resize(cells.size());

    const auto t0 = Clock::now();
    std::mutex progress_mutex;

    // Cell execution is shared with the cell_runner worker executable
    // (serve/cell_exec.hpp): in-process and distributed runs MUST
    // compute rows through identical code for report byte-identity.
    const auto run_cell = [&](std::size_t i) {
        CellExecOptions options;
        if (!checkpoint_dir.empty()) {
            options.checkpointPath =
                cellCheckpointPath(checkpoint_dir, cells[i].index);
            options.checkpointEvery = checkpoint_every;
        }
        report.cells[i] = runSweepCell(std::move(cells[i]), options);
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress(report.cells[i]);
        }
    };

    if (workers <= 1 || report.cells.size() <= 1) {
        report.workersUsed = 1;
        for (std::size_t i = 0; i < report.cells.size(); ++i)
            run_cell(i);
    } else {
        TaskPool pool(static_cast<std::size_t>(workers),
                      /*max_useful=*/report.cells.size());
        report.workersUsed = static_cast<int>(pool.numThreads());
        pool.parallelFor(0, report.cells.size(), run_cell);
    }

    report.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return report;
}

SweepRunner::SweepRunner(SweepConfig config)
    : config_(std::move(config)), cells_(expandSweepGrid(config_))
{
}

SweepReport
SweepRunner::run(const SweepProgress &progress)
{
    // Any non-empty fleet — local worker processes and/or remote
    // runner daemons — routes through the distributed scheduler.
    if (config_.distProcesses > 0 || !config_.distEndpoints.empty()) {
        DistSweepOptions options;
        options.processes = config_.distProcesses;
        options.runnerPath = config_.runnerPath;
        options.endpoints = config_.distEndpoints;
        options.workDir =
            config_.distWorkDir.empty()
                ? (config_.checkpointDir.empty() ? "."
                                                 : config_.checkpointDir) +
                      std::string("/dist_work")
                : config_.distWorkDir;
        options.checkpointDir = config_.checkpointDir;
        options.checkpointEvery = config_.checkpointInterval;
        options.manifestDir = config_.manifestDir;
        options.manifestReset = config_.manifestReset;
        options.maxRetries = config_.distRetries;
        options.heartbeatTimeoutS = config_.heartbeatTimeoutS;
        options.chaosKillCell = config_.chaosKillCell;
        options.chaosKillAfter = config_.chaosKillAfter;
        options.chaosSigterm = config_.chaosSigterm;
        options.stopAfterCells = config_.stopAfterCells;
        return runSweepCellsDist(config_.name, cells_, options, progress);
    }
    return runSweepCells(config_.name, cells_, config_.workers, progress,
                         config_.checkpointDir,
                         config_.checkpointInterval);
}

} // namespace autocat
