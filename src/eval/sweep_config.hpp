/**
 * @file
 * `sweep.*` config-file keys: parse and render a SweepConfig.
 *
 * A sweep file is an ordinary exploration config (every key
 * core/config_parser.hpp documents, serving as the per-cell base)
 * plus the sweep grid and run knobs:
 *
 *     # 3 scenarios x 2 policies = 6 campaign cells
 *     sweep.name             = tableIV-smoke
 *     sweep.scenarios        = l1l2_private, l2_exclusive, three_level
 *     sweep.policies         = lru, plru
 *     sweep.seeds            = 7
 *     sweep.hardware_targets = false
 *     sweep.workers          = 2
 *     sweep.include_timing   = false
 *     sweep.report_json      = sweep_report.json
 *     sweep.report_csv       = sweep_report.csv
 *
 * A sweep may also carry the `phase[N].*` campaign-phase family
 * (core/campaign_config.hpp): non-empty phases turn every grid cell
 * into a curriculum campaign (SweepConfig::phases), which is how the
 * Table VIII/IX detector-bypass rows run — train clean first, then
 * against the detector scenario, with the report's detection-rate
 * column filled from the final campaign evaluation.
 *
 * Parsing layers onto parseExplorationConfig() through its
 * ConfigKeyHandler hook, so the key families share one format,
 * one error style (unknown/malformed keys throw with line numbers),
 * and one renderer round-trip contract: render -> parse -> render is
 * a fixed point.
 */

#ifndef AUTOCAT_EVAL_SWEEP_CONFIG_HPP
#define AUTOCAT_EVAL_SWEEP_CONFIG_HPP

#include <istream>
#include <string>

#include "eval/sweep.hpp"

namespace autocat {

/**
 * Parse a sweep config (base exploration keys + `sweep.*` keys).
 *
 * @throws std::invalid_argument for unknown or malformed keys
 */
SweepConfig parseSweepConfig(std::istream &in);

/** Parse from a string (convenience for tests). */
SweepConfig parseSweepConfig(const std::string &text);

/** Load from a file path; throws std::runtime_error if unreadable. */
SweepConfig loadSweepConfig(const std::string &path);

/** Render a sweep config back to `key = value` text (round-trips). */
std::string renderSweepConfig(const SweepConfig &config);

} // namespace autocat

#endif // AUTOCAT_EVAL_SWEEP_CONFIG_HPP
