/**
 * @file
 * Sweep campaigns: many explore() runs over a declarative grid.
 *
 * The paper's core result tables (IV: attacks across cache configs,
 * V: replacement policies, III: hardware targets) are grids of
 * independent exploration runs. A SweepConfig describes such a grid —
 * scenario x replacement policy x seed, plus optional Table III
 * hardware-target rows built through HardwareTargetPreset::hierarchy()
 * — and SweepRunner expands it into per-cell ExplorationConfigs, fans
 * the cells out over a TaskPool, and aggregates per-cell results
 * (convergence, guess accuracy, bit rate, episode length, wall time,
 * rendered attack sequence) into a SweepReport.
 *
 * Determinism: every cell derives its env and PPO seeds from the grid
 * seed alone, each cell's explore() run is deterministic for fixed
 * seeds, and cells write only their own report slot — so a report's
 * content is bit-for-bit reproducible regardless of worker count
 * (eval/report.hpp renders it byte-identically).
 */

#ifndef AUTOCAT_EVAL_SWEEP_HPP
#define AUTOCAT_EVAL_SWEEP_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/explore.hpp"

namespace autocat {

/** Grid dimensions a sweep crosses. */
struct SweepGrid
{
    /**
     * Scenario registry names (env/env_registry.hpp); empty selects
     * the base config's scenario. Unknown names fail at expansion,
     * listing the registered scenarios.
     */
    std::vector<std::string> scenarios;

    /**
     * Replacement policies applied to the attacked level (EnvConfig::
     * cache and, when the cell carries an explicit hierarchy, its
     * outermost level). Empty keeps the base config's policy.
     */
    std::vector<ReplPolicy> policies;

    /** Grid seeds; empty selects the base config's env seed. */
    std::vector<std::uint64_t> seeds;

    /**
     * Append the Table III hardware targets as extra grid rows: for
     * each preset and grid seed, one guessing_game cell over the
     * preset's HierarchyConfig (hidden replacement policy, CacheQuery-
     * style single set — hw/machines.hpp). These rows do not cross
     * with the scenario/policy dimensions.
     */
    bool hardwareTargets = false;
};

/** A full sweep description: shared base config + grid + run knobs. */
struct SweepConfig
{
    /** Report title (JSON "name", table heading). */
    std::string name = "sweep";

    /** Per-cell defaults; the grid dimensions override per cell. */
    ExplorationConfig base;

    SweepGrid grid;

    /**
     * Campaign template applied to every cell (config keys
     * `phase[N].*`). Empty runs cells through plain explore(); a
     * non-empty list runs each cell as a curriculum campaign
     * (core/campaign.hpp), with the cell's scenario/seed substituted
     * into the base — a phase whose scenario is empty inherits the
     * cell's scenario, so "train clean, then against the detector"
     * grids write phase[0].scenario = guessing_game and leave
     * phase[1].scenario to the swept bypass scenario names.
     */
    std::vector<CurriculumPhase> phases;

    /** Campaign worker threads (cells run concurrently). */
    int workers = 1;

    /** Include wall-time fields in the JSON report (breaks run-to-run
     *  byte-identity, so off by default). */
    bool includeTiming = false;

    /** Report output paths used by the sweep_from_config driver;
     *  empty = don't write. */
    std::string reportJsonPath;
    std::string reportCsvPath;

    // ----- checkpointed cells (config keys sweep.checkpoint_*)
    /**
     * Directory for per-cell campaign checkpoints (`cell_<index>.ckpt`,
     * created on demand); empty disables cell checkpointing. With a
     * directory set, every cell — in-process or remote — runs as a
     * checkpointing campaign (core/campaign.hpp) and is resumable
     * bit-for-bit, so a killed run re-launched over the same directory
     * loses at most checkpointInterval epochs per in-flight cell.
     * Checkpoint boundaries resync the env streams, so reports from
     * checkpointed runs differ from uncheckpointed ones; runs being
     * byte-compared must agree on checkpointDir-emptiness and
     * checkpointInterval.
     */
    std::string checkpointDir;

    /** Mid-cell checkpoint cadence in epochs; 0 checkpoints at phase
     *  ends only (see CampaignConfig::checkpointEvery). */
    int checkpointInterval = 0;

    // ----- distributed execution (serve/dist_scheduler.hpp)
    /**
     * Worker *processes* to shard the grid across; 0 runs cells
     * in-process on `workers` pool threads. Config key
     * sweep.dist_processes.
     */
    int distProcesses = 0;

    /** Re-spawns per cell after a worker death or hang (config key
     *  sweep.dist_retries). */
    int distRetries = 1;

    /**
     * Kill and requeue a worker whose heartbeat file goes stale for
     * this many seconds; 0 disables hang detection. Config key
     * sweep.heartbeat_timeout_s.
     */
    double heartbeatTimeoutS = 0.0;

    /** Scratch directory for job/result blobs and heartbeats; empty
     *  derives `<checkpointDir or .>/dist_work`. Config key
     *  sweep.dist_work_dir. */
    std::string distWorkDir;

    /** cell_runner executable path; resolved by the driver (CLI flag /
     *  AUTOCAT_CELL_RUNNER env), never a config-file key. Required
     *  when distProcesses > 0. */
    std::string runnerPath;

    /**
     * Fault-injection harness hooks (CLI only, used by the dist-smoke
     * and net-smoke CI jobs and tests): SIGKILL the first attempt of
     * cell chaosKillCell after chaosKillAfter checkpoint writes; -1
     * disables. chaosSigterm sends the runner SIGTERM instead, so it
     * exits through the graceful flush path.
     */
    long chaosKillCell = -1;
    int chaosKillAfter = 1;
    bool chaosSigterm = false;

    /** Abort the scheduler (DistStopInjected) after this many cells
     *  finish in this run; 0 disables. CLI only — the manifest
     *  re-entry harness uses it to simulate a scheduler death. */
    std::size_t stopAfterCells = 0;

    // ----- networked fleet (serve/net, config key sweep.dist_endpoints)
    /**
     * runner_daemon endpoints ("host:port", comma list) to shard cells
     * onto alongside the local distProcesses slots. Any non-empty
     * fleet (endpoints and/or processes) routes the run through the
     * distributed scheduler; mixed fleets are fine — cell placement
     * never changes report bytes.
     */
    std::vector<std::string> distEndpoints;

    // ----- persistent grid manifest (config keys sweep.manifest_*)
    /**
     * Grid manifest directory (serve/manifest): records every finished
     * cell's row blob keyed by the grid's identity hash, so a fresh
     * scheduler process re-enters a half-finished run and computes
     * only the missing cells. Empty disables. Config key
     * sweep.manifest_dir.
     */
    std::string manifestDir;

    /** Wipe a manifest directory whose recorded grid identity does not
     *  match this run's grid (instead of refusing). Config key
     *  sweep.manifest_reset. */
    bool manifestReset = false;

    // ----- gateway submission metadata (config keys gateway.*)
    /**
     * Tenant name for campaign_gateway submissions: each tenant's
     * campaigns get their own work/manifest subdirectories under the
     * gateway root. Empty outside gateway runs. Config key
     * gateway.tenant.
     */
    std::string gatewayTenant;

    /** Gateway scheduling priority (higher runs first; ties submit in
     *  arrival order). Config key gateway.priority. */
    int gatewayPriority = 0;

    // ----- sample-efficiency bakeoff (config keys sweep.bakeoff_*)
    /**
     * Bakeoff agents (config key sweep.bakeoff_agents): each name
     * appends one extra row per bakeoff scenario and grid seed — like
     * hardware-target rows, they do not cross with the main grid.
     *
     *  - "ppo":           the base config as-is (unmasked baseline)
     *  - "ppo_masked":    the base config with maskActions +
     *                     maskUselessActions forced on and
     *                     uselessActionPenalty = maskedPenalty
     *  - "random_search": the Sec. VI-A random-search baseline over a
     *                     ScenarioOracle for the cell's scenario, on
     *                     the same total step budget (maxEpochs x
     *                     stepsPerEpoch simulated steps)
     *
     * Unknown names fail at expansion. Empty disables the bakeoff.
     */
    std::vector<std::string> bakeoffAgents;

    /** Scenarios the bakeoff rows run on (config key
     *  sweep.bakeoff_scenarios); empty = the base config's scenario. */
    std::vector<std::string> bakeoffScenarios;

    /** uselessActionPenalty applied to ppo_masked bakeoff rows (config
     *  key sweep.masked_penalty). */
    double maskedPenalty = 0.0;
};

/** One expanded grid cell: a fully-resolved exploration run. */
struct SweepCell
{
    std::size_t index = 0;       ///< position in the expansion order
    std::string label;           ///< e.g. "three_level/rrip/s7"
    std::string scenario;        ///< registry name the cell trains on
    std::string hierarchy = "-"; ///< named hierarchy row ("-" = none)
    std::string policy;          ///< replacement policy label
    std::uint64_t seed = 0;      ///< grid seed the cell derives from

    /**
     * Agent the cell runs. "random_search" runs the Sec. VI-A
     * non-learning baseline; anything else ("ppo", "ppo_masked") runs
     * the campaign/explore() pipeline — "ppo_masked" is just "ppo"
     * whose config enables masking, labeled distinctly for reports
     * (see SweepConfig::bakeoffAgents).
     */
    std::string agent = "ppo";

    ExplorationConfig config;    ///< resolved exploration description

    /** Curriculum phases; empty = plain explore() cell. */
    std::vector<CurriculumPhase> phases;
};

/** Outcome of one cell. */
struct SweepCellResult
{
    SweepCell cell;
    bool completed = false;   ///< explore() returned (vs threw)
    std::string error;        ///< exception message when !completed
    ExplorationResult result; ///< valid when completed
    double wallSeconds = 0.0;

    /**
     * Runner attempts this cell consumed (1 = first try; >1 means the
     * scheduler retried after a worker death or hang). Run-dependent,
     * so rendered only with ReportOptions::includeTiming.
     */
    int attempts = 1;
};

/** Aggregated campaign outcome, cells in expansion order. */
struct SweepReport
{
    std::string name;
    std::vector<SweepCellResult> cells;
    double wallSeconds = 0.0;
    int workersUsed = 1;  ///< effective pool size after clamping

    /** Cells adopted as already-done from a grid manifest rather than
     *  run here. Run-dependent diagnostics (like workersUsed): never
     *  rendered, so re-entered runs stay byte-identical. */
    std::size_t cellsAdopted = 0;

    /** Cells that completed and converged. */
    std::size_t numConverged() const;

    /** Cells whose explore() threw. */
    std::size_t numFailed() const;
};

/**
 * Expand a sweep config into its cell list (scenario x policy x seed,
 * then hardware-target rows), without running anything.
 *
 * @throws std::invalid_argument for an unknown scenario name (the
 *         message lists the registered scenarios) or an empty grid
 */
std::vector<SweepCell> expandSweepGrid(const SweepConfig &config);

/** Per-finished-cell observer (calls are serialized). */
using SweepProgress = std::function<void(const SweepCellResult &)>;

/**
 * Run pre-built cells on @p workers pool threads and aggregate the
 * report. Cell failures (exceptions out of explore()) are captured
 * per cell — index, scenario, and error text land in the cell's
 * report row — and never abort the rest of the grid. Deterministic
 * for fixed cell configs: the report content is independent of worker
 * count and scheduling.
 *
 * A non-empty @p checkpoint_dir runs every cell as a checkpointing
 * campaign (per-cell file `cell_<index>.ckpt`, cadence
 * @p checkpoint_every), making cells resumable bit-for-bit; see
 * SweepConfig::checkpointDir for the determinism caveat.
 */
SweepReport runSweepCells(const std::string &name,
                          std::vector<SweepCell> cells, int workers,
                          const SweepProgress &progress = {},
                          const std::string &checkpoint_dir = "",
                          int checkpoint_every = 0);

/** Expand + run a sweep config (report paths are NOT written here —
 *  the caller renders the report via eval/report.hpp). */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepConfig config);

    /** The config this runner was built from. */
    const SweepConfig &config() const { return config_; }

    /** The expanded cells (available before run()). */
    const std::vector<SweepCell> &cells() const { return cells_; }

    SweepReport run(const SweepProgress &progress = {});

  private:
    SweepConfig config_;
    std::vector<SweepCell> cells_;
};

} // namespace autocat

#endif // AUTOCAT_EVAL_SWEEP_HPP
