/**
 * @file
 * Table IV: attacks found across diverse cache / attacker / victim
 * configurations — direct-mapped, fully- and set-associative caches,
 * prefetchers, flush on/off, shared and disjoint address ranges, and
 * a two-level hierarchy. Each row is one sweep cell: the campaign
 * runs through eval/sweep.hpp (cells fan out over a worker pool) and
 * the bench prints the per-row classification next to the paper's
 * expectation.
 *
 * The default mode runs a representative subset; AUTOCAT_FULL=1 runs
 * all 17 rows of the paper's table.
 */

#include <thread>

#include "bench_common.hpp"
#include "eval/sweep.hpp"

using namespace autocat;
using namespace autocat::bench;

namespace {

struct ConfigRow
{
    int no;
    const char *type;
    const char *expected;
    EnvConfig env;
    bool heavy = false;  ///< only run with AUTOCAT_FULL=1
    const char *scenario = "guessing_game";  ///< registry name
};

EnvConfig
make(unsigned sets, unsigned ways, std::uint64_t va_s, std::uint64_t va_e,
     std::uint64_t aa_s, std::uint64_t aa_e, bool flush, bool no_access,
     PrefetcherKind pf = PrefetcherKind::None)
{
    EnvConfig cfg;
    cfg.cache.numSets = sets;
    cfg.cache.numWays = ways;
    cfg.cache.policy = ReplPolicy::Lru;
    cfg.cache.prefetcher = pf;
    cfg.cache.addressSpaceSize = std::max(va_e, aa_e) + 1;
    cfg.attackAddrS = aa_s;
    cfg.attackAddrE = aa_e;
    cfg.victimAddrS = va_s;
    cfg.victimAddrE = va_e;
    cfg.flushEnable = flush;
    cfg.victimNoAccessEnable = no_access;
    cfg.seed = 7;
    const unsigned blocks = sets * ways;
    cfg.windowSize = std::min(40u, 4 * blocks + 12);
    return cfg;
}

std::vector<ConfigRow>
allRows()
{
    std::vector<ConfigRow> rows;
    // 1: DM 4 sets, disjoint, no flush -> PP
    rows.push_back({1, "DM 1x4", "PP",
                    make(4, 1, 0, 3, 4, 7, false, false)});
    // 2: DM + next-line prefetcher -> PP
    rows.push_back({2, "DM+PFnextline", "PP",
                    make(4, 1, 0, 3, 4, 7, false, false,
                         PrefetcherKind::NextLine)});
    // 3: DM, shared, flush -> FR
    rows.push_back({3, "DM 1x4", "FR",
                    make(4, 1, 0, 3, 0, 3, true, false)});
    // 4: DM, attacker covers both -> ER and PP
    rows.push_back({4, "DM 1x4", "ER,PP",
                    make(4, 1, 0, 3, 0, 7, false, false)});
    // 5: FA 4-way, 0/E, disjoint -> PP/LRU
    rows.push_back({5, "FA 4", "PP,LRU",
                    make(1, 4, 0, 0, 4, 7, false, true)});
    // 6: FA 4-way, 0/E, shared + flush -> FR/LRU
    rows.push_back({6, "FA 4", "FR,LRU",
                    make(1, 4, 0, 0, 0, 3, true, true)});
    // 7: FA 4-way, 0/E, attacker covers both -> ER/PP/LRU
    rows.push_back({7, "FA 4", "ER,PP,LRU",
                    make(1, 4, 0, 0, 0, 7, false, true)});
    // 8: FA 4-way, victim 0-3 shared, flush -> FR/LRU
    rows.push_back({8, "FA 4", "FR,LRU",
                    make(1, 4, 0, 3, 0, 3, true, false)});
    // 9: FA 4-way, victim 0-3, attacker 0-7, flush -> FR/LRU
    rows.push_back({9, "FA 4", "FR,LRU",
                    make(1, 4, 0, 3, 0, 7, true, false)});
    // 10: DM 8 sets, victim 0-7, flush -> FR (heavy: 8 secrets)
    rows.push_back({10, "DM 1x8", "FR",
                    make(8, 1, 0, 7, 0, 7, true, false), true});
    // 11: FA 8-way, 0/E, flush -> FR/LRU
    rows.push_back({11, "FA 8", "FR,LRU",
                    make(1, 8, 0, 0, 0, 7, true, true)});
    // 12: FA 8-way, 0/E, attacker 0-15 -> ER/PP/LRU (heavy)
    rows.push_back({12, "FA 8", "ER,PP,LRU",
                    make(1, 8, 0, 0, 0, 15, false, true), true});
    // 13: FA 8 + next-line prefetcher (heavy)
    rows.push_back({13, "FA8+PFnextline", "ER",
                    make(1, 8, 0, 0, 0, 15, false, true,
                         PrefetcherKind::NextLine),
                    true});
    // 14: FA 8 + stream prefetcher (heavy)
    rows.push_back({14, "FA8+PFstream", "ER",
                    make(1, 8, 0, 0, 0, 15, false, true,
                         PrefetcherKind::Stream),
                    true});
    // 15: SA 2-way x 4 sets, disjoint -> PP
    rows.push_back({15, "SA 2x4", "PP",
                    make(4, 2, 0, 3, 4, 11, false, false)});
    // 16: two-level (private DM L1s + shared 2x4 L2) -> PP (heavy)
    {
        // The l1l2_private scenario synthesizes the hierarchy from the
        // attacked-level config: DM L1s over the same sets, shared
        // inclusive L2 = cfg.cache.
        EnvConfig cfg = make(4, 2, 0, 3, 4, 11, false, false);
        cfg.cache.addressSpaceSize = 12;
        cfg.windowSize = 40;
        rows.push_back({16, "2-level SA 2x4", "PP", cfg, true,
                        "l1l2_private"});
    }
    // 17: two-level, L2 2x8, victim 0-7, attacker 8-23 (heavy)
    {
        EnvConfig cfg = make(8, 2, 0, 7, 8, 23, false, false);
        cfg.cache.addressSpaceSize = 24;
        cfg.windowSize = 56;
        rows.push_back({17, "2-level SA 2x8", "PP", cfg, true,
                        "l1l2_private"});
    }
    return rows;
}

} // namespace

int
main()
{
    banner("Table IV: attacks across cache/attacker configurations");

    const bool run_heavy = benchMode() == BenchMode::Full;
    const int max_epochs = byMode(10, 100, 260);
    const std::vector<ConfigRow> rows = allRows();

    // One sweep cell per (non-skipped) row; the seeds reproduce the
    // pre-sweep bench outputs exactly. row_cell maps each row to its
    // cell index (-1 = skipped) so the display loop below cannot drift
    // from this filter.
    std::vector<SweepCell> cells;
    std::vector<int> row_cell(rows.size(), -1);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const ConfigRow &row = rows[r];
        if (row.heavy && !run_heavy)
            continue;
        row_cell[r] = static_cast<int>(cells.size());
        SweepCell cell;
        cell.index = cells.size();
        cell.label = std::string("row ") + std::to_string(row.no) + " " +
                     row.type;
        cell.scenario = row.scenario;
        cell.policy = replPolicyName(row.env.cache.policy);
        cell.seed = row.env.seed;
        cell.config.env = row.env;
        cell.config.scenario = row.scenario;
        cell.config.ppo.seed = 19 + row.no;
        cell.config.maxEpochs = max_epochs;
        cells.push_back(std::move(cell));
    }

    // runSweepCells clamps to the cell count and a minimum of one.
    const SweepReport report = runSweepCells(
        "Table IV cells", std::move(cells),
        static_cast<int>(std::thread::hardware_concurrency()));

    TextTable table("Table IV (reproduction)",
                    {"No.", "Type", "Expected", "Found", "Acc",
                     "Attack found by AutoCAT"});
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const ConfigRow &row = rows[r];
        if (row_cell[r] < 0) {
            table.addRow({TextTable::fmt((long)row.no), row.type,
                          row.expected, "(skipped)", "-",
                          "run with AUTOCAT_FULL=1"});
            continue;
        }
        const SweepCellResult &cell = report.cells[row_cell[r]];
        if (!cell.completed) {
            table.addRow({TextTable::fmt((long)row.no), row.type,
                          row.expected, "(failed)", "-", cell.error});
            continue;
        }
        const ExplorationResult &res = cell.result;
        table.addRow(
            {TextTable::fmt((long)row.no), row.type, row.expected,
             res.converged ? categoryLabel(res.category) : "(timeout)",
             TextTable::fmt(res.finalAccuracy, 2),
             res.sequence.toString(false) + " -> " + res.finalGuess});
    }

    table.print(std::cout);
    std::cout << "\n(" << report.cells.size() << " cells on "
              << report.workersUsed << " sweep workers, "
              << TextTable::fmt(report.wallSeconds, 1) << " s)\n";
    std::cout << "\nPaper (Table IV): the agent finds a working attack"
                 " of the expected category for every configuration;"
                 " sequences are often shorter than the textbook"
                 " versions.\n";
    return 0;
}
