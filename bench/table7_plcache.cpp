/**
 * @file
 * Table VII: bypassing the partition-locked (PL) cache defense.
 *
 * The victim's line is pre-installed and locked, so it can never be
 * evicted and the victim never misses — the setting proved "secure"
 * under the tag-state-only model of He & Lee (MICRO'17). AutoCAT still
 * finds an attack through the PLRU replacement metadata, at the cost
 * of a longer training time and attack sequence than the undefended
 * baseline.
 */

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

int
main()
{
    banner("Table VII: PLRU cache with and without the PL-cache "
           "defense");

    const int runs = byMode(1, 1, 3);
    const int max_epochs = byMode(12, 150, 300);

    TextTable table("Table VII (reproduction)",
                    {"Cache", "Epochs to converge", "Final episode length",
                     "Example attack sequence"});

    for (bool pl_cache : {true, false}) {
        RunningStat epochs, length;
        std::string example = "(not converged)";
        bool all_converged = true;

        for (int run = 0; run < runs; ++run) {
            ExplorationConfig cfg;
            cfg.env = tableVEnv(ReplPolicy::TreePlru, 7 + run);
            // Paper setting: attacker addresses 1-5, victim line 0
            // locked in the cache.
            cfg.env.attackAddrS = 1;
            cfg.env.attackAddrE = 5;
            cfg.env.plCacheLockVictim = pl_cache;
            cfg.env.windowSize = 20;
            cfg.ppo.seed = 41 + run * 17;
            cfg.maxEpochs = max_epochs;
            const ExplorationResult r = explore(cfg);
            if (r.converged) {
                epochs.push(r.epochsToConverge);
                length.push(r.finalEpisodeLength);
                example = r.sequence.toString(false) + " -> " +
                          r.finalGuess;
            } else {
                all_converged = false;
            }
        }

        table.addRow({pl_cache ? "PL Cache" : "Baseline",
                      all_converged && epochs.count()
                          ? TextTable::fmt(epochs.mean(), 1)
                          : std::string("> ") +
                                TextTable::fmt((long)max_epochs),
                      length.count() ? TextTable::fmt(length.mean(), 1)
                                     : "-",
                      example});
    }

    table.print(std::cout);
    std::cout << "\nPaper (Table VII): PL cache 37.67 epochs / len 8.1;"
                 " baseline 7.67 / 7.0 — expect the defended cache to"
                 " need more training and a longer sequence.\n";
    return 0;
}
