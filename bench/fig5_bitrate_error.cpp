/**
 * @file
 * Figure 5: bit rate vs error rate of StealthyStreamline and the LRU
 * address-based channel on four simulated machines.
 *
 * Each curve point is one operating setting: the noise level scales
 * from 0.5x to 6x of the machine's baseline interference, and the
 * per-symbol repeat count in {1, 2, 3} trades rate for reliability.
 * Output is one CSV-like series per machine+protocol for plotting.
 */

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

int
main()
{
    banner("Figure 5: bit rate vs error rate curves");

    const std::size_t message_bits = byMode(256, 2048, 4096);
    const int runs = byMode(1, 5, 20);

    Rng rng(555);
    const BitString message = randomBits(rng, message_bits);

    std::cout << "machine,protocol,noise_x,repeats,error_pct,mbps\n";
    for (const CovertMachinePreset &machine : tableXMachines()) {
        for (CovertProtocol protocol :
             {CovertProtocol::LruAddrBased,
              CovertProtocol::StealthyStreamline}) {
            const char *pname =
                protocol == CovertProtocol::StealthyStreamline
                    ? "StealthyStreamline"
                    : "LRU_addr_based";
            for (double noise_x : {0.5, 1.0, 2.0, 4.0, 6.0}) {
                for (unsigned repeats : {1u, 2u, 3u}) {
                    RunningStat mbps, err;
                    for (int r = 0; r < runs; ++r) {
                        CovertChannelConfig cfg;
                        cfg.protocol = protocol;
                        cfg.ways = machine.l1Ways;
                        cfg.bitsPerSymbol = 2;
                        cfg.policy = ReplPolicy::Lru;
                        cfg.latency = machine.latency;
                        cfg.noise = machine.noise * noise_x;
                        cfg.repeats = repeats;
                        cfg.seed = 31 * r + 7 * repeats + 1;
                        CovertChannel channel(cfg);
                        const CovertResult res = channel.transmit(message);
                        mbps.push(res.mbps);
                        err.push(res.errorRate);
                    }
                    std::cout << machine.cpu << ',' << pname << ','
                              << noise_x << ',' << repeats << ','
                              << TextTable::fmt(err.mean() * 100.0, 2)
                              << ','
                              << TextTable::fmt(mbps.mean(), 2) << "\n";
                }
            }
        }
    }

    std::cout << "\nPaper (Fig. 5): for error rates < 5%,"
                 " StealthyStreamline sits above the LRU address-based"
                 " curve on all four machines.\n";
    return 0;
}
