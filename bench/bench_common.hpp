/**
 * @file
 * Shared helpers for the paper-table bench binaries.
 *
 * Each binary reproduces one table or figure of the paper. Budgets
 * scale with AUTOCAT_FAST / AUTOCAT_FULL (see core/bench_mode.hpp);
 * the default mode finishes the entire suite in minutes and prints an
 * honest "converged?" column instead of hiding timeouts.
 */

#ifndef AUTOCAT_BENCH_BENCH_COMMON_HPP
#define AUTOCAT_BENCH_BENCH_COMMON_HPP

#include <cstdio>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/autocat.hpp"
#include "env/env_registry.hpp"

namespace autocat {
namespace bench {

/**
 * Build a guessing game through the scenario registry (benches name
 * the scenario instead of a concrete Environment class).
 */
inline std::unique_ptr<CacheGuessingGame>
makeGame(const EnvConfig &cfg)
{
    std::unique_ptr<Environment> env = makeEnv("guessing_game", cfg);
    auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
    if (!game)
        throw std::logic_error(
            "makeGame: scenario did not produce a CacheGuessingGame");
    env.release();
    return std::unique_ptr<CacheGuessingGame>(game);
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what)
{
    std::cout << "\n### " << what << "\n"
              << "### mode: " << benchModeName(benchMode())
              << "  (AUTOCAT_FAST=1 for smoke, AUTOCAT_FULL=1 for "
                 "paper-scale budgets)\n\n";
}

/** The Table V environment: 4-way FA set, victim 0/E, attacker 0-4. */
inline EnvConfig
tableVEnv(ReplPolicy policy, std::uint64_t seed = 7)
{
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 4;
    cfg.cache.policy = policy;
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 4;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    cfg.windowSize = 16;
    cfg.seed = seed;
    return cfg;
}

/** The Table VIII/IX environment: 4-set DM, disjoint address ranges,
 *  fixed-length multi-secret episodes. */
inline EnvConfig
multiSecretEnv(std::uint64_t seed = 7)
{
    EnvConfig cfg;
    cfg.cache.numSets = 4;
    cfg.cache.numWays = 1;
    cfg.cache.policy = ReplPolicy::Lru;
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 4;
    cfg.attackAddrE = 7;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 3;
    cfg.multiSecret = true;
    cfg.multiSecretEpisodeSteps = 160;
    cfg.windowSize = 16;
    cfg.seed = seed;
    return cfg;
}

/** Curriculum stage variants of multiSecretEnv(). */
inline EnvConfig
singleSecretStage(std::uint64_t seed = 7)
{
    EnvConfig cfg = multiSecretEnv(seed);
    cfg.multiSecret = false;
    return cfg;
}

inline EnvConfig
shortChannelStage(std::uint64_t seed = 7)
{
    EnvConfig cfg = multiSecretEnv(seed);
    cfg.multiSecretEpisodeSteps = 32;
    return cfg;
}

/** Episode-wise evaluation with a measurement detector attached. */
struct DetectorEvalStats
{
    double bitRate = 0.0;
    double guessAccuracy = 0.0;
    double detectionRate = 0.0;
    double avgMaxAutocorr = 0.0;  ///< only with an AutocorrDetector
};

/**
 * Run @p act for @p episodes on @p env, reading @p autocorr (may be
 * null) after every episode for the Table VIII statistics.
 */
inline DetectorEvalStats
evaluateWithDetector(
    CacheGuessingGame &env,
    const std::function<std::size_t(const std::vector<float> &, int)> &act,
    int episodes, AutocorrDetector *autocorr,
    const std::function<void()> &on_episode_start = {})
{
    DetectorEvalStats stats;
    long long steps = 0;
    std::size_t guesses = 0, correct = 0, detected_eps = 0;
    double autocorr_sum = 0.0;

    for (int e = 0; e < episodes; ++e) {
        std::vector<float> obs = env.reset();
        if (on_episode_start)
            on_episode_start();
        int last_lat = LatNa;
        bool done = false, detected = false;
        while (!done) {
            const std::size_t action = act(obs, last_lat);
            StepResult sr = env.step(action);
            ++steps;
            last_lat = sr.info.observedLatency;
            if (sr.info.guessMade) {
                ++guesses;
                if (sr.info.guessCorrect)
                    ++correct;
            }
            if (sr.info.detected)
                detected = true;
            done = sr.done;
            obs = std::move(sr.obs);
        }
        if (autocorr)
            autocorr_sum += autocorr->maxAutocorr();
        if (detected)
            ++detected_eps;
    }

    stats.bitRate = steps ? static_cast<double>(guesses) /
                                static_cast<double>(steps)
                          : 0.0;
    stats.guessAccuracy =
        guesses ? static_cast<double>(correct) /
                      static_cast<double>(guesses)
                : 0.0;
    stats.detectionRate =
        episodes ? static_cast<double>(detected_eps) /
                       static_cast<double>(episodes)
                 : 0.0;
    stats.avgMaxAutocorr =
        episodes ? autocorr_sum / static_cast<double>(episodes) : 0.0;
    return stats;
}

/**
 * Curriculum training for the multi-secret channel agents
 * (Tables VIII/IX): the policy first learns the one-shot attack on
 * single-secret episodes, then repetition on short multi-secret
 * episodes, then the full 160-step channel. All three environments
 * must share observation/action dimensions (same address ranges and
 * window). Each stage runs as a 1-stream VecEnv so detector state
 * attached to the specific instances stays observable to the caller.
 *
 * @return trainer bound to @p multi_full at the end
 */
inline std::unique_ptr<PpoTrainer>
trainChannelAgent(CacheGuessingGame &single, CacheGuessingGame &multi_short,
                  CacheGuessingGame &multi_full, const PpoConfig &ppo,
                  int phase1_epochs, int phase2_epochs, int phase3_epochs)
{
    auto trainer = std::make_unique<PpoTrainer>(single, ppo);
    for (int e = 1; e <= phase1_epochs; ++e) {
        trainer->runEpoch();
        if (e % 10 == 0 &&
            trainer->evaluate(40).guessAccuracy >= 0.98) {
            break;
        }
    }
    trainer->setEnvironment(multi_short);
    for (int e = 0; e < phase2_epochs; ++e)
        trainer->runEpoch();
    trainer->setEnvironment(multi_full);
    for (int e = 0; e < phase3_epochs; ++e)
        trainer->runEpoch();
    return trainer;
}

/** Wrap a trained policy as an act function. */
inline std::function<std::size_t(const std::vector<float> &, int)>
policyActFn(ActorCritic &policy)
{
    return [&policy](const std::vector<float> &obs, int) {
        const AcOutput out = policy.forwardOne(obs);
        return policy.argmax(out.logits, 0);
    };
}

/** Wrap a scripted agent as an act function. */
inline std::function<std::size_t(const std::vector<float> &, int)>
scriptedActFn(ScriptedAgent &agent)
{
    return [&agent](const std::vector<float> &, int lat) {
        return agent.act(lat);
    };
}

} // namespace bench
} // namespace autocat

#endif // AUTOCAT_BENCH_BENCH_COMMON_HPP
