/**
 * @file
 * Figure 3: conflict-miss event trains and autocorrelograms for the
 * textbook prime+probe channel, the RL baseline, and the
 * autocorrelation-penalized agent.
 *
 * Output: (a) the first events of one episode's train rendered as
 * A->V / V->A marks; (b) the autocorrelogram C_1..C_30 per agent with
 * the 0.75 detection threshold.
 */

#include <iomanip>

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

namespace {

constexpr std::size_t kMaxLag = 30;

struct TrainCapture
{
    std::vector<double> train;
    std::vector<double> correlogram;
    double maxAutocorr = 0.0;
};

TrainCapture
capture(CacheGuessingGame &env,
        const std::function<std::size_t(const std::vector<float> &, int)>
            &act,
        AutocorrDetector &detector,
        const std::function<void()> &on_start)
{
    std::vector<float> obs = env.reset();
    if (on_start)
        on_start();
    int last_lat = LatNa;
    bool done = false;
    while (!done) {
        StepResult sr = env.step(act(obs, last_lat));
        last_lat = sr.info.observedLatency;
        done = sr.done;
        obs = std::move(sr.obs);
    }
    TrainCapture out;
    out.train = detector.eventTrain();
    out.correlogram = detector.correlogram();
    out.maxAutocorr = detector.maxAutocorr();
    return out;
}

void
printTrain(const std::string &name, const TrainCapture &cap)
{
    std::cout << name << " event train (" << cap.train.size()
              << " conflict misses, first 40 shown):\n  ";
    for (std::size_t i = 0; i < std::min<std::size_t>(40, cap.train.size());
         ++i) {
        std::cout << (cap.train[i] > 0.5 ? "A>V " : "V>A ");
    }
    std::cout << "\n  max |C_p| for p>=1: "
              << TextTable::fmt(cap.maxAutocorr, 3)
              << (cap.maxAutocorr > 0.75 ? "  ** DETECTED (>0.75) **"
                                         : "  (below threshold)")
              << "\n\n";
}

} // namespace

int
main()
{
    banner("Figure 3: event trains and autocorrelograms");

    const int train_epochs = byMode(2, 25, 100);

    // Textbook.
    TrainCapture textbook;
    {
        auto env = makeGame(multiSecretEnv());
        auto det = std::make_shared<AutocorrDetector>(kMaxLag, 0.75, 0.0);
        env->attachDetector(det, DetectorMode::Penalize);
        TextbookPrimeProbeAgent agent(*env);
        textbook = capture(*env, scriptedActFn(agent), *det,
                           [&] { agent.onEpisodeStart(); });
    }

    // RL baseline and RL autocor (curriculum-trained).
    auto trained = [&](double penalty, std::uint64_t seed) {
        auto single = makeGame(singleSecretStage());
        auto multi_short = makeGame(shortChannelStage());
        auto env = makeGame(multiSecretEnv());
        multi_short->attachDetector(
            std::make_shared<AutocorrDetector>(kMaxLag, 0.75, penalty),
            DetectorMode::Penalize);
        auto det =
            std::make_shared<AutocorrDetector>(kMaxLag, 0.75, penalty);
        env->attachDetector(det, DetectorMode::Penalize);
        PpoConfig ppo;
        ppo.seed = seed;
        auto trainer = trainChannelAgent(*single, *multi_short, *env, ppo,
                                         byMode(12, 60, 80),
                                         byMode(4, 25, 40), train_epochs);
        return capture(*env, policyActFn(trainer->policy()), *det, {});
    };
    const TrainCapture baseline = trained(0.0, 57);
    const TrainCapture autocor = trained(-30.0, 58);

    printTrain("textbook", textbook);
    printTrain("RL_baseline", baseline);
    printTrain("RL_autocor", autocor);

    TextTable table("Figure 3b: autocorrelogram C_p (threshold 0.75)",
                    {"lag p", "textbook", "RL_baseline", "RL_autocor"});
    const std::size_t lags =
        std::min({textbook.correlogram.size(), baseline.correlogram.size(),
                  autocor.correlogram.size(), kMaxLag});
    for (std::size_t p = 0; p < lags; ++p) {
        table.addRow({TextTable::fmt((long)(p + 1)),
                      TextTable::fmt(textbook.correlogram[p], 3),
                      TextTable::fmt(baseline.correlogram[p], 3),
                      TextTable::fmt(autocor.correlogram[p], 3)});
    }
    table.print(std::cout);
    std::cout << "\nPaper (Fig. 3): textbook and RL baseline show"
                 " strong periodic peaks (max ~0.92-0.97); the"
                 " penalty-trained agent stays below the threshold.\n";
    return 0;
}
