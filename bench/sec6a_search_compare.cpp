/**
 * @file
 * Section VI-A: RL vs brute-force search.
 *
 * The paper derives M = 2 (N+1)^{2N+1} / (N!)^2 candidate sequences
 * per successful prime+probe on an N-way set (~e^{2N}), vs ~1M env
 * steps for RL. This bench prints the closed form for N = 2..16,
 * measures random search on small sets, and trains the RL agent on
 * the 4-way set for the direct comparison.
 */

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

int
main()
{
    banner("Section VI-A: search-space comparison");

    TextTable formula("Prime+probe search space M = 2(N+1)^{2N+1}/(N!)^2",
                      {"Ways N", "M (candidates)",
                       "steps (M x (2N+2))"});
    for (unsigned n : {2u, 4u, 8u, 12u, 16u}) {
        const double m = primeProbeSearchSpace(n);
        formula.addRow({TextTable::fmt((long)n),
                        TextTable::fmt(m, 0),
                        TextTable::fmt(m * (2 * n + 2), 0)});
    }
    formula.print(std::cout);
    std::cout << "(paper: M ~ 2.05e7 for N = 8 -> ~369M steps)\n\n";

    // Measured: random search for a distinguishing sequence on small
    // fully-associative sets with a 0/E victim.
    const unsigned max_ways = byMode(2u, 4u, 4u);
    TextTable measured("Measured random search (FA N-way, victim 0/E)",
                       {"Ways N", "Seq length", "Sequences tried",
                        "Sim steps"});
    for (unsigned n = 2; n <= max_ways; n += 2) {
        EnvConfig env;
        env.cache.numSets = 1;
        env.cache.numWays = n;
        env.cache.addressSpaceSize = 2 * n + 2;
        env.attackAddrS = 0;
        env.attackAddrE = n;  // n+1 lines: enough to fill and probe
        env.victimAddrS = 0;
        env.victimAddrE = 0;
        env.victimNoAccessEnable = true;
        env.randomInit = false;
        DistinguishingOracle oracle(env);
        Rng rng(13);
        const SearchResult r =
            randomSearch(oracle, 2 * n + 2, 50'000'000 / (2 * n + 2),
                         rng);
        measured.addRow(
            {TextTable::fmt((long)n), TextTable::fmt((long)(2 * n + 2)),
             r.found ? TextTable::fmt((long)r.sequencesTried)
                     : "(not found)",
             TextTable::fmt((long)r.stepsTaken)});
    }
    measured.print(std::cout);

    // RL on the 4-way set.
    const int max_epochs = byMode(8, 120, 250);
    ExplorationConfig cfg;
    cfg.env = tableVEnv(ReplPolicy::Lru);
    cfg.ppo.seed = 11;
    cfg.maxEpochs = max_epochs;
    const ExplorationResult r = explore(cfg);
    std::cout << "\nRL (PPO) on the 4-way set: "
              << (r.converged ? "converged" : "did not converge")
              << " after " << r.envSteps << " env steps ("
              << (r.converged ? r.epochsToConverge : max_epochs)
              << " epochs x 3000 steps).\n"
              << "Paper: RL converges within ~1M steps where"
                 " exhaustive search needs ~369M at N = 8.\n";
    return 0;
}
