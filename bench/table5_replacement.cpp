/**
 * @file
 * Table V: RL training statistics and generated attacks for the
 * deterministic cache replacement policies (LRU, PLRU, RRIP) on a
 * 4-way set with a 0/E victim. The policy x run grid runs as one
 * sweep campaign (eval/sweep.hpp); the bench aggregates the per-cell
 * results into the paper's per-policy rows.
 *
 * Paper expectation: RRIP needs more epochs to converge and a longer
 * attack sequence than LRU/PLRU. Absolute epoch counts differ from the
 * paper (its asynchronous trainer consumes far more samples per
 * "epoch"); the ordering is the reproduced claim.
 */

#include <thread>

#include "bench_common.hpp"
#include "eval/sweep.hpp"

using namespace autocat;
using namespace autocat::bench;

int
main()
{
    banner("Table V: attacking deterministic replacement policies");

    const int runs = byMode(1, 1, 3);
    const int max_epochs = byMode(12, 160, 300);
    const ReplPolicy policies[] = {ReplPolicy::Lru, ReplPolicy::TreePlru,
                                   ReplPolicy::Rrip};

    // One cell per policy x run; seeds reproduce the pre-sweep bench.
    std::vector<SweepCell> cells;
    for (ReplPolicy policy : policies) {
        for (int run = 0; run < runs; ++run) {
            SweepCell cell;
            cell.index = cells.size();
            cell.policy = replPolicyName(policy);
            cell.scenario = "guessing_game";
            cell.seed = 7 + run;
            cell.label = std::string(replPolicyName(policy)) + "/run" +
                         std::to_string(run);
            cell.config.env = tableVEnv(policy, 7 + run);
            if (policy == ReplPolicy::Rrip)
                cell.config.env.windowSize = 20;  // RRIP attacks are longer
            cell.config.ppo.seed = 21 + 13 * run;
            cell.config.maxEpochs = max_epochs;
            cells.push_back(std::move(cell));
        }
    }

    // runSweepCells clamps to the cell count and a minimum of one.
    const SweepReport report = runSweepCells(
        "Table V cells", std::move(cells),
        static_cast<int>(std::thread::hardware_concurrency()));

    TextTable table("Table V (reproduction)",
                    {"Repl. alg.", "Runs", "Epochs to converge",
                     "Episode length", "Example attack sequence"});

    std::size_t cell_index = 0;
    for (ReplPolicy policy : policies) {
        RunningStat epochs, length;
        std::string example = "(not converged)";
        std::string failure;
        bool all_converged = true;

        for (int run = 0; run < runs; ++run) {
            const SweepCellResult &cell = report.cells[cell_index++];
            if (cell.completed && cell.result.converged) {
                const ExplorationResult &r = cell.result;
                epochs.push(r.epochsToConverge);
                length.push(r.finalEpisodeLength);
                example = r.sequence.toString(false) + " -> " +
                          r.finalGuess;
            } else {
                all_converged = false;
                if (!cell.completed)
                    failure = "FAILED: " + cell.error;
            }
        }

        table.addRow({replPolicyName(policy), TextTable::fmt((long)runs),
                      all_converged && epochs.count()
                          ? TextTable::fmt(epochs.mean(), 1)
                          : std::string("> ") +
                                TextTable::fmt((long)max_epochs),
                      length.count() ? TextTable::fmt(length.mean(), 1)
                                     : "-",
                      // A thrown cell must not masquerade as a timeout,
                      // even when another run of the policy converged.
                      failure.empty() ? example : failure});
    }

    table.print(std::cout);
    std::cout << "\n(" << report.cells.size() << " cells on "
              << report.workersUsed << " sweep workers, "
              << TextTable::fmt(report.wallSeconds, 1) << " s)\n";
    std::cout << "\nPaper (Table V): LRU 26.0 epochs/len 7.0, PLRU 15.67"
                 "/7.0, RRIP 70.67/12.7 — expect RRIP slowest & longest."
              << "\n";
    return 0;
}
