/**
 * @file
 * Table V: RL training statistics and generated attacks for the
 * deterministic cache replacement policies (LRU, PLRU, RRIP) on a
 * 4-way set with a 0/E victim.
 *
 * Paper expectation: RRIP needs more epochs to converge and a longer
 * attack sequence than LRU/PLRU. Absolute epoch counts differ from the
 * paper (its asynchronous trainer consumes far more samples per
 * "epoch"); the ordering is the reproduced claim.
 */

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

int
main()
{
    banner("Table V: attacking deterministic replacement policies");

    const int runs = byMode(1, 1, 3);
    const int max_epochs = byMode(12, 160, 300);

    TextTable table("Table V (reproduction)",
                    {"Repl. alg.", "Runs", "Epochs to converge",
                     "Episode length", "Example attack sequence"});

    for (ReplPolicy policy :
         {ReplPolicy::Lru, ReplPolicy::TreePlru, ReplPolicy::Rrip}) {
        RunningStat epochs, length;
        std::string example = "(not converged)";
        bool all_converged = true;

        for (int run = 0; run < runs; ++run) {
            ExplorationConfig cfg;
            cfg.env = tableVEnv(policy, 7 + run);
            if (policy == ReplPolicy::Rrip)
                cfg.env.windowSize = 20;  // RRIP attacks are longer
            cfg.ppo.seed = 21 + 13 * run;
            cfg.maxEpochs = max_epochs;
            const ExplorationResult r = explore(cfg);
            if (r.converged) {
                epochs.push(r.epochsToConverge);
                length.push(r.finalEpisodeLength);
                example = r.sequence.toString(false) + " -> " +
                          r.finalGuess;
            } else {
                all_converged = false;
            }
        }

        table.addRow({replPolicyName(policy), TextTable::fmt((long)runs),
                      all_converged && epochs.count()
                          ? TextTable::fmt(epochs.mean(), 1)
                          : std::string("> ") +
                                TextTable::fmt((long)max_epochs),
                      length.count() ? TextTable::fmt(length.mean(), 1)
                                     : "-",
                      example});
    }

    table.print(std::cout);
    std::cout << "\nPaper (Table V): LRU 26.0 epochs/len 7.0, PLRU 15.67"
                 "/7.0, RRIP 70.67/12.7 — expect RRIP slowest & longest."
              << "\n";
    return 0;
}
