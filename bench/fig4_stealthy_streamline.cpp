/**
 * @file
 * Figure 4: the StealthyStreamline attack on a 4-way LRU set —
 * the per-round access sequence and the cache-state evolution (line
 * ages) for every victim symbol, demonstrating (c) the 2-bit decode
 * and (d) that the sender/victim never misses.
 */

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

namespace {

std::string
stateString(const Cache &cache)
{
    const CacheSet &set = cache.set(0);
    const auto resident = set.residentAddrs();
    const auto ages = cache.policyState(0);
    std::string out = "{";
    bool first = true;
    // residentAddrs is in way order; ages align with ways for LRU.
    for (std::size_t w = 0; w < resident.size(); ++w) {
        if (!first)
            out += ", ";
        first = false;
        out += std::to_string(resident[w]);
        out += "(age ";
        out += std::to_string(ages[w]);
        out += ")";
    }
    out += "}";
    return out;
}

} // namespace

int
main()
{
    banner("Figure 4: StealthyStreamline on a 4-way LRU set");

    constexpr unsigned ways = 4;
    std::cout
        << "Round structure per 2-bit symbol s (canonical state:\n"
        << "lines 0..3 resident, 0 oldest):\n"
        << "  1. sender accesses line s            (hit; no victim"
           " miss)\n"
        << "  2. receiver accesses evictor line    (miss; displaces"
           " oldest non-promoted candidate)\n"
        << "  3. receiver times lines 0..3         (hit position =="
           " s)\n\n";

    TextTable table("Figure 4d: cache state and probe pattern per symbol",
                    {"victim symbol", "probe pattern (0..3)",
                     "decoded", "victim misses", "state after round"});

    for (unsigned symbol = 0; symbol < 4; ++symbol) {
        CacheConfig cfg;
        cfg.numSets = 1;
        cfg.numWays = ways;
        cfg.policy = ReplPolicy::Lru;
        cfg.addressSpaceSize = 2 * ways;
        Cache cache(cfg);

        // Canonical prime.
        for (unsigned a = 0; a < ways; ++a)
            cache.access(a, Domain::Attacker);

        // Round: sender encodes `symbol`.
        const AccessResult sender = cache.access(symbol, Domain::Victim);
        cache.access(ways, Domain::Attacker);  // evictor

        std::string pattern;
        int decoded = 3;  // the all-miss pattern is symbol 3's
                          // signature on a 4-way set (its promoted
                          // line is displaced by the probe refills)
        for (unsigned c = 0; c < 4; ++c) {
            const AccessResult probe = cache.access(c, Domain::Attacker);
            pattern += probe.hit ? 'H' : 'M';
            if (probe.hit)
                decoded = static_cast<int>(c);
        }
        // Streamline overlap: nothing else to re-prime on 4-way
        // (candidates are the whole set).

        table.addRow({TextTable::fmt((long)symbol), pattern,
                      TextTable::fmt((long)decoded),
                      sender.hit ? "0" : "1", stateString(cache)});
    }

    table.print(std::cout);

    // End-to-end check on the full covert channel.
    CovertChannelConfig ch_cfg;
    ch_cfg.protocol = CovertProtocol::StealthyStreamline;
    ch_cfg.ways = 8;
    ch_cfg.bitsPerSymbol = 2;
    Rng rng(99);
    CovertChannel channel(ch_cfg);
    const CovertResult res = channel.transmit(randomBits(rng, 1024));
    std::cout << "\n8-way end-to-end: " << res.bitsSent << " bits, "
              << TextTable::fmt(res.errorRate * 100.0, 2)
              << "% errors, " << res.victimMisses
              << " victim misses (stealth), "
              << TextTable::fmt(res.cyclesPerBit, 1)
              << " cycles/bit.\n"
              << "\nPaper (Fig. 4): the hit position among the timed"
                 " candidates identifies the 2-bit secret and the"
                 " victim's accesses are always hits.\n";
    return 0;
}
