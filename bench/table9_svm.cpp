/**
 * @file
 * Table IX: bypassing the Cyclone-style SVM detector.
 *
 * A linear SVM is trained offline on cyclic-interference features of
 * synthetic benign traces vs. textbook prime+probe traces (the paper
 * uses SPEC2017 for the benign side; see DESIGN.md substitutions).
 * Three agents are then measured against it: the textbook attacker,
 * an RL baseline trained without the detector, and "RL SVM" trained
 * with the detection penalty in the reward.
 */

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

namespace {

constexpr std::size_t kIntervalSteps = 16;

std::shared_ptr<LinearSvm>
trainDetectorSvm(double *cv_accuracy)
{
    CacheConfig cache;
    cache.numSets = 4;
    cache.numWays = 1;
    cache.policy = ReplPolicy::Lru;
    cache.addressSpaceSize = 128;

    BenignTraceConfig benign;
    benign.addrSpace = 64;
    benign.traceLength = 160;

    CycloneTrainingSetBuilder builder(cache, kIntervalSteps, benign);
    Rng rng(404);
    const SvmDataset data = builder.build(byMode(30, 120, 300), rng);
    *cv_accuracy = kFoldAccuracy(data, 5, rng);

    auto svm = std::make_shared<LinearSvm>();
    svm->train(data, rng);
    return svm;
}

} // namespace

int
main()
{
    banner("Table IX: Cyclone-style SVM detector bypass");

    const int train_epochs = byMode(3, 30, 120);
    const int eval_episodes = byMode(20, 120, 1000);

    double cv_accuracy = 0.0;
    const std::shared_ptr<LinearSvm> svm =
        trainDetectorSvm(&cv_accuracy);
    std::cout << "SVM 5-fold cross-validation accuracy: "
              << TextTable::fmt(cv_accuracy, 3)
              << "  (paper: 0.988)\n\n";

    TextTable table("Table IX (reproduction)",
                    {"Attacker", "Bit rate (guess/step)",
                     "Guess accuracy", "Detection rate"});

    // Textbook agent.
    {
        auto env = makeGame(multiSecretEnv());
        env->attachDetector(std::make_shared<CycloneDetector>(
                                4, kIntervalSteps, svm, 0.0),
                            DetectorMode::Penalize);
        TextbookPrimeProbeAgent agent(*env);
        const DetectorEvalStats stats = evaluateWithDetector(
            *env, scriptedActFn(agent), eval_episodes, nullptr,
            [&] { agent.onEpisodeStart(); });
        table.addRow({"Textbook", TextTable::fmt(stats.bitRate, 4),
                      TextTable::fmt(stats.guessAccuracy, 3),
                      TextTable::fmt(stats.detectionRate, 3)});
    }

    // RL agents with and without the detection penalty in training
    // (curriculum: one-shot attack -> short channel -> full channel).
    auto trained = [&](double penalty, std::uint64_t seed) {
        auto single = makeGame(singleSecretStage());
        auto multi_short = makeGame(shortChannelStage());
        auto multi = makeGame(multiSecretEnv());
        multi_short->attachDetector(
            std::make_shared<CycloneDetector>(4, kIntervalSteps, svm,
                                              penalty),
            DetectorMode::Penalize);
        multi->attachDetector(std::make_shared<CycloneDetector>(
                                  4, kIntervalSteps, svm, penalty),
                              DetectorMode::Penalize);
        PpoConfig ppo;
        ppo.seed = seed;
        auto trainer = trainChannelAgent(*single, *multi_short, *multi, ppo,
                                         byMode(12, 60, 80),
                                         byMode(4, 25, 40), train_epochs);
        return evaluateWithDetector(*multi,
                                    policyActFn(trainer->policy()),
                                    eval_episodes, nullptr);
    };

    const DetectorEvalStats baseline = trained(0.0, 61);
    table.addRow({"RL baseline", TextTable::fmt(baseline.bitRate, 4),
                  TextTable::fmt(baseline.guessAccuracy, 3),
                  TextTable::fmt(baseline.detectionRate, 3)});

    const DetectorEvalStats evasive = trained(-6.0, 62);
    table.addRow({"RL SVM", TextTable::fmt(evasive.bitRate, 4),
                  TextTable::fmt(evasive.guessAccuracy, 3),
                  TextTable::fmt(evasive.detectionRate, 3)});

    table.print(std::cout);
    std::cout << "\nPaper (Table IX): textbook 0.1625/1.0/0.997, RL"
                 " baseline 0.228/0.998/0.715, RL SVM 0.168/0.998/"
                 "0.00333 — expect penalty training to crush the"
                 " detection rate at some bit-rate cost.\n";
    return 0;
}
