/**
 * @file
 * google-benchmark microbenchmarks for the core substrates: cache
 * access, environment stepping, policy inference, PPO updates, the
 * detector hot paths, and covert-channel rounds. These bound the
 * training throughput reported in the table benches and serve as the
 * observation-encoding ablation (window-only vs window+summary cost).
 */

#include <benchmark/benchmark.h>

#include "core/autocat.hpp"

namespace autocat {
namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.numSets = static_cast<unsigned>(state.range(0));
    cfg.numWays = 8;
    cfg.policy = ReplPolicy::Lru;
    cfg.addressSpaceSize = 4 * cfg.numBlocks();
    Cache cache(cfg);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addr, Domain::Attacker));
        addr = (addr * 2654435761u + 1) % cfg.addressSpaceSize;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(16)->Arg(256);

void
BM_TwoLevelAccess(benchmark::State &state)
{
    TwoLevelConfig cfg;
    cfg.l1.numSets = 8;
    cfg.l1.numWays = 2;
    cfg.l1.addressSpaceSize = 128;
    cfg.l2.numSets = 16;
    cfg.l2.numWays = 4;
    cfg.l2.addressSpaceSize = 128;
    TwoLevelMemory mem(cfg);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.access(addr, Domain::Attacker));
        addr = (addr * 2654435761u + 1) % 128;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLevelAccess);

void
BM_EnvStep(benchmark::State &state)
{
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 4;
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 4;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    cfg.windowSize = 16;
    CacheGuessingGame env(cfg);
    env.reset();
    Rng rng(1);
    for (auto _ : state) {
        const std::size_t action = rng.uniformInt(env.numActions());
        const StepResult sr = env.step(action);
        if (sr.done)
            env.reset();
        benchmark::DoNotOptimize(sr.reward);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnvStep);

void
BM_PolicyForward(benchmark::State &state)
{
    Rng rng(2);
    const std::size_t obs_dim = static_cast<std::size_t>(state.range(0));
    ActorCritic net(obs_dim, 8, 128, 2, rng);
    std::vector<float> obs(obs_dim, 0.1f);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.forwardOne(obs));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyForward)->Arg(64)->Arg(256)->Arg(1024);

void
BM_PpoEpoch(benchmark::State &state)
{
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 4;
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 4;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    cfg.windowSize = 16;
    CacheGuessingGame env(cfg);
    PpoConfig ppo;
    ppo.stepsPerEpoch = 512;
    ppo.minibatchSize = 128;
    PpoTrainer trainer(env, ppo);
    for (auto _ : state)
        benchmark::DoNotOptimize(trainer.runEpoch().epoch);
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_PpoEpoch)->Unit(benchmark::kMillisecond);

void
BM_Autocorrelation(benchmark::State &state)
{
    Rng rng(3);
    std::vector<double> train(
        static_cast<std::size_t>(state.range(0)));
    for (auto &x : train)
        x = static_cast<double>(rng.uniformInt(2));
    for (auto _ : state)
        benchmark::DoNotOptimize(maxAutocorrelation(train, 30));
}
BENCHMARK(BM_Autocorrelation)->Arg(64)->Arg(512);

void
BM_SvmPredict(benchmark::State &state)
{
    Rng rng(4);
    SvmDataset data;
    for (int i = 0; i < 100; ++i) {
        data.add({rng.gaussian() + 2.0, rng.gaussian()}, +1);
        data.add({rng.gaussian() - 2.0, rng.gaussian()}, -1);
    }
    LinearSvm svm;
    svm.train(data, rng);
    const std::vector<double> x{0.5, -0.2};
    for (auto _ : state)
        benchmark::DoNotOptimize(svm.predict(x));
}
BENCHMARK(BM_SvmPredict);

void
BM_CovertChannelRound(benchmark::State &state)
{
    CovertChannelConfig cfg;
    cfg.protocol = CovertProtocol::StealthyStreamline;
    cfg.ways = static_cast<unsigned>(state.range(0));
    cfg.bitsPerSymbol = 2;
    CovertChannel channel(cfg);
    Rng rng(5);
    const BitString msg = randomBits(rng, 64);
    for (auto _ : state)
        benchmark::DoNotOptimize(channel.transmit(msg).mbps);
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CovertChannelRound)->Arg(8)->Arg(12);

} // namespace
} // namespace autocat

BENCHMARK_MAIN();
