/**
 * @file
 * google-benchmark microbenchmarks for the core substrates: cache
 * access, environment stepping (single and vectorized), policy
 * inference, PPO updates, the detector hot paths, and covert-channel
 * rounds. These bound the training throughput reported in the table
 * benches and serve as the observation-encoding ablation (window-only
 * vs window+summary cost).
 *
 * For the perf trajectory, emit machine-readable results with e.g.
 *
 *   ./microbench --benchmark_filter='VecEnv|PolicyForward' \
 *                --benchmark_out=perf.json --benchmark_out_format=json
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/autocat.hpp"
#include "env/env_registry.hpp"
#include "eval/sweep.hpp"
#include "serve/net/frame.hpp"
#include "serve/wire.hpp"

namespace autocat {
namespace {

/** The Table V-style environment the stepping benches run. */
EnvConfig
benchEnvConfig()
{
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 4;
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 4;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    cfg.windowSize = 16;
    return cfg;
}

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.numSets = static_cast<unsigned>(state.range(0));
    cfg.numWays = 8;
    cfg.policy = ReplPolicy::Lru;
    cfg.addressSpaceSize = 4 * cfg.numBlocks();
    Cache cache(cfg);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addr, Domain::Attacker));
        addr = (addr * 2654435761u + 1) % cfg.addressSpaceSize;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(16)->Arg(256);

/** Cache geometry shared by BM_CacheAccess/16 and the depth-1 check. */
CacheConfig
hierBenchLevel(unsigned sets, unsigned ways)
{
    CacheConfig cfg;
    cfg.numSets = sets;
    cfg.numWays = ways;
    cfg.policy = ReplPolicy::Lru;
    cfg.addressSpaceSize = 4 * cfg.numBlocks();
    return cfg;
}

/**
 * Build the depth-N hierarchy the hierarchy benches run: outermost
 * level 16x8 (the BM_CacheAccess/16 geometry), inner levels private
 * and progressively smaller.
 */
HierarchyConfig
hierBenchConfig(unsigned depth, InclusionPolicy outer)
{
    HierarchyConfig cfg;
    cfg.numCores = 2;
    if (depth >= 3)
        cfg.levels.push_back({hierBenchLevel(4, 2),
                              InclusionPolicy::Inclusive, false});
    if (depth >= 2)
        cfg.levels.push_back({hierBenchLevel(8, 2),
                              InclusionPolicy::Inclusive, false});
    cfg.levels.push_back({hierBenchLevel(16, 8), outer, true});
    // Depth 1 keeps a single shared level (no per-core replication).
    if (depth == 1)
        cfg.numCores = 1;
    for (auto &lvl : cfg.levels)
        lvl.cache.addressSpaceSize = 4 * 16 * 8;
    return cfg;
}

/**
 * MemorySystem access rate through a CacheHierarchy at depth 1/2/3,
 * inclusive vs exclusive outermost level. Arg0 = depth, Arg1 = 1 for
 * an exclusive outer level. Depth 1 must match BM_CacheAccess/16
 * within noise — checked by the self-test the harness main() runs
 * before the benchmarks (the flattened replacement metadata is what
 * keeps the walk free of per-set pointer chasing).
 */
void
BM_HierarchyAccess(benchmark::State &state)
{
    const auto depth = static_cast<unsigned>(state.range(0));
    const bool exclusive = state.range(1) != 0;
    CacheHierarchy mem(hierBenchConfig(
        depth, exclusive ? InclusionPolicy::Exclusive
                         : InclusionPolicy::Inclusive));
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.access(addr, Domain::Attacker));
        addr = (addr * 2654435761u + 1) % 512;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess)
    ->ArgsProduct({{1, 2, 3}, {0, 1}})
    ->ArgNames({"depth", "exclusive"});

void
BM_EnvStep(benchmark::State &state)
{
    auto env = makeEnv("guessing_game", benchEnvConfig());
    env->reset();
    Rng rng(1);
    for (auto _ : state) {
        const std::size_t action = rng.uniformInt(env->numActions());
        const StepResult sr = env->step(action);
        if (sr.done)
            env->reset();
        benchmark::DoNotOptimize(sr.reward);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnvStep);

/**
 * Env-steps/sec through a VecEnv at 1/2/4/8 streams, sync vs
 * threaded. Arg0 = stream count, Arg1 = 1 for ThreadedVecEnv. The
 * items/sec rate IS the environment throughput; on a multi-core host
 * the threaded variant should scale with the stream count while sync
 * stays flat.
 */
void
BM_VecEnvThroughput(benchmark::State &state)
{
    const auto streams = static_cast<std::size_t>(state.range(0));
    const bool threaded = state.range(1) != 0;
    auto vec = makeVecEnv("guessing_game", benchEnvConfig(), streams,
                          threaded);
    vec->resetAll();
    Rng rng(1);
    std::vector<std::size_t> actions(streams);
    for (auto _ : state) {
        for (auto &a : actions)
            a = rng.uniformInt(vec->numActions());
        const VecStepResult vr = vec->stepAll(actions);
        benchmark::DoNotOptimize(vr.rewards.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(streams));
    state.counters["env_steps_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(streams),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VecEnvThroughput)
    ->ArgsProduct({{1, 2, 4, 8, 64, 256}, {0, 1}})
    ->ArgNames({"streams", "threaded"});

/**
 * The batch engine sweep: env-steps/sec stepping N streams through
 * SyncVecEnv::stepAll (per-env virtual dispatch, per-step observation
 * vectors) vs BatchEnvPool::stepBatch in-place (devirtualized flat
 * loop, rows maintained inside the persistent matrix). Arg0 = stream
 * count, Arg1 = 1 for the batch engine. Actions come from a
 * precomputed schedule so both modes time pure stepping cost; the
 * env_steps_per_sec counter is the headline rate.
 */
void
BM_EnvStepBatch(benchmark::State &state)
{
    const auto streams = static_cast<std::size_t>(state.range(0));
    const bool batch = state.range(1) != 0;
    auto vec =
        makeVecEnv("guessing_game", benchEnvConfig(), streams,
                   batch ? VecEnvKind::Batch : VecEnvKind::Sync);
    vec->resetAll();

    constexpr std::size_t kSchedule = 1024;
    Rng rng(1);
    std::vector<std::vector<std::size_t>> schedule(
        kSchedule, std::vector<std::size_t>(streams));
    for (auto &step_actions : schedule)
        for (auto &a : step_actions)
            a = rng.uniformInt(vec->numActions());

    std::size_t t = 0;
    if (batch) {
        BatchStepSurface *surface = vec->batchSurface();
        std::vector<double> rewards(streams);
        std::vector<std::uint8_t> dones(streams);
        std::vector<StepInfo> infos(streams);
        for (auto _ : state) {
            surface->stepBatchInPlace(schedule[t].data(), rewards.data(),
                                      dones.data(), infos.data());
            benchmark::DoNotOptimize(rewards.data());
            t = (t + 1) % kSchedule;
        }
    } else {
        for (auto _ : state) {
            const VecStepResult vr = vec->stepAll(schedule[t]);
            benchmark::DoNotOptimize(vr.rewards.data());
            t = (t + 1) % kSchedule;
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(streams));
    state.counters["env_steps_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(streams),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EnvStepBatch)
    ->ArgsProduct({{1, 8, 64, 256}, {0, 1}})
    ->ArgNames({"streams", "batch"});

void
BM_PolicyForward(benchmark::State &state)
{
    Rng rng(2);
    const std::size_t obs_dim = static_cast<std::size_t>(state.range(0));
    ActorCritic net(obs_dim, 8, 128, 2, rng);
    std::vector<float> obs(obs_dim, 0.1f);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.forwardOne(obs));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyForward)->Arg(64)->Arg(256)->Arg(1024);

/**
 * Batched policy forward: one N x obs_dim matmul for N streams vs N
 * single-observation passes (the vectorized trainer's win over the
 * old per-env loop). Runs the training-path forward() so numbers stay
 * comparable across revisions; BM_PolicyInferenceBatch below measures
 * the allocation-free workspace path collection actually uses.
 */
void
BM_PolicyForwardBatch(benchmark::State &state)
{
    Rng rng(2);
    const auto streams = static_cast<std::size_t>(state.range(0));
    const std::size_t obs_dim = 256;
    ActorCritic net(obs_dim, 8, 128, 2, rng);
    Matrix obs(streams, obs_dim);
    for (std::size_t i = 0; i < obs.size(); ++i)
        obs.data()[i] = 0.1f;
    for (auto _ : state)
        benchmark::DoNotOptimize(net.forward(obs).values.data());
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(streams));
}
BENCHMARK(BM_PolicyForwardBatch)->Arg(1)->Arg(4)->Arg(8);

/**
 * Inference through the reusable forward workspace (forwardNoGrad):
 * the fused GEMM path rollout collection and evaluation run, with no
 * per-step allocations or activation caching.
 */
void
BM_PolicyInferenceBatch(benchmark::State &state)
{
    Rng rng(2);
    const auto streams = static_cast<std::size_t>(state.range(0));
    const std::size_t obs_dim = 256;
    ActorCritic net(obs_dim, 8, 128, 2, rng);
    Matrix obs(streams, obs_dim);
    for (std::size_t i = 0; i < obs.size(); ++i)
        obs.data()[i] = 0.1f;
    AcOutput out;
    for (auto _ : state) {
        net.forwardNoGrad(obs, out);
        benchmark::DoNotOptimize(out.values.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(streams));
}
BENCHMARK(BM_PolicyInferenceBatch)->Arg(1)->Arg(4)->Arg(8);

/**
 * Full PPO epoch (collect + update) at 1/4/8 streams, serial vs
 * double-buffered collection (Arg1 = 1 pipelines env stepping behind
 * the policy forward; needs >= 2 streams and a second core to win).
 */
void
BM_PpoEpoch(benchmark::State &state)
{
    const auto streams = static_cast<std::size_t>(state.range(0));
    const bool db = state.range(1) != 0;
    auto vec = makeVecEnv("guessing_game", benchEnvConfig(), streams);
    PpoConfig ppo;
    ppo.stepsPerEpoch = 512;
    ppo.minibatchSize = 128;
    ppo.doubleBuffered = db;
    PpoTrainer trainer(*vec, ppo);
    for (auto _ : state)
        benchmark::DoNotOptimize(trainer.runEpoch().epoch);
    state.SetItemsProcessed(state.iterations() * 512);
    state.counters["env_steps_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 512.0,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PpoEpoch)
    ->ArgsProduct({{1, 4, 8}, {0, 1}})
    ->ArgNames({"streams", "db"})
    ->Unit(benchmark::kMillisecond);

void
BM_Autocorrelation(benchmark::State &state)
{
    Rng rng(3);
    std::vector<double> train(
        static_cast<std::size_t>(state.range(0)));
    for (auto &x : train)
        x = static_cast<double>(rng.uniformInt(2));
    for (auto _ : state)
        benchmark::DoNotOptimize(maxAutocorrelation(train, 30));
}
BENCHMARK(BM_Autocorrelation)->Arg(64)->Arg(512);

void
BM_SvmPredict(benchmark::State &state)
{
    Rng rng(4);
    SvmDataset data;
    for (int i = 0; i < 100; ++i) {
        data.add({rng.gaussian() + 2.0, rng.gaussian()}, +1);
        data.add({rng.gaussian() - 2.0, rng.gaussian()}, -1);
    }
    LinearSvm svm;
    svm.train(data, rng);
    const std::vector<double> x{0.5, -0.2};
    for (auto _ : state)
        benchmark::DoNotOptimize(svm.predict(x));
}
BENCHMARK(BM_SvmPredict);

void
BM_CovertChannelRound(benchmark::State &state)
{
    CovertChannelConfig cfg;
    cfg.protocol = CovertProtocol::StealthyStreamline;
    cfg.ways = static_cast<unsigned>(state.range(0));
    cfg.bitsPerSymbol = 2;
    CovertChannel channel(cfg);
    Rng rng(5);
    const BitString msg = randomBits(rng, 64);
    for (auto _ : state)
        benchmark::DoNotOptimize(channel.transmit(msg).mbps);
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CovertChannelRound)->Arg(8)->Arg(12);

/** A resolved sweep cell of realistic size for the wire benches. */
SweepCell
benchCell()
{
    SweepConfig cfg;
    cfg.base.env = benchEnvConfig();
    cfg.grid.scenarios = {"l1l2_private"};
    cfg.grid.policies = {ReplPolicy::TreePlru};
    cfg.grid.seeds = {7};
    CurriculumPhase warmup;
    warmup.name = "warmup";
    warmup.scenario = "guessing_game";
    warmup.maxEpochs = 40;
    warmup.targetAccuracy = 0.95;
    cfg.phases = {warmup, warmup};
    return expandSweepGrid(cfg)[0];
}

// Scheduler overhead: a job/row blob is serialized and parsed once per
// cell *attempt*, so these bound the per-cell dispatch cost the
// distributed scheduler adds over the in-process pool (the cells
// themselves train for seconds — the wire must stay microseconds).
void
BM_CellJobSerialize(benchmark::State &state)
{
    const SweepCell cell = benchCell();
    for (auto _ : state)
        benchmark::DoNotOptimize(serializeCellJob(cell));
}
BENCHMARK(BM_CellJobSerialize);

void
BM_CellJobDeserialize(benchmark::State &state)
{
    const std::string blob = serializeCellJob(benchCell());
    for (auto _ : state)
        benchmark::DoNotOptimize(deserializeCellJob(blob));
}
BENCHMARK(BM_CellJobDeserialize);

void
BM_CellRowSerialize(benchmark::State &state)
{
    SweepCellResult row;
    row.cell = benchCell();
    row.completed = true;
    row.result.converged = true;
    row.result.finalAccuracy = 0.97;
    for (int i = 0; i < 24; ++i)
        row.result.sequence.push(
            {i % 3 ? ActionKind::Access : ActionKind::Guess,
             static_cast<std::uint64_t>(i % 4)});
    row.result.finalGuess = "guess 2";
    for (auto _ : state)
        benchmark::DoNotOptimize(serializeCellRow(row));
}
BENCHMARK(BM_CellRowSerialize);

void
BM_CellRowDeserialize(benchmark::State &state)
{
    SweepCellResult row;
    row.cell = benchCell();
    row.completed = true;
    for (int i = 0; i < 24; ++i)
        row.result.sequence.push({ActionKind::Access, 1});
    const std::string blob = serializeCellRow(row);
    for (auto _ : state)
        benchmark::DoNotOptimize(deserializeCellRow(blob));
}
BENCHMARK(BM_CellRowDeserialize);

// TCP frame layer (serve/net/frame.hpp): every byte between a
// scheduler and a runner_daemon moves inside one of these frames, so
// encode+decode bound the transport's cost over handing a blob to a
// local process. Arg = payload size: 4 KiB is a job blob, 1 MiB a
// checkpoint upload.
void
BM_NetFrameEncode(benchmark::State &state)
{
    const std::string payload(static_cast<std::size_t>(state.range(0)),
                              'p');
    for (auto _ : state)
        benchmark::DoNotOptimize(
            encodeFrame(FrameType::Checkpoint, payload));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_NetFrameEncode)->Arg(4 << 10)->Arg(1 << 20);

void
BM_NetFrameDecode(benchmark::State &state)
{
    const std::string wire = encodeFrame(
        FrameType::Checkpoint,
        std::string(static_cast<std::size_t>(state.range(0)), 'p'));
    for (auto _ : state) {
        FrameReader reader;
        reader.feed(wire.data(), wire.size());
        Frame frame;
        if (!reader.next(frame))
            state.SkipWithError("frame did not decode");
        benchmark::DoNotOptimize(frame);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_NetFrameDecode)->Arg(4 << 10)->Arg(1 << 20);

/** A full cell dispatch as the wire sees it: encode Hello + Job,
 *  decode both, then encode + decode the Row reply — the per-attempt
 *  frame overhead the TCP transport adds on top of the PR 6 blob
 *  costs measured above. */
void
BM_NetFrameDispatch(benchmark::State &state)
{
    HelloPayload hello;
    hello.jobWireVersion = kCellJobVersion;
    hello.rowWireVersion = kCellRowVersion;
    const std::string job_blob = serializeCellJob(benchCell());
    SweepCellResult row;
    row.cell = benchCell();
    row.completed = true;
    const std::string row_blob = serializeCellRow(row);
    for (auto _ : state) {
        std::string stream =
            encodeFrame(FrameType::Hello, encodeHello(hello));
        stream += encodeFrame(FrameType::Job, job_blob);
        stream += encodeFrame(FrameType::Row, row_blob);
        FrameReader reader;
        reader.feed(stream.data(), stream.size());
        Frame frame;
        int frames = 0;
        while (reader.next(frame))
            ++frames;
        if (frames != 3)
            state.SkipWithError("dispatch frames did not decode");
        benchmark::DoNotOptimize(frame);
    }
}
BENCHMARK(BM_NetFrameDispatch);

/**
 * Harness self-test: a depth-1 CacheHierarchy must cost the same as a
 * bare Cache within noise — the hierarchy walk adds one virtual call
 * and a loop bound, nothing per-set. Measures both with identical
 * access streams and fails the harness when the ratio exceeds a
 * noise-tolerant bound (best of five rounds; set
 * AUTOCAT_SKIP_SELFTEST=1 to report without failing, e.g. on heavily
 * loaded shared runners).
 */
bool
checkDepth1MatchesCacheAccess()
{
    constexpr int kIters = 400000;
    constexpr double kMaxRatio = 1.6;

    const auto run = [](auto &target) {
        std::uint64_t addr = 0;
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kIters; ++i) {
            benchmark::DoNotOptimize(target.access(addr,
                                                   Domain::Attacker));
            addr = (addr * 2654435761u + 1) % 512;
        }
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    double best_ratio = 1e9;
    for (int round = 0; round < 5; ++round) {
        Cache cache(hierBenchLevel(16, 8));
        CacheHierarchy hier(
            hierBenchConfig(1, InclusionPolicy::Inclusive));
        const double cache_s = run(cache);
        const double hier_s = run(hier);
        best_ratio = std::min(best_ratio, hier_s / cache_s);
    }
    std::fprintf(stderr,
                 "hierarchy depth-1 self-test: %.2fx of raw cache "
                 "access (bound %.2fx)\n",
                 best_ratio, kMaxRatio);
    const char *skip = std::getenv("AUTOCAT_SKIP_SELFTEST");
    if (skip && skip[0] == '1')
        return true;
    return best_ratio <= kMaxRatio;
}

} // namespace
} // namespace autocat

int
main(int argc, char **argv)
{
    std::fprintf(stderr, "matmul backend: %s\n",
                 autocat::matmulBackend());
    if (!autocat::checkDepth1MatchesCacheAccess()) {
        std::fprintf(stderr,
                     "FAIL: depth-1 CacheHierarchy is slower than a "
                     "bare Cache beyond noise\n");
        return 1;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
