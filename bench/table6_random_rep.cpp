/**
 * @file
 * Table VI: RL-generated attacks against the random replacement
 * policy. There is no deterministic attack sequence; the step-reward
 * magnitude trades episode length against end accuracy (larger step
 * penalties force shorter, less reliable attacks).
 */

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

int
main()
{
    banner("Table VI: random replacement policy, step-reward sweep");

    const int max_epochs = byMode(10, 90, 250);
    const int eval_episodes = byMode(40, 100, 200);

    TextTable table("Table VI (reproduction)",
                    {"Step reward", "End accuracy", "Episode length"});

    for (double step_reward : {-0.02, -0.01, -0.005}) {
        ExplorationConfig cfg;
        cfg.env = tableVEnv(ReplPolicy::Random, 7);
        cfg.env.windowSize = 24;  // room for repeat-access strategies
        cfg.env.stepReward = step_reward;
        cfg.ppo.seed = 33;
        cfg.maxEpochs = max_epochs;
        // The random policy caps achievable accuracy below 1; train to
        // the budget and report what the final agent achieves.
        cfg.targetAccuracy = 0.995;
        cfg.evalEpisodes = eval_episodes;
        const ExplorationResult r = explore(cfg);
        table.addRow({TextTable::fmt(step_reward, 3),
                      TextTable::fmt(r.finalAccuracy, 2),
                      TextTable::fmt(r.finalEpisodeLength, 2)});
    }

    table.print(std::cout);
    std::cout << "\nPaper (Table VI): -0.02 -> 0.98 acc/16.25 len, -0.01"
                 " -> 0.98/18.85, -0.005 -> 0.94/19.02; expect smaller"
                 " |step reward| to allow longer sequences.\n";
    return 0;
}
