/**
 * @file
 * Table III: attack sequences found on (simulated) real hardware.
 *
 * The paper explores Intel CPUs through CacheQuery without knowing
 * their replacement policies. Our substitution (DESIGN.md) is a
 * black-box single-set target per CPU/level with the documented
 * geometry, a hidden policy, measurement noise, and stray-access
 * interference. The agent sees only the MemorySystem interface, so
 * the black-box adaptation claim is exercised unchanged; the reported
 * accuracy is the greedy policy evaluated over 1000 noisy episodes
 * (the paper repeats each sequence 1000x on silicon).
 */

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

int
main()
{
    banner("Table III: black-box attacks on simulated CPUs");

    const auto targets = tableIIITargets();
    const std::size_t rows = byMode<std::size_t>(1, 2, targets.size());
    const int max_epochs = byMode(10, 130, 300);
    const int eval_episodes = byMode(100, 1000, 1000);

    TextTable table("Table III (reproduction)",
                    {"CPU", "Level", "Ways", "Rep.Pol.", "Accuracy",
                     "Epochs", "Attack sequence found"});

    for (std::size_t i = 0; i < rows; ++i) {
        const HardwareTargetPreset &preset = targets[i];

        ExplorationConfig cfg;
        cfg.env.cache.numSets = 1;
        cfg.env.cache.numWays = preset.ways;
        cfg.env.attackAddrS = 0;
        cfg.env.attackAddrE = preset.attackAddrE;
        cfg.env.victimAddrS = 0;
        cfg.env.victimAddrE = 0;
        cfg.env.victimNoAccessEnable = true;
        cfg.env.windowSize = preset.ways * 3 + 4;
        cfg.env.stepReward = -0.005;  // paper: longer sequences on HW
        cfg.env.seed = 7 + i;
        cfg.ppo.seed = 101 + 7 * i;
        cfg.maxEpochs = max_epochs;
        cfg.targetAccuracy = 0.95;  // noise bounds achievable accuracy
        // Final accuracy is measured at the paper's 1000-episode scale
        // (reduced in fast mode).
        cfg.evalEpisodes = eval_episodes;

        auto target =
            std::make_unique<SimulatedHardwareTarget>(preset, 77 + i);
        const ExplorationResult r = explore(cfg, std::move(target));
        const double accuracy = r.finalAccuracy;

        table.addRow({preset.cpu, preset.level,
                      TextTable::fmt((long)preset.ways),
                      preset.documented ? replPolicyName(preset.policy)
                                        : "N.O.D.",
                      TextTable::fmt(accuracy, 3),
                      r.converged ? TextTable::fmt((long)r.epochsToConverge)
                                  : "(timeout)",
                      r.sequence.toString(false) + " -> " + r.finalGuess});
    }

    if (rows < targets.size()) {
        std::cout << "(" << targets.size() - rows
                  << " more CPU rows with AUTOCAT_FULL=1)\n";
    }
    table.print(std::cout);
    std::cout << "\nPaper (Table III): accuracies 0.993-1.0; the agent"
                 " adapts to undocumented policies without reverse"
                 " engineering (vs ~100 h manual effort).\n";
    return 0;
}
