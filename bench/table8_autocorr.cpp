/**
 * @file
 * Table VIII: bypassing CC-Hunter-style autocorrelation detection.
 *
 * Three agents play the 160-step multi-secret channel on a 4-set
 * direct-mapped cache:
 *   textbook     the scripted prime+probe sender/receiver
 *   RL baseline  PPO trained on guess rewards only
 *   RL autocor   PPO trained with the L2 autocorrelation penalty
 *                R_L2 = a * sum_p C_p^2 / P added to the reward
 * Reported per agent: bit rate (guesses/step), guess accuracy, and the
 * average per-episode max autocorrelation of the conflict-miss train.
 */

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

namespace {

constexpr std::size_t kMaxLag = 30;
constexpr double kThreshold = 0.75;

DetectorEvalStats
evalTextbook(int episodes)
{
    EnvConfig env_cfg = multiSecretEnv();
    auto env = makeGame(env_cfg);
    auto detector = std::make_shared<AutocorrDetector>(
        kMaxLag, kThreshold, 0.0 /* measurement only */);
    env->attachDetector(detector, DetectorMode::Penalize);
    TextbookPrimeProbeAgent agent(*env);
    return evaluateWithDetector(*env, scriptedActFn(agent), episodes,
                                detector.get(),
                                [&] { agent.onEpisodeStart(); });
}

DetectorEvalStats
evalTrained(double penalty_coef, int channel_epochs, int episodes,
            std::uint64_t seed)
{
    // Curriculum: one-shot attack -> short channel -> full channel.
    // The autocorrelation penalty applies in the channel stages.
    auto single = makeGame(singleSecretStage());
    auto multi_short = makeGame(shortChannelStage());
    auto multi = makeGame(multiSecretEnv());

    auto make_detector = [&] {
        return std::make_shared<AutocorrDetector>(kMaxLag, kThreshold,
                                                  penalty_coef);
    };
    multi_short->attachDetector(make_detector(), DetectorMode::Penalize);
    auto detector = make_detector();
    multi->attachDetector(detector, DetectorMode::Penalize);

    PpoConfig ppo;
    ppo.seed = seed;
    auto trainer = trainChannelAgent(*single, *multi_short, *multi, ppo,
                                     byMode(12, 60, 80),
                                     byMode(4, 25, 40), channel_epochs);

    return evaluateWithDetector(*multi, policyActFn(trainer->policy()),
                                episodes, detector.get());
}

} // namespace

int
main()
{
    banner("Table VIII: autocorrelation (CC-Hunter) bypass");

    const int train_epochs = byMode(3, 30, 120);
    const int eval_episodes = byMode(20, 120, 1000);

    TextTable table("Table VIII (reproduction)",
                    {"Attack", "Bit rate (guess/step)", "Guess accuracy",
                     "Avg max autocorr"});

    const DetectorEvalStats textbook = evalTextbook(eval_episodes);
    table.addRow({"Textbook", TextTable::fmt(textbook.bitRate, 4),
                  TextTable::fmt(textbook.guessAccuracy, 3),
                  TextTable::fmt(textbook.avgMaxAutocorr, 3)});

    const DetectorEvalStats baseline =
        evalTrained(0.0, train_epochs, eval_episodes, 57);
    table.addRow({"RL baseline", TextTable::fmt(baseline.bitRate, 4),
                  TextTable::fmt(baseline.guessAccuracy, 3),
                  TextTable::fmt(baseline.avgMaxAutocorr, 3)});

    const DetectorEvalStats stealthy =
        evalTrained(-30.0, train_epochs, eval_episodes, 58);
    table.addRow({"RL autocor", TextTable::fmt(stealthy.bitRate, 4),
                  TextTable::fmt(stealthy.guessAccuracy, 3),
                  TextTable::fmt(stealthy.avgMaxAutocorr, 3)});

    table.print(std::cout);
    std::cout << "\nPaper (Table VIII): textbook 0.1625/1.0/0.973, RL"
                 " baseline 0.229/0.989/0.933, RL autocor 0.216/0.997/"
                 "0.519 — expect the penalty-trained agent to keep"
                 " accuracy while cutting autocorrelation, at a small"
                 " bit-rate cost vs the baseline.\n";
    return 0;
}
