/**
 * @file
 * Table X: StealthyStreamline vs the LRU address-based covert channel
 * on four simulated machines (2048-bit random messages, best bit rate
 * with average error rate < 5%, sweeping the per-symbol repeat count).
 *
 * Absolute Mbps depends on the latency constants (EXPERIMENTS.md);
 * the reproduced claims are the ordering (SS faster on every machine)
 * and the stealth property (no sender misses).
 */

#include "bench_common.hpp"

using namespace autocat;
using namespace autocat::bench;

namespace {

/** Best rate under the 5% error budget over repeat counts 1..4. */
CovertResult
bestUnderErrorBudget(const CovertMachinePreset &machine,
                     CovertProtocol protocol, const BitString &message,
                     int runs)
{
    CovertResult best;
    bool have = false;
    for (unsigned repeats = 1; repeats <= 4; ++repeats) {
        RunningStat mbps, err;
        CovertResult sample;
        for (int r = 0; r < runs; ++r) {
            CovertChannelConfig cfg;
            cfg.protocol = protocol;
            cfg.ways = machine.l1Ways;
            cfg.bitsPerSymbol = 2;
            cfg.policy = ReplPolicy::Lru;
            cfg.latency = machine.latency;
            cfg.noise = machine.noise;
            cfg.repeats = repeats;
            cfg.seed = 1000 + 17 * r + repeats;
            CovertChannel channel(cfg);
            sample = channel.transmit(message);
            mbps.push(sample.mbps);
            err.push(sample.errorRate);
        }
        if (err.mean() < 0.05 && (!have || mbps.mean() > best.mbps)) {
            best = sample;
            best.mbps = mbps.mean();
            best.errorRate = err.mean();
            have = true;
        }
    }
    return best;
}

} // namespace

int
main()
{
    banner("Table X: covert channels on simulated machines");

    const std::size_t message_bits = byMode(512, 2048, 2048);
    const int runs = byMode(2, 10, 100);

    Rng rng(2023);
    const BitString message = randomBits(rng, message_bits);

    TextTable table("Table X (reproduction)",
                    {"CPU", "uarch", "L1D config", "OS",
                     "LRU (Mbps)", "SS (Mbps)", "Impr.",
                     "Sender misses (SS)"});

    for (const CovertMachinePreset &machine : tableXMachines()) {
        const CovertResult lru = bestUnderErrorBudget(
            machine, CovertProtocol::LruAddrBased, message, runs);
        const CovertResult ss = bestUnderErrorBudget(
            machine, CovertProtocol::StealthyStreamline, message, runs);
        const double impr =
            lru.mbps > 0.0 ? (ss.mbps / lru.mbps - 1.0) * 100.0 : 0.0;
        table.addRow({machine.cpu, machine.uarch, machine.l1d,
                      machine.os, TextTable::fmt(lru.mbps, 1),
                      TextTable::fmt(ss.mbps, 1),
                      TextTable::fmt(impr, 0) + "%",
                      TextTable::fmt((long)ss.victimMisses)});
    }

    table.print(std::cout);
    std::cout << "\nPaper (Table X): LRU 2.1-6.2 Mbps, SS 3.7-7.7 Mbps,"
                 " improvements 22-71% (larger on the 12-way"
                 " RocketLake parts). Expected shape: SS wins on every"
                 " machine and its sender never misses (stealth).\n";
    return 0;
}
