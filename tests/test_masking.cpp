/**
 * @file
 * Sample-efficiency layer tests: the masked softmax/entropy kernel,
 * masked policy ops (sample/argmax/logProb), per-step env masks and
 * useless-action penalties, batch-pool mask rows, rollout mask
 * storage, the ScenarioOracle search baseline, wire/report coverage
 * of the new fields, and the two oracles of this layer —
 *
 *  1. mask off (the default) is BITWISE identical to the pre-PR
 *     pipeline (golden hexfloat fixture over all three collect paths),
 *  2. masked + penalized PPO discovers the attack in fewer env steps
 *     than the unmasked baseline (the Sec. VI-A bakeoff).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/explore.hpp"
#include "env/batch_env_pool.hpp"
#include "env/env_registry.hpp"
#include "env/guessing_game.hpp"
#include "env/sequence_oracle.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"
#include "rl/actor_critic.hpp"
#include "rl/mat.hpp"
#include "rl/rollout.hpp"
#include "rl/search.hpp"
#include "serve/wire.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

Matrix
randomLogits(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.gaussian() * 3.0);
    return m;
}

/** Tiny 2-way FA LRU set, victim 0/E, attacker 0-2, cold start. */
EnvConfig
tinyEnv()
{
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 2;
    cfg.cache.addressSpaceSize = 6;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 2;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    cfg.windowSize = 8;
    cfg.randomInit = false;
    cfg.seed = 5;
    return cfg;
}

// ------------------------------------------------------ masked kernel

TEST(MaskedSoftmax, AllOnesMaskIsBitwiseIdenticalToUnmasked)
{
    const Matrix logits = randomLogits(7, 5, 101);
    const std::vector<std::uint8_t> ones(7 * 5, 1);

    std::vector<double> p_ref, e_ref, p_masked, e_masked;
    softmaxEntropyRowsInto(p_ref, e_ref, logits);
    softmaxEntropyRowsMaskedInto(p_masked, e_masked, logits, ones.data());

    ASSERT_EQ(p_masked.size(), p_ref.size());
    ASSERT_EQ(e_masked.size(), e_ref.size());
    for (std::size_t i = 0; i < p_ref.size(); ++i)
        EXPECT_EQ(p_masked[i], p_ref[i]) << "prob at flat index " << i;
    for (std::size_t r = 0; r < e_ref.size(); ++r)
        EXPECT_EQ(e_masked[r], e_ref[r]) << "entropy row " << r;
}

TEST(MaskedSoftmax, MaskedEntriesGetExactlyZeroProbability)
{
    const Matrix logits = randomLogits(4, 6, 102);
    std::vector<std::uint8_t> mask(4 * 6, 1);
    mask[0 * 6 + 2] = 0;
    mask[1 * 6 + 0] = 0;
    mask[1 * 6 + 5] = 0;
    mask[3 * 6 + 4] = 0;

    std::vector<double> p, e;
    softmaxEntropyRowsMaskedInto(p, e, logits, mask.data());

    for (std::size_t r = 0; r < 4; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 6; ++c) {
            if (!mask[r * 6 + c]) {
                EXPECT_EQ(p[r * 6 + c], 0.0) << r << "," << c;
            }
            sum += p[r * 6 + c];
        }
        EXPECT_NEAR(sum, 1.0, 1e-12) << "row " << r;
        EXPECT_TRUE(std::isfinite(e[r])) << "row " << r;
        EXPECT_GE(e[r], 0.0) << "row " << r;
    }
}

TEST(MaskedSoftmax, HugeMaskedLogitCannotOverflow)
{
    // The max is taken over VALID entries only: a masked +1000 logit
    // must not drag exp() into overflow or the probabilities into NaN.
    Matrix logits(1, 3);
    logits(0, 0) = 1000.0f;  // masked
    logits(0, 1) = 1.0f;
    logits(0, 2) = -2.0f;
    const std::uint8_t mask[3] = {0, 1, 1};

    std::vector<double> p, e;
    softmaxEntropyRowsMaskedInto(p, e, logits, mask);
    EXPECT_EQ(p[0], 0.0);
    EXPECT_TRUE(std::isfinite(p[1]) && std::isfinite(p[2]));
    EXPECT_NEAR(p[1] + p[2], 1.0, 1e-12);
    EXPECT_GT(p[1], p[2]);
    EXPECT_TRUE(std::isfinite(e[0]));
}

TEST(MaskedSoftmax, AllInvalidRowFailsLoudly)
{
    const Matrix logits = randomLogits(3, 4, 103);
    std::vector<std::uint8_t> mask(3 * 4, 1);
    for (std::size_t c = 0; c < 4; ++c)
        mask[1 * 4 + c] = 0;  // row 1 masks out everything

    std::vector<double> p, e;
    EXPECT_THROW(softmaxEntropyRowsMaskedInto(p, e, logits, mask.data()),
                 std::domain_error);
}

// ------------------------------------------------- masked policy ops

TEST(MaskedPolicyOps, AllOnesMaskMatchesUnmaskedOpsBitwise)
{
    Rng net_rng(7);
    const ActorCritic net(4, 5, 8, 1, net_rng);
    const Matrix logits = randomLogits(6, 5, 104);
    const std::vector<std::uint8_t> ones(5, 1);

    for (std::size_t r = 0; r < logits.rows(); ++r) {
        EXPECT_EQ(net.argmaxMasked(logits, r, ones.data()),
                  net.argmax(logits, r));
        Rng a(900 + r), b(900 + r);
        EXPECT_EQ(net.sampleMasked(logits, r, ones.data(), a),
                  net.sample(logits, r, b));
        for (std::size_t act = 0; act < 5; ++act) {
            EXPECT_EQ(
                ActorCritic::logProbMasked(logits, r, act, ones.data()),
                ActorCritic::logProb(logits, r, act));
        }
    }
}

TEST(MaskedPolicyOps, ArgmaxNeverSelectsMaskedAndBreaksTiesLow)
{
    Rng net_rng(8);
    const ActorCritic net(4, 4, 8, 1, net_rng);

    Matrix logits(1, 4);
    logits(0, 0) = 5.0f;
    logits(0, 1) = 5.0f;  // exact tie with 0
    logits(0, 2) = 9.0f;  // global max
    logits(0, 3) = 1.0f;

    const std::uint8_t no_two[4] = {1, 1, 0, 1};
    // The masked global max must be skipped; the 5.0/5.0 tie breaks
    // toward the lowest index.
    EXPECT_EQ(net.argmaxMasked(logits, 0, no_two), 0u);

    const std::uint8_t no_zero_two[4] = {0, 1, 0, 1};
    EXPECT_EQ(net.argmaxMasked(logits, 0, no_zero_two), 1u);

    const std::uint8_t only_three[4] = {0, 0, 0, 1};
    EXPECT_EQ(net.argmaxMasked(logits, 0, only_three), 3u);

    // Unmasked argmax also breaks exact ties low (pinned here because
    // sequence extraction's determinism rests on it).
    Matrix tied(1, 4);
    for (std::size_t c = 0; c < 4; ++c)
        tied(0, c) = 2.0f;
    EXPECT_EQ(net.argmax(tied, 0), 0u);
}

TEST(MaskedPolicyOps, SampleNeverDrawsMaskedAction)
{
    Rng net_rng(9);
    const ActorCritic net(4, 6, 8, 1, net_rng);
    const Matrix logits = randomLogits(1, 6, 105);
    const std::uint8_t mask[6] = {1, 0, 1, 0, 0, 1};

    Rng rng(42);
    for (int i = 0; i < 500; ++i) {
        const std::size_t a = net.sampleMasked(logits, 0, mask, rng);
        ASSERT_LT(a, 6u);
        EXPECT_TRUE(mask[a]) << "drew masked action " << a;
    }
}

TEST(MaskedPolicyOps, LogProbMaskedRenormalizesOverValidSupport)
{
    const Matrix logits = randomLogits(1, 5, 106);
    const std::uint8_t mask[5] = {1, 1, 0, 1, 0};

    double sum = 0.0;
    for (std::size_t a = 0; a < 5; ++a) {
        if (!mask[a])
            continue;
        sum += std::exp(ActorCritic::logProbMasked(logits, 0, a, mask));
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

// ----------------------------------------------------- env-layer mask

TEST(EnvMask, DisabledConfigExposesNoMask)
{
    CacheGuessingGame game(tinyEnv());
    game.reset();
    EXPECT_EQ(game.actionMask(), nullptr);
}

TEST(EnvMask, GuessesMaskedUntilVictimTriggered)
{
    EnvConfig cfg = tinyEnv();
    cfg.maskActions = true;
    CacheGuessingGame game(cfg);
    game.reset();

    const ActionSpace &as = game.actionSpace();
    const std::uint8_t *mask = game.actionMask();
    ASSERT_NE(mask, nullptr);

    // Fresh episode, victim not yet triggered: all primitives valid,
    // every guess masked (it can only score as a wrong guess).
    for (std::size_t i = 0; i < as.size(); ++i)
        EXPECT_EQ(mask[i] != 0, i < as.guessBase()) << "index " << i;

    game.stepFast(as.triggerIndex());
    for (std::size_t i = 0; i < as.size(); ++i)
        EXPECT_EQ(mask[i], 1) << "index " << i;

    // A guess ends the episode; the auto-reset mask is back to the
    // fresh-episode shape.
    game.stepFast(as.guessIndex(0));
    game.resetRow();
    for (std::size_t i = 0; i < as.size(); ++i)
        EXPECT_EQ(mask[i] != 0, i < as.guessBase()) << "index " << i;
}

TEST(EnvMask, UselessRepeatMaskTracksLastPrimitive)
{
    EnvConfig cfg = tinyEnv();
    cfg.maskActions = true;
    cfg.maskUselessActions = true;
    CacheGuessingGame game(cfg);
    game.reset();

    const ActionSpace &as = game.actionSpace();
    const std::uint8_t *mask = game.actionMask();
    ASSERT_NE(mask, nullptr);

    const std::size_t a0 = as.accessIndex(0);
    const std::size_t a1 = as.accessIndex(1);
    game.stepFast(a0);
    EXPECT_EQ(mask[a0], 0);  // immediate repeat masked
    EXPECT_EQ(mask[a1], 1);
    EXPECT_EQ(mask[as.triggerIndex()], 1);

    game.stepFast(a1);
    EXPECT_EQ(mask[a0], 1);  // no longer the previous action
    EXPECT_EQ(mask[a1], 0);

    // The trigger is repeat-maskable like any primitive.
    game.stepFast(as.triggerIndex());
    EXPECT_EQ(mask[as.triggerIndex()], 0);
    // ... and guesses became valid at the same time.
    EXPECT_EQ(mask[as.guessIndex(0)], 1);
}

TEST(EnvMask, UselessActionPenaltySubtractsExactlyOnRepeats)
{
    EnvConfig plain_cfg = tinyEnv();
    EnvConfig shaped_cfg = tinyEnv();
    shaped_cfg.uselessActionPenalty = 0.125;

    CacheGuessingGame plain(plain_cfg);
    CacheGuessingGame shaped(shaped_cfg);
    plain.reset();
    plain.forceSecret(std::nullopt);
    shaped.reset();
    shaped.forceSecret(std::nullopt);

    const ActionSpace &as = plain.actionSpace();
    const std::size_t a0 = as.accessIndex(0);

    // First access: not a repeat, identical reward.
    const auto p1 = plain.stepFast(a0);
    const auto s1 = shaped.stepFast(a0);
    EXPECT_EQ(s1.reward, p1.reward);

    // Immediate repeat: exactly the penalty difference, nothing else.
    const auto p2 = plain.stepFast(a0);
    const auto s2 = shaped.stepFast(a0);
    EXPECT_EQ(s2.reward, p2.reward - 0.125);

    // Breaking the repeat chain restores identical rewards.
    const auto p3 = plain.stepFast(as.triggerIndex());
    const auto s3 = shaped.stepFast(as.triggerIndex());
    EXPECT_EQ(s3.reward, p3.reward);
}

TEST(EnvMask, NegativePenaltyIsRejected)
{
    EnvConfig cfg = tinyEnv();
    cfg.uselessActionPenalty = -0.5;
    EXPECT_THROW(CacheGuessingGame game(cfg), std::invalid_argument);
}

// ------------------------------------------------- batch-engine masks

TEST(BatchMask, PoolMaskRowsAreZeroCopyViews)
{
    EnvConfig cfg = tinyEnv();
    cfg.maskActions = true;
    cfg.maskUselessActions = true;

    std::vector<std::unique_ptr<Environment>> envs;
    for (int i = 0; i < 3; ++i) {
        EnvConfig c = cfg;
        c.seed = cfg.seed + i;
        envs.push_back(std::make_unique<CacheGuessingGame>(c));
    }
    BatchEnvPool pool(std::move(envs));
    pool.resetAll();

    const std::uint8_t *mm = pool.masks();
    ASSERT_NE(mm, nullptr);
    const std::size_t na = pool.numActions();
    // Each stream's live mask IS its row of the pool matrix.
    for (std::size_t s = 0; s < pool.numStreams(); ++s)
        EXPECT_EQ(pool.env(s).actionMask(), mm + s * na) << "stream " << s;

    // Stepping one stream updates only its row, in place.
    std::vector<std::size_t> actions(3, 0);
    std::vector<double> rewards(3);
    std::vector<std::uint8_t> dones(3);
    std::vector<StepInfo> infos(3);
    actions[1] = 1;
    pool.stepBatch(actions.data(), nullptr, rewards.data(), dones.data(),
                   infos.data());
    EXPECT_EQ(mm[0 * na + 0], 0);  // stream 0 repeated access 0
    EXPECT_EQ(mm[1 * na + 1], 0);  // stream 1 repeated access 1
    EXPECT_EQ(mm[1 * na + 0], 1);
}

TEST(BatchMask, UnmaskedStreamsExposeNoMaskMatrix)
{
    std::vector<std::unique_ptr<Environment>> envs;
    for (int i = 0; i < 2; ++i)
        envs.push_back(std::make_unique<CacheGuessingGame>(tinyEnv()));
    BatchEnvPool pool(std::move(envs));
    EXPECT_EQ(pool.masks(), nullptr);
}

TEST(BatchMask, MixedMaskingStreamsAreRejected)
{
    EnvConfig masked = tinyEnv();
    masked.maskActions = true;
    std::vector<std::unique_ptr<Environment>> envs;
    envs.push_back(std::make_unique<CacheGuessingGame>(tinyEnv()));
    envs.push_back(std::make_unique<CacheGuessingGame>(masked));
    EXPECT_THROW(BatchEnvPool pool(std::move(envs)),
                 std::invalid_argument);
}

// ------------------------------------------------ rollout mask store

TEST(RolloutMasks, StageGatherRoundTrip)
{
    const std::size_t steps = 2, streams = 2, obs_dim = 3, na = 4;
    RolloutBuffer buf(steps, streams, obs_dim);
    buf.enableMasks(na);
    ASSERT_TRUE(buf.masksEnabled());

    const std::vector<std::size_t> actions(streams, 0);
    const std::vector<double> rewards(streams, 0.0);
    const std::vector<std::uint8_t> dones(streams, 0);
    const std::vector<double> values(streams, 0.0);
    const std::vector<double> logps(streams, 0.0);

    std::vector<std::uint8_t> all;
    for (std::size_t t = 0; t < steps; ++t) {
        std::vector<std::uint8_t> m(streams * na);
        for (std::size_t i = 0; i < m.size(); ++i)
            m[i] = static_cast<std::uint8_t>((t + i) % 2);
        all.insert(all.end(), m.begin(), m.end());
        buf.stageMasks(m.data());
        buf.addStep(Matrix(streams, obs_dim), actions, rewards, dones,
                    values, logps);
    }
    EXPECT_EQ(buf.masks(), all);

    // Gather flat transitions 3 and 0 (time-major: t * streams + s).
    std::vector<std::uint8_t> got;
    buf.gatherMasksInto(got, {3, 0});
    ASSERT_EQ(got.size(), 2 * na);
    EXPECT_EQ(0, std::memcmp(got.data(), all.data() + 3 * na, na));
    EXPECT_EQ(0, std::memcmp(got.data() + na, all.data(), na));

    // clear() drops contents but keeps mask storage enabled.
    buf.clear();
    EXPECT_TRUE(buf.masksEnabled());
    EXPECT_TRUE(buf.masks().empty());
}

// ------------------------------------------------- golden mask-off fixture

/** The exact pre-PR capture config (tools/golden_capture). */
ExplorationConfig
goldenConfig()
{
    ExplorationConfig cfg;
    cfg.env.cache.numSets = 1;
    cfg.env.cache.numWays = 2;
    cfg.env.cache.addressSpaceSize = 6;
    cfg.env.attackAddrS = 0;
    cfg.env.attackAddrE = 2;
    cfg.env.victimAddrS = 0;
    cfg.env.victimAddrE = 0;
    cfg.env.victimNoAccessEnable = true;
    cfg.env.windowSize = 8;
    cfg.env.seed = 9;
    cfg.ppo.seed = 33;
    cfg.ppo.stepsPerEpoch = 600;
    cfg.ppo.minibatchSize = 100;
    cfg.maxEpochs = 3;
    cfg.evalEpisodes = 20;
    return cfg;
}

struct Golden
{
    double acc, len, bitRate;
    const char *seq;
    const char *guess;
};

void
expectGolden(const ExplorationResult &r, const Golden &g)
{
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.epochsToConverge, -1);
    EXPECT_EQ(r.envSteps, 1800);
    EXPECT_EQ(r.stepsToDiscovery, -1);
    // Hexfloat golden values captured at the pre-masking HEAD: the
    // sample-efficiency layer must be invisible — bit for bit — when
    // mask_actions/mask_useless_actions/useless_action_penalty are at
    // their defaults.
    EXPECT_EQ(r.finalAccuracy, g.acc);
    EXPECT_EQ(r.finalEpisodeLength, g.len);
    EXPECT_EQ(r.bitRate, g.bitRate);
    EXPECT_EQ(r.detectionRate, 0.0);
    EXPECT_EQ(r.sequence.toString(), g.seq);
    EXPECT_EQ(r.finalGuess, g.guess);
    EXPECT_EQ(static_cast<int>(r.category), 5);
}

TEST(MaskOffGolden, SerialCollectionMatchesPrePrBytes)
{
    const Golden golden{0x1.ccccccccccccdp-2, 0x1.cp+2,
                        0x1.2492492492492p-3,
                        "v -> v -> v -> v -> v -> v -> g", "gE"};
    expectGolden(explore(goldenConfig()), golden);
}

TEST(MaskOffGolden, BatchCollectionMatchesPrePrBytes)
{
    const Golden golden{0x1.4cccccccccccdp-1, 0x1.4p+2,
                        0x1.999999999999ap-3, "v -> v -> v -> v -> g",
                        "g0"};
    ExplorationConfig cfg = goldenConfig();
    cfg.numStreams = 4;
    cfg.batchEnv = true;
    expectGolden(explore(cfg), golden);
}

TEST(MaskOffGolden, PipelinedCollectionMatchesPrePrBytes)
{
    const Golden golden{0x1.4cccccccccccdp-1, 0x1.4p+2,
                        0x1.999999999999ap-3, "v -> v -> v -> v -> g",
                        "g0"};
    ExplorationConfig cfg = goldenConfig();
    cfg.numStreams = 4;
    cfg.batchEnv = true;
    cfg.ppo.doubleBuffered = true;
    expectGolden(explore(cfg), golden);
}

// --------------------------------------- masked path self-consistency

/**
 * With masking ON, the three collection paths (serial over SyncVecEnv,
 * zero-copy batch surface, double-buffered pipelined) must still
 * produce identical trajectories: the mask rows a path snapshots are
 * the same per-step masks however collection is scheduled.
 */
TEST(MaskedCollection, AllThreePathsAgree)
{
    ExplorationConfig base = goldenConfig();
    base.env.maskActions = true;
    base.env.maskUselessActions = true;
    base.env.uselessActionPenalty = 0.01;
    base.numStreams = 4;

    ExplorationConfig sync_cfg = base;  // SyncVecEnv -> collectSerial
    ExplorationConfig batch_cfg = base;
    batch_cfg.batchEnv = true;  // collectBatchInPlace
    ExplorationConfig pipe_cfg = batch_cfg;
    pipe_cfg.ppo.doubleBuffered = true;  // collectPipelined

    const ExplorationResult a = explore(sync_cfg);
    const ExplorationResult b = explore(batch_cfg);
    const ExplorationResult c = explore(pipe_cfg);

    EXPECT_EQ(a.finalAccuracy, b.finalAccuracy);
    EXPECT_EQ(a.finalEpisodeLength, b.finalEpisodeLength);
    EXPECT_EQ(a.bitRate, b.bitRate);
    EXPECT_EQ(a.sequence.toString(), b.sequence.toString());
    EXPECT_EQ(a.finalGuess, b.finalGuess);

    EXPECT_EQ(b.finalAccuracy, c.finalAccuracy);
    EXPECT_EQ(b.finalEpisodeLength, c.finalEpisodeLength);
    EXPECT_EQ(b.bitRate, c.bitRate);
    EXPECT_EQ(b.sequence.toString(), c.sequence.toString());
    EXPECT_EQ(b.finalGuess, c.finalGuess);
}

// ------------------------------------------------------ ScenarioOracle

TEST(ScenarioOracle, JudgesDistinguishingSequences)
{
    ScenarioOracle oracle("guessing_game", tinyEnv());
    // 3 accesses + trigger; guesses are not primitives.
    EXPECT_EQ(oracle.numPrimitives(), 4u);

    const std::size_t trigger = oracle.actionSpace().triggerIndex();
    const std::size_t a0 = oracle.actionSpace().accessIndex(0);
    const std::size_t a2 = oracle.actionSpace().accessIndex(2);

    // Trigger then probe the victim's line: hit iff the victim ran.
    EXPECT_TRUE(oracle.isDistinguishing({trigger, a0}));
    // No trigger: the pattern cannot depend on the secret.
    EXPECT_FALSE(oracle.isDistinguishing({a0, a0}));
    // Probing an unrelated line observes nothing secret-dependent.
    EXPECT_FALSE(oracle.isDistinguishing({trigger, a2}));

    // One trial replays the sequence once per secret (0 and no-access).
    EXPECT_EQ(oracle.stepsPerTrial({trigger, a0}), 4);
}

TEST(ScenarioOracle, RejectsNonGuessingGameUse)
{
    // Every current registry scenario builds a guessing game, so the
    // throw path is pinned via the unknown-scenario route instead.
    EXPECT_THROW(ScenarioOracle("no_such_scenario", tinyEnv()),
                 std::out_of_range);
}

TEST(ScenarioOracle, RandomSearchFindsAnAttack)
{
    ScenarioOracle oracle("guessing_game", tinyEnv());
    Rng rng(3);
    const SearchResult r = randomSearch(oracle, 2, 200, rng);
    ASSERT_TRUE(r.found);
    EXPECT_TRUE(oracle.isDistinguishing(r.sequence));
    EXPECT_GT(r.stepsTaken, 0);
}

// ------------------------------------------------ bakeoff sweep rows

SweepConfig
bakeoffSweep()
{
    SweepConfig cfg;
    cfg.name = "bakeoff";
    cfg.base.env = tinyEnv();
    cfg.base.env.randomInit = true;  // mask_bakeoff.cfg default
    cfg.base.env.windowSize = 10;
    cfg.base.ppo.seed = 21;
    cfg.base.ppo.stepsPerEpoch = 600;
    cfg.base.ppo.minibatchSize = 100;
    cfg.base.maxEpochs = 120;
    cfg.base.targetAccuracy = 0.9;
    cfg.base.evalEpisodes = 100;
    cfg.base.env.seed = 7;
    cfg.grid.seeds = {7};
    return cfg;
}

TEST(BakeoffExpansion, AppendsOneRowPerAgentScenarioSeed)
{
    SweepConfig cfg = bakeoffSweep();
    cfg.bakeoffAgents = {"ppo", "ppo_masked", "random_search"};
    cfg.maskedPenalty = 0.02;

    const std::vector<SweepCell> cells = expandSweepGrid(cfg);
    ASSERT_EQ(cells.size(), 4u);  // 1 main grid cell + 3 bakeoff rows

    EXPECT_EQ(cells[0].agent, "ppo");
    EXPECT_EQ(cells[1].label, "guessing_game/lru/s7/ppo");
    EXPECT_EQ(cells[2].label, "guessing_game/lru/s7/ppo_masked");
    EXPECT_EQ(cells[3].label, "guessing_game/lru/s7/random_search");

    // ppo_masked is plain ppo whose config enables the masking layer.
    EXPECT_FALSE(cells[1].config.env.maskActions);
    EXPECT_TRUE(cells[2].config.env.maskActions);
    EXPECT_TRUE(cells[2].config.env.maskUselessActions);
    EXPECT_EQ(cells[2].config.env.uselessActionPenalty, 0.02);
    EXPECT_EQ(cells[3].agent, "random_search");

    cfg.bakeoffAgents = {"dqn"};
    EXPECT_THROW(expandSweepGrid(cfg), std::invalid_argument);
    cfg.bakeoffAgents = {"ppo"};
    cfg.bakeoffScenarios = {"no_such_scenario"};
    EXPECT_THROW(expandSweepGrid(cfg), std::invalid_argument);
}

/**
 * THE bakeoff acceptance oracle (mirrors
 * examples/configs/mask_bakeoff.cfg and the committed report
 * docs/reports/mask_bakeoff_report.json): on the same scenario and
 * seeds, masked + penalized PPO must reach the 0.9-accuracy target in
 * strictly fewer environment steps than the unmasked baseline, and
 * random search must report its (tiny) simulated-step count.
 */
TEST(Bakeoff, MaskedPpoDiscoversInFewerStepsThanUnmasked)
{
    SweepConfig cfg = bakeoffSweep();
    cfg.bakeoffAgents = {"ppo", "ppo_masked", "random_search"};
    cfg.maskedPenalty = 0.02;

    std::vector<SweepCell> cells = expandSweepGrid(cfg);
    ASSERT_EQ(cells.size(), 4u);
    // Drop the duplicate main-grid cell; the bakeoff rows carry the
    // comparison.
    cells.erase(cells.begin());
    for (std::size_t i = 0; i < cells.size(); ++i)
        cells[i].index = i;

    const SweepReport report =
        runSweepCells("bakeoff", std::move(cells), /*workers=*/1);
    ASSERT_EQ(report.cells.size(), 3u);

    const SweepCellResult &ppo = report.cells[0];
    const SweepCellResult &masked = report.cells[1];
    const SweepCellResult &search = report.cells[2];
    ASSERT_TRUE(ppo.completed) << ppo.error;
    ASSERT_TRUE(masked.completed) << masked.error;
    ASSERT_TRUE(search.completed) << search.error;

    ASSERT_TRUE(ppo.result.converged);
    ASSERT_TRUE(masked.result.converged);
    ASSERT_TRUE(search.result.converged);

    EXPECT_GE(masked.result.finalAccuracy, 0.9);
    ASSERT_GT(ppo.result.stepsToDiscovery, 0);
    ASSERT_GT(masked.result.stepsToDiscovery, 0);
    EXPECT_LT(masked.result.stepsToDiscovery,
              ppo.result.stepsToDiscovery)
        << "masking did not improve sample efficiency";

    // The committed docs/reports/mask_bakeoff_report.json values.
    EXPECT_EQ(ppo.result.stepsToDiscovery, 32400);
    EXPECT_EQ(masked.result.stepsToDiscovery, 18600);
    EXPECT_GT(search.result.stepsToDiscovery, 0);
}

// ----------------------------------------------- wire/report coverage

TEST(WireV2, AgentAndStepsToDiscoverySurviveTheWire)
{
    SweepCell cell;
    cell.index = 11;
    cell.label = "guessing_game/lru/s7/ppo_masked";
    cell.scenario = "guessing_game";
    cell.policy = "lru";
    cell.agent = "ppo_masked";
    cell.seed = 7;
    cell.config.env = tinyEnv();
    cell.config.env.maskActions = true;
    cell.config.env.uselessActionPenalty = 0.25;

    const SweepCell back = deserializeCellJob(serializeCellJob(cell));
    EXPECT_EQ(back.agent, "ppo_masked");
    EXPECT_TRUE(back.config.env.maskActions);
    EXPECT_EQ(back.config.env.uselessActionPenalty, 0.25);

    SweepCellResult row;
    row.cell.index = 11;
    row.completed = true;
    row.result.converged = true;
    row.result.stepsToDiscovery = 18600;
    row.result.envSteps = 18600;
    const SweepCellResult rback =
        deserializeCellRow(serializeCellRow(row));
    EXPECT_EQ(rback.result.stepsToDiscovery, 18600);
    EXPECT_EQ(rback.result.envSteps, 18600);
}

TEST(ReportColumns, AgentAndStepsToDiscoveryAreRendered)
{
    SweepReport report;
    report.name = "cols";
    report.cells.resize(1);
    SweepCellResult &c = report.cells[0];
    c.cell.label = "x/ppo_masked";
    c.cell.scenario = "guessing_game";
    c.cell.policy = "lru";
    c.cell.agent = "ppo_masked";
    c.completed = true;
    c.result.converged = true;
    c.result.stepsToDiscovery = 1234;

    const std::string json = sweepReportJson(report);
    EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"agent\": \"ppo_masked\""), std::string::npos);
    EXPECT_NE(json.find("\"steps_to_discovery\": 1234"),
              std::string::npos);

    std::ostringstream csv;
    writeSweepReportCsv(csv, report);
    EXPECT_NE(csv.str().find(",agent,"), std::string::npos);
    EXPECT_NE(csv.str().find("steps_to_discovery"), std::string::npos);
    EXPECT_NE(csv.str().find("\"ppo_masked\""), std::string::npos);
    EXPECT_NE(csv.str().find(",1234,"), std::string::npos);
}

} // namespace
} // namespace autocat
