/**
 * @file
 * Deterministic end-to-end smoke test of the full discovery pipeline:
 * a small seeded PPO run on the guessing_game scenario must reach
 * greedy-eval guess accuracy >= 0.9 within a fixed step budget, and
 * the extracted attack sequence must classify as a real attack. Kept
 * to a tier-1-friendly runtime (single-digit seconds on the dev
 * container, budget-bounded either way) so every CI run exercises
 * train -> converge -> extract -> classify, not just the parts.
 */

#include <gtest/gtest.h>

#include "core/explore.hpp"

namespace autocat {
namespace {

TEST(EndToEndDiscovery, TinySeededRunDiscoversAnAttack)
{
    // A 2-way fully-associative set with a 0/E victim: the smallest
    // config with real cache-contention structure to learn (the seeded
    // run converges around epoch 25 of the 50-epoch budget).
    ExplorationConfig cfg;
    cfg.env.cache.numSets = 1;
    cfg.env.cache.numWays = 2;
    cfg.env.cache.policy = ReplPolicy::Lru;
    cfg.env.cache.addressSpaceSize = 8;
    cfg.env.attackAddrS = 0;
    cfg.env.attackAddrE = 2;
    cfg.env.victimAddrS = 0;
    cfg.env.victimAddrE = 0;
    cfg.env.victimNoAccessEnable = true;
    cfg.env.windowSize = 10;
    cfg.env.seed = 7;

    cfg.scenario = "guessing_game";
    cfg.ppo.seed = 21;
    cfg.maxEpochs = 50;               // fixed budget: <= 150k env steps
    cfg.targetAccuracy = 0.97;
    cfg.evalEpisodes = 100;

    const ExplorationResult r = explore(cfg);

    EXPECT_TRUE(r.converged)
        << "seeded PPO run did not converge within the step budget "
           "(final accuracy "
        << r.finalAccuracy << ")";
    EXPECT_GE(r.finalAccuracy, 0.9);
    EXPECT_LE(r.envSteps, 150000);

    // The greedy replay must produce an actual attack on this config:
    // a non-empty sequence ending in a guess, classified as an
    // eviction-based or flush-based attack (not Unknown).
    EXPECT_GT(r.sequence.size(), 0u);
    EXPECT_FALSE(r.finalGuess.empty());
    EXPECT_NE(r.category, AttackCategory::Unknown);
    EXPECT_GT(r.bitRate, 0.0);
}

TEST(EndToEndDiscovery, TlbEvictChannelIsLearnable)
{
    // The same guessing game over the TLB channel: a 2-entry
    // fully-associative TLB with a 0/E victim. The agent must discover
    // prime+probe over TLB sets — translation evictions instead of
    // line evictions carry the secret.
    ExplorationConfig cfg;
    cfg.env.channel.tlb.numSets = 1;
    cfg.env.channel.tlb.numWays = 2;
    cfg.env.channel.tlb.policy = ReplPolicy::Lru;
    cfg.env.channel.tlb.walkLevels = 2;
    cfg.env.channel.tlb.levelBits = 2;
    cfg.env.attackAddrS = 0;
    cfg.env.attackAddrE = 2;
    cfg.env.victimAddrS = 0;
    cfg.env.victimAddrE = 0;
    cfg.env.victimNoAccessEnable = true;
    cfg.env.windowSize = 10;
    cfg.env.seed = 7;

    cfg.scenario = "tlb_evict";
    cfg.ppo.seed = 21;
    cfg.maxEpochs = 50;
    cfg.targetAccuracy = 0.97;
    cfg.evalEpisodes = 100;

    const ExplorationResult r = explore(cfg);

    EXPECT_TRUE(r.converged)
        << "seeded tlb_evict run did not converge within the budget "
           "(final accuracy "
        << r.finalAccuracy << ")";
    EXPECT_GE(r.finalAccuracy, 0.9);
    EXPECT_LE(r.envSteps, 150000);
    EXPECT_GT(r.sequence.size(), 0u);
    EXPECT_FALSE(r.finalGuess.empty());
    // The classifier is pure action-sequence pattern matching, so a
    // TLB eviction attack classifies like its cache twin.
    EXPECT_NE(r.category, AttackCategory::Unknown);
}

TEST(EndToEndDiscovery, PrefetchProbeChannelIsLearnable)
{
    // The stream prefetcher as the leak: a transmitting victim bursts
    // three unit-stride accesses, locking the stride detector and
    // dragging a fourth (prefetched) line into the probed cache; a
    // silent victim leaves it cold. The agent must learn to read the
    // burst/prefetch footprint back out of the cache.
    ExplorationConfig cfg;
    cfg.env.cache.numSets = 1;
    cfg.env.cache.numWays = 2;
    cfg.env.cache.policy = ReplPolicy::Lru;
    cfg.env.cache.addressSpaceSize = 8;
    cfg.env.attackAddrS = 0;
    cfg.env.attackAddrE = 2;
    cfg.env.victimAddrS = 0;
    cfg.env.victimAddrE = 0;
    cfg.env.victimNoAccessEnable = true;
    cfg.env.windowSize = 10;
    cfg.env.seed = 7;

    cfg.scenario = "prefetch_probe";
    cfg.ppo.seed = 21;
    cfg.maxEpochs = 50;
    cfg.targetAccuracy = 0.97;
    cfg.evalEpisodes = 100;

    const ExplorationResult r = explore(cfg);

    EXPECT_TRUE(r.converged)
        << "seeded prefetch_probe run did not converge within the "
           "budget (final accuracy "
        << r.finalAccuracy << ")";
    EXPECT_GE(r.finalAccuracy, 0.9);
    EXPECT_LE(r.envSteps, 150000);
    EXPECT_GT(r.sequence.size(), 0u);
    EXPECT_FALSE(r.finalGuess.empty());
}

TEST(EndToEndDiscovery, FixedSeedsReproduceTheRunExactly)
{
    // Two independent explores with identical seeds must agree on the
    // training outcome and the extracted sequence — the determinism
    // the sweep subsystem's byte-identical reports are built on.
    ExplorationConfig cfg;
    cfg.env.cache.numSets = 1;
    cfg.env.cache.numWays = 2;
    cfg.env.cache.addressSpaceSize = 6;
    cfg.env.attackAddrS = 0;
    cfg.env.attackAddrE = 2;
    cfg.env.victimAddrS = 0;
    cfg.env.victimAddrE = 0;
    cfg.env.victimNoAccessEnable = true;
    cfg.env.windowSize = 8;
    cfg.env.seed = 9;
    cfg.ppo.seed = 33;
    cfg.ppo.stepsPerEpoch = 600;
    cfg.maxEpochs = 3;
    cfg.evalEpisodes = 20;

    const ExplorationResult a = explore(cfg);
    const ExplorationResult b = explore(cfg);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.epochsToConverge, b.epochsToConverge);
    EXPECT_EQ(a.envSteps, b.envSteps);
    EXPECT_DOUBLE_EQ(a.finalAccuracy, b.finalAccuracy);
    EXPECT_DOUBLE_EQ(a.bitRate, b.bitRate);
    EXPECT_EQ(a.sequence.toString(), b.sequence.toString());
    EXPECT_EQ(a.finalGuess, b.finalGuess);
}

} // namespace
} // namespace autocat
