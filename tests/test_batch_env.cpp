/**
 * @file
 * Batch environment engine tests.
 *
 * Two oracles pin the SoA engine:
 *  1. The guessing game's incrementally-maintained observation row must
 *     equal a from-scratch rebuild after every reset and step, across
 *     every feature that touches the layout (flush actions, detectors,
 *     multi-secret episodes, reveal-on-guess unmasking).
 *  2. BatchVecEnv must produce bitwise-identical trajectories to
 *     SyncVecEnv over the same per-stream seeds for EVERY registry
 *     scenario, through auto-resets and mid-run resetAll().
 *
 * The BatchEnvGuard suite is the cheap CI guard: PPO trained through
 * the in-place batch collection path must match PPO trained through
 * the allocating sync path bitwise (stats and weights).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "env/batch_env_pool.hpp"
#include "env/env_registry.hpp"
#include "env/guessing_game.hpp"
#include "rl/ppo.hpp"
#include "rl/vec_env.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

EnvConfig
tinyEnvConfig(std::uint64_t seed = 77)
{
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 2;
    cfg.cache.addressSpaceSize = 6;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 2;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    cfg.windowSize = 8;
    cfg.seed = seed;
    return cfg;
}

/**
 * Drive one game with pseudo-random actions and assert the persistent
 * row matches a from-scratch rebuild after every transition.
 */
void
expectRowStaysFaithful(CacheGuessingGame &game, int steps,
                       std::uint64_t action_seed)
{
    Rng rng(action_seed);
    std::vector<float> obs = game.reset();
    EXPECT_EQ(obs, game.rebuildObservation()) << "after reset";
    for (int t = 0; t < steps; ++t) {
        const std::size_t a = rng.uniformInt(game.numActions());
        const StepResult sr = game.step(a);
        ASSERT_EQ(sr.obs, game.rebuildObservation())
            << "incremental row diverged at step " << t << " (action "
            << a << ")";
        if (sr.done) {
            obs = game.reset();
            ASSERT_EQ(obs, game.rebuildObservation())
                << "row stale after reset at step " << t;
        }
    }
}

TEST(BatchEnv, IncrementalRowMatchesRebuildBaseConfig)
{
    auto env = makeEnv("guessing_game", tinyEnvConfig(10));
    auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
    ASSERT_NE(game, nullptr);
    expectRowStaysFaithful(*game, 600, 1);
}

TEST(BatchEnv, IncrementalRowMatchesRebuildWithFlush)
{
    EnvConfig cfg = tinyEnvConfig(11);
    cfg.flushEnable = true;
    auto env = makeEnv("guessing_game", cfg);
    auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
    ASSERT_NE(game, nullptr);
    expectRowStaysFaithful(*game, 600, 2);
}

TEST(BatchEnv, IncrementalRowMatchesRebuildMultiSecret)
{
    // Symbol boundaries re-sample the secret and restart both summary
    // regions — one of the rare full-rebuild events.
    EnvConfig cfg = tinyEnvConfig(12);
    cfg.multiSecret = true;
    cfg.multiSecretEpisodeSteps = 24;
    auto env = makeEnv("guessing_game", cfg);
    auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
    ASSERT_NE(game, nullptr);
    expectRowStaysFaithful(*game, 600, 3);
}

TEST(BatchEnv, IncrementalRowMatchesRebuildRevealOnGuess)
{
    // The reveal transition unmasks every window slot's latency at
    // once — the other full-rebuild event.
    EnvConfig cfg = tinyEnvConfig(13);
    cfg.revealOnGuess = true;
    auto env = makeEnv("guessing_game", cfg);
    auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
    ASSERT_NE(game, nullptr);
    expectRowStaysFaithful(*game, 600, 4);
}

TEST(BatchEnv, IncrementalRowMatchesRebuildDetectorScenarios)
{
    for (const char *name :
         {"miss_detect_terminate", "cchunter_bypass", "cyclone_bypass"}) {
        auto env = makeEnv(name, tinyEnvConfig(14));
        auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
        ASSERT_NE(game, nullptr) << name;
        expectRowStaysFaithful(*game, 400, 5);
    }
}

TEST(BatchEnv, IncrementalRowMatchesRebuildHierarchyScenarios)
{
    for (const char *name :
         {"l1l2_private", "l1l2_shared", "l2_exclusive", "three_level"}) {
        auto env = makeEnv(name, tinyEnvConfig(15));
        auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
        ASSERT_NE(game, nullptr) << name;
        expectRowStaysFaithful(*game, 400, 6);
    }
}

TEST(BatchEnv, IncrementalRowMatchesRebuildChannelScenarios)
{
    // The non-cache channels (TLB, prefetcher side channel) route
    // victim transmits and flushes through paths the cache scenarios
    // never take; the row invariant must survive them too.
    for (const char *name : {"tlb_evict", "prefetch_probe"}) {
        EnvConfig cfg = tinyEnvConfig(17);
        auto env = makeEnv(name, cfg);
        auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
        ASSERT_NE(game, nullptr) << name;
        expectRowStaysFaithful(*game, 400, 7);
    }
}

TEST(BatchEnv, IncrementalRowMatchesRebuildTlbWithFlush)
{
    // flush on the TLB channel is an invlpg (leaf translation only);
    // the observation must track its latency effects faithfully.
    EnvConfig cfg = tinyEnvConfig(18);
    cfg.flushEnable = true;
    auto env = makeEnv("tlb_evict", cfg);
    auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
    ASSERT_NE(game, nullptr);
    expectRowStaysFaithful(*game, 400, 8);
}

TEST(BatchEnv, ChannelScenarioRowsSurviveResetAllAndRebind)
{
    // Batch pool over the channel scenarios: fuzz random actions with a
    // mid-run resetAll, checking row == rebuildObservation() for every
    // stream after every batched step, then rebind a stream's row out
    // of the pool and verify the invariant follows the new location.
    for (const char *name : {"tlb_evict", "prefetch_probe"}) {
        auto vec =
            makeVecEnv(name, tinyEnvConfig(19), 3, VecEnvKind::Batch);
        auto *batch = dynamic_cast<BatchVecEnv *>(vec.get());
        ASSERT_NE(batch, nullptr) << name;
        const std::size_t n = vec->numEnvs();
        const std::size_t dim = vec->observationSize();

        vec->resetAll();
        Rng rng(20);
        std::vector<std::size_t> actions(n);
        for (int t = 0; t < 150; ++t) {
            if (t == 70)
                vec->resetAll();
            for (std::size_t s = 0; s < n; ++s)
                actions[s] = rng.uniformInt(vec->numActions());
            vec->stepAll(actions);
            for (std::size_t s = 0; s < n; ++s) {
                auto *game =
                    dynamic_cast<CacheGuessingGame *>(&vec->env(s));
                ASSERT_NE(game, nullptr) << name;
                const std::vector<float> want =
                    game->rebuildObservation();
                ASSERT_EQ(0,
                          std::memcmp(batch->pool().obs().rowPtr(s),
                                      want.data(),
                                      dim * sizeof(float)))
                    << name << ": stream " << s << " row stale at step "
                    << t;
            }
        }

        // Re-home stream 0's row outside the pool matrix.
        auto *game = dynamic_cast<CacheGuessingGame *>(&vec->env(0));
        ASSERT_NE(game, nullptr) << name;
        std::vector<float> external(dim, -1.0f);
        game->bindObservationRow(external.data());
        game->step(0);
        game->step(1 % game->numActions());
        EXPECT_EQ(std::vector<float>(external.begin(), external.end()),
                  game->rebuildObservation())
            << name << ": rebound row diverged";
    }
}

TEST(BatchEnv, BoundRowSurvivesRebind)
{
    auto env = makeEnv("guessing_game", tinyEnvConfig(16));
    auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
    ASSERT_NE(game, nullptr);
    const std::size_t d = game->observationSize();

    game->reset();
    game->step(0);
    const std::vector<float> before = game->rebuildObservation();

    // Rebinding moves the live row contents to the new location...
    std::vector<float> external(d, -1.0f);
    game->bindObservationRow(external.data());
    EXPECT_EQ(0, std::memcmp(external.data(), before.data(),
                             d * sizeof(float)));

    // ...subsequent steps maintain the external row...
    game->step(1);
    EXPECT_EQ(std::vector<float>(external.begin(), external.end()),
              game->rebuildObservation());

    // ...and rebinding back to internal storage detaches it.
    game->bindObservationRow(nullptr);
    const std::vector<float> snapshot(external);
    game->step(0);
    EXPECT_EQ(std::vector<float>(external.begin(), external.end()),
              snapshot);
    EXPECT_EQ(std::vector<float>(game->observationRow(),
                                 game->observationRow() + d),
              game->rebuildObservation());
}

/** Trajectory record for bitwise comparison. */
struct Trace
{
    std::vector<float> obs;
    std::vector<double> rewards;
    std::vector<std::uint8_t> dones;

    bool
    operator==(const Trace &o) const
    {
        return obs == o.obs && rewards == o.rewards && dones == o.dones;
    }
};

std::size_t
scheduledAction(std::size_t stream, int t, std::size_t num_actions)
{
    return (stream * 5 + static_cast<std::size_t>(t) * 3) % num_actions;
}

/**
 * Roll @p steps batched steps, resetting all streams at
 * @p reset_at (-1: never) to exercise mid-run resetAll coherence.
 */
std::vector<Trace>
runVectorized(VecEnv &vec, int steps, int reset_at)
{
    const std::size_t n = vec.numEnvs();
    const std::size_t dim = vec.observationSize();
    std::vector<Trace> traces(n);
    vec.resetAll();
    std::vector<std::size_t> actions(n);
    for (int t = 0; t < steps; ++t) {
        if (t == reset_at)
            vec.resetAll();
        for (std::size_t s = 0; s < n; ++s)
            actions[s] = scheduledAction(s, t, vec.numActions());
        const VecStepResult vr = vec.stepAll(actions);
        for (std::size_t s = 0; s < n; ++s) {
            traces[s].rewards.push_back(vr.rewards[s]);
            traces[s].dones.push_back(vr.dones[s]);
            traces[s].obs.insert(traces[s].obs.end(), vr.obs.rowPtr(s),
                                 vr.obs.rowPtr(s) + dim);
        }
    }
    return traces;
}

TEST(BatchEnv, MatchesSyncBitwiseOnEveryRegistryScenario)
{
    constexpr std::size_t kStreams = 3;
    constexpr int kSteps = 250;
    constexpr int kResetAt = 120;

    for (const std::string &name : scenarioNames()) {
        const EnvConfig cfg = tinyEnvConfig(500);
        auto sync = makeVecEnv(name, cfg, kStreams, VecEnvKind::Sync);
        auto batch = makeVecEnv(name, cfg, kStreams, VecEnvKind::Batch);
        ASSERT_EQ(sync->observationSize(), batch->observationSize())
            << name;

        const std::vector<Trace> a =
            runVectorized(*sync, kSteps, kResetAt);
        const std::vector<Trace> b =
            runVectorized(*batch, kSteps, kResetAt);
        for (std::size_t s = 0; s < kStreams; ++s) {
            EXPECT_TRUE(a[s] == b[s])
                << "scenario " << name << " stream " << s
                << ": batch trajectory diverged from sync";
        }
    }
}

TEST(BatchEnv, PoolMatrixRowsStayCoherentWithDirectEnvAccess)
{
    // evaluate()-style direct stepping through env(i) must keep the
    // pool's matrix rows in sync with the game state.
    auto vec = makeVecEnv("guessing_game", tinyEnvConfig(600), 2,
                          VecEnvKind::Batch);
    auto *batch = dynamic_cast<BatchVecEnv *>(vec.get());
    ASSERT_NE(batch, nullptr);
    vec->resetAll();

    Environment &e0 = vec->env(0);
    e0.reset();
    e0.step(0);
    e0.step(1);

    auto *game = dynamic_cast<CacheGuessingGame *>(&e0);
    ASSERT_NE(game, nullptr);
    const std::vector<float> want = game->rebuildObservation();
    const Matrix &obs = batch->pool().obs();
    EXPECT_EQ(0, std::memcmp(obs.rowPtr(0), want.data(),
                             want.size() * sizeof(float)));
}

TEST(BatchEnvGuard, PpoRolloutsMatchSyncBitwise)
{
    // CI smoke guard: two epochs of PPO through the batch engine must
    // be indistinguishable from the sync path — identical telemetry
    // and identical weights.
    PpoConfig cfg;
    cfg.seed = 51;
    cfg.stepsPerEpoch = 400;
    cfg.minibatchSize = 200;

    const EnvConfig env_cfg = tinyEnvConfig(700);
    auto sync = makeVecEnv("guessing_game", env_cfg, 4, VecEnvKind::Sync);
    auto batch =
        makeVecEnv("guessing_game", env_cfg, 4, VecEnvKind::Batch);
    PpoTrainer sync_trainer(*sync, cfg);
    PpoTrainer batch_trainer(*batch, cfg);

    for (int e = 0; e < 2; ++e) {
        const EpochStats a = sync_trainer.runEpoch();
        const EpochStats b = batch_trainer.runEpoch();
        EXPECT_DOUBLE_EQ(a.meanReturn, b.meanReturn) << "epoch " << e;
        EXPECT_DOUBLE_EQ(a.meanEpisodeLength, b.meanEpisodeLength);
        EXPECT_DOUBLE_EQ(a.policyLoss, b.policyLoss) << "epoch " << e;
        EXPECT_DOUBLE_EQ(a.valueLoss, b.valueLoss) << "epoch " << e;
        EXPECT_DOUBLE_EQ(a.entropy, b.entropy) << "epoch " << e;
    }

    Matrix probe(4, static_cast<std::size_t>(sync->observationSize()));
    Rng rng(99);
    for (std::size_t i = 0; i < probe.size(); ++i)
        probe.data()[i] = static_cast<float>(rng.gaussian());
    AcOutput oa, ob;
    sync_trainer.policy().forwardNoGrad(probe, oa);
    batch_trainer.policy().forwardNoGrad(probe, ob);
    ASSERT_EQ(oa.logits.size(), ob.logits.size());
    EXPECT_EQ(0, std::memcmp(oa.logits.data(), ob.logits.data(),
                             oa.logits.size() * sizeof(float)));
}

TEST(BatchEnvGuard, EvaluationDoesNotDesyncLaterEpochs)
{
    // evaluate() steps the pool envs directly between epochs; the next
    // collect must restart cleanly and keep matching the sync path.
    PpoConfig cfg;
    cfg.seed = 53;
    cfg.stepsPerEpoch = 300;
    cfg.minibatchSize = 150;

    const EnvConfig env_cfg = tinyEnvConfig(800);
    auto sync = makeVecEnv("guessing_game", env_cfg, 3, VecEnvKind::Sync);
    auto batch =
        makeVecEnv("guessing_game", env_cfg, 3, VecEnvKind::Batch);
    PpoTrainer sync_trainer(*sync, cfg);
    PpoTrainer batch_trainer(*batch, cfg);

    sync_trainer.runEpoch();
    batch_trainer.runEpoch();
    const EvalStats ea = sync_trainer.evaluate(6);
    const EvalStats eb = batch_trainer.evaluate(6);
    EXPECT_DOUBLE_EQ(ea.meanReturn, eb.meanReturn);
    EXPECT_EQ(ea.guesses, eb.guesses);

    const EpochStats a = sync_trainer.runEpoch();
    const EpochStats b = batch_trainer.runEpoch();
    EXPECT_DOUBLE_EQ(a.meanReturn, b.meanReturn);
    EXPECT_DOUBLE_EQ(a.policyLoss, b.policyLoss);
    EXPECT_DOUBLE_EQ(a.valueLoss, b.valueLoss);
}

} // namespace
} // namespace autocat
