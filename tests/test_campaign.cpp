/**
 * @file
 * Tests of the campaign subsystem (core/campaign.hpp): curriculum
 * phases, detector-in-the-loop registry scenarios, mid-campaign
 * checkpoint/resume bit-identity, campaign config keys, and campaign
 * sweep cells.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/campaign.hpp"
#include "core/campaign_config.hpp"
#include "env/env_registry.hpp"
#include "env/guessing_game.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"
#include "eval/sweep_config.hpp"
#include "rl/checkpoint.hpp"

namespace autocat {
namespace {

ExplorationConfig
tinyBase(std::uint64_t seed = 13)
{
    ExplorationConfig cfg;
    cfg.env.cache.numSets = 1;
    cfg.env.cache.numWays = 2;
    cfg.env.cache.policy = ReplPolicy::Lru;
    cfg.env.cache.addressSpaceSize = 6;
    cfg.env.attackAddrS = 0;
    cfg.env.attackAddrE = 2;
    cfg.env.victimAddrS = 0;
    cfg.env.victimAddrE = 0;
    cfg.env.victimNoAccessEnable = true;
    cfg.env.windowSize = 10;
    cfg.env.randomInit = false;
    cfg.env.seed = seed;
    cfg.ppo.seed = 17;
    cfg.ppo.stepsPerEpoch = 300;
    cfg.ppo.hidden = 16;
    cfg.evalEpisodes = 20;
    return cfg;
}

// ------------------------------------------------------ scenarios --

TEST(BypassScenarios, AreRegisteredByName)
{
    for (const char *name : {"miss_detect_terminate", "cchunter_bypass",
                             "cyclone_bypass"}) {
        EXPECT_TRUE(hasScenario(name)) << name;
    }
}

TEST(BypassScenarios, MissDetectTerminateForcesDetectionEnable)
{
    EnvConfig cfg = tinyBase().env;
    cfg.detectionEnable = false;  // the scenario must force it on
    auto env = makeEnv("miss_detect_terminate", cfg);
    auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
    ASSERT_NE(game, nullptr);
    EXPECT_TRUE(game->config().detectionEnable);

    // Cold cache: triggering the victim misses -> detection ends the
    // episode (the default miss detector is live).
    game->reset();
    game->forceSecret(std::uint64_t{0});
    const StepResult sr =
        game->step(game->actionSpace().triggerIndex());
    EXPECT_TRUE(sr.done);
    EXPECT_TRUE(sr.info.detected);
}

TEST(BypassScenarios, TrainEndToEndThroughExplore)
{
    for (const char *scenario : {"miss_detect_terminate",
                                 "cchunter_bypass", "cyclone_bypass"}) {
        ExplorationConfig cfg = tinyBase();
        cfg.scenario = scenario;
        cfg.maxEpochs = 1;
        cfg.evalEpisodes = 10;
        const ExplorationResult result = explore(cfg);
        EXPECT_GT(result.envSteps, 0) << scenario;
        EXPECT_GE(result.detectionRate, 0.0) << scenario;
    }
}

TEST(BypassScenarios, ContextDetectorsReplaceTheDefault)
{
    // An explicit spec list replaces cyclone_bypass's built-in
    // detector; a miss detector in Terminate mode fires on the first
    // victim miss, which the default (Penalize-mode Cyclone) never
    // does.
    ScenarioContext ctx(tinyBase().env);
    ctx.env.detectionEnable = true;
    DetectorSpec miss;
    miss.kind = "miss";
    miss.mode = DetectorMode::Terminate;
    ctx.detectors.push_back(miss);

    auto env = makeEnv("cyclone_bypass", ctx);
    auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
    ASSERT_NE(game, nullptr);
    game->reset();
    game->forceSecret(std::uint64_t{0});
    const StepResult sr =
        game->step(game->actionSpace().triggerIndex());
    EXPECT_TRUE(sr.info.detected);
}

TEST(BypassScenarios, DetectorsRejectedOnNonGameScenario)
{
    struct Dummy : Environment
    {
        std::size_t observationSize() const override { return 1; }
        std::size_t numActions() const override { return 1; }
        std::vector<float> reset() override { return {0.0f}; }
        StepResult step(std::size_t) override { return {}; }
    };
    registerScenario("test_non_game",
                     [](const ScenarioContext &,
                        std::unique_ptr<MemorySystem>) {
                         return std::make_unique<Dummy>();
                     });
    ScenarioContext ctx(tinyBase().env);
    DetectorSpec miss;
    miss.kind = "miss";
    ctx.detectors.push_back(miss);
    EXPECT_THROW(makeEnv("test_non_game", ctx), std::invalid_argument);
}

// ------------------------------------------------------- campaigns --

TEST(Campaign, TwoPhaseCurriculumRunsEndToEnd)
{
    CampaignConfig campaign;
    campaign.base = tinyBase();

    CurriculumPhase clean;
    clean.name = "warmup";
    clean.maxEpochs = 2;
    CurriculumPhase bypass;
    bypass.name = "bypass";
    bypass.scenario = "miss_detect_terminate";
    bypass.maxEpochs = 2;
    DetectorSpec miss;
    miss.kind = "miss";
    miss.mode = DetectorMode::Penalize;
    bypass.detectors.push_back(miss);
    campaign.phases = {clean, bypass};

    std::vector<std::string> seen;
    const CampaignResult result = runCampaign(
        campaign, {},
        [&](std::size_t index, const PhaseResult &phase) {
            seen.push_back(std::to_string(index) + ":" + phase.name);
        });

    ASSERT_EQ(result.phases.size(), 2u);
    EXPECT_EQ(result.phases[0].name, "warmup");
    EXPECT_EQ(result.phases[1].name, "bypass");
    EXPECT_EQ(result.phases[0].epochsRun, 2);
    EXPECT_EQ(result.phases[1].epochsRun, 2);
    EXPECT_GT(result.phases[1].envStepsEnd,
              result.phases[0].envStepsEnd);
    EXPECT_EQ(result.final.envSteps, result.phases[1].envStepsEnd);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], "0:warmup");
    EXPECT_EQ(seen[1], "1:bypass");
    EXPECT_FALSE(result.resumed);
}

TEST(Campaign, RewardOverridesApplyPerPhase)
{
    CurriculumPhase phase;
    phase.rewards.stepReward = -0.5;
    phase.rewards.correctGuessReward = 3.0;
    EnvConfig env = tinyBase().env;
    phase.rewards.apply(env);
    EXPECT_DOUBLE_EQ(env.stepReward, -0.5);
    EXPECT_DOUBLE_EQ(env.correctGuessReward, 3.0);
    // Unset fields keep the base values.
    EXPECT_DOUBLE_EQ(env.wrongGuessReward, -1.0);
}

TEST(Campaign, LegacySinglePhaseMatchesExploreBitForBit)
{
    ExplorationConfig cfg = tinyBase();
    cfg.maxEpochs = 3;
    cfg.targetAccuracy = 2.0;  // unreachable: run all 3 epochs

    const ExplorationResult via_explore = explore(cfg);

    CampaignConfig campaign;
    campaign.base = cfg;
    const CampaignResult via_campaign = runCampaign(campaign);

    EXPECT_EQ(via_explore.converged, via_campaign.final.converged);
    EXPECT_EQ(via_explore.envSteps, via_campaign.final.envSteps);
    EXPECT_DOUBLE_EQ(via_explore.finalAccuracy,
                     via_campaign.final.finalAccuracy);
    EXPECT_DOUBLE_EQ(via_explore.finalEpisodeLength,
                     via_campaign.final.finalEpisodeLength);
    EXPECT_EQ(via_explore.sequence.toString(false),
              via_campaign.final.sequence.toString(false));
    EXPECT_EQ(via_explore.finalGuess, via_campaign.final.finalGuess);
}

TEST(Campaign, ResumeFromMidCampaignCheckpointIsBitIdentical)
{
    const std::string path_a =
        ::testing::TempDir() + "autocat_campaign_a.ckpt";
    const std::string path_b =
        ::testing::TempDir() + "autocat_campaign_b.ckpt";
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());

    const auto make_campaign = [&](const std::string &path) {
        CampaignConfig campaign;
        campaign.base = tinyBase();
        CurriculumPhase clean;
        clean.name = "warmup";
        clean.maxEpochs = 2;
        CurriculumPhase bypass;
        bypass.name = "bypass";
        bypass.scenario = "miss_detect_terminate";
        bypass.maxEpochs = 2;
        campaign.phases = {clean, bypass};
        campaign.checkpointPath = path;
        campaign.checkpointEvery = 1;
        campaign.resume = true;
        return campaign;
    };

    // Run A: uninterrupted.
    TrainingSession session_a(make_campaign(path_a));
    const CampaignResult result_a = session_a.run();
    std::ostringstream final_a(std::ios::binary);
    writePpoCheckpoint(final_a, session_a.trainer());

    // Run B1: abort right after the mid-phase-1 checkpoint (global
    // epoch 3 = phase "bypass", epoch 1).
    struct Abort
    {
    };
    TrainingSession session_b1(make_campaign(path_b));
    try {
        session_b1.run({}, {},
                       [&](const std::string &, std::size_t phase,
                           int epochs_done) {
                           if (phase == 1 && epochs_done == 1)
                               throw Abort{};
                       });
        FAIL() << "expected the abort to propagate";
    } catch (const Abort &) {
    }

    // Run B2: resume from the interrupted file and finish.
    TrainingSession session_b2(make_campaign(path_b));
    const CampaignResult result_b = session_b2.run();
    EXPECT_TRUE(result_b.resumed);

    // Bit-identical continuation: same final trainer state, same final
    // metrics, same phase bookkeeping, same on-disk final checkpoint.
    std::ostringstream final_b(std::ios::binary);
    writePpoCheckpoint(final_b, session_b2.trainer());
    EXPECT_EQ(final_a.str(), final_b.str());
    EXPECT_EQ(result_a.final.envSteps, result_b.final.envSteps);
    EXPECT_DOUBLE_EQ(result_a.final.finalAccuracy,
                     result_b.final.finalAccuracy);
    EXPECT_DOUBLE_EQ(result_a.final.detectionRate,
                     result_b.final.detectionRate);
    EXPECT_EQ(result_a.final.sequence.toString(false),
              result_b.final.sequence.toString(false));
    ASSERT_EQ(result_a.phases.size(), result_b.phases.size());
    for (std::size_t i = 0; i < result_a.phases.size(); ++i) {
        EXPECT_EQ(result_a.phases[i].epochsRun,
                  result_b.phases[i].epochsRun);
        EXPECT_DOUBLE_EQ(result_a.phases[i].finalEval.guessAccuracy,
                         result_b.phases[i].finalEval.guessAccuracy);
    }

    // The final checkpoint files themselves must agree byte-for-byte.
    std::ifstream fa(path_a, std::ios::binary);
    std::ifstream fb(path_b, std::ios::binary);
    std::stringstream ca, cb;
    ca << fa.rdbuf();
    cb << fb.rdbuf();
    EXPECT_EQ(ca.str(), cb.str());

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Campaign, ResumeFromPhaseEndCheckpointIsBitIdentical)
{
    // Phase-end checkpoints (checkpointEvery = 0, the default) are the
    // other resume entry point: the campaign position is (next phase,
    // epoch 0), and both runs must enter the new phase in the same
    // boundary-synced state.
    const std::string path_a =
        ::testing::TempDir() + "autocat_phase_end_a.ckpt";
    const std::string path_b =
        ::testing::TempDir() + "autocat_phase_end_b.ckpt";
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());

    const auto make_campaign = [&](const std::string &path) {
        CampaignConfig campaign;
        campaign.base = tinyBase();
        CurriculumPhase clean;
        clean.name = "warmup";
        clean.maxEpochs = 2;
        CurriculumPhase bypass;
        bypass.name = "bypass";
        bypass.scenario = "miss_detect_terminate";
        bypass.maxEpochs = 2;
        campaign.phases = {clean, bypass};
        campaign.checkpointPath = path;
        campaign.resume = true;
        return campaign;
    };

    TrainingSession session_a(make_campaign(path_a));
    const CampaignResult result_a = session_a.run();
    std::ostringstream final_a(std::ios::binary);
    writePpoCheckpoint(final_a, session_a.trainer());

    // Abort exactly at the end-of-phase-0 checkpoint (position 1, 0).
    struct Abort
    {
    };
    TrainingSession session_b1(make_campaign(path_b));
    try {
        session_b1.run({}, {},
                       [&](const std::string &, std::size_t phase,
                           int epochs_done) {
                           if (phase == 1 && epochs_done == 0)
                               throw Abort{};
                       });
        FAIL() << "expected the abort to propagate";
    } catch (const Abort &) {
    }

    TrainingSession session_b2(make_campaign(path_b));
    const CampaignResult result_b = session_b2.run();
    EXPECT_TRUE(result_b.resumed);

    std::ostringstream final_b(std::ios::binary);
    writePpoCheckpoint(final_b, session_b2.trainer());
    EXPECT_EQ(final_a.str(), final_b.str());
    EXPECT_DOUBLE_EQ(result_a.final.finalAccuracy,
                     result_b.final.finalAccuracy);
    EXPECT_DOUBLE_EQ(result_a.final.detectionRate,
                     result_b.final.detectionRate);
    EXPECT_EQ(result_a.final.sequence.toString(false),
              result_b.final.sequence.toString(false));

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Campaign, ResumeWithMissingFileStartsFresh)
{
    CampaignConfig campaign;
    campaign.base = tinyBase();
    CurriculumPhase only;
    only.maxEpochs = 1;
    campaign.phases = {only};
    campaign.checkpointPath =
        ::testing::TempDir() + "autocat_campaign_fresh.ckpt";
    std::remove(campaign.checkpointPath.c_str());
    campaign.resume = true;
    const CampaignResult result = runCampaign(campaign);
    EXPECT_FALSE(result.resumed);
    EXPECT_EQ(result.phases.size(), 1u);
    std::remove(campaign.checkpointPath.c_str());
}

TEST(Campaign, CheckpointingRejectsExternalMemorySystems)
{
    CampaignConfig campaign;
    campaign.base = tinyBase();
    campaign.checkpointPath = "/tmp/never_written.ckpt";
    auto memory =
        std::make_unique<SingleLevelMemory>(campaign.base.env.cache);
    TrainingSession session(std::move(campaign), std::move(memory));
    EXPECT_THROW(session.run(), std::invalid_argument);
}

// --------------------------------------------------- config keys --

TEST(CampaignConfig, ParsesCampaignAndPhaseKeys)
{
    const CampaignConfig cfg = parseCampaignConfig(std::string(R"(
        num_ways = 2
        campaign.checkpoint_path = run.ckpt
        campaign.checkpoint_every = 5
        campaign.resume = true
        phase[0].name = warmup
        phase[0].max_epochs = 30
        phase[0].target_accuracy = 0.95
        phase[1].name = bypass
        phase[1].scenario = cyclone_bypass
        phase[1].max_epochs = 40
        phase[1].max_detection_rate = 0.05
        phase[1].detector = cyclone
        phase[1].detector_mode = penalize
        phase[1].detector_penalty = -6.0
        phase[1].detector_interval = 32
        phase[1].multi_secret = true
        phase[1].multi_secret_episode_steps = 64
        phase[1].step_reward = -0.02
    )"));

    EXPECT_EQ(cfg.checkpointPath, "run.ckpt");
    EXPECT_EQ(cfg.checkpointEvery, 5);
    EXPECT_TRUE(cfg.resume);
    ASSERT_EQ(cfg.phases.size(), 2u);
    EXPECT_EQ(cfg.phases[0].name, "warmup");
    EXPECT_EQ(cfg.phases[0].maxEpochs, 30);
    EXPECT_DOUBLE_EQ(cfg.phases[0].targetAccuracy, 0.95);
    EXPECT_TRUE(cfg.phases[0].detectors.empty());
    EXPECT_EQ(cfg.phases[1].scenario, "cyclone_bypass");
    EXPECT_DOUBLE_EQ(cfg.phases[1].maxDetectionRate, 0.05);
    ASSERT_EQ(cfg.phases[1].detectors.size(), 1u);
    EXPECT_EQ(cfg.phases[1].detectors[0].kind, "cyclone");
    EXPECT_EQ(cfg.phases[1].detectors[0].mode, DetectorMode::Penalize);
    EXPECT_DOUBLE_EQ(cfg.phases[1].detectors[0].penalty, -6.0);
    EXPECT_EQ(cfg.phases[1].detectors[0].cycloneInterval, 32u);
    ASSERT_TRUE(cfg.phases[1].multiSecret.has_value());
    EXPECT_TRUE(*cfg.phases[1].multiSecret);
    ASSERT_TRUE(cfg.phases[1].rewards.stepReward.has_value());
    EXPECT_DOUBLE_EQ(*cfg.phases[1].rewards.stepReward, -0.02);
}

TEST(CampaignConfig, BadKeysFailLoudly)
{
    EXPECT_THROW(
        parseCampaignConfig(std::string("campaign.bogus = 1")),
        std::invalid_argument);
    EXPECT_THROW(
        parseCampaignConfig(std::string("phase[0].bogus = 1")),
        std::invalid_argument);
    EXPECT_THROW(
        parseCampaignConfig(std::string("phase[0z].max_epochs = 1")),
        std::invalid_argument);
    EXPECT_THROW(
        parseCampaignConfig(std::string("phase[99].max_epochs = 1")),
        std::invalid_argument);
    EXPECT_THROW(
        parseCampaignConfig(
            std::string("phase[0].detector = warp_field")),
        std::invalid_argument);
    EXPECT_THROW(
        parseCampaignConfig(
            std::string("phase[0].detector_mode = sometimes")),
        std::invalid_argument);
    // Detector parameters without a detector kind must fail at parse
    // time (order-independent, so checked after the whole file), not
    // deep inside a campaign run.
    EXPECT_THROW(
        parseCampaignConfig(
            std::string("phase[0].detector_penalty = -2")),
        std::invalid_argument);
    EXPECT_THROW(
        parseSweepConfig(
            std::string("phase[0].detector_mode = penalize")),
        std::invalid_argument);
    // ...while the same parameters WITH a kind parse fine in any order.
    const CampaignConfig ok = parseCampaignConfig(std::string(
        "phase[0].detector_penalty = -2\nphase[0].detector = miss"));
    ASSERT_EQ(ok.phases[0].detectors.size(), 1u);
    EXPECT_EQ(ok.phases[0].detectors[0].kind, "miss");
}

TEST(CampaignConfig, RenderParseRenderIsAFixedPoint)
{
    CampaignConfig cfg;
    cfg.base = tinyBase();
    cfg.checkpointPath = "bypass.ckpt";
    cfg.checkpointEvery = 3;
    CurriculumPhase warm;
    warm.name = "warmup";
    warm.maxEpochs = 12;
    warm.targetAccuracy = 0.9;
    CurriculumPhase bypass;
    bypass.scenario = "cchunter_bypass";
    bypass.maxEpochs = 20;
    bypass.maxDetectionRate = 0.1;
    DetectorSpec cchunter;
    cchunter.kind = "cchunter";
    cchunter.penalty = -4.0;
    bypass.detectors.push_back(cchunter);
    bypass.rewards.stepReward = -0.05;
    bypass.multiSecret = true;
    cfg.phases = {warm, bypass};

    const std::string once = renderCampaignConfig(cfg);
    const CampaignConfig reparsed = parseCampaignConfig(once);
    const std::string twice = renderCampaignConfig(reparsed);
    EXPECT_EQ(once, twice);
    ASSERT_EQ(reparsed.phases.size(), 2u);
    EXPECT_EQ(reparsed.phases[1].scenario, "cchunter_bypass");
}

// ------------------------------------------------- campaign sweeps --

TEST(CampaignSweep, BypassCellsRunThroughRunSweepCells)
{
    SweepConfig sweep;
    sweep.name = "bypass-cells";
    sweep.base = tinyBase();
    sweep.base.maxEpochs = 1;
    sweep.base.evalEpisodes = 10;
    sweep.grid.scenarios = {"miss_detect_terminate", "cchunter_bypass"};
    sweep.grid.seeds = {7};

    CurriculumPhase clean;
    clean.name = "warmup";
    clean.scenario = "guessing_game";
    clean.maxEpochs = 1;
    CurriculumPhase bypass;
    bypass.name = "bypass";  // scenario empty: inherits the cell's
    bypass.maxEpochs = 1;
    sweep.phases = {clean, bypass};

    SweepRunner runner(sweep);
    ASSERT_EQ(runner.cells().size(), 2u);
    EXPECT_EQ(runner.cells()[0].phases.size(), 2u);

    const SweepReport report = runner.run();
    ASSERT_EQ(report.cells.size(), 2u);
    for (const SweepCellResult &cell : report.cells) {
        EXPECT_TRUE(cell.completed) << cell.error;
        EXPECT_GT(cell.result.envSteps, 0);
    }

    // Detection-rate columns are part of the deterministic report.
    const std::string json = sweepReportJson(report);
    EXPECT_NE(json.find("\"detection_rate\""), std::string::npos);

    // Campaign cells keep the worker-count byte-determinism contract.
    SweepReport rerun = runSweepCells("bypass-cells",
                                      runner.cells(), /*workers=*/2);
    rerun.name = report.name;
    EXPECT_EQ(sweepReportJson(report), sweepReportJson(rerun));
}

TEST(CampaignSweep, SweepConfigCarriesPhaseKeys)
{
    SweepConfig cfg = parseSweepConfig(std::string(R"(
        num_ways = 2
        sweep.scenarios = miss_detect_terminate
        sweep.seeds = 7
        phase[0].name = warmup
        phase[0].scenario = guessing_game
        phase[0].max_epochs = 1
        phase[1].max_epochs = 1
    )"));
    ASSERT_EQ(cfg.phases.size(), 2u);
    EXPECT_EQ(cfg.phases[0].scenario, "guessing_game");

    const std::string once = renderSweepConfig(cfg);
    const SweepConfig reparsed = parseSweepConfig(once);
    EXPECT_EQ(renderSweepConfig(reparsed), once);
    ASSERT_EQ(reparsed.phases.size(), 2u);
}

} // namespace
} // namespace autocat
