/**
 * @file
 * Tests for the simulated-hardware layer: latency model arithmetic,
 * machine presets, the black-box target, and both covert-channel
 * protocols (correctness, stealth, accounting, noise behavior).
 */

#include <gtest/gtest.h>

#include "hw/covert_channel.hpp"
#include "hw/latency_model.hpp"
#include "hw/machines.hpp"
#include "hw/target.hpp"

namespace autocat {
namespace {

TEST(LatencyModel, CycleAccounting)
{
    LatencyModel m;
    EXPECT_DOUBLE_EQ(m.plainAccess(1), m.loopCycles + m.l1HitCycles);
    EXPECT_DOUBLE_EQ(m.measuredAccess(2),
                     m.loopCycles + m.measureCycles + m.l2HitCycles);
    EXPECT_DOUBLE_EQ(m.levelCycles(0), m.memCycles);
    EXPECT_DOUBLE_EQ(m.levelCycles(3), m.l3HitCycles);
}

TEST(LatencyModel, MbpsConversion)
{
    LatencyModel m;
    m.freqGHz = 1.0;  // 1e9 cycles per second
    // 1e3 bits in 1e6 cycles = 1e3 bits / 1e-3 s = 1e6 bps = 1 Mbps.
    EXPECT_NEAR(m.mbps(1e3, 1e6), 1.0, 1e-9);
    EXPECT_EQ(m.mbps(100.0, 0.0), 0.0);
}

TEST(Machines, TableIIIHasSevenRows)
{
    const auto targets = tableIIITargets();
    ASSERT_EQ(targets.size(), 7u);
    // L1 levels are documented PLRU; the rest are N.O.D.
    for (const auto &t : targets) {
        if (t.level == "L1") {
            EXPECT_TRUE(t.documented);
            EXPECT_EQ(t.policy, ReplPolicy::TreePlru);
        } else {
            EXPECT_FALSE(t.documented);
        }
    }
}

TEST(Machines, TableXHasFourMachinesWithRisingWays)
{
    const auto machines = tableXMachines();
    ASSERT_EQ(machines.size(), 4u);
    EXPECT_EQ(machines[0].l1Ways, 8u);
    EXPECT_EQ(machines[3].l1Ways, 12u);
}

// ------------------------------------------------------------ target --

TEST(Target, NoiseFreePresetBehavesLikeCache)
{
    HardwareTargetPreset preset;
    preset.ways = 4;
    preset.policy = ReplPolicy::Lru;
    preset.attackAddrE = 8;
    preset.obsNoise = 0.0;
    preset.interference = 0.0;
    SimulatedHardwareTarget target(preset, 3);

    EXPECT_FALSE(target.access(0, Domain::Attacker).hit);
    EXPECT_TRUE(target.access(0, Domain::Attacker).hit);
    target.reset();
    EXPECT_FALSE(target.access(0, Domain::Attacker).hit);
}

TEST(Target, ObservationNoiseFlipsSomeReadings)
{
    HardwareTargetPreset preset;
    preset.ways = 4;
    preset.obsNoise = 0.2;
    preset.interference = 0.0;
    SimulatedHardwareTarget target(preset, 7);

    target.access(0, Domain::Attacker);
    int flips = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        // Address 0 is genuinely resident; a miss reading is noise.
        if (!target.access(0, Domain::Attacker).hit)
            ++flips;
    }
    EXPECT_NEAR(static_cast<double>(flips) / n, 0.2, 0.04);
}

TEST(Target, InterferencePerturbsState)
{
    HardwareTargetPreset preset;
    preset.ways = 2;
    preset.obsNoise = 0.0;
    preset.interference = 0.5;
    preset.attackAddrE = 8;
    SimulatedHardwareTarget target(preset, 11);

    // Keep two lines resident; strays will eventually evict one.
    target.access(0, Domain::Attacker);
    target.access(1, Domain::Attacker);
    int misses = 0;
    for (int i = 0; i < 200; ++i) {
        if (!target.access(i % 2, Domain::Attacker).hit)
            ++misses;
    }
    EXPECT_GT(misses, 0);
}

TEST(Target, SeedDeterminism)
{
    HardwareTargetPreset preset = tableIIITargets()[0];
    SimulatedHardwareTarget a(preset, 42), b(preset, 42);
    for (int i = 0; i < 300; ++i) {
        const std::uint64_t addr = (i * 5) % 16;
        EXPECT_EQ(a.access(addr, Domain::Attacker).hit,
                  b.access(addr, Domain::Attacker).hit);
    }
}

// ---------------------------------------------------- covert channel --

CovertChannelConfig
ssConfig(unsigned ways, double noise = 0.0)
{
    CovertChannelConfig cfg;
    cfg.protocol = CovertProtocol::StealthyStreamline;
    cfg.ways = ways;
    cfg.bitsPerSymbol = 2;
    cfg.policy = ReplPolicy::Lru;
    cfg.noise = noise;
    cfg.seed = 9;
    return cfg;
}

CovertChannelConfig
lruConfig(unsigned ways, double noise = 0.0)
{
    CovertChannelConfig cfg = ssConfig(ways, noise);
    cfg.protocol = CovertProtocol::LruAddrBased;
    return cfg;
}

TEST(CovertChannel, AccountingMatchesPaper)
{
    CovertChannel ss8(ssConfig(8));
    EXPECT_EQ(ss8.accessesPerRound(), 10u);  // "4 out of 10"
    EXPECT_EQ(ss8.measuredPerRound(), 4u);
    CovertChannel ss12(ssConfig(12));
    EXPECT_EQ(ss12.accessesPerRound(), 14u);  // "4 out of 14"
    EXPECT_EQ(ss12.measuredPerRound(), 4u);
}

TEST(CovertChannel, StealthyStreamlineIsErrorFreeWithoutNoise)
{
    for (unsigned ways : {4u, 8u, 12u}) {
        CovertChannel ch(ssConfig(ways));
        Rng rng(5);
        const BitString msg = randomBits(rng, 512);
        const CovertResult r = ch.transmit(msg);
        EXPECT_EQ(r.errorRate, 0.0) << ways << "-way";
        EXPECT_GT(r.mbps, 0.0);
    }
}

TEST(CovertChannel, LruAddrBasedIsErrorFreeWithoutNoise)
{
    for (unsigned ways : {4u, 8u, 12u}) {
        CovertChannel ch(lruConfig(ways));
        Rng rng(6);
        const BitString msg = randomBits(rng, 256);
        EXPECT_EQ(ch.transmit(msg).errorRate, 0.0) << ways << "-way";
    }
}

TEST(CovertChannel, StealthyStreamlineSenderNeverMisses)
{
    // The "stealthy" property: the sender's accesses are always hits,
    // so miss-count detectors watching the victim see nothing.
    CovertChannel ch(ssConfig(8));
    Rng rng(7);
    const CovertResult r = ch.transmit(randomBits(rng, 1024));
    EXPECT_EQ(r.victimMisses, 0u);
}

TEST(CovertChannel, LruBaselineSenderAlsoHits)
{
    CovertChannel ch(lruConfig(8));
    Rng rng(8);
    const CovertResult r = ch.transmit(randomBits(rng, 256));
    EXPECT_EQ(r.victimMisses, 0u);
}

TEST(CovertChannel, StealthyStreamlineBeatsLruBaseline)
{
    // The paper's headline Table X comparison.
    Rng rng(9);
    const BitString msg = randomBits(rng, 1024);
    for (unsigned ways : {8u, 12u}) {
        CovertChannel ss(ssConfig(ways));
        CovertChannel lru(lruConfig(ways));
        const double ss_rate = ss.transmit(msg).mbps;
        const double lru_rate = lru.transmit(msg).mbps;
        EXPECT_GT(ss_rate, lru_rate) << ways << "-way";
    }
}

TEST(CovertChannel, NoiseRaisesErrorRate)
{
    Rng rng(10);
    const BitString msg = randomBits(rng, 1024);
    CovertChannel clean(ssConfig(8, 0.0));
    CovertChannel noisy(ssConfig(8, 0.05));
    EXPECT_EQ(clean.transmit(msg).errorRate, 0.0);
    EXPECT_GT(noisy.transmit(msg).errorRate, 0.01);
}

TEST(CovertChannel, MajorityVoteRepeatsTradeRateForErrors)
{
    Rng rng(11);
    const BitString msg = randomBits(rng, 1024);

    CovertChannelConfig one = ssConfig(8, 0.03);
    CovertChannelConfig three = ssConfig(8, 0.03);
    three.repeats = 3;

    const CovertResult r1 = CovertChannel(one).transmit(msg);
    const CovertResult r3 = CovertChannel(three).transmit(msg);
    EXPECT_LT(r3.mbps, r1.mbps);
    EXPECT_LE(r3.errorRate, r1.errorRate);
}

TEST(CovertChannel, ThreeBitVariantWorksOnLru)
{
    CovertChannelConfig cfg = ssConfig(12);
    cfg.bitsPerSymbol = 3;
    CovertChannel ch(cfg);
    Rng rng(12);
    const BitString msg = randomBits(rng, 384);
    EXPECT_EQ(ch.transmit(msg).errorRate, 0.0);
}

TEST(CovertChannel, RejectsOversizedSymbolAlphabet)
{
    CovertChannelConfig cfg = ssConfig(4);
    cfg.bitsPerSymbol = 3;  // 8 candidates in a 4-way set
    EXPECT_THROW(CovertChannel ch(cfg), std::invalid_argument);
}

} // namespace
} // namespace autocat
